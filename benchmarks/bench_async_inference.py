"""Per-event incremental GNN inference vs per-window full recompute.

The serving question behind the ROADMAP's first open item: once a
window's events are in, what does a decision cost?  The windowed path
pays a full graph rebuild plus a batch forward pass every time; the
per-event fast path (:class:`~repro.gnn.AsyncEventGNN`, wrapped in a
:class:`~repro.core.GNNIncrementalSession`) pays one hash insertion and
one local feature pass per event, with the decision free at the window
boundary.  This benchmark measures both on the same stream, asserts
they produce bit-identical scores (the serving invariant), and reports
per-event latency and MACs against the recompute figures.

Run standalone via ``tools/run_async_bench.py`` (appends a run record
to ``BENCH_async.json``), or under pytest for the shape assertions:

    PYTHONPATH=src python -m pytest benchmarks/bench_async_inference.py -s
"""

import time

import numpy as np

from repro.core.incremental import GNNIncrementalSession
from repro.events import EventStream, Resolution
from repro.gnn import (
    AsyncEventGNN,
    EventGNNClassifier,
    GraphBuildConfig,
)
from repro.gnn.models import build_event_graph
from repro.nn import no_grad

DEFAULT_N = 10_000
QUICK_N = 1_500

#: Workload geometry: a mid-size sensor, ~100 keps mean rate.
WIDTH = HEIGHT = 64
MEAN_DT_US = 10

#: Graph construction shared by both paths (max_events is set to the
#: stream length at run time so the windowed path serves every event).
RADIUS = 4.0
TIME_SCALE_US = 5000.0
MAX_DEGREE = 10
HIDDEN = 12
NUM_CLASSES = 4


def make_stream(n: int, seed: int = 0) -> EventStream:
    """Random but realistic event stream (uniform spatial, ~100 keps)."""
    rng = np.random.default_rng(seed)
    t = np.cumsum(rng.integers(1, 2 * MEAN_DT_US, n))
    return EventStream.from_arrays(
        t,
        rng.integers(0, WIDTH, n),
        rng.integers(0, HEIGHT, n),
        rng.choice([-1, 1], n),
        Resolution(WIDTH, HEIGHT),
    )


def make_model(seed: int = 1) -> EventGNNClassifier:
    """An EdgeConv classifier of the GNNPipeline's default size.

    Weights are untrained — per-event cost is weight-independent, so a
    seeded random model benchmarks exactly what a fitted one would.
    """
    return EventGNNClassifier(
        NUM_CLASSES, hidden=HIDDEN, in_features=2, rng=np.random.default_rng(seed)
    )


def bench_async_inference(
    n: int, seed: int = 0, instrumentation=None
) -> dict:
    """One measured comparison on an ``n``-event window.

    Args:
        n: events in the served window.
        seed: stream seed.
        instrumentation: optional observability sink for the session's
            per-event latency histogram and MACs/events counters.

    Returns:
        A JSON-ready record with per-event and per-window latency/MACs
        and their ratios.
    """
    stream = make_stream(n, seed=seed)
    model = make_model()

    # Per-event fast path: one session, every event, decision at close.
    engine = AsyncEventGNN(
        model,
        radius=RADIUS,
        time_scale_us=TIME_SCALE_US,
        window_us=1 << 62,
        max_degree=MAX_DEGREE,
    )
    session = GNNIncrementalSession(engine, instrumentation=instrumentation)
    t0 = time.perf_counter()
    reports = session.process_stream(stream)
    async_s = time.perf_counter() - t0
    async_scores = session.scores()
    per_event_us = async_s / n * 1e6
    macs_per_event = float(np.mean([r.macs for r in reports]))

    # Per-window recompute: full graph rebuild + batch forward.
    config = GraphBuildConfig(
        radius=RADIUS,
        time_scale_us=TIME_SCALE_US,
        max_events=n,
        max_degree=MAX_DEGREE,
    )
    t0 = time.perf_counter()
    graph = build_event_graph(stream, config)
    with no_grad():
        batch_scores = model(graph).data[0]
    recompute_s = time.perf_counter() - t0
    recompute_us = recompute_s * 1e6
    recompute_macs = float(model.operation_count(graph))

    # The serving invariant: same events, same bits.
    if not np.array_equal(async_scores, batch_scores):
        raise AssertionError(
            "per-event scores diverged from the windowed recompute: "
            f"max |diff| = {np.abs(async_scores - batch_scores).max():.3e}"
        )

    return {
        "n_events": n,
        "num_edges": int(graph.num_edges),
        "per_event_latency_us": per_event_us,
        "per_event_macs": macs_per_event,
        "recompute_latency_us": recompute_us,
        "recompute_macs": recompute_macs,
        "latency_ratio": recompute_us / per_event_us,
        "macs_ratio": recompute_macs / macs_per_event,
        "async_total_s": async_s,
        "recompute_total_s": recompute_s,
    }


def format_table(record: dict) -> str:
    """Human-readable summary of one record."""
    lines = [
        f"{'window (events)':<24}{record['n_events']:>14,}",
        f"{'graph edges':<24}{record['num_edges']:>14,}",
        f"{'per-event latency':<24}{record['per_event_latency_us']:>11.1f} us",
        f"{'recompute latency':<24}{record['recompute_latency_us']:>11.1f} us",
        f"{'latency ratio':<24}{record['latency_ratio']:>11.1f} x",
        f"{'per-event MACs':<24}{record['per_event_macs']:>14,.0f}",
        f"{'recompute MACs':<24}{record['recompute_macs']:>14,.0f}",
        f"{'MACs ratio':<24}{record['macs_ratio']:>11.1f} x",
    ]
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Pytest shape assertions (quick-size)
# ----------------------------------------------------------------------
def test_bench_shapes():
    record = bench_async_inference(400, seed=0)
    assert record["per_event_latency_us"] > 0
    assert record["recompute_macs"] > record["per_event_macs"]
    assert record["latency_ratio"] > 1.0
