"""Per-event incremental GNN inference vs per-window full recompute.

The serving question behind the ROADMAP's first open item: once a
window's events are in, what does a decision cost?  The windowed path
pays a full graph rebuild plus a batch forward pass every time; the
per-event fast path (:class:`~repro.gnn.AsyncEventGNN`, wrapped in a
:class:`~repro.core.GNNIncrementalSession`) pays one hash insertion and
one local feature pass per event, with the decision free at the window
boundary.  This benchmark measures both on the same stream, asserts
they produce bit-identical scores (the serving invariant), and reports
per-event latency and MACs against the recompute figures.

Run standalone via ``tools/run_async_bench.py`` (appends a run record
to ``BENCH_async.json``), or under pytest for the shape assertions:

    PYTHONPATH=src python -m pytest benchmarks/bench_async_inference.py -s
"""

import time

import numpy as np

from repro.core.incremental import GNNIncrementalSession
from repro.events import EventStream, Resolution
from repro.gnn import (
    AsyncEventGNN,
    EventGNNClassifier,
    GraphBuildConfig,
)
from repro.gnn.models import build_event_graph
from repro.nn import no_grad

DEFAULT_N = 10_000
QUICK_N = 1_500

#: Workload geometry: a mid-size sensor, ~100 keps mean rate.
WIDTH = HEIGHT = 64
MEAN_DT_US = 10

#: Graph construction shared by both paths (max_events is set to the
#: stream length at run time so the windowed path serves every event).
RADIUS = 4.0
TIME_SCALE_US = 5000.0
MAX_DEGREE = 10
HIDDEN = 12
NUM_CLASSES = 4


def make_stream(n: int, seed: int = 0) -> EventStream:
    """Random but realistic event stream (uniform spatial, ~100 keps)."""
    rng = np.random.default_rng(seed)
    t = np.cumsum(rng.integers(1, 2 * MEAN_DT_US, n))
    return EventStream.from_arrays(
        t,
        rng.integers(0, WIDTH, n),
        rng.integers(0, HEIGHT, n),
        rng.choice([-1, 1], n),
        Resolution(WIDTH, HEIGHT),
    )


def make_model(seed: int = 1) -> EventGNNClassifier:
    """An EdgeConv classifier of the GNNPipeline's default size.

    Weights are untrained — per-event cost is weight-independent, so a
    seeded random model benchmarks exactly what a fitted one would.
    """
    return EventGNNClassifier(
        NUM_CLASSES, hidden=HIDDEN, in_features=2, rng=np.random.default_rng(seed)
    )


def bench_async_inference(
    n: int, seed: int = 0, instrumentation=None
) -> dict:
    """One measured comparison on an ``n``-event window.

    Args:
        n: events in the served window.
        seed: stream seed.
        instrumentation: optional observability sink for the session's
            per-event latency histogram and MACs/events counters.

    Returns:
        A JSON-ready record with per-event and per-window latency/MACs
        and their ratios.
    """
    stream = make_stream(n, seed=seed)
    model = make_model()

    # Per-event fast path: one session, every event, decision at close.
    engine = AsyncEventGNN(
        model,
        radius=RADIUS,
        time_scale_us=TIME_SCALE_US,
        window_us=1 << 62,
        max_degree=MAX_DEGREE,
    )
    session = GNNIncrementalSession(engine, instrumentation=instrumentation)
    t0 = time.perf_counter()
    reports = session.process_stream(stream)
    async_s = time.perf_counter() - t0
    async_scores = session.scores()
    per_event_us = async_s / n * 1e6
    macs_per_event = float(np.mean([r.macs for r in reports]))

    # Per-window recompute: full graph rebuild + batch forward.
    config = GraphBuildConfig(
        radius=RADIUS,
        time_scale_us=TIME_SCALE_US,
        max_events=n,
        max_degree=MAX_DEGREE,
    )
    t0 = time.perf_counter()
    graph = build_event_graph(stream, config)
    with no_grad():
        batch_scores = model(graph).data[0]
    recompute_s = time.perf_counter() - t0
    recompute_us = recompute_s * 1e6
    recompute_macs = float(model.operation_count(graph))

    # The serving invariant: same events, same bits.
    if not np.array_equal(async_scores, batch_scores):
        raise AssertionError(
            "per-event scores diverged from the windowed recompute: "
            f"max |diff| = {np.abs(async_scores - batch_scores).max():.3e}"
        )

    return {
        "n_events": n,
        "num_edges": int(graph.num_edges),
        "per_event_latency_us": per_event_us,
        "per_event_macs": macs_per_event,
        "recompute_latency_us": recompute_us,
        "recompute_macs": recompute_macs,
        "latency_ratio": recompute_us / per_event_us,
        "macs_ratio": recompute_macs / macs_per_event,
        "async_total_s": async_s,
        "recompute_total_s": recompute_s,
    }


def bench_bounded_inference(
    n: int, capacity: int = 4096, seed: int = 0, num_samples: int = 20
) -> dict:
    """Bounded-state serving vs the exact unbounded engine, same stream.

    The bounded engine holds at most ``capacity`` live nodes (ring
    buffers, recycled edge log) while the exact engine keeps every node
    forever.  Both process the same ``n``-event stream; scores are
    compared at ``num_samples`` checkpoints, so the record carries the
    *measured* drift bound the bounded mode's users should feed into
    their :class:`~repro.core.AuditPolicy` tolerance — alongside the
    throughput and the peak/final state footprints that justify the
    bound in the first place.

    Returns:
        A JSON-ready record (``mode="bounded"``) with throughput, drift
        and state-size figures for both engines.
    """
    stream = make_stream(n, seed=seed)
    model = make_model()
    sample_at = sorted(set(np.linspace(1, n, num_samples, dtype=int).tolist()))

    def run(max_live_nodes):
        engine = AsyncEventGNN(
            model,
            radius=RADIUS,
            time_scale_us=TIME_SCALE_US,
            window_us=1 << 62,
            max_degree=MAX_DEGREE,
            max_live_nodes=max_live_nodes,
        )
        scores, sizes = [], []
        samples = set(sample_at)
        i = 0
        t0 = time.perf_counter()
        for t, x, y, p in zip(stream.t, stream.x, stream.y, stream.p):
            engine.process_event(int(x), int(y), int(t), int(p))
            i += 1
            if i in samples:
                scores.append(engine.scores().copy())
                sizes.append(engine.state_bytes())
        elapsed = time.perf_counter() - t0
        return engine, np.asarray(scores), sizes, elapsed

    bounded, b_scores, b_sizes, bounded_s = run(capacity)
    exact, e_scores, e_sizes, exact_s = run(None)
    drift = np.abs(b_scores - e_scores).max(axis=1)
    # Flatness over the final third only: the edge log capacity-doubles
    # until the recycle threshold engages, so early samples still grow.
    tail = b_sizes[-(len(b_sizes) // 3) :]

    return {
        "mode": "bounded",
        "n_events": n,
        "capacity": capacity,
        "bounded_events_per_s": n / bounded_s,
        "exact_events_per_s": n / exact_s,
        "bounded_total_s": bounded_s,
        "exact_total_s": exact_s,
        "drift_max": float(drift.max()),
        "drift_final": float(drift[-1]),
        "bounded_state_bytes_peak": int(max(b_sizes)),
        "bounded_state_bytes_final": int(b_sizes[-1]),
        "bounded_state_flat": bool(len(set(tail)) == 1),
        "exact_state_bytes_final": int(e_sizes[-1]),
        "expired_nodes_total": int(bounded.expired_nodes_total),
        "sample_points": [int(s) for s in sample_at],
    }


def format_bounded_table(record: dict) -> str:
    """Human-readable summary of one bounded-mode record."""
    ratio = record["exact_state_bytes_final"] / record["bounded_state_bytes_peak"]
    lines = [
        f"{'stream (events)':<24}{record['n_events']:>14,}",
        f"{'live-node budget':<24}{record['capacity']:>14,}",
        f"{'bounded throughput':<24}{record['bounded_events_per_s']:>9,.0f} ev/s",
        f"{'exact throughput':<24}{record['exact_events_per_s']:>9,.0f} ev/s",
        f"{'peak bounded state':<24}{record['bounded_state_bytes_peak']:>12,} B",
        f"{'final exact state':<24}{record['exact_state_bytes_final']:>12,} B",
        f"{'state ratio':<24}{ratio:>11.1f} x",
        f"{'state flat (final 1/3)':<24}{str(record['bounded_state_flat']):>14}",
        f"{'max drift vs exact':<24}{record['drift_max']:>14.3e}",
        f"{'nodes expired':<24}{record['expired_nodes_total']:>14,}",
    ]
    return "\n".join(lines)


def format_table(record: dict) -> str:
    """Human-readable summary of one record."""
    lines = [
        f"{'window (events)':<24}{record['n_events']:>14,}",
        f"{'graph edges':<24}{record['num_edges']:>14,}",
        f"{'per-event latency':<24}{record['per_event_latency_us']:>11.1f} us",
        f"{'recompute latency':<24}{record['recompute_latency_us']:>11.1f} us",
        f"{'latency ratio':<24}{record['latency_ratio']:>11.1f} x",
        f"{'per-event MACs':<24}{record['per_event_macs']:>14,.0f}",
        f"{'recompute MACs':<24}{record['recompute_macs']:>14,.0f}",
        f"{'MACs ratio':<24}{record['macs_ratio']:>11.1f} x",
    ]
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Pytest shape assertions (quick-size)
# ----------------------------------------------------------------------
def test_bench_shapes():
    record = bench_async_inference(400, seed=0)
    assert record["per_event_latency_us"] > 0
    assert record["recompute_macs"] > record["per_event_macs"]
    assert record["latency_ratio"] > 1.0


def test_bounded_bench_shapes():
    record = bench_bounded_inference(400, capacity=64, seed=0, num_samples=5)
    assert record["mode"] == "bounded"
    assert record["expired_nodes_total"] > 0
    assert record["bounded_state_bytes_peak"] < record["exact_state_bytes_final"]
    assert np.isfinite(record["drift_max"])
    assert len(record["sample_points"]) == 5
