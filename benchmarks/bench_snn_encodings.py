"""ABL-CODE — Section III-A: spike encoding formats for ANN→SNN conversion.

"the activity of a spiking neuron is used as an approximation of a
continuous value … most commonly rate-coding.  Although, this can result
in excessively active neurons and unevenness error.  Conversion based on
temporal-difference coding [37] or even by interpreting spikes as bits
of digital words [38] can lead to sparser network activities."

Measured: spikes-per-value and reconstruction error for rate, latency
(time-to-first-spike) and temporal-difference coding; and the unevenness
error of a converted network as a function of the simulation length.
"""

import numpy as np
import pytest

from repro.analysis import ascii_table
from repro.snn import (
    decode_latency,
    decode_rate,
    latency_encode,
    rate_encode,
    temporal_difference_encode,
)

from conftest import emit


def test_encoding_cost_vs_fidelity(benchmark):
    rng = np.random.default_rng(0)
    values = rng.random(500)
    steps = 128
    quantum = 1.0 / 32.0

    rate = rate_encode(values, steps, rng)
    latency = latency_encode(values, steps)
    # Temporal difference over a static presentation: one onset burst
    # encodes the value, then silence — rate coding keeps paying per step.
    seq = np.broadcast_to(values, (steps, values.size))
    tdelta = temporal_difference_encode(seq, quantum=quantum)

    rows = []
    spikes = {}
    errors = {}
    for name, train, decoded in (
        ("rate", rate, decode_rate(rate)),
        ("latency (TTFS)", latency, decode_latency(latency)),
    ):
        spikes[name] = float(np.abs(train).sum() / values.size)
        errors[name] = float(np.abs(decoded - values).mean())
        rows.append((name, f"{spikes[name]:.2f}", f"{errors[name]:.4f}"))
    spikes["temporal-diff"] = float(np.abs(tdelta).sum() / values.size)
    recon = np.cumsum(tdelta, axis=0)[-1] * quantum  # quanta -> value
    errors["temporal-diff"] = float(np.abs(recon - seq[-1]).mean())
    rows.append(
        ("temporal-diff", f"{spikes['temporal-diff']:.2f}", f"{errors['temporal-diff']:.4f}")
    )
    emit(
        "ABL-CODE: spikes per value and reconstruction error (T=128)",
        ascii_table(["encoding", "spikes/value", "mean |error|"], rows),
    )
    # Rate coding is the spike-hungry one; TTFS uses exactly <=1 spike.
    assert spikes["rate"] > 5 * spikes["latency (TTFS)"]
    assert spikes["latency (TTFS)"] <= 1.0
    # Temporal-difference stays sparse on slowly varying signals.
    assert spikes["temporal-diff"] < spikes["rate"]
    # All encodings reconstruct to within a timestep quantum.
    for name in errors:
        assert errors[name] < 0.15, name

    benchmark(rate_encode, values, steps, np.random.default_rng(1))


def test_rate_error_shrinks_with_timesteps(benchmark):
    rng = np.random.default_rng(0)
    values = rng.random(300)
    rows = []
    errs = []
    for steps in (8, 32, 128, 512):
        spikes = rate_encode(values, steps, np.random.default_rng(1))
        err = float(np.abs(decode_rate(spikes) - values).mean())
        errs.append(err)
        rows.append((steps, f"{err:.4f}"))
    emit(
        "ABL-CODE: rate-coding error vs simulation length",
        ascii_table(["timesteps", "mean |error|"], rows),
    )
    assert errs[0] > errs[-1]
    # Monte-Carlo rate: error ~ 1/sqrt(T).
    assert errs[-1] < errs[0] / 4

    benchmark(rate_encode, values, 128, np.random.default_rng(2))


def test_unevenness_and_activity_tradeoff(benchmark):
    """The conversion artefacts named in Section III-A, on a real net."""
    from repro.cnn import make_mlp
    from repro.nn import Adam, Tensor, cross_entropy
    from repro.snn import conversion_report, convert_relu_mlp

    rng = np.random.default_rng(0)
    x = rng.random((64, 6))
    y = (x[:, 0] + x[:, 1] > x[:, 2] + x[:, 3]).astype(np.int64)
    model = make_mlp(6, 2, hidden=(12,), rng=rng)
    opt = Adam(model.parameters(), lr=0.02)
    for _ in range(120):
        opt.zero_grad()
        cross_entropy(model(Tensor(x)), y).backward()
        opt.step()
    snn = convert_relu_mlp(model, x)

    rows = []
    reports = {}
    for steps in (5, 25, 100):
        rep = conversion_report(model, snn, x, steps, np.random.default_rng(1))
        reports[steps] = rep
        rows.append(
            (
                steps,
                f"{rep.agreement:.2f}",
                f"{rep.mean_unevenness:.4f}",
                f"{rep.spikes_per_sample:.0f}",
            )
        )
    emit(
        "ABL-CODE: converted-network unevenness vs simulation length",
        ascii_table(["timesteps", "ANN agreement", "unevenness", "spikes/sample"], rows),
    )
    # Longer simulation: better agreement, lower unevenness, more spikes.
    assert reports[100].agreement >= reports[5].agreement
    assert reports[100].mean_unevenness < reports[5].mean_unevenness
    assert reports[100].spikes_per_sample > reports[5].spikes_per_sample

    benchmark(conversion_report, model, snn, x, 25, np.random.default_rng(2))
