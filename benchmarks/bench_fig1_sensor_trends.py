"""FIG1 — Fig. 1: pixel size and array size trends over the decade.

Regenerates the two scatter series of the paper's Fig. 1 (pixel pitch
and array size of published event cameras vs year) together with the
log-linear trend fits, and checks the shape claims of Section II:
pitch shrinks towards the <= 5 um global-shutter range, array sizes grow
into the megapixel range, and BSI lifted the fill factor from ~1/5 to
more than 3/4.
"""

import numpy as np

from repro.analysis import ascii_table
from repro.sensors import (
    SENSOR_SURVEY,
    fill_factor_by_process,
    fit_array_size_trend,
    fit_pixel_pitch_trend,
)

from conftest import emit


def test_fig1_scatter_and_trends(benchmark):
    pitch_fit, array_fit = benchmark(
        lambda: (fit_pixel_pitch_trend(), fit_array_size_trend())
    )

    rows = [
        (
            s.year,
            s.name,
            f"{s.pixel_pitch_um:.2f}",
            f"{s.megapixels:.3f}",
            "BSI" if s.backside_illuminated else "FSI",
            f"{s.fill_factor:.2f}" if s.fill_factor else "-",
        )
        for s in SENSOR_SURVEY
    ]
    table = ascii_table(
        ["year", "sensor", "pitch um", "Mpx", "process", "fill factor"], rows
    )
    trend_rows = [
        ("pixel pitch", f"{pitch_fit.factor_per_decade:.3f}x / decade", f"r2={pitch_fit.r_squared:.2f}"),
        ("array size", f"{array_fit.factor_per_decade:.1f}x / decade", f"r2={array_fit.r_squared:.2f}"),
    ]
    emit(
        "FIG1: event-camera sensor scaling, 2008-2022",
        table + "\n\n" + ascii_table(["series", "trend", "fit"], trend_rows),
    )

    # Shape claims.
    assert pitch_fit.factor_per_decade < 0.5, "pixel pitch must shrink strongly"
    assert array_fit.factor_per_decade > 5, "array size must grow strongly"
    first, last = SENSOR_SURVEY[0], max(SENSOR_SURVEY, key=lambda s: s.num_pixels)
    assert first.pixel_pitch_um / last.pixel_pitch_um > 5
    assert last.num_pixels / first.num_pixels > 30
    # Modern sensors approach the <= 5 um global-shutter range.
    assert min(s.pixel_pitch_um for s in SENSOR_SURVEY) <= 5.0


def test_fig1_fill_factor_step(benchmark):
    ff = benchmark(fill_factor_by_process)
    emit(
        "FIG1 (inset): fill factor by process",
        "\n".join(f"{k}: {v:.2f}" for k, v in ff.items()),
    )
    # "from around one fifth to more than three quarters" (Section II).
    assert ff["FSI"] < 0.30
    assert ff["BSI"] > 0.75


def test_fig1_throughput_reaches_geps(benchmark):
    peak = benchmark(
        lambda: max(s.max_throughput_eps for s in SENSOR_SURVEY if s.max_throughput_eps)
    )
    emit("FIG1 (readout): peak published throughput", f"{peak/1e9:.2f} GEPS")
    assert peak >= 1e9  # "reaching the GEPS range" (Section II)
