"""TAB1 — Table I: the 12-axis SNN / CNN / GNN qualitative comparison.

Trains the three instrumented pipelines on a shared motion-gesture
dataset (whose CW/CCW classes require temporal information), measures
every quantitative axis, converts the measurements into the paper's
``++ / + / -`` scale and prints the regenerated table next to the
published one, together with the cell-by-cell agreement.
"""

import numpy as np
import pytest

from repro.core import (
    GNNPipeline,
    Rating,
    agreement_with_paper,
    render_table,
    run_comparison,
)
from repro.gnn import GraphBuildConfig

from conftest import emit


@pytest.fixture(scope="module")
def comparison():
    from repro.core import table1_dataset, table1_pipelines

    train, test = table1_dataset(seed=1)
    result = run_comparison(
        train, test, temporal_labels=(0, 1), pipelines=table1_pipelines()
    )
    return result, train, test


def test_table1_regenerated(comparison, benchmark):
    result, train, test = comparison
    table = render_table(result)
    agreement = agreement_with_paper(result)
    emit(
        "TABLE I: measured ratings vs the paper's qualitative table",
        table
        + f"\n\nagreement with paper: exact {agreement['exact']:.0%}, "
        + f"within one grade {agreement['within_one']:.0%} "
        + f"({agreement['cells']} comparable cells)",
    )
    # The reproduction's headline: strong qualitative agreement.
    assert agreement["within_one"] >= 0.75
    assert agreement["exact"] >= 0.45

    # Benchmark: one GNN classification end-to-end (graph build + forward).
    gnn_pipe = GNNPipeline(
        config=GraphBuildConfig(
            radius=4.0, time_scale_us=3000.0, max_events=250, max_degree=8,
            include_position=True,
        ),
        hidden=12,
        epochs=1,
    )
    gnn_pipe.fit(train.subset(range(4)))
    stream = test[0].stream
    benchmark(gnn_pipe.predict, stream)


def test_table1_headline_rows(comparison, benchmark):
    """The rows the paper's argument rests on must come out right."""
    result, *_ = comparison
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # Dense frames discard temporal information (Section III-B / V).
    assert result.rating("temporal_info", "CNN") is Rating.POOR
    assert result.rating("temporal_info", "GNN") is Rating.BEST
    # Event representations are the sparse ones.
    assert result.rating("data_sparsity", "CNN") is Rating.POOR
    assert result.rating("data_sparsity", "SNN") is Rating.BEST
    # Frame accumulation bounds CNN latency from below (Section V).
    assert result.rating("latency", "CNN") is Rating.POOR
    assert result.rating("latency", "GNN") is Rating.BEST
    assert result.rating("latency", "SNN") is Rating.BEST
    # GNN wins accuracy (Section IV: "already outperformed dense-frame
    # CNNs on a variety of event-camera benchmarks").
    assert result.metrics["GNN"].accuracy >= result.metrics["CNN"].accuracy


def test_table1_known_deviations(comparison, benchmark):
    """Documented deviations from the paper's table (see EXPERIMENTS.md).

    At our 24x24 scale the GNN's per-classification operation count does
    not beat the CNN's (the paper's '# operations ++' for GNNs holds at
    high resolution, demonstrated in bench_accuracy_comparison's scaling
    sweep); assert the measured facts so the deviation stays visible.
    """
    result, *_ = comparison
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    gnn_ops = result.metrics["GNN"].num_operations
    snn_ops = result.metrics["SNN"].num_operations
    assert snn_ops < gnn_ops  # SNN is the op-count winner at this scale
