"""ABL-SPARSE — Section III-B: exploiting CNN sparsity in hardware.

Regenerated claims:

1. zero-skipping saves compute in proportion to feature-map sparsity,
   and compressed formats shrink memory traffic (refs [62]–[64]);
2. structured sparsity removes the non-deterministic-access penalty and
   helps systolic arrays too (ref [65]);
3. submanifold convolutions let event CNNs compute only at active sites
   and update asynchronously per event (ref [59]).
"""

import numpy as np
import pytest

from repro.analysis import ascii_table
from repro.cnn import AsyncSparseConv2d, dense_conv_macs
from repro.hw import (
    ConvLayerWorkload,
    SystolicArray,
    ZeroSkipAccelerator,
    compression_ratio,
)

from conftest import emit


def test_zeroskip_savings_vs_sparsity(benchmark):
    accel = ZeroSkipAccelerator(num_macs=128)
    systolic = SystolicArray(rows=16, cols=16)
    rows = []
    energies = []
    for sparsity in (0.0, 0.3, 0.6, 0.9):
        layer = ConvLayerWorkload(16, 32, 3, 32, 32, activation_sparsity=sparsity)
        zs = accel.run_layer(layer)
        sa = systolic.run_layer(layer)
        energies.append(zs.energy_pj)
        rows.append(
            (
                f"{sparsity:.1f}",
                f"{zs.energy_pj:.3e}",
                f"{sa.energy_pj:.3e}",
                f"{zs.macs/1e6:.2f}M",
                f"{sa.macs/1e6:.2f}M",
            )
        )
    emit(
        "ABL-SPARSE: zero-skipping vs systolic energy (pJ) over sparsity",
        ascii_table(
            ["act. sparsity", "zeroskip E", "systolic E", "zs MACs", "sys MACs"], rows
        ),
    )
    # Zero-skipping energy falls monotonically with sparsity.
    assert all(a > b for a, b in zip(energies, energies[1:]))
    # Systolic MACs never change (no skipping); at 90% sparsity the
    # zero-skipper does a small fraction of the dense work.
    dense = ConvLayerWorkload(16, 32, 3, 32, 32, activation_sparsity=0.9)
    assert accel.run_layer(dense).macs < 0.2 * systolic.run_layer(dense).macs

    benchmark(accel.run_layer, dense)


def test_structured_sparsity_advantage(benchmark):
    layer = ConvLayerWorkload(
        16, 32, 3, 32, 32, activation_sparsity=0.7, weight_sparsity=0.5
    )
    unstructured = ZeroSkipAccelerator(skip_weights=True, structured=False)
    structured = ZeroSkipAccelerator(skip_weights=True, structured=True)
    r_u = unstructured.run_layer(layer)
    r_s = benchmark(structured.run_layer, layer)
    emit(
        "ABL-SPARSE: structured vs unstructured sparsity (ref [65])",
        ascii_table(
            ["variant", "latency us", "energy pJ", "control pJ"],
            [
                ("unstructured", f"{r_u.latency_us:.2f}", f"{r_u.energy_pj:.3e}", f"{r_u.breakdown['control']:.3e}"),
                ("structured", f"{r_s.latency_us:.2f}", f"{r_s.energy_pj:.3e}", f"{r_s.breakdown['control']:.3e}"),
            ],
        ),
    )
    assert r_s.latency_us < r_u.latency_us
    assert r_s.breakdown["control"] == 0.0


def test_compressed_feature_map_traffic(benchmark):
    """Fig. 2 centre inset: compressed feature-map storage."""
    rng = np.random.default_rng(0)
    rows = []
    for sparsity in (0.0, 0.5, 0.9, 0.99):
        fmap = rng.standard_normal(4096) * (rng.random(4096) >= sparsity)
        rows.append(
            (
                f"{sparsity:.2f}",
                f"{compression_ratio(fmap, 'nullhop'):.2f}x",
                f"{compression_ratio(fmap, 'rle'):.2f}x",
            )
        )
    emit(
        "ABL-SPARSE: feature-map compression ratio vs sparsity",
        ascii_table(["sparsity", "nullhop", "rle"], rows),
    )
    very_sparse = rng.standard_normal(4096) * (rng.random(4096) >= 0.99)
    assert compression_ratio(very_sparse, "nullhop") > 10
    benchmark(compression_ratio, very_sparse, "nullhop")


def test_submanifold_async_updates(benchmark):
    """Per-event asynchronous sparse convolution (ref [59])."""
    rng = np.random.default_rng(1)
    weight = rng.standard_normal((8, 2, 3, 3))
    layer = AsyncSparseConv2d(weight)
    x = rng.standard_normal((2, 64, 64)) * (rng.random((64, 64)) < 0.05)[None]
    full = layer.set_input(x)

    # One event toggles one pixel: incremental cost vs full recompute.
    inc = layer.update_pixel(32, 32, np.array([1.0, -0.5]))
    dense = dense_conv_macs(2, 8, 3, 64, 64)
    emit(
        "ABL-SPARSE: submanifold convolution work (MACs)",
        ascii_table(
            ["mode", "MACs", "vs dense"],
            [
                ("dense (every site)", dense, "1.0x"),
                ("submanifold batch", full.macs, f"{full.macs/dense:.4f}x"),
                ("async per-event", inc.macs, f"{inc.macs/dense:.6f}x"),
            ],
        ),
    )
    assert full.macs < 0.15 * dense  # only active sites computed
    assert inc.macs < 0.01 * full.macs  # per-event update is local
    # Correctness of the async path against the oracle.
    np.testing.assert_allclose(layer.output, layer.dense_reference(), atol=1e-12)

    benchmark(layer.update_pixel, 20, 20, np.array([0.5, 0.5]))
