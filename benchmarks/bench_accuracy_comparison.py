"""ABL-ACC — accuracy and operation-count comparison across paradigms.

Two claims from the paper's discussion:

1. "SNNs have been observed to consistently exhibit a degraded
   performance relative to CNNs when applied to a variety of
   event-camera benchmarks" [77] — tested on the *spatial* shapes task
   (where frames lose nothing), while on the temporal gestures task the
   ordering flips (Section V's counter-argument);
2. event-GNNs are competitive "while remarkably requiring orders of
   magnitude fewer neural network calculations" [69], [70] — a scaling
   property: CNN operations grow with the pixel count, GNN operations
   grow with the event count, so the advantage appears at high
   resolution.
"""

import numpy as np
import pytest

from repro.analysis import ascii_table
from repro.core import CNNPipeline, GNNPipeline, SNNPipeline
from repro.datasets import make_shapes_dataset, train_test_split
from repro.events import Resolution
from repro.gnn import GraphBuildConfig
from repro.hw import ConvLayerWorkload

from conftest import emit


@pytest.fixture(scope="module")
def shapes_split():
    ds = make_shapes_dataset(
        num_per_class=8, resolution=Resolution(24, 24), duration_us=40_000, seed=3
    )
    return train_test_split(ds, 0.3, np.random.default_rng(3))


def test_spatial_task_accuracies(shapes_split, benchmark):
    """On spatial tasks the CNN is competitive; measured head-to-head."""
    train, test = shapes_split
    pipelines = {
        "SNN": SNNPipeline(num_steps=12, pool=3, hidden=24, epochs=12),
        "CNN": CNNPipeline(base_width=6, epochs=12),
        "GNN": GNNPipeline(
            config=GraphBuildConfig(
                radius=4.0, time_scale_us=5000.0, max_events=150, max_degree=8,
                include_position=True,
            ),
            hidden=12,
            epochs=14,
        ),
    }
    rows = []
    accs = {}
    for name, pipe in pipelines.items():
        pipe.fit(train)
        metrics = pipe.measure(test)
        accs[name] = metrics.accuracy
        rows.append(
            (name, f"{metrics.accuracy:.2f}", f"{metrics.num_operations:.3g}")
        )
    emit(
        "ABL-ACC: moving-shapes (spatial) task",
        ascii_table(["paradigm", "accuracy", "ops/classification"], rows),
    )
    chance = 1.0 / 3.0
    for name, acc in accs.items():
        assert acc > chance + 0.15, f"{name} must beat chance clearly"
    # The ref [77] observation on spatial tasks: CNN >= SNN.
    assert accs["CNN"] >= accs["SNN"] - 0.10

    benchmark(pipelines["CNN"].predict, test[0].stream)


def test_ops_scaling_cnn_vs_gnn(benchmark):
    """The resolution sweep behind the 'orders fewer operations' claim.

    A fixed number of events (the scene's information content) is spread
    over growing sensor resolutions.  Dense CNN MACs grow with the pixel
    count; GNN operations depend only on events and edges.
    """
    from repro.gnn import EventGNNClassifier, GraphBuildConfig, build_event_graph
    from repro.events import EventStream

    rng = np.random.default_rng(0)
    num_events = 400
    model = EventGNNClassifier(3, hidden=12, in_features=2)
    cfg = GraphBuildConfig(radius=4.0, time_scale_us=3000.0, max_events=400, max_degree=10)

    rows = []
    ratios = {}
    for width in (32, 128, 512):
        res = Resolution(width, width)
        t = np.cumsum(rng.integers(10, 200, num_events))
        stream = EventStream.from_arrays(
            t,
            rng.integers(0, width, num_events),
            rng.integers(0, width, num_events),
            rng.choice([-1, 1], num_events),
            res,
        )
        graph = build_event_graph(stream, cfg)
        gnn_ops = model.operation_count(graph)
        # Dense two-layer CNN over the full frame at this resolution.
        cnn_ops = (
            ConvLayerWorkload(2, 8, 3, width, width).dense_macs
            + ConvLayerWorkload(8, 16, 3, width // 2, width // 2).dense_macs
        )
        ratios[width] = cnn_ops / gnn_ops
        rows.append(
            (f"{width}x{width}", f"{cnn_ops:.3g}", f"{gnn_ops:.3g}", f"{ratios[width]:.1f}x")
        )
    emit(
        "ABL-ACC: dense-CNN vs event-GNN operations, fixed event budget",
        ascii_table(["resolution", "CNN MACs", "GNN ops", "CNN/GNN"], rows),
    )
    # The crossover: at HD-scale resolutions the GNN needs orders of
    # magnitude fewer operations (the Section IV claim).
    assert ratios[512] > 100 * ratios[32] / 100  # monotone growth
    assert ratios[512] > ratios[128] > ratios[32]
    assert ratios[512] > 50

    benchmark(model.operation_count, graph)


def test_snn_conversion_accuracy_gap(benchmark):
    """Rate-coded conversion trails the source ANN at short time windows
    and closes the gap as T grows (the [77]-style degradation, measured
    through our conversion pipeline)."""
    from repro.cnn import make_mlp
    from repro.nn import Tensor, accuracy
    from repro.snn import convert_relu_mlp

    rng = np.random.default_rng(0)
    x = rng.random((96, 8))
    y = ((x[:, :4].sum(axis=1)) > (x[:, 4:].sum(axis=1))).astype(np.int64)
    model = make_mlp(8, 2, hidden=(16,), rng=rng)
    from repro.nn import Adam, cross_entropy

    opt = Adam(model.parameters(), lr=0.02)
    for _ in range(150):
        opt.zero_grad()
        cross_entropy(model(Tensor(x)), y).backward()
        opt.step()
    ann_acc = accuracy(model(Tensor(x)), y)
    snn = convert_relu_mlp(model, x)

    rows = [("ANN", "-", f"{ann_acc:.3f}")]
    accs = {}
    for steps in (5, 20, 100):
        scores, _ = snn.run(x, steps, np.random.default_rng(1))
        accs[steps] = float(np.mean(scores.argmax(axis=1) == y))
        rows.append((f"SNN T={steps}", steps, f"{accs[steps]:.3f}"))
    emit(
        "ABL-ACC: ANN accuracy vs rate-coded converted SNN",
        ascii_table(["model", "timesteps", "accuracy"], rows),
    )
    assert accs[100] >= accs[5]  # the gap closes with timesteps
    assert accs[100] >= ann_acc - 0.05  # and nearly vanishes at T=100
    assert ann_acc > 0.9

    benchmark(snn.run, x, 20, np.random.default_rng(2))
