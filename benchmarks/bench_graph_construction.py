"""ABL-GRAPH — Section IV: event-graph insertion latency.

"Perhaps most problematic of all is the latency required to incorporate
events into a continuously evolving event-graph (generally based on
tree-search methods [75]) — although algorithmic innovations have
already resulted in a four order of magnitude speed-up [72]."

Sweeps the live-set size (via the event rate) and measures per-event
insertion cost — candidate comparisons and wall-clock time — for the
O(N) naive scan, the k-d-tree baseline and the spatial-hash/causal
scheme.  The shape claim: the hash inserter's per-event cost is flat
while the naive cost grows with the live set, so the speed-up factor
grows without bound (reaching >= 10^3-10^4 at realistic rates).
"""

import time

import numpy as np
import pytest

from repro.analysis import ascii_table
from repro.gnn import HashInserter, KDTreeInserter, NaiveInserter

from conftest import emit


def make_events(n, rate_eps, width=64, seed=0):
    rng = np.random.default_rng(seed)
    mean_dt = max(1, int(1e6 / rate_eps))
    t = np.cumsum(rng.integers(max(1, mean_dt // 2), mean_dt * 2, n))
    return rng.integers(0, width, n), rng.integers(0, width, n), t


def run_inserter(cls, events, window_us=100_000, **kw):
    ins = cls(radius=3.0, time_scale_us=1000.0, window_us=window_us, max_neighbours=12, **kw)
    xs, ys, ts = events
    t0 = time.perf_counter()
    ins.insert_stream(xs, ys, ts)
    wall = time.perf_counter() - t0
    return ins.stats, wall


@pytest.mark.parametrize("rate_eps", [2_000, 20_000, 100_000])
def test_insertion_cost_sweep(rate_eps, benchmark):
    events = benchmark.pedantic(make_events, args=(1200, rate_eps), rounds=1, iterations=1)
    rows = []
    stats = {}
    for name, cls, kw in (
        ("naive", NaiveInserter, {}),
        ("kdtree", KDTreeInserter, {"rebuild_every": 64}),
        ("hash", HashInserter, {}),
    ):
        s, wall = run_inserter(cls, events, **kw)
        stats[name] = (s, wall)
        rows.append(
            (
                name,
                f"{s.candidates_per_event:.1f}",
                f"{wall / s.events_inserted * 1e6:.2f}",
                s.edges_created,
            )
        )
    emit(
        f"ABL-GRAPH: insertion cost at {rate_eps/1000:.0f} kEPS",
        ascii_table(["algorithm", "candidates/event", "us/event", "edges"], rows),
    )
    # All algorithms build the same graph.
    assert stats["naive"][0].edges_created == stats["hash"][0].edges_created
    assert stats["naive"][0].edges_created == stats["kdtree"][0].edges_created
    # Hash examines fewer candidates than the naive scan at all rates.
    assert (
        stats["hash"][0].candidates_per_event
        <= stats["naive"][0].candidates_per_event
    )


def test_speedup_grows_with_sensor_area(benchmark):
    """The headline: naive/hash cost ratio grows with the sensor area.

    At a fixed per-pixel activity the naive scan examines the whole live
    set (proportional to the pixel count), while the spatial-hash lookup
    only examines the 9 neighbouring cells (local density — constant).
    Hash cost is measured; the naive steady-state cost equals the live
    set, rate x window, validated against an actual naive run at the
    small width.
    """
    per_pixel_hz = 50.0
    window_us = 20_000
    ratios = {}
    hash_costs = {}
    for width in (32, 128):
        rate = per_pixel_hz * width * width
        events = make_events(1500, rate, width=width, seed=1)
        s_hash, _ = run_inserter(HashInserter, events, window_us=window_us)
        hash_costs[width] = s_hash.candidates_per_event
        naive_live_set = rate * window_us * 1e-6  # steady-state candidates
        ratios[width] = naive_live_set / max(s_hash.candidates_per_event, 0.01)
    emit(
        "ABL-GRAPH: naive/hash cost ratio vs sensor width (50 Hz/pixel)",
        "\n".join(f"{w:>5} px: {v:10.1f}x" for w, v in ratios.items()),
    )
    # Validate the analytic naive cost at the small width (the measured
    # mean sits below steady state during the ramp-up, hence the band).
    small = make_events(1500, per_pixel_hz * 32 * 32, width=32, seed=1)
    s_naive, _ = run_inserter(NaiveInserter, small, window_us=window_us)
    assert 0.4 < s_naive.candidates_per_event / (per_pixel_hz * 32 * 32 * window_us * 1e-6) < 2.5
    # The speed-up scales with the pixel count: 16x more pixels -> ~16x ratio.
    assert ratios[128] > 5 * ratios[32]
    assert ratios[128] > 100

    # Extrapolated HD-sensor regime (the ref [72] '4 orders' claim):
    # a 1 Mpx sensor under egomotion sustains ~1e8 EPS, so a 100 ms
    # window holds ~1e7 live events for the naive scan, while the hash
    # cost stays at the measured per-event constant.
    events = make_events(1500, 200_000, seed=2)
    s_hash, _ = run_inserter(HashInserter, events)
    hd_live_set = 1e7
    extrapolated = hd_live_set / max(s_hash.candidates_per_event, 0.01)
    emit(
        "ABL-GRAPH: extrapolated speed-up at HD/egomotion rates",
        f"live set 1e7 events -> naive/hash ~ {extrapolated:.2e}x",
    )
    assert extrapolated >= 1e4  # the four-orders-of-magnitude regime

    # Benchmark the fast path: per-event hash insertion.
    xs, ys, ts = make_events(400, 100_000, seed=3)

    def insert_all():
        ins = HashInserter(radius=3.0, time_scale_us=1000.0, window_us=100_000)
        ins.insert_stream(xs, ys, ts)
        return ins

    benchmark(insert_all)


def test_kdtree_between_naive_and_hash(benchmark):
    """Tree search beats the naive scan but not local hashing (ref [75])."""
    events = benchmark.pedantic(make_events, args=(1500, 100_000), kwargs={"seed": 4}, rounds=1, iterations=1)
    s_naive, _ = run_inserter(NaiveInserter, events)
    s_tree, _ = run_inserter(KDTreeInserter, events, rebuild_every=64)
    s_hash, _ = run_inserter(HashInserter, events)
    assert s_tree.candidates_per_event < s_naive.candidates_per_event
    assert s_hash.candidates_per_event < s_tree.candidates_per_event
