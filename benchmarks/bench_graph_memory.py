"""Dense vs compact event-graph storage at million-event scale.

The memory question behind the compact representation (ROADMAP:
"memory-bounded graph representations for million-event streams"): what
does it cost to *hold* the graph?  The dense :class:`~repro.gnn.
EventGraph` stores float64 positions/features and an int64 edge list —
40 bytes per node plus 16 per edge.  The compact
:class:`~repro.gnn.CompactEventGraph` stores uint16 coordinates, uint32
timestamp offsets, uint-quantized features and a fixed-width uint16
neighbour-delta table — ~28 bytes per node at degree 8 and *zero* bytes
per edge attribute.  This benchmark builds both layouts from the same
stream, checks they carry the identical capped causal edge set, and
reports measured bytes/event plus the quantization accuracy delta on
the gestures task.

Run standalone via ``tools/run_memory_bench.py`` (appends a run record
to ``BENCH_memory.json``, with per-leg subprocess peak-RSS), or under
pytest for the shape assertions:

    PYTHONPATH=src python -m pytest benchmarks/bench_graph_memory.py -s
"""

import time

import numpy as np

from repro.events import EventStream, Resolution
from repro.gnn import GraphBuildConfig
from repro.gnn.models import build_event_graph

DEFAULT_N = 1_000_000
SMOKE_N = 30_000

#: Workload geometry: a mid-size sensor, ~100 keps mean rate (matching
#: ``bench_async_inference``), dense enough for mean degree >~ 4.
WIDTH = HEIGHT = 64
MEAN_DT_US = 10

RADIUS = 4.0
TIME_SCALE_US = 5000.0
MAX_DEGREE = 8
QUANT_BITS = 8

#: The ROADMAP target the full run is gated on: compact must hold at
#: least this many times fewer bytes per event than dense.
MIN_BYTES_RATIO = 4.0


def make_stream(n: int, seed: int = 0) -> EventStream:
    """Random but realistic event stream (uniform spatial, ~100 keps)."""
    rng = np.random.default_rng(seed)
    t = np.cumsum(rng.integers(1, 2 * MEAN_DT_US, n))
    return EventStream.from_arrays(
        t,
        rng.integers(0, WIDTH, n),
        rng.integers(0, HEIGHT, n),
        rng.choice([-1, 1], n),
        Resolution(WIDTH, HEIGHT),
    )


def build_config(n: int, representation: str) -> GraphBuildConfig:
    """The shared graph geometry, at ``n`` events, in one representation."""
    return GraphBuildConfig(
        radius=RADIUS,
        time_scale_us=TIME_SCALE_US,
        max_events=n,
        max_degree=MAX_DEGREE,
        causal=True,
        representation=representation,
        quantization_bits=QUANT_BITS,
    )


def measure_representation(representation: str, n: int, seed: int = 0) -> dict:
    """Build one representation of an ``n``-event stream and measure it.

    This is the unit the runner executes in a *subprocess* per leg, so
    each representation's peak RSS is its own, not the maximum of
    whichever leg ran first.

    Returns:
        A JSON-ready record with storage bytes, bytes/event, graph
        shape and build time.
    """
    stream = make_stream(n, seed=seed)
    config = build_config(n, representation)
    t0 = time.perf_counter()
    graph = build_event_graph(stream, config)
    build_s = time.perf_counter() - t0
    if not graph.is_causal():
        raise AssertionError(f"{representation} graph has non-causal edges")
    if int(graph.in_degrees().max(initial=0)) > MAX_DEGREE:
        raise AssertionError(f"{representation} graph exceeds the in-degree cap")
    return {
        "representation": representation,
        "n_events": n,
        "num_nodes": int(graph.num_nodes),
        "num_edges": int(graph.num_edges),
        "mean_degree": float(graph.mean_degree),
        "storage_bytes": int(graph.nbytes()),
        "bytes_per_event": graph.nbytes() / graph.num_nodes,
        "build_s": build_s,
        "events_per_s": n / build_s,
    }


def bench_graph_memory(n: int, seed: int = 0) -> dict:
    """Both representations on the same stream, plus the edge-set check.

    In-process convenience (the runner's subprocess legs call
    :func:`measure_representation` instead): builds dense and compact
    from identical events, asserts the edge sets are identical (the
    equivalence the compact format is allowed to quantize *around*, but
    never change), and reports the bytes/event ratio.
    """
    stream = make_stream(n, seed=seed)
    dense = build_event_graph(stream, build_config(n, "dense"))
    compact = build_event_graph(stream, build_config(n, "compact"))
    if not np.array_equal(dense.edges, compact.edges):
        raise AssertionError("dense and compact selected different edge sets")
    ratio = dense.nbytes() / compact.nbytes()
    return {
        "n_events": n,
        "num_edges": int(dense.num_edges),
        "mean_degree": float(dense.mean_degree),
        "dense_bytes_per_event": dense.nbytes() / dense.num_nodes,
        "compact_bytes_per_event": compact.nbytes() / compact.num_nodes,
        "bytes_ratio": ratio,
    }


def bench_accuracy_delta(seed: int = 0, epochs: int = 10) -> dict:
    """Accuracy retained under 8-bit quantization, on the gestures task.

    Trains the Table-I GNN on dense graphs, then evaluates the *same
    weights* on dense and on compact-quantized graphs of the same test
    recordings — the deployment scenario (train in float, serve on the
    integer representation).  The record carries both accuracies and
    their delta in points.
    """
    from repro.core.presets import table1_configs, table1_dataset
    from repro.gnn import EventGNNClassifier
    from repro.gnn.models import evaluate_gnn, fit_gnn

    import dataclasses

    train, test = table1_dataset()
    gnn_cfg = table1_configs(seed=seed)["GNN"]
    config = gnn_cfg.graph_config()
    model = EventGNNClassifier(
        train.num_classes,
        hidden=gnn_cfg.hidden,
        in_features=config.num_node_features,
        rng=np.random.default_rng(seed),
    )
    fit_gnn(
        model,
        train,
        config,
        epochs=epochs,
        lr=gnn_cfg.lr,
        rng=np.random.default_rng(seed),
    )
    dense_acc = evaluate_gnn(model, test, config)
    compact_cfg = dataclasses.replace(
        config, representation="compact", quantization_bits=QUANT_BITS
    )
    compact_acc = evaluate_gnn(model, test, compact_cfg)
    return {
        "dense_accuracy": float(dense_acc),
        "compact_accuracy": float(compact_acc),
        "accuracy_delta_points": float((dense_acc - compact_acc) * 100.0),
        "quantization_bits": QUANT_BITS,
        "epochs": epochs,
    }


def format_table(record: dict) -> str:
    """Human-readable summary of one combined record."""
    lines = [
        f"{'stream (events)':<26}{record['n_events']:>14,}",
        f"{'graph edges':<26}{record['num_edges']:>14,}",
        f"{'mean in-degree':<26}{record['mean_degree']:>14.2f}",
        f"{'dense bytes/event':<26}{record['dense_bytes_per_event']:>12.1f} B",
        f"{'compact bytes/event':<26}{record['compact_bytes_per_event']:>12.1f} B",
        f"{'bytes ratio':<26}{record['bytes_ratio']:>11.1f} x",
    ]
    if "dense_peak_rss_bytes" in record:
        lines += [
            f"{'dense peak RSS':<26}{record['dense_peak_rss_bytes']:>12,} B",
            f"{'compact peak RSS':<26}{record['compact_peak_rss_bytes']:>12,} B",
        ]
    if "accuracy_delta_points" in record:
        lines += [
            f"{'dense accuracy':<26}{record['dense_accuracy']:>14.3f}",
            f"{'compact accuracy':<26}{record['compact_accuracy']:>14.3f}",
            f"{'accuracy delta':<26}{record['accuracy_delta_points']:>10.1f} pts",
        ]
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Pytest shape assertions (smoke-size)
# ----------------------------------------------------------------------
def test_bench_shapes():
    record = bench_graph_memory(5_000, seed=0)
    assert record["dense_bytes_per_event"] > record["compact_bytes_per_event"]
    assert record["bytes_ratio"] >= MIN_BYTES_RATIO
    assert record["mean_degree"] > 0


def test_measure_representation_shapes():
    dense = measure_representation("dense", 2_000, seed=0)
    compact = measure_representation("compact", 2_000, seed=0)
    assert dense["num_edges"] == compact["num_edges"]
    assert compact["bytes_per_event"] < dense["bytes_per_event"]
    assert compact["events_per_s"] > 0
