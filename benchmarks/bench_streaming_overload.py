#!/usr/bin/env python
"""Streaming executor overhead benchmark.

The resilience machinery (queueing, shedding, breakers, accounting) must
stay cheap relative to the work it schedules: an executor that burns
milliseconds of real CPU per window could never keep up with the event
camera it protects.  This benchmark streams the seeded burst workload
through the full executor and measures *wall-clock* window throughput
and per-event overhead — the virtual-time service model costs nothing
real, so what remains is pure framework overhead.

Each invocation appends one run record (timestamp, git revision,
workload size, throughput) to ``BENCH_streaming.json`` at the
repository root, so successive PRs can see whether the executor is
holding its overhead budget.

Usage:
    python benchmarks/bench_streaming_overload.py            # full run
    python benchmarks/bench_streaming_overload.py --quick    # CI-sized
    python benchmarks/bench_streaming_overload.py --output /tmp/b.json
"""

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.streaming import (
    BreakerPolicy,
    ServiceModel,
    ShedPolicy,
    StreamingExecutor,
    TransientOutage,
    make_bursty_stream,
    run_overload_demo,
    validate_report,
)

DEFAULT_WINDOWS = 2000
QUICK_WINDOWS = 200


def _count_classifier(stream):
    return int(len(stream) % 4)


def bench_overloaded_run(num_windows: int, seed: int = 0) -> dict:
    """Time one overloaded streaming run, return throughput numbers."""
    window_us = 10_000
    stream = make_bursty_stream(
        num_windows=num_windows,
        window_us=window_us,
        base_events_per_window=200,
        burst_factor=10.0,
        burst_windows=(num_windows // 3, num_windows // 2),
        seed=seed,
    )
    primary = TransientOutage(_count_classifier, fail_from_call=30, fail_calls=9)
    executor = StreamingExecutor(
        ("flaky_primary", primary),
        window_us=window_us,
        fallbacks=[("fallback", _count_classifier)],
        service=ServiceModel(base_us=1000.0, per_event_us=45.0),
        queue_capacity=12,
        shed_policy=ShedPolicy(high_watermark=8, low_watermark=2),
        breaker_policy=BreakerPolicy(),
        seed=seed,
    )
    t0 = time.perf_counter()
    report = executor.run(stream, load_factor=1.0)
    elapsed = time.perf_counter() - t0
    problems = validate_report(report)
    if problems:
        raise AssertionError(f"accounting broken: {problems}")
    return {
        "num_windows": num_windows,
        "num_events": report.offered_events,
        "elapsed_s": elapsed,
        "windows_per_s": num_windows / elapsed,
        "events_per_s": report.offered_events / elapsed,
        "overhead_us_per_window": 1e6 * elapsed / num_windows,
        "delivered_fraction": report.delivered_fraction,
        "shed_event_fraction": report.shed_event_fraction,
        "tiers_engaged": report.tiers_engaged,
        "breaker_transitions": len(report.breaker_transitions),
    }


def bench_all(quick: bool, seed: int = 0) -> dict:
    num_windows = QUICK_WINDOWS if quick else DEFAULT_WINDOWS
    results = {"overloaded_run": bench_overloaded_run(num_windows, seed)}
    # The acceptance demo doubles as a correctness canary here.
    t0 = time.perf_counter()
    report, _ = run_overload_demo(seed=seed)
    results["demo"] = {
        "elapsed_s": time.perf_counter() - t0,
        "delivered_fraction": report.delivered_fraction,
        "tiers_engaged": report.tiers_engaged,
    }
    return results


def git_revision() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help=f"run at {QUICK_WINDOWS} windows (CI mode)"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_streaming.json",
        help="trajectory file to append the run record to",
    )
    args = parser.parse_args(argv)

    results = bench_all(args.quick, args.seed)
    run = results["overloaded_run"]
    print(
        f"streamed {run['num_windows']} windows ({run['num_events']} events) "
        f"in {run['elapsed_s']:.3f}s: {run['windows_per_s']:.0f} windows/s, "
        f"{run['overhead_us_per_window']:.0f} us overhead/window"
    )
    print(
        f"  delivered {run['delivered_fraction']:.3f}, "
        f"shed {run['shed_event_fraction']:.3f} of events, "
        f"tiers {run['tiers_engaged']}"
    )

    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "git_rev": git_revision(),
        "quick": args.quick,
        "results": results,
    }
    trajectory = {"runs": []}
    if args.output.exists():
        try:
            trajectory = json.loads(args.output.read_text())
        except ValueError:
            pass
    trajectory.setdefault("runs", []).append(record)
    args.output.write_text(json.dumps(trajectory, indent=2) + "\n")
    print(f"appended run record to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
