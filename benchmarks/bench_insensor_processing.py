"""ABL-3D — Section I: the 3-D-integrated smart imager.

"A particularly exciting forward-looking goal is a multi-layer
3D-integrated smart imager chip whereby the event-camera is tightly
integrated with an AI co-processor that can operate very effectively
near the data-generating pixels."

Measured: the I/O energy of streaming every event off-chip over the AER
link versus consuming events locally through the 3-D stack and emitting
only decisions — as a function of the sensor's event rate (which Fig. 1
shows climbing into the GEPS range).
"""

import numpy as np
import pytest

from repro.analysis import ascii_table
from repro.camera import CameraConfig, EventCamera, TexturePan
from repro.events import AERCodec, Resolution
from repro.hw import (
    GNNAccelerator,
    GNNWorkload,
    IOEnergyParams,
    SmartImagerModel,
)

from conftest import emit


def test_io_saving_vs_event_rate(benchmark):
    model = SmartImagerModel()
    duration_us = 100_000
    rows = []
    savings = {}
    for rate_meps in (0.1, 1.0, 100.0, 1000.0):
        num_events = int(rate_meps * 1e6 * duration_us * 1e-6)
        stream_cost = model.stream_out(num_events, duration_us)
        local_cost = model.in_sensor(num_events, duration_us, compute_energy_pj=0.0)
        savings[rate_meps] = model.io_saving(num_events, duration_us)
        rows.append(
            (
                f"{rate_meps:g} MEPS",
                f"{stream_cost.energy_pj:.3e}",
                f"{local_cost.energy_pj:.3e}",
                f"{savings[rate_meps]:.1f}x",
            )
        )
    emit(
        "ABL-3D: off-chip streaming vs in-sensor processing (I/O energy, pJ)",
        ascii_table(["event rate", "stream out", "in-sensor", "saving"], rows),
    )
    # Saving grows with rate and approaches the off-chip/TSV energy ratio.
    assert savings[1000.0] > savings[0.1]
    ratio = model.io.offchip_pj_per_bit / model.io.tsv_pj_per_bit
    assert savings[1000.0] == pytest.approx(ratio, rel=0.02)
    assert savings[1000.0] > 10

    benchmark(model.io_saving, 10_000_000, duration_us)


def test_end_to_end_with_real_stream_and_compute(benchmark):
    """Full-system comparison on a simulated egomotion stream, including
    the co-processor's compute energy on both sides."""
    res = Resolution(64, 64)
    cam = EventCamera(res, CameraConfig(sample_period_us=1000, seed=0))
    events, _ = cam.record(TexturePan(res, vx_px_per_s=800.0, seed=3), 30_000)
    codec = AERCodec(res)
    link = codec.link_stats(events)

    # The same GNN inference runs remotely (after streaming) or in-sensor.
    accel = GNNAccelerator(features_in_dram=False)
    compute = accel.run_graph(
        GNNWorkload(num_nodes=500, num_edges=4000, feature_dim=16)
    ).energy_pj

    imager = SmartImagerModel(event_bits=link.bits_per_word)
    streamed = imager.stream_out(len(events), 30_000, compute_energy_pj=compute)
    local = imager.in_sensor(len(events), 30_000, compute_energy_pj=compute)
    emit(
        "ABL-3D: full system on a 64x64 egomotion stream",
        ascii_table(
            ["architecture", "I/O pJ", "compute pJ", "total pJ"],
            [
                (
                    "2-chip (stream out)",
                    f"{streamed.breakdown['io_offchip']:.3e}",
                    f"{compute:.3e}",
                    f"{streamed.energy_pj:.3e}",
                ),
                (
                    "3-D smart imager",
                    f"{local.breakdown['io_tsv'] + local.breakdown['io_offchip']:.3e}",
                    f"{compute:.3e}",
                    f"{local.energy_pj:.3e}",
                ),
            ],
        ),
    )
    assert local.energy_pj < streamed.energy_pj
    # At this event rate the link, not the compute, dominates the
    # streamed architecture — the motivation for in-sensor processing.
    assert streamed.breakdown["io_offchip"] > compute

    benchmark(imager.in_sensor, len(events), 30_000, compute)


def test_io_params_ordering(benchmark):
    params = benchmark.pedantic(IOEnergyParams, rounds=1, iterations=1)
    assert params.offchip_pj_per_bit > params.tsv_pj_per_bit > params.onchip_pj_per_bit
