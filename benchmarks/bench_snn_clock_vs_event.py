"""ABL-SNNHW — Section III-A hardware claims about digital SNN cores.

Three claims are regenerated:

1. "memory accesses dominate energy consumption as high as 99%" [42];
2. event-driven neuron-state updates "require more memory accesses,
   higher complexity calculations" and lose to clocked updates except at
   very low activity [44], [42];
3. as a corollary (Section V), a zero-skipping digital CNN accelerator
   can be more energy-efficient than a digital SNN on the same task
   shape [42].
"""

import numpy as np
import pytest

from repro.analysis import ascii_table
from repro.hw import (
    ConvLayerWorkload,
    NeuromorphicCore,
    SNNLayerWorkload,
    ZeroSkipAccelerator,
)
from repro.snn import LIFParams, clock_driven_sim, event_driven_sim

from conftest import emit


def test_memory_dominates_energy(benchmark):
    core = NeuromorphicCore()
    workload = SNNLayerWorkload(num_neurons=256, num_inputs=256, num_steps=100, input_activity=0.05)
    report = benchmark(core.run_layer, workload, "clock")
    emit(
        "ABL-SNNHW: energy breakdown of a digital SNN core (clocked)",
        "\n".join(f"{k:>12}: {v/report.energy_pj:6.1%}" for k, v in report.breakdown.items()),
    )
    assert report.memory_energy_fraction > 0.95  # "as high as 99%"


def test_clock_vs_event_crossover(benchmark):
    """Sweep input activity: event-driven wins only at very low activity."""
    core = benchmark.pedantic(NeuromorphicCore, rounds=1, iterations=1)
    rows = []
    crossover_seen = {"event_wins": False, "clock_wins": False}
    for activity in (1e-4, 1e-3, 1e-2, 1e-1, 0.5):
        w = SNNLayerWorkload(128, 128, 200, activity)
        e_clock = core.run_layer(w, "clock").energy_pj
        e_event = core.run_layer(w, "event").energy_pj
        winner = "event" if e_event < e_clock else "clock"
        crossover_seen[f"{winner}_wins"] = True
        rows.append((f"{activity:.0e}", f"{e_clock:.3e}", f"{e_event:.3e}", winner))
    emit(
        "ABL-SNNHW: clocked vs event-driven state updates (energy, pJ)",
        ascii_table(["input activity", "clock", "event-driven", "winner"], rows),
    )
    assert crossover_seen["event_wins"] and crossover_seen["clock_wins"]
    # At the sparse end event-driven wins, at the dense end clocked wins.
    sparse = SNNLayerWorkload(128, 128, 200, 1e-4)
    dense = SNNLayerWorkload(128, 128, 200, 0.5)
    assert core.run_layer(sparse, "event").energy_pj < core.run_layer(sparse, "clock").energy_pj
    assert core.run_layer(dense, "clock").energy_pj < core.run_layer(dense, "event").energy_pj


def test_simulated_counters_confirm_crossover(benchmark):
    """Same crossover from actual counted simulations (not the model)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rng = np.random.default_rng(0)
    weights = rng.normal(0, 0.3, (64, 64))
    core = NeuromorphicCore()
    results = {}
    for label, density in (("sparse", 0.002), ("dense", 0.8)):
        spikes = (rng.random((300, 64)) < density).astype(np.float64)
        c_clock = clock_driven_sim(weights, spikes, LIFParams()).counters
        c_event = event_driven_sim(weights, spikes, LIFParams()).counters
        results[label] = (
            core.cost_from_counters(c_clock).energy_pj,
            core.cost_from_counters(c_event).energy_pj,
        )
    emit(
        "ABL-SNNHW: counted-simulation energies (pJ)",
        ascii_table(
            ["regime", "clocked", "event-driven"],
            [(k, f"{v[0]:.3e}", f"{v[1]:.3e}") for k, v in results.items()],
        ),
    )
    assert results["sparse"][1] < results["sparse"][0]
    assert results["dense"][0] < results["dense"][1]


def test_digital_cnn_can_beat_digital_snn(benchmark):
    """Section V: 'digital CNN hardware implementations are more
    efficient than digital SNNs' in some regimes [42].

    Matched task shape: one layer mapping 256 inputs -> 64 outputs.  The
    CNN processes one moderately sparse frame; the SNN processes the
    equivalent spike stream over 50 timesteps at 10% activity (a typical
    rate-coded operating point, where every input spike re-triggers
    synaptic reads).
    """
    cnn_layer = ConvLayerWorkload(
        c_in=1, c_out=64, kernel=1, out_h=16, out_w=16, activation_sparsity=0.5
    )
    cnn = ZeroSkipAccelerator(num_macs=64).run_layer(cnn_layer)
    snn_workload = SNNLayerWorkload(
        num_neurons=64, num_inputs=256, num_steps=50, input_activity=0.1
    )
    snn = benchmark(NeuromorphicCore().run_layer, snn_workload, "clock")
    emit(
        "ABL-SNNHW: matched-shape digital CNN vs digital SNN",
        ascii_table(
            ["system", "energy pJ", "memory accesses"],
            [
                ("zero-skip CNN (1 frame)", f"{cnn.energy_pj:.3e}", cnn.memory_accesses),
                ("SNN core (50 steps, 10% act.)", f"{snn.energy_pj:.3e}", snn.memory_accesses),
            ],
        ),
    )
    assert cnn.energy_pj < snn.energy_pj


def test_distributed_core_tradeoff(benchmark):
    """Section III-A, ref [43]: 'each neuron and synapse … compiled onto a
    dedicated region of the chip … allows computing elements and memory to
    be brought as close together as possible — ultimately reducing the
    cost of frequent memory access although this typically degrades
    neuron density and results in a bigger silicon area.'"""
    from repro.hw import default_hierarchy

    hierarchy = default_hierarchy()
    model_bytes = 4 * 1024 * 1024  # 4 MB of synaptic state
    rows = []
    results = {}
    for cores in (1, 64, 1024, 16_384):
        r = hierarchy.distributed_core_tradeoff(model_bytes, cores)
        results[cores] = r
        rows.append(
            (cores, r["level"], f"{r['energy_pj']:.3e}", f"{r['area_mm2']:.2f}")
        )
    emit(
        "ABL-SNNHW: distributed-core trade-off (4 MB synaptic state)",
        ascii_table(["cores", "memory level", "access energy pJ", "area mm2"], rows),
    )
    # Distribution cuts access energy but costs area — both directions.
    assert results[16_384]["energy_pj"] < results[1]["energy_pj"] / 2
    assert results[16_384]["area_mm2"] > 2 * results[1]["area_mm2"]

    benchmark(hierarchy.distributed_core_tradeoff, model_bytes, 1024)


def test_eprop_memory_vs_bptt(benchmark):
    """Section III-A: surrogate-gradient BPTT is memory-prohibitive
    on-chip; eligibility traces are constant in sequence length."""
    from repro.snn import bptt_memory_words, eprop_memory_words

    benchmark.pedantic(bptt_memory_words, args=(256, 512, 100), rounds=1, iterations=1)

    rows = []
    for steps in (10, 100, 1000, 10_000):
        rows.append(
            (steps, bptt_memory_words(256, 512, steps), eprop_memory_words(256, 512))
        )
    emit(
        "ABL-SNNHW: training-memory words, BPTT vs e-prop",
        ascii_table(["timesteps", "BPTT", "e-prop"], rows),
    )
    assert rows[-1][1] > 50 * rows[-1][2]  # BPTT blows up with T
    assert rows[0][2] == rows[-1][2]  # e-prop constant in T
