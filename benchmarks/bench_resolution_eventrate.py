"""ABL-RES — Section II: high-resolution side effects and mitigations.

"Even though event sensors generate inherently sparse data, high rates
can occur, in particular when the camera undergoes egomotion.  Therefore
the development of mitigation strategies such as in-sensor
down-sampling [21], electronically foveated event-pixels [22] or centre
surround [23] may be required."

A panning texture (egomotion) drives sensors of increasing resolution;
the raw event rate grows with the pixel count, saturating the readout,
and each mitigation strategy is measured for the rate it sheds.
"""

import numpy as np
import pytest

from repro.analysis import ascii_table
from repro.camera import (
    CameraConfig,
    EventCamera,
    Fovea,
    ReadoutParams,
    TexturePan,
    centre_surround_suppression,
    downsample,
    foveate,
    rate_limiter,
    simulate_readout,
)
from repro.events import Resolution

from conftest import emit

DURATION_US = 30_000


def record_pan(width, seed=0):
    res = Resolution(width, width)
    cam = EventCamera(res, CameraConfig(sample_period_us=1000, seed=seed))
    pan = TexturePan(res, vx_px_per_s=800.0, texture_scale_px=4.0, seed=3)
    events, _ = cam.record(pan, DURATION_US)
    return events


def test_rate_scales_with_resolution(benchmark):
    rows = []
    rates = {}
    for width in (16, 32, 64):
        events = record_pan(width)
        rate = events.event_rate()
        rates[width] = rate
        rows.append((f"{width}x{width}", len(events), f"{rate/1e3:.1f} kEPS"))
    emit(
        "ABL-RES: egomotion event rate vs sensor resolution",
        ascii_table(["resolution", "events/30ms", "rate"], rows),
    )
    # Rate grows superlinearly in width (≈ with pixel count).
    assert rates[32] > 2.5 * rates[16]
    assert rates[64] > 2.5 * rates[32]

    benchmark(record_pan, 32)


def test_readout_saturation(benchmark):
    """An undersized readout drops events and adds latency at high res."""
    events = record_pan(64)
    result = benchmark(
        simulate_readout, events, ReadoutParams(throughput_eps=2e5, fifo_depth=256)
    )
    emit(
        "ABL-RES: saturated readout at 64x64 under egomotion",
        ascii_table(
            ["quantity", "value"],
            [
                ("input rate", f"{events.event_rate()/1e3:.1f} kEPS"),
                ("capacity", "200 kEPS"),
                ("dropped", f"{result.drop_fraction:.1%}"),
                ("mean queue latency", f"{result.mean_latency_us:.1f} us"),
            ],
        ),
    )
    assert result.drop_fraction > 0.05 or result.mean_latency_us > 100


def test_mitigation_strategies(benchmark):
    """All three Section-II mitigations shed rate, with different trades."""
    events = record_pan(64, seed=1)
    base = len(events)

    down = downsample(events, 4, refractory_us=1000)
    fov = foveate(events, Fovea(cx=32, cy=32, radius=12, peripheral_factor=4))
    cs = centre_surround_suppression(
        events, surround_radius=2, window_us=10_000, activity_threshold=0.5
    )
    limited = rate_limiter(events, max_rate_eps=events.event_rate() / 4)

    rows = [
        ("raw", base, "1.00"),
        ("in-sensor downsample x4 [21]", len(down), f"{len(down)/base:.2f}"),
        ("foveation (r=12, x4 periphery) [22]", len(fov), f"{len(fov)/base:.2f}"),
        ("centre-surround suppression [23]", len(cs), f"{len(cs)/base:.2f}"),
        ("event-rate controller [10]", len(limited), f"{len(limited)/base:.2f}"),
    ]
    emit(
        "ABL-RES: mitigation strategies at 64x64 egomotion",
        ascii_table(["strategy", "events", "fraction kept"], rows),
    )
    for name, count, _frac in rows[1:]:
        assert count < base, f"{name} must reduce the event count"
    # Downsampling by 4 sheds at least half the stream on textured input.
    assert len(down) < 0.5 * base
    # Centre-surround suppresses full-field egomotion aggressively.
    assert len(cs) < 0.7 * base
    # Foveation keeps the fovea intact: all foveal events survive (the
    # count can only grow, since peripheral events just outside the rim
    # may snap to super-pixel centres that land inside the radius).
    inside = np.hypot(events.x - 32, events.y - 32) <= 12
    fov_inside = np.hypot(fov.x - 32, fov.y - 32) <= 12
    assert fov_inside.sum() >= inside.sum()

    benchmark(downsample, events, 4, 1000)
