"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md's experiment index) and *prints* the rows/series it reproduces
— run with ``pytest benchmarks/ --benchmark-only -s`` to see them.
Assertions encode the *shape* each artefact must have (who wins, rough
factors, crossovers), so the harness doubles as a regression suite for
the reproduction's claims.
"""

import sys
from pathlib import Path

# Allow `from benchmarks._workloads import ...` style helpers if needed.
sys.path.insert(0, str(Path(__file__).parent))


def emit(title: str, body: str) -> None:
    """Print a labelled benchmark artefact (visible with -s)."""
    bar = "=" * max(len(title), 20)
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
