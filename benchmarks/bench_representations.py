"""ABL-REPR — Section III-B: the dense-frame representation family.

"The most simple solution is simply to count the number of generated
events … However, this effectively discards the fine microsecond level
temporal resolution … Other aggregation methods aim to preserve some of
this information by making use of time surfaces [56] … or voxel grids
[54]."

Measured: the same CNN trained on the same gesture recordings under
each representation.  Count frames cannot separate the CW/CCW rotation
classes; time surfaces recover most of the direction information and
voxel grids recover it fully — the quantitative content of the
Section III-B survey.
"""

import numpy as np
import pytest

from repro.analysis import ascii_table
from repro.core import CNNPipeline
from repro.datasets import make_gestures_dataset, train_test_split
from repro.events import Resolution

from conftest import emit


@pytest.fixture(scope="module")
def gesture_split():
    ds = make_gestures_dataset(
        num_per_class=14,
        resolution=Resolution(24, 24),
        duration_us=250_000,
        revs_range=(2.0, 4.0),
        seed=1,
    )
    return train_test_split(ds, 0.3, np.random.default_rng(1))


def test_representation_ablation(gesture_split, benchmark):
    train, test = gesture_split
    results = {}
    rows = []
    for rep in ("two_channel", "time_surface", "voxel"):
        pipe = CNNPipeline(base_width=8, representation=rep, epochs=25)
        pipe.fit(train)
        m = pipe.measure(test, temporal_labels=(0, 1))
        results[rep] = m
        rows.append(
            (
                rep,
                "yes" if pipe.representation.preserves_timing else "no",
                f"{m.accuracy:.2f}",
                f"{m.temporal_info:.2f}",
                f"{m.data_sparsity:.2f}",
            )
        )
    emit(
        "ABL-REPR: one CNN, three Section III-B representations",
        ascii_table(
            ["representation", "keeps timing", "accuracy", "CW/CCW acc", "input sparsity"],
            rows,
        ),
    )

    # The Section III-B ordering: counts discard direction, surfaces
    # partially recover it, voxel grids recover it (near-)fully.
    assert results["two_channel"].temporal_info <= 0.7
    assert results["time_surface"].temporal_info > results["two_channel"].temporal_info
    assert results["voxel"].temporal_info >= results["time_surface"].temporal_info
    assert results["voxel"].temporal_info >= 0.85
    # Overall accuracy follows the same ordering on this temporal task.
    assert results["voxel"].accuracy > results["two_channel"].accuracy

    # Benchmark the frame construction of the richest representation.
    stream = test[0].stream
    pipe = CNNPipeline(representation="voxel")
    benchmark(pipe._encode, stream)


def test_count_representation_cheapest(gesture_split, benchmark):
    """The flip side: richer representations cost more input channels
    (and thus CNN compute), which is why counting remains the default."""
    train, test = gesture_split
    ops = {}
    for rep in ("two_channel", "voxel", "tore"):
        pipe = CNNPipeline(base_width=8, representation=rep, epochs=2)
        pipe.fit(train)
        ops[rep] = pipe.measure(test).num_operations
    emit(
        "ABL-REPR: operations per classification by representation",
        "\n".join(f"{k:>12}: {v:.3g}" for k, v in ops.items()),
    )
    assert ops["two_channel"] < ops["voxel"]
    assert ops["two_channel"] < ops["tore"]

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
