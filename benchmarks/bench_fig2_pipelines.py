"""FIG2 — Fig. 2: the three processing pipelines, panel by panel.

Left (SNN): LIF membrane dynamics and the surrogate-gradient family.
Centre (CNN): two-channel dense-frame construction, feature-map sparsity
and compressed feature-map storage.
Right (GNN): event-graph construction from the event point cloud.
"""

import numpy as np

from repro.analysis import ascii_series, ascii_table
from repro.camera import CameraConfig, EventCamera, MovingDisk
from repro.cnn import two_channel_frame
from repro.events import Resolution
from repro.gnn import EventGraph, make_causal, radius_graph_kdtree
from repro.hw import compression_ratio
from repro.snn import (
    ATan,
    FastSigmoid,
    LIFParams,
    LIFState,
    SigmoidDerivative,
    Triangle,
    lif_step_np,
)

from conftest import emit

RES = Resolution(32, 32)


def record_disk(duration_us=40_000, seed=0):
    cam = EventCamera(RES, CameraConfig(sample_period_us=500, seed=seed))
    disk = MovingDisk(RES, radius=4.0, x0=6.0, y0=16.0, vx_px_per_s=500.0)
    events, _ = cam.record(disk, duration_us)
    return events


def test_fig2_left_lif_dynamics(benchmark):
    """LIF membrane trace: integrate, fire, reset — the RC circuit panel."""
    params = LIFParams(tau_us=10_000.0, threshold=1.0)

    def run():
        state = LIFState.zeros((1,), params)
        trace, spikes = [], []
        for t in range(60):
            current = np.array([0.25 if 10 <= t < 50 else 0.0])
            s = lif_step_np(state, current, params, 1000.0)
            trace.append(float(state.v[0]))
            spikes.append(float(s[0]))
        return np.array(trace), np.array(spikes)

    trace, spikes = benchmark(run)
    emit(
        "FIG2-SNN: LIF membrane potential under a current step",
        ascii_series(np.arange(0, 60, 6), trace[::6], label="membrane v(t)"),
    )
    assert spikes.sum() >= 2  # fires repeatedly under drive
    assert trace[-1] < 0.1  # decays back to rest after the step
    # Surrogate family: all peak at threshold.
    for sg in (FastSigmoid(), ATan(), Triangle(), SigmoidDerivative()):
        v = np.linspace(-1, 1, 201)
        assert sg.derivative(v).argmax() == 100


def test_fig2_centre_dense_frame(benchmark):
    """Two-channel frame from events + its sparsity + compressed size."""
    events = record_disk()
    frame = benchmark(two_channel_frame, events)
    zero_frac = float(np.mean(frame == 0))
    ratios = {
        scheme: compression_ratio(frame, scheme) for scheme in ("nullhop", "rle")
    }
    emit(
        "FIG2-CNN: two-channel dense frame",
        ascii_table(
            ["quantity", "value"],
            [
                ("events aggregated", len(events)),
                ("frame shape", frame.shape),
                ("zero fraction", f"{zero_frac:.3f}"),
                ("ON/OFF balance", f"{frame[0].sum():.0f}/{frame[1].sum():.0f}"),
                ("nullhop compression", f"{ratios['nullhop']:.2f}x"),
                ("rle compression", f"{ratios['rle']:.2f}x"),
            ],
        ),
    )
    assert frame.shape == (2, 32, 32)
    assert zero_frac > 0.4  # event frames are sparse
    assert ratios["nullhop"] > 1.5  # compression pays off on sparse maps
    assert frame[0].sum() > 0 and frame[1].sum() > 0  # both polarities present


def test_fig2_right_event_graph(benchmark):
    """Directed causal graph built from the event point cloud."""
    events = record_disk()
    sub = events[:: max(1, len(events) // 300)]
    points = sub.as_point_cloud(time_scale_us=2000.0)

    def build():
        edges = radius_graph_kdtree(points, 4.0)
        return make_causal(edges, points)

    edges = benchmark(build)
    graph = EventGraph.from_stream(sub, edges, 2000.0)
    attrs = graph.edge_attributes()
    emit(
        "FIG2-GNN: event graph from the (x, y, t) point cloud",
        ascii_table(
            ["quantity", "value"],
            [
                ("nodes (events)", graph.num_nodes),
                ("directed edges", graph.num_edges),
                ("mean degree", f"{graph.mean_degree:.2f}"),
                ("causal (past->future)", graph.is_causal()),
                ("mean |dt| on edges (scaled)", f"{np.abs(attrs[:,2]).mean():.2f}"),
                ("mean |dx|,|dy| on edges", f"{np.abs(attrs[:,0]).mean():.2f}, {np.abs(attrs[:,1]).mean():.2f}"),
            ],
        ),
    )
    assert graph.num_edges > graph.num_nodes  # connected structure
    assert graph.is_causal()
    # Edges genuinely carry temporal offsets (the Section IV mechanism).
    assert np.abs(attrs[:, 2]).mean() > 0
