"""Hot-path regression benchmark: loop oracles vs vectorized replacements.

Section IV names graph construction as the latency bottleneck of the
event-graph paradigm; the same per-event Python loops also sat in the
denoise filters every paradigm runs first.  Each hot path keeps its
original loop implementation as a *reference oracle*
(``*_reference`` / per-event ``insert``), and this benchmark measures
both sides on identical workloads, asserts the outputs are byte-equal,
and reports the throughput ratio.

Run standalone via ``tools/run_hotpath_bench.py`` (appends a run record
to ``BENCH_hotpaths.json`` so the perf trajectory is visible across
PRs), or under pytest for the shape assertions:

    PYTHONPATH=src python -m pytest benchmarks/bench_hotpath_regression.py -s
"""

import time

import numpy as np

from repro.events import EventStream, Resolution
from repro.events.aer import AERCodec
from repro.events.ops import (
    neighbourhood_filter,
    neighbourhood_filter_reference,
    refractory_filter,
    refractory_filter_reference,
    spatial_downsample,
    spatial_downsample_reference,
)
from repro.gnn import HashInserter
from repro.gnn.build import (
    radius_graph_spatial_hash,
    radius_graph_spatial_hash_reference,
)
from repro.nn import (
    Tensor,
    affine_act,
    affine_act_reference,
    cross_entropy,
    cross_entropy_reference,
    log_softmax,
    log_softmax_reference,
)

DEFAULT_N = 100_000
QUICK_N = 5_000

#: Workload geometry: a mid-size sensor at a realistic mean event rate.
WIDTH = HEIGHT = 128
MEAN_DT_US = 10


def make_stream(n: int, seed: int = 0) -> EventStream:
    """Random but realistic event stream (uniform spatial, ~100 keps)."""
    rng = np.random.default_rng(seed)
    t = np.cumsum(rng.integers(1, 2 * MEAN_DT_US, n))
    return EventStream.from_arrays(
        t,
        rng.integers(0, WIDTH, n),
        rng.integers(0, HEIGHT, n),
        rng.choice([-1, 1], n),
        Resolution(WIDTH, HEIGHT),
    )


def _timed(fn, *args, **kwargs):
    t0 = time.perf_counter()
    out = fn(*args, **kwargs)
    return time.perf_counter() - t0, out


def _record(n: int, ref_s: float, vec_s: float) -> dict:
    return {
        "n_events": n,
        "reference_s": ref_s,
        "vectorized_s": vec_s,
        "reference_eps": n / ref_s if ref_s > 0 else float("inf"),
        "vectorized_eps": n / vec_s if vec_s > 0 else float("inf"),
        "speedup": ref_s / vec_s if vec_s > 0 else float("inf"),
    }


def bench_all(n: int = DEFAULT_N, seed: int = 0) -> dict:
    """Run every hot-path pairing; returns ``{name: record}``.

    Each pairing asserts reference/vectorized output equality on the
    benchmark workload itself, so a perf number is never recorded for a
    divergent implementation.
    """
    results: dict[str, dict] = {}
    stream = make_stream(n, seed)

    ref_s, ref_out = _timed(refractory_filter_reference, stream, 200)
    vec_s, vec_out = _timed(refractory_filter, stream, 200)
    assert ref_out == vec_out
    results["refractory_filter"] = _record(n, ref_s, vec_s)

    ref_s, ref_out = _timed(neighbourhood_filter_reference, stream, 1_000, 1)
    vec_s, vec_out = _timed(neighbourhood_filter, stream, 1_000, 1)
    assert ref_out == vec_out
    results["neighbourhood_filter"] = _record(n, ref_s, vec_s)

    ref_s, ref_out = _timed(spatial_downsample_reference, stream, 4, 100)
    vec_s, vec_out = _timed(spatial_downsample, stream, 4, 100)
    assert ref_out == vec_out
    results["spatial_downsample"] = _record(n, ref_s, vec_s)

    # Graph construction over the (x, y, t/scale) point cloud; the time
    # scale keeps cell occupancy near one so the hash stays O(N).
    pts = stream.as_point_cloud(1000.0)
    ref_s, ref_out = _timed(radius_graph_spatial_hash_reference, pts, 3.0)
    vec_s, vec_out = _timed(radius_graph_spatial_hash, pts, 3.0)
    assert np.array_equal(ref_out, vec_out)
    results["radius_graph_spatial_hash"] = _record(n, ref_s, vec_s)

    # Incremental insertion: per-event insert() vs batched insert_many().
    kw = dict(radius=3.0, time_scale_us=1000.0, window_us=50_000, max_neighbours=16)
    seq = HashInserter(**kw)
    ref_s, _ = _timed(
        lambda: [
            seq.insert(float(x), float(y), int(t))
            for x, y, t in zip(stream.x, stream.y, stream.t)
        ]
    )
    batched = HashInserter(**kw)
    vec_s, _ = _timed(batched.insert_many, stream.x, stream.y, stream.t)
    assert np.array_equal(seq.edges(), batched.edges())
    results["hash_inserter_insert_many"] = _record(n, ref_s, vec_s)

    # Fused nn kernels (fit/predict hot loop): one autograd node vs the
    # unfused composition, forward + backward, at the small layer sizes
    # the paradigm readout heads actually use — where per-node Python
    # and temporary-array overhead dominates the numpy work.
    iters = max(5, n // 500)
    rng = np.random.default_rng(seed)
    xb = rng.normal(size=(16, 16))
    wb = rng.normal(size=(8, 16))
    bb = rng.normal(size=(8,))
    gb = rng.normal(size=(16, 8))

    def _affine_relu_loop(fn):
        # Leaves hoisted out of the loop (identical on both sides, so
        # accumulated gradients stay bitwise comparable): the timed work
        # is graph build + forward + backward, i.e. the per-step cost of
        # the training loop.
        def run():
            x = Tensor(xb, requires_grad=True)
            w = Tensor(wb, requires_grad=True)
            b = Tensor(bb, requires_grad=True)
            for _ in range(iters):
                out = fn(x, w, b, "relu")
                out.backward(gb)
            return out.data, x.grad, w.grad, b.grad

        return run

    _affine_relu_loop(affine_act_reference)()  # warm both paths once
    _affine_relu_loop(affine_act)()
    ref_s, ref_out = _timed(_affine_relu_loop(affine_act_reference))
    vec_s, vec_out = _timed(_affine_relu_loop(affine_act))
    for a, b in zip(ref_out, vec_out):
        assert np.array_equal(a, b)
    results["fused_affine_relu_fwd_bwd"] = _record(iters, ref_s, vec_s)

    def _log_softmax_loop(fn):
        def run():
            x = Tensor(xb, requires_grad=True)
            for _ in range(iters):
                out = fn(x, axis=1)
                out.backward(gb2)
            return out.data, x.grad

        return run

    gb2 = rng.normal(size=xb.shape)
    _log_softmax_loop(log_softmax_reference)()
    _log_softmax_loop(log_softmax)()
    ref_s, ref_out = _timed(_log_softmax_loop(log_softmax_reference))
    vec_s, vec_out = _timed(_log_softmax_loop(log_softmax))
    for a, b in zip(ref_out, vec_out):
        assert np.array_equal(a, b)
    results["fused_log_softmax_fwd_bwd"] = _record(iters, ref_s, vec_s)

    logits_b = rng.normal(size=(16, 4)) * 3.0
    targets_b = rng.integers(0, 4, size=16)

    def _ce_loop(fn):
        def run():
            logits = Tensor(logits_b, requires_grad=True)
            for _ in range(iters):
                loss = fn(logits, targets_b)
                loss.backward()
            return loss.data, logits.grad

        return run

    _ce_loop(cross_entropy_reference)()
    _ce_loop(cross_entropy)()
    ref_s, ref_out = _timed(_ce_loop(cross_entropy_reference))
    vec_s, vec_out = _timed(_ce_loop(cross_entropy))
    for a, b in zip(ref_out, vec_out):
        assert np.array_equal(a, b)
    results["fused_cross_entropy_fwd_bwd"] = _record(iters, ref_s, vec_s)

    # Zero-copy AER decode vs the filter-and-revalidate reference.
    codec = AERCodec(stream.resolution)
    words = codec.encode(stream)
    codec.decode_with_stats(words)  # warm both paths once
    codec.decode_with_stats_reference(words)
    ref_s, (ref_stream, ref_stats) = _timed(codec.decode_with_stats_reference, words)
    vec_s, (vec_stream, vec_stats) = _timed(codec.decode_with_stats, words)
    assert np.array_equal(ref_stream.raw, vec_stream.raw)
    assert ref_stats == vec_stats
    results["aer_decode_zero_copy"] = _record(n, ref_s, vec_s)

    return results


def format_table(results: dict) -> str:
    rows = ["{:<28} {:>12} {:>12} {:>9}".format("hot path", "ref ev/s", "vec ev/s", "speedup")]
    for name, r in results.items():
        rows.append(
            "{:<28} {:>12.0f} {:>12.0f} {:>8.1f}x".format(
                name, r["reference_eps"], r["vectorized_eps"], r["speedup"]
            )
        )
    return "\n".join(rows)


def test_hotpath_speedups():
    """Shape claim: every vectorized hot path beats its loop oracle.

    Runs at QUICK_N so the pytest pass stays fast; the full 100k-event
    numbers come from ``tools/run_hotpath_bench.py``.
    """
    from conftest import emit

    results = bench_all(QUICK_N)
    emit("HOTPATH-REGRESSION (quick, n=%d)" % QUICK_N, format_table(results))
    for name, r in results.items():
        assert r["speedup"] > 1.0, f"{name} slower than its reference: {r}"


if __name__ == "__main__":
    out = bench_all()
    print(format_table(out))
