"""ABL-POWER — Section V: practical power envelopes of the platforms.

"In practical evaluations, CNN accelerators [62] and digital spiking
neuromorphic processors [78] exhibit power consumption of the order of
hundreds of milliwatts … while analogue spiking processors generally
consume an order of magnitude less power [46]."

All platforms execute a matched continuous workload — a 128-in /
128-out layer at 100 inferences (or equivalent spike windows) per second
— and report mean power.
"""

import pytest

from repro.analysis import ascii_table
from repro.hw import (
    AnalogNeuromorphicProcessor,
    ConvLayerWorkload,
    GNNAccelerator,
    GNNWorkload,
    NeuromorphicCore,
    SNNLayerWorkload,
    SystolicArray,
    ZeroSkipAccelerator,
    analytic_snn_counters,
)

from conftest import emit

PERIOD_US = 10_000.0  # 100 Hz duty cycle


def matched_workloads():
    cnn = ConvLayerWorkload(16, 16, 3, 32, 32, activation_sparsity=0.6)
    snn = SNNLayerWorkload(num_neurons=512, num_inputs=512, num_steps=20, input_activity=0.1)
    gnn = GNNWorkload(num_nodes=500, num_edges=4000, feature_dim=16)
    return cnn, snn, gnn


def test_power_envelope(benchmark):
    cnn_w, snn_w, gnn_w = matched_workloads()

    r_systolic = SystolicArray(rows=16, cols=16).run_layer(cnn_w)
    r_zeroskip = ZeroSkipAccelerator(num_macs=128).run_layer(cnn_w)
    core = NeuromorphicCore()
    r_snn = core.run_layer(snn_w, update="clock")
    counters = analytic_snn_counters(snn_w, "clock")
    analog = AnalogNeuromorphicProcessor()
    r_analog = analog.cost_from_counters(counters, duration_us=PERIOD_US)
    r_gnn = GNNAccelerator(features_in_dram=False).run_graph(gnn_w)

    rows = []
    powers = {}
    for name, report in (
        ("systolic CNN", r_systolic),
        ("zero-skip CNN", r_zeroskip),
        ("digital SNN core", r_snn),
        ("analog SNN", r_analog),
        ("GNN accel (edge cfg)", r_gnn),
    ):
        p = report.power_mw(PERIOD_US)
        powers[name] = p
        rows.append((name, f"{report.energy_pj:.3e}", f"{p:.3f}"))
    emit(
        "ABL-POWER: mean power at 100 Hz duty (mW)",
        ascii_table(["platform", "energy/pass pJ", "power mW"], rows),
    )

    # Section V shape claims:
    # digital platforms sit within ~two orders of one another ...
    digital = [powers["systolic CNN"], powers["zero-skip CNN"], powers["digital SNN core"]]
    assert max(digital) / min(digital) < 100
    # ... and the analog processor is >= an order of magnitude below the
    # digital SNN core it replaces.
    assert powers["analog SNN"] < powers["digital SNN core"] / 10
    # Zero-skipping beats the dense systolic array on this sparse layer.
    assert powers["zero-skip CNN"] < powers["systolic CNN"]

    benchmark(ZeroSkipAccelerator(num_macs=128).run_layer, cnn_w)


def test_analog_mismatch_cost(benchmark):
    """The robustness caveat: mismatch degrades an analog SNN's accuracy."""
    import numpy as np

    from repro.hw import apply_mismatch
    from repro.snn import LIFParams, clock_driven_sim

    rng = np.random.default_rng(0)
    num_in, num_out = 32, 16
    weights = rng.normal(0, 0.5, (num_out, num_in))
    # Two input patterns that drive disjoint neuron groups.
    spikes_a = np.zeros((30, num_in)); spikes_a[:, : num_in // 2] = rng.random((30, num_in // 2)) < 0.5
    spikes_b = np.zeros((30, num_in)); spikes_b[:, num_in // 2 :] = rng.random((30, num_in // 2)) < 0.5

    def response_separation(w):
        ra = clock_driven_sim(w, spikes_a, LIFParams(threshold=0.8)).spike_counts
        rb = clock_driven_sim(w, spikes_b, LIFParams(threshold=0.8)).spike_counts
        denom = np.linalg.norm(ra) * np.linalg.norm(rb)
        if denom == 0:
            return 1.0
        return 1.0 - float(ra @ rb) / denom  # cosine separation

    clean = response_separation(weights)
    separations = []
    for sigma in (0.1, 0.3, 0.6):
        vals = [
            response_separation(apply_mismatch(weights, sigma, np.random.default_rng(s)))
            for s in range(5)
        ]
        separations.append((sigma, float(np.mean(vals))))
    emit(
        "ABL-POWER: analog mismatch vs response separability",
        ascii_table(
            ["mismatch sigma", "mean separation (clean={:.3f})".format(clean)],
            [(f"{s:.1f}", f"{v:.3f}") for s, v in separations],
        ),
    )
    # Separability is progressively disturbed as mismatch grows: the
    # deviation from the clean response increases with sigma.
    deviations = [abs(v - clean) for _, v in separations]
    assert deviations[-1] >= deviations[0]

    benchmark(apply_mismatch, weights, 0.3, np.random.default_rng(1))


def test_system_energy_per_decision(benchmark):
    """Whole-system energy per decision: sensor + AER link + compute.

    Expands the Table-I 'System - Energy Efficiency' row beyond the
    compute models: the sensor's own power and the event-link traffic
    are charged to each decision, showing where each paradigm's budget
    actually goes at a 10 Hz decision rate.
    """
    import numpy as np

    from repro.analysis import ascii_table
    from repro.camera import CameraConfig, EventCamera, MovingDisk
    from repro.events import AERCodec, Resolution

    res = Resolution(32, 32)
    cam = EventCamera(res, CameraConfig(sample_period_us=500, seed=0))
    events, _ = cam.record(MovingDisk(res, radius=4, x0=4, y0=16, vx_px_per_s=500), 100_000)
    link = AERCodec(res).link_stats(events)

    sensor_power_mw = 1.0  # a small-array event sensor operating point
    decision_period_us = 100_000.0
    e_sensor = sensor_power_mw * 1e-3 * decision_period_us * 1e-6 * 1e12  # pJ
    e_link = link.total_bits * 10.0  # 10 pJ/bit off-chip

    cnn_w, snn_w, gnn_w = matched_workloads()
    computes = {
        "SNN (digital core)": NeuromorphicCore().run_layer(snn_w, "clock").energy_pj,
        "CNN (zero-skip)": ZeroSkipAccelerator(num_macs=128).run_layer(cnn_w).energy_pj,
        "GNN (edge accel)": GNNAccelerator(features_in_dram=False).run_graph(gnn_w).energy_pj,
    }
    rows = []
    for name, e_compute in computes.items():
        total = e_sensor + e_link + e_compute
        rows.append(
            (
                name,
                f"{e_sensor/total:.0%}",
                f"{e_link/total:.0%}",
                f"{e_compute/total:.0%}",
                f"{total*1e-6:.2f} uJ",
            )
        )
    emit(
        "ABL-POWER: system energy per decision (sensor + link + compute)",
        ascii_table(["paradigm", "sensor", "AER link", "compute", "total"], rows),
    )
    # The sensor/link floor is shared: totals differ by less than the
    # compute energies alone suggest (the system-level perspective).
    totals = [e_sensor + e_link + e for e in computes.values()]
    compute_spread = max(computes.values()) / min(computes.values())
    total_spread = max(totals) / min(totals)
    assert total_spread < compute_spread

    benchmark(AERCodec(res).link_stats, events)
