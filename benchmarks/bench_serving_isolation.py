#!/usr/bin/env python
"""Serving capacity curves: sustained tenants vs. delivered-at-SLO.

The "million-user day" question, compressed: as the requested tenant
mix grows past the admission pool, how much of each architecture's day
is still delivered within SLO — fault-free and under the canonical
chaos schedule?  The sweep runs the 2x2 chaos replay at each mix size
and records, per architecture,

* how many tenants admission sustains (the fair-share knee — shares
  thin as the mix grows until the SLO-feasibility check starts
  refusing),
* the fleet delivered-at-SLO fraction with and without chaos,
* the worst non-targeted tenant delta (the cross-tenant coupling the
  bulkheads are supposed to remove — exactly 0 for the isolated
  fleet, measurably negative for the shared baseline).

Each invocation appends one run record (timestamp, git revision,
curves, wall-clock) to ``BENCH_serving.json`` at the repository root,
so successive PRs can see whether isolation still holds and what it
costs.

Usage:
    python benchmarks/bench_serving_isolation.py            # full run
    python benchmarks/bench_serving_isolation.py --quick    # CI-sized
    python benchmarks/bench_serving_isolation.py --output /tmp/b.json
"""

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serving import sweep_tenant_counts

DEFAULT_COUNTS = (6, 12, 18, 24, 36)
QUICK_COUNTS = (6, 12, 18)
DEFAULT_WINDOWS = 60
QUICK_WINDOWS = 40


def bench_sweep(quick: bool, seed: int = 0) -> dict:
    """Time the capacity sweep and fold in the curves."""
    counts = QUICK_COUNTS if quick else DEFAULT_COUNTS
    num_windows = QUICK_WINDOWS if quick else DEFAULT_WINDOWS
    t0 = time.perf_counter()
    bench = sweep_tenant_counts(counts, num_windows=num_windows, seed=seed)
    elapsed = time.perf_counter() - t0
    total_tenant_days = 4 * sum(counts)  # 2 modes x {fault-free, chaos}
    return {
        "elapsed_s": elapsed,
        "tenant_days_per_s": total_tenant_days / elapsed,
        "config": bench["config"],
        "curves": bench["curves"],
    }


def git_revision() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"sweep mix sizes {QUICK_COUNTS} at {QUICK_WINDOWS} windows (CI mode)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_serving.json",
        help="trajectory file to append the run record to",
    )
    args = parser.parse_args(argv)

    results = bench_sweep(args.quick, args.seed)
    print(
        f"swept {len(results['config']['tenant_counts'])} mix sizes in "
        f"{results['elapsed_s']:.2f}s "
        f"({results['tenant_days_per_s']:.0f} tenant-days/s)"
    )
    for mode in ("isolated", "shared"):
        for point in results["curves"][mode]:
            print(
                f"  {mode:>8} N={point['tenants_requested']:>3}: "
                f"admitted {point['tenants_admitted']:>3}, "
                f"at-SLO {point['delivered_at_slo_fault_free']:.3f} -> "
                f"{point['delivered_at_slo_chaos']:.3f} under chaos, "
                f"nt-delta {point['max_non_targeted_delta']:.3f}"
            )

    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "git_rev": git_revision(),
        "quick": args.quick,
        "results": results,
    }
    trajectory = {"runs": []}
    if args.output.exists():
        try:
            trajectory = json.loads(args.output.read_text())
        except ValueError:
            pass
    trajectory.setdefault("runs", []).append(record)
    args.output.write_text(json.dumps(trajectory, indent=2) + "\n")
    print(f"appended run record to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
