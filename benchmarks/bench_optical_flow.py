"""ABL-FLOW — exploiting microsecond timing: event-based optical flow.

Section I: event cameras "capture an unprecedentedly fine spatiotemporal
structure of motion that is lost in-between traditional static frames";
Section IV lists optical-flow estimation among the tasks event-graph
methods win (refs [57], [72]).

Measured: the plane-fit flow estimator (which reads velocity directly
off event timestamps) against a two-frame displacement baseline (which
only sees motion quantised to whole pixels per frame interval), across a
speed sweep.
"""

import numpy as np
import pytest

from repro.analysis import ascii_table, plane_fit_flow
from repro.camera import CameraConfig, EventCamera, MovingBar
from repro.cnn import count_frame
from repro.events import Resolution

from conftest import emit

RES = Resolution(32, 32)
FLOW_KW = dict(radius=3, dt_max_us=20_000, polarity=1, refractory_us=8000)


def record_bar(speed, duration_us=35_000, seed=0):
    cam = EventCamera(RES, CameraConfig(sample_period_us=250, seed=seed))
    bar = MovingBar(RES, speed_px_per_s=speed, bar_width=3.0, x0=0.0)
    events, _ = cam.record(bar, duration_us)
    return events


def two_frame_velocity(events, frame_period_us=15_000):
    """Baseline: x displacement of the count-frame centroid between two
    consecutive accumulation windows (pixel-quantised by construction)."""
    t0 = int(events.t[0])
    f1 = count_frame(events.time_window(t0, t0 + frame_period_us), signed=False)[0]
    f2 = count_frame(
        events.time_window(t0 + frame_period_us, t0 + 2 * frame_period_us), signed=False
    )[0]
    xs = np.arange(RES.width)

    def centroid(frame):
        total = frame.sum()
        if total == 0:
            return None
        return float((frame.sum(axis=0) * xs).sum() / total)

    c1, c2 = centroid(f1), centroid(f2)
    if c1 is None or c2 is None:
        return 0.0
    # Frames only resolve displacement to the pixel grid.
    shift_px = np.round(c2 - c1)
    return shift_px / (frame_period_us * 1e-6)


def test_flow_speed_sweep(benchmark):
    rows = []
    plane_errors = []
    frame_errors = []
    for speed in (200.0, 400.0, 800.0, 1200.0):
        events = record_bar(speed)
        vx_plane, vy_plane = plane_fit_flow(events, **FLOW_KW).median_velocity()
        vx_frame = two_frame_velocity(events)
        plane_err = abs(vx_plane - speed) / speed
        frame_err = abs(vx_frame - speed) / speed
        plane_errors.append(plane_err)
        frame_errors.append(frame_err)
        rows.append(
            (
                f"{speed:.0f}",
                f"{vx_plane:.0f} ({plane_err:.1%})",
                f"{vx_frame:.0f} ({frame_err:.1%})",
            )
        )
    emit(
        "ABL-FLOW: ground-truth speed vs estimates (px/s)",
        ascii_table(["true speed", "plane-fit (events)", "two-frame baseline"], rows),
    )
    # The event-timing estimator stays within ~15% everywhere.
    assert max(plane_errors) < 0.15
    # And is at least as accurate as the frame baseline on average.
    assert np.mean(plane_errors) <= np.mean(frame_errors) + 0.02

    events = record_bar(800.0)
    benchmark(plane_fit_flow, events, **FLOW_KW)


def test_direction_and_sign(benchmark):
    events = record_bar(600.0, seed=1)
    mirrored = events.flip_x()
    vx_r, vy_r = plane_fit_flow(events, **FLOW_KW).median_velocity()
    vx_l, _ = plane_fit_flow(mirrored, **FLOW_KW).median_velocity()
    emit(
        "ABL-FLOW: direction recovery",
        f"rightward: vx={vx_r:.0f} px/s, vy={vy_r:.0f} px/s; mirrored: vx={vx_l:.0f} px/s",
    )
    assert vx_r > 0 > vx_l
    assert abs(vy_r) < 0.2 * abs(vx_r)

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_sub_frame_speed_resolution(benchmark):
    """Below one pixel per frame interval, frames see nothing; the
    timestamps still resolve the motion."""
    slow = 50.0  # px/s: 0.75 px per 15 ms frame interval
    events = record_bar(slow, duration_us=120_000, seed=2)
    vx_plane, _ = plane_fit_flow(
        events, radius=3, dt_max_us=80_000, polarity=1, refractory_us=30_000
    ).median_velocity()
    vx_frame = two_frame_velocity(events)
    emit(
        "ABL-FLOW: sub-pixel-per-frame motion (50 px/s ground truth)",
        f"plane-fit: {vx_plane:.1f} px/s; two-frame baseline: {vx_frame:.1f} px/s",
    )
    assert vx_plane == pytest.approx(slow, rel=0.3)

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
