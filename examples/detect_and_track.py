"""Detect and track a moving object from its events.

The beyond-classification scenario Section III-A points to (detection,
ref [35]) and AEGNN's headline task (ref [70]): localise a moving object
continuously from its event stream.  Three localisers run on sliding
windows of the same noisy recording:

1. the event-centroid baseline (no learning),
2. a trained event-graph localiser (attention over node positions),
3. the centroid baseline on a denoised stream (neighbourhood filter).

The example prints the estimated trajectory of each against ground truth.

Usage::

    python examples/detect_and_track.py
"""

import numpy as np

from repro.analysis import ascii_table
from repro.camera import NoiseParams
from repro.datasets import (
    DetectionSample,
    centroid_baseline,
    make_detection_dataset,
)
from repro.events import Resolution, neighbourhood_filter
from repro.gnn import (
    EventGNNLocalizer,
    GraphBuildConfig,
    build_event_graph,
    fit_localizer,
)
from repro.nn import no_grad

RES = Resolution(32, 32)
NOISE = NoiseParams(ba_rate_hz=100.0)
CFG = GraphBuildConfig(radius=4.0, time_scale_us=3000.0, max_events=200, max_degree=8)


def main() -> None:
    print("training the event-graph localiser on 30 noisy recordings...")
    train = make_detection_dataset(num_samples=30, resolution=RES, noise=NOISE, seed=10)
    model = EventGNNLocalizer(hidden=10, rng=np.random.default_rng(1))
    result = fit_localizer(model, train, CFG, epochs=15, lr=5e-3)
    print(f"  squared-pixel loss {result.losses[0]:.1f} -> {result.losses[-1]:.1f}")

    # One long noisy recording, tracked over sliding windows.
    track = make_detection_dataset(
        num_samples=1, resolution=RES, duration_us=60_000, noise=NOISE, seed=77
    )[0]
    stream = track.stream
    window_us = 15_000
    print(f"\ntracking over {stream.duration/1000:.0f} ms "
          f"({len(stream)} events incl. noise), {window_us/1000:.0f} ms windows")

    rows = []
    errors = {"centroid": [], "denoised centroid": [], "GNN": []}
    t0 = int(stream.t[0])
    t_end = int(stream.t[-1])
    step = window_us // 2
    for start in range(t0, t_end - window_us + 1, step):
        window = stream.time_window(start, start + window_us)
        if len(window) < 20:
            continue
        mid_s = (start + window_us - t0) * 1e-6
        sample = DetectionSample(window, 0.0, 0.0, track.radius)

        c_raw = centroid_baseline(sample, window_us=window_us)
        denoised = neighbourhood_filter(window, window_us=3000, radius=1)
        c_den = (
            (float(denoised.x.mean()), float(denoised.y.mean()))
            if len(denoised)
            else c_raw
        )
        with no_grad():
            pred = model(build_event_graph(window, CFG)).data[0]
        rows.append(
            (
                f"{mid_s*1000:.0f} ms",
                f"({c_raw[0]:.1f}, {c_raw[1]:.1f})",
                f"({c_den[0]:.1f}, {c_den[1]:.1f})",
                f"({pred[0]:.1f}, {pred[1]:.1f})",
            )
        )
    print(
        ascii_table(
            ["window end", "centroid", "denoised centroid", "event-GNN"], rows
        )
    )

    # Final-position accuracy against the analytic ground truth.
    final = DetectionSample(stream, track.cx, track.cy, track.radius)
    c_raw = centroid_baseline(final)
    with no_grad():
        pred = model(build_event_graph(stream, CFG)).data[0]
    print("\n=== final-position error (px) ===")
    print(
        ascii_table(
            ["method", "error"],
            [
                ("centroid baseline", f"{np.hypot(c_raw[0]-track.cx, c_raw[1]-track.cy):.2f}"),
                ("event-GNN localiser", f"{np.hypot(pred[0]-track.cx, pred[1]-track.cy):.2f}"),
            ],
        )
    )
    print(f"ground truth: ({track.cx:.1f}, {track.cy:.1f})")


if __name__ == "__main__":
    main()
