"""On-chip-friendly SNN learning: STDP and eligibility propagation.

Section III-A argues that surrogate-gradient BPTT "is an unrealistic
algorithm for on-chip learning due to the prohibitive amount of memory"
and points to local alternatives: Hebbian STDP (ref [27]) and
eligibility-trace methods with random feedback (refs [31], [34]).

This example trains both local learners on a two-pattern spike task and
prints the training-memory comparison that motivates them.

Usage::

    python examples/onchip_learning.py
"""

import numpy as np

from repro.analysis import ascii_table
from repro.snn import (
    EPropNetwork,
    EPropParams,
    STDPNetwork,
    bptt_memory_words,
    eprop_memory_words,
)


def make_patterns(rng, n_per_class=10, steps=40, channels=16):
    """Two orthogonal spatial firing patterns as Poisson spike trains."""
    trains, labels = [], []
    for cls in range(2):
        rates = np.full(channels, 0.02)
        if cls == 0:
            rates[: channels // 2] = 0.6
        else:
            rates[channels // 2 :] = 0.6
        for _ in range(n_per_class):
            trains.append((rng.random((steps, channels)) < rates).astype(np.float64))
            labels.append(cls)
    return trains, np.array(labels)


def main() -> None:
    rng = np.random.default_rng(0)
    train_x, train_y = make_patterns(rng)
    test_x, test_y = make_patterns(np.random.default_rng(99))

    # 1. Unsupervised STDP with winner-take-all (Diehl & Cook style).
    print("=== unsupervised STDP (labels used only for neuron assignment) ===")
    stdp = STDPNetwork(num_inputs=16, num_neurons=10, rng=np.random.default_rng(1))
    stdp.fit(train_x, train_y, num_classes=2, epochs=3)
    print(f"  test accuracy: {stdp.accuracy(test_x, test_y):.2f}")
    print(f"  neuron class assignments: {stdp.assignments.tolist()}")

    # 2. E-prop with random feedback: online, local, supervised.
    print("\n=== eligibility propagation + random feedback ===")
    eprop = EPropNetwork(16, 24, 2, EPropParams(lr=1e-2), rng=np.random.default_rng(2))
    losses = []
    for epoch in range(8):
        epoch_losses = [eprop.train_sample(x, y) for x, y in zip(train_x, train_y)]
        losses.append(float(np.mean(epoch_losses)))
    print(f"  loss: {losses[0]:.3f} -> {losses[-1]:.3f} over {len(losses)} epochs")
    print(f"  test accuracy: {eprop.accuracy(test_x, test_y):.2f}")

    # 3. Why not BPTT on-chip? The memory argument.
    print("\n=== training-memory comparison (words of state) ===")
    rows = []
    for steps in (40, 400, 4000):
        rows.append(
            (
                steps,
                f"{bptt_memory_words(16, 24, steps):,}",
                f"{eprop_memory_words(16, 24):,}",
            )
        )
    print(ascii_table(["sequence steps", "BPTT activations", "e-prop traces"], rows))
    print("\nBPTT memory grows linearly with the sequence; eligibility traces "
          "are constant — the property that makes on-chip learning plausible.")


if __name__ == "__main__":
    main()
