"""Asynchronous event-graph processing: the low-latency scenario.

Section IV's forward-looking pitch: event graphs can be updated and
convolved *per event*, so the system responds within microseconds of an
input change instead of waiting out a frame window.  This example
streams events into an incrementally maintained graph, compares the
three insertion algorithms (naive scan, k-d tree, spatial hash), and
contrasts the end-to-end response latency against a frame-based CNN path
using the hardware models.

Usage::

    python examples/async_gnn_lowlatency.py
"""

import time

import numpy as np

from repro.analysis import ascii_table, event_pipeline_latency, frame_pipeline_latency
from repro.camera import CameraConfig, EventCamera, TexturePan
from repro.events import Resolution
from repro.gnn import HashInserter, KDTreeInserter, NaiveInserter
from repro.hw import GNNAccelerator, GNNWorkload


def main() -> None:
    # Record a full-field stream (panning texture: the egomotion regime
    # where the whole sensor is active and local lookups pay off).
    res = Resolution(48, 48)
    cam = EventCamera(res, CameraConfig(sample_period_us=500, seed=7))
    pan = TexturePan(res, vx_px_per_s=600.0, seed=5)
    events, _ = cam.record(pan, duration_us=40_000)
    print(f"streaming {len(events)} events into a continuously evolving graph\n")

    # Per-event insertion cost of the three strategies.
    rows = []
    inserters = {
        "naive O(N) scan": NaiveInserter(radius=3.0, time_scale_us=1000.0, window_us=20_000),
        "k-d tree (ref [75])": KDTreeInserter(
            radius=3.0, time_scale_us=1000.0, window_us=20_000, rebuild_every=64
        ),
        "spatial hash (HUGNet-style)": HashInserter(
            radius=3.0, time_scale_us=1000.0, window_us=20_000
        ),
    }
    edge_sets = []
    for name, inserter in inserters.items():
        t0 = time.perf_counter()
        inserter.insert_stream(events.x, events.y, events.t)
        wall_us = (time.perf_counter() - t0) / len(events) * 1e6
        edge_sets.append(set(map(tuple, inserter.edges())))
        rows.append(
            (
                name,
                f"{inserter.stats.candidates_per_event:.1f}",
                f"{wall_us:.2f}",
                inserter.stats.edges_created,
            )
        )
    assert edge_sets[0] == edge_sets[1] == edge_sets[2], "all build the same graph"
    print("=== per-event insertion cost (identical output graphs) ===")
    print(ascii_table(["algorithm", "candidates/event", "wall us/event", "edges"], rows))

    # End-to-end latency: event-driven GNN vs frame-based CNN.
    hash_ins = inserters["spatial hash (HUGNet-style)"]
    accel = GNNAccelerator(features_in_dram=False)
    workload = GNNWorkload(
        num_nodes=max(hash_ins.num_nodes, 1),
        num_edges=max(hash_ins.stats.edges_created, 1),
        feature_dim=16,
    )
    per_event = accel.per_event_update(
        workload,
        degree=12,
        insertion_candidates=int(hash_ins.stats.candidates_per_event) + 1,
    )
    gnn_latency = event_pipeline_latency(per_event.latency_us)
    cnn_latency = frame_pipeline_latency(window_us=33_000, compute_us=2_000)

    print("\n=== end-to-end response latency (hardware models) ===")
    print(
        ascii_table(
            ["path", "sensing us", "accumulation us", "compute us", "total us"],
            [
                (
                    "async GNN (per event)",
                    f"{gnn_latency.sensing_us:.0f}",
                    f"{gnn_latency.accumulation_us:.0f}",
                    f"{gnn_latency.compute_us:.2f}",
                    f"{gnn_latency.total_us:.1f}",
                ),
                (
                    "frame CNN (30 FPS)",
                    f"{cnn_latency.sensing_us:.0f}",
                    f"{cnn_latency.accumulation_us:.0f}",
                    f"{cnn_latency.compute_us:.0f}",
                    f"{cnn_latency.total_us:.1f}",
                ),
            ],
        )
    )
    speedup = cnn_latency.total_us / gnn_latency.total_us
    print(f"\nthe event-driven path responds {speedup:.0f}x sooner; "
          f"{cnn_latency.accumulation_fraction:.0%} of the frame path's latency "
          "is spent waiting for the accumulation window to close.")


if __name__ == "__main__":
    main()
