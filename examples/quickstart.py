"""Quickstart: simulate an event camera and look at the data three ways.

Runs in a few seconds on a laptop:

1. record a moving disk with the DVS pixel-model camera;
2. inspect the raw event stream and its AER encoding;
3. build each paradigm's input representation — a spike tensor (SNN),
   a dense two-channel frame (CNN) and an event graph (GNN).

Usage::

    python examples/quickstart.py
"""

import numpy as np

from repro.camera import CameraConfig, EventCamera, MovingDisk, NoiseParams
from repro.cnn import two_channel_frame
from repro.events import AERCodec, Resolution
from repro.gnn import GraphBuildConfig, build_event_graph
from repro.snn import events_to_spike_tensor


def main() -> None:
    # 1. Simulate the sensor -------------------------------------------------
    res = Resolution(48, 48)
    camera = EventCamera(
        res,
        CameraConfig(
            noise=NoiseParams(ba_rate_hz=0.5),  # mild background activity
            sample_period_us=500,
            seed=42,
        ),
    )
    stimulus = MovingDisk(res, radius=5.0, x0=4.0, y0=24.0, vx_px_per_s=600.0)
    events, stats = camera.record(stimulus, duration_us=60_000)

    print("=== raw event stream ===")
    print(f"recorded {len(events)} events over {events.duration/1000:.1f} ms")
    print(f"  signal events : {stats.num_signal_events}")
    print(f"  noise events  : {stats.num_noise_events}")
    on, off = events.polarity_counts()
    print(f"  ON/OFF        : {on}/{off}")
    print(f"  mean rate     : {events.event_rate()/1000:.1f} kEPS")
    print(f"  pixel sparsity: {events.sparsity():.2%} of pixels silent")

    # 2. The AER link the sensor would use -----------------------------------
    codec = AERCodec(res)
    link = codec.link_stats(events)
    print("\n=== AER link ===")
    print(f"  {link.num_words} words x {link.bits_per_word} bits "
          f"({link.num_wrap_words} timer wraps)")
    print(f"  bandwidth: {link.bandwidth_bps/1e3:.1f} kbit/s")
    decoded = codec.decode(codec.encode(events), t_origin=int(events.t[0]))
    assert decoded == events, "AER round-trip must be lossless"
    print("  round-trip: lossless")

    # 3. One input representation per paradigm --------------------------------
    print("\n=== paradigm representations ===")
    spikes = events_to_spike_tensor(events, num_steps=20, pool=2)
    print(f"SNN spike tensor : shape {spikes.shape}, "
          f"density {spikes.mean():.4f} (sparsity {1 - spikes.mean():.2%})")

    frame = two_channel_frame(events)
    print(f"CNN dense frame  : shape {frame.shape}, "
          f"zero fraction {np.mean(frame == 0):.2%}")

    graph = build_event_graph(
        events, GraphBuildConfig(radius=4.0, time_scale_us=3000.0, max_events=300)
    )
    print(f"GNN event graph  : {graph.num_nodes} nodes, {graph.num_edges} edges, "
          f"mean degree {graph.mean_degree:.1f}, causal={graph.is_causal()}")


if __name__ == "__main__":
    main()
