"""Hybrid dual-pixel (DAVIS) sensing with event-based optical flow.

The Section-II "dual active and event pixel" sensor records intensity
frames and events simultaneously.  This example uses both modalities:
frames give the scene snapshot, events give the microsecond-resolution
motion in between — the plane-fit flow estimator recovers the stimulus
velocity directly from event timestamps and is cross-checked against the
displacement of the frame centroids.

Usage::

    python examples/hybrid_davis_flow.py
"""

import numpy as np

from repro.analysis import ascii_table, plane_fit_flow
from repro.camera import CameraConfig, DualPixelCamera, MovingBar
from repro.events import Resolution


def main() -> None:
    res = Resolution(32, 32)
    true_speed = 700.0
    camera = DualPixelCamera(
        res, CameraConfig(sample_period_us=250, seed=11), frame_period_us=10_000
    )
    stimulus = MovingBar(res, speed_px_per_s=true_speed, bar_width=3.0, x0=0.0)
    rec = camera.record(stimulus, duration_us=35_000)

    print("=== dual-pixel recording (DAVIS mode) ===")
    print(f"  events : {len(rec.events)} over {rec.events.duration/1000:.1f} ms")
    print(f"  frames : {rec.num_frames} at {camera.frame_period_us/1000:.0f} ms period")

    # Event-side: plane-fit optical flow from raw timestamps.
    flow = plane_fit_flow(
        rec.events, radius=3, dt_max_us=20_000, polarity=1, refractory_us=8000
    )
    vx_ev, vy_ev = flow.median_velocity()

    # Frame-side: bar centroid displacement between the first and last frame.
    xs = np.arange(res.width)

    def bar_centroid(frame):
        w = frame - frame.min()
        return float((w.sum(axis=0) * xs).sum() / w.sum())

    dx = bar_centroid(rec.frames[-1]) - bar_centroid(rec.frames[0])
    dt_s = (rec.frame_times_us[-1] - rec.frame_times_us[0]) * 1e-6
    vx_frames = dx / dt_s

    print("\n=== velocity estimates ===")
    print(
        ascii_table(
            ["method", "vx px/s", "error vs truth"],
            [
                ("ground truth", f"{true_speed:.0f}", "-"),
                (
                    f"event plane-fit ({flow.num_estimates} fits)",
                    f"{vx_ev:.0f}",
                    f"{abs(vx_ev - true_speed)/true_speed:.1%}",
                ),
                (
                    "frame centroid displacement",
                    f"{vx_frames:.0f}",
                    f"{abs(vx_frames - true_speed)/true_speed:.1%}",
                ),
            ],
        )
    )
    print(
        "\nthe event channel resolves the motion continuously (per event, "
        f"|vy| = {abs(vy_ev):.0f} px/s residual), while the frame channel "
        f"only samples it every {camera.frame_period_us/1000:.0f} ms."
    )


if __name__ == "__main__":
    main()
