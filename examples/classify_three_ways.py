"""Classify the same event recordings with all three paradigms.

The scenario the paper's Table I summarises: one labelled event dataset
(motion gestures, including two classes — clockwise vs counter-clockwise
rotation — that only temporal information can separate) processed by the
SNN, dense-frame CNN and event-graph GNN pipelines, each attached to its
hardware cost model.

Prints per-paradigm accuracy, temporal-subset accuracy, operation counts,
energy and latency, followed by the regenerated Table I.

Usage::

    python examples/classify_three_ways.py
"""

import numpy as np

from repro.analysis import ascii_table
from repro.core import (
    agreement_with_paper,
    render_table,
    run_comparison,
    table1_dataset,
    table1_pipelines,
)


def main() -> None:
    print("generating the motion-gestures dataset (full-rotation recordings)...")
    train, test = table1_dataset(seed=1)
    print(f"  {len(train)} train / {len(test)} test recordings, "
          f"{train.mean_events_per_sample():.0f} events each on average")

    pipelines = table1_pipelines()
    print("training the three pipelines (SNN surrogate-gradient BPTT, "
          "CNN on two-channel frames, GNN on causal event graphs)...")
    result = run_comparison(train, test, temporal_labels=(0, 1), pipelines=pipelines)

    rows = []
    for name in ("SNN", "CNN", "GNN"):
        m = result.metrics[name]
        rows.append(
            (
                name,
                f"{m.accuracy:.2f}",
                f"{m.temporal_info:.2f}",
                f"{m.num_operations:.3g}",
                f"{m.extras['energy_pj_per_classification']/1e6:.2f} uJ",
                f"{m.latency:.3g} us",
            )
        )
    print("\n=== measured pipeline summary ===")
    print(
        ascii_table(
            ["paradigm", "accuracy", "CW/CCW acc", "ops", "energy", "latency"], rows
        )
    )

    print("\n=== regenerated Table I ===")
    print(render_table(result))
    agreement = agreement_with_paper(result)
    print(
        f"\nagreement with the published table: {agreement['exact']:.0%} exact, "
        f"{agreement['within_one']:.0%} within one grade "
        f"over {agreement['cells']} comparable cells"
    )


if __name__ == "__main__":
    main()
