"""Explore the event-sensor design space of Section II.

Reproduces the sensor-technology story: the Fig. 1 scaling trends, the
readout-saturation problem high-resolution sensors face under egomotion,
and what each in-sensor mitigation strategy buys back.

Usage::

    python examples/sensor_design_space.py
"""

import numpy as np

from repro.analysis import ascii_series, ascii_table
from repro.camera import (
    CameraConfig,
    EventCamera,
    Fovea,
    ReadoutParams,
    TexturePan,
    centre_surround_suppression,
    downsample,
    foveate,
    simulate_readout,
)
from repro.events import Resolution
from repro.sensors import (
    SENSOR_SURVEY,
    fill_factor_by_process,
    fit_array_size_trend,
    fit_pixel_pitch_trend,
)


def main() -> None:
    # Fig. 1: a decade of sensor scaling.
    print("=== Fig. 1: published event-camera sensors ===")
    print(
        ascii_table(
            ["year", "sensor", "pitch um", "Mpx", "process"],
            [
                (s.year, s.name, f"{s.pixel_pitch_um:.2f}", f"{s.megapixels:.3f}",
                 "BSI" if s.backside_illuminated else "FSI")
                for s in SENSOR_SURVEY
            ],
        )
    )
    pitch = fit_pixel_pitch_trend()
    array = fit_array_size_trend()
    print(f"\npixel pitch trend : x{pitch.factor_per_decade:.2f} per decade "
          f"(halving every {-pitch.doubling_time_years:.1f} years)")
    print(f"array size trend  : x{array.factor_per_decade:.0f} per decade")
    ff = fill_factor_by_process()
    print(f"fill factor       : FSI {ff['FSI']:.0%} -> BSI {ff['BSI']:.0%} "
          "(the 3D-stacking step)")

    # The cost of resolution: egomotion event rates.
    print("\n=== egomotion event rate vs resolution ===")
    widths = [16, 32, 64]
    rates = []
    streams = {}
    for width in widths:
        res = Resolution(width, width)
        cam = EventCamera(res, CameraConfig(sample_period_us=1000, seed=0))
        pan = TexturePan(res, vx_px_per_s=800.0, seed=3)
        ev, _ = cam.record(pan, 30_000)
        streams[width] = ev
        rates.append(ev.event_rate())
    print(ascii_series(widths, rates, width=40, label="events/s vs sensor width"))

    # Readout saturation at the largest sensor.
    ev = streams[64]
    result = simulate_readout(ev, ReadoutParams(throughput_eps=2e5, fifo_depth=256))
    print(f"\n64x64 sensor at {ev.event_rate()/1e3:.0f} kEPS through a 200 kEPS readout:")
    print(f"  dropped {result.drop_fraction:.1%}, "
          f"mean queueing latency {result.mean_latency_us:.0f} us")

    # Mitigation strategies.
    print("\n=== in-sensor mitigations (Section II) ===")
    down = downsample(ev, 4, refractory_us=1000)
    fov = foveate(ev, Fovea(cx=32, cy=32, radius=12, peripheral_factor=4))
    cs = centre_surround_suppression(ev, surround_radius=2, window_us=10_000)
    print(
        ascii_table(
            ["strategy", "kept", "rate after"],
            [
                ("raw", "100%", f"{ev.event_rate()/1e3:.0f} kEPS"),
                ("downsample x4 [21]", f"{len(down)/len(ev):.0%}", f"{down.event_rate()/1e3:.0f} kEPS"),
                ("foveation [22]", f"{len(fov)/len(ev):.0%}", f"{fov.event_rate()/1e3:.0f} kEPS"),
                ("centre-surround [23]", f"{len(cs)/len(ev):.0%}", f"{cs.event_rate()/1e3:.0f} kEPS"),
            ],
        )
    )
    after = simulate_readout(down, ReadoutParams(throughput_eps=2e5, fifo_depth=256))
    print(f"\nafter x4 downsampling the same readout drops {after.drop_fraction:.1%} "
          f"with {after.mean_latency_us:.1f} us mean latency.")


if __name__ == "__main__":
    main()
