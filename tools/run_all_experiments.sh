#!/usr/bin/env bash
# Regenerate every artefact of the reproduction from scratch:
# tests, all paper benchmarks (printed tables/series), and the examples.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== test suite =="
python -m pytest tests/

echo "== paper benchmarks (tables & figures printed below) =="
python -m pytest benchmarks/ --benchmark-only -s

echo "== examples =="
for ex in examples/*.py; do
    echo "--- $ex ---"
    python "$ex"
done
