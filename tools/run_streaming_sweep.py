#!/usr/bin/env python
"""Run the streaming overload sweep and the seeded burst demo.

Two checks back the Table-I overload cell:

1. the deterministic 10x burst demo — a rate burst plus a transient
   primary-stage outage streamed through the resilient executor.  The
   run must complete with exact window/event conservation
   (``processed + expired + shed + failed == offered``, ``failed == 0``),
   engage at least two shedding tiers, and every circuit breaker that
   opens must recover through its half-open probes;
2. the load sweep — each paradigm's delivered-window fraction across
   rising offered load must form a monotone (graceful) degradation
   curve with balanced accounting at every point.

Exits non-zero when either check fails, so CI uses it as a smoke test.

Usage:
    python tools/run_streaming_sweep.py               # full-size run
    python tools/run_streaming_sweep.py --quick       # CI-sized run
    python tools/run_streaming_sweep.py --output /tmp/streaming.json
"""

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.streaming import (
    degradation_violations,
    make_bursty_stream,
    overload_scores,
    run_overload_demo,
    run_streaming_sweep,
)


def check_demo(seed: int) -> tuple[dict, list[str]]:
    """Run the burst demo and collect acceptance failures."""
    report, executor = run_overload_demo(seed=seed, burst_factor=10.0)
    failures = list(report.accounting_errors())
    if report.failed != 0:
        failures.append(f"demo run failed {report.failed} window(s)")
    if len(report.tiers_engaged) < 2:
        failures.append(
            f"only {report.tiers_engaged} shedding tier(s) engaged, expected >= 2"
        )
    opened = [
        name
        for name, b in executor.breakers.items()
        if any(t.to_state.value == "open" for t in b.transitions)
    ]
    if not opened:
        failures.append("no breaker opened despite the transient outage")
    unrecovered = [
        name for name, b in executor.breakers.items() if not b.recovered
    ]
    if unrecovered:
        failures.append(f"breaker(s) never recovered: {unrecovered}")
    summary = {
        "offered": report.offered,
        "processed": report.processed,
        "expired": report.expired,
        "shed_windows": report.shed_windows,
        "failed": report.failed,
        "delivered_fraction": round(report.delivered_fraction, 4),
        "tiers_engaged": report.tiers_engaged,
        "shed_fractions_by_tier": {
            k: round(v, 4) for k, v in report.shed_fractions_by_tier().items()
        },
        "breakers_opened": opened,
        "breaker_transitions": len(report.breaker_transitions),
        "p50_latency_us": round(report.p50_latency_us, 1),
        "p99_latency_us": round(report.p99_latency_us, 1),
        "max_queue_depth": report.max_queue_depth,
    }
    return summary, failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "streaming_sweep.json"
    )
    args = parser.parse_args()

    t0 = time.time()
    demo_summary, failures = check_demo(args.seed)

    if args.quick:
        num_windows, load_factors = 80, (0.5, 2.0, 6.0)
    else:
        num_windows, load_factors = 240, (0.5, 1.0, 2.0, 4.0, 8.0)
    stream = make_bursty_stream(
        num_windows=num_windows,
        burst_factor=1.0,
        burst_windows=(0, 0),
        seed=args.seed + 1,
    )
    result = run_streaming_sweep(
        stream, 10_000, load_factors=load_factors, seed=args.seed
    )
    failures += degradation_violations(result)
    scores = overload_scores(result)
    elapsed = time.time() - t0

    payload = {
        "elapsed_s": round(elapsed, 2),
        "demo": demo_summary,
        "load_factors": list(load_factors),
        "curves": {
            name: [round(f, 4) for f in result.delivered(name)]
            for name in result.curves
        },
        "overload_scores": {k: round(v, 4) for k, v in scores.items()},
        "failures": failures,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"streaming sweep finished in {elapsed:.1f}s -> {args.output}")
    print(
        f"  demo: {demo_summary['processed']}/{demo_summary['offered']} delivered, "
        f"tiers {demo_summary['tiers_engaged']}, "
        f"breakers opened {demo_summary['breakers_opened']}"
    )
    for name in result.curves:
        curve = ", ".join(
            f"{lf:g}x:{f:.3f}" for lf, f in zip(load_factors, result.delivered(name))
        )
        print(f"  {name}: {curve}  (overload score {scores[name]:.3f})")
    if failures:
        print("FAILURES:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("accounting exact, breakers recovered, degradation monotone")
    return 0


if __name__ == "__main__":
    sys.exit(main())
