#!/usr/bin/env python
"""Run the streaming overload sweep and the seeded burst demo.

Two checks back the Table-I overload cell:

1. the deterministic 10x burst demo — a rate burst plus a transient
   primary-stage outage streamed through the resilient executor.  The
   run must complete with exact window/event conservation
   (``processed + expired + shed + failed == offered``, ``failed == 0``),
   engage at least two shedding tiers, and every circuit breaker that
   opens must recover through its half-open probes;
2. the load sweep — each paradigm's delivered-window fraction across
   rising offered load must form a monotone (graceful) degradation
   curve with balanced accounting at every point;
3. the observability smoke — the demo's metrics snapshot must be
   schema-valid and non-empty, its per-stage span counts and
   shed/trip/expiry counters must reconcile exactly with the
   :class:`StreamReport` accounting, and re-running the same seed must
   produce a byte-identical snapshot (virtual-time determinism).

Exits non-zero when any check fails, so CI uses it as a smoke test.

Usage:
    python tools/run_streaming_sweep.py               # full-size run
    python tools/run_streaming_sweep.py --quick       # CI-sized run
    python tools/run_streaming_sweep.py --output /tmp/streaming.json
    python tools/run_streaming_sweep.py --metrics-output /tmp/metrics.json
"""

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.observability import to_json, to_prometheus, validate_snapshot
from repro.streaming import (
    degradation_violations,
    make_bursty_stream,
    overload_scores,
    run_overload_demo,
    run_streaming_sweep,
    validate_report,
)


def check_demo(seed: int) -> tuple[dict, list[str]]:
    """Run the burst demo and collect acceptance failures."""
    report, executor = run_overload_demo(seed=seed, burst_factor=10.0)
    failures = validate_report(report, context="demo")
    if report.failed != 0:
        failures.append(f"demo run failed {report.failed} window(s)")
    if len(report.tiers_engaged) < 2:
        failures.append(
            f"only {report.tiers_engaged} shedding tier(s) engaged, expected >= 2"
        )
    opened = [
        name
        for name, b in executor.breakers.items()
        if any(t.to_state.value == "open" for t in b.transitions)
    ]
    if not opened:
        failures.append("no breaker opened despite the transient outage")
    unrecovered = [
        name for name, b in executor.breakers.items() if not b.recovered
    ]
    if unrecovered:
        failures.append(f"breaker(s) never recovered: {unrecovered}")
    summary = {
        "offered": report.offered,
        "processed": report.processed,
        "expired": report.expired,
        "shed_windows": report.shed_windows,
        "failed": report.failed,
        "delivered_fraction": round(report.delivered_fraction, 4),
        "tiers_engaged": report.tiers_engaged,
        "shed_fractions_by_tier": {
            k: round(v, 4) for k, v in report.shed_fractions_by_tier().items()
        },
        "breakers_opened": opened,
        "breaker_transitions": len(report.breaker_transitions),
        "p50_latency_us": round(report.p50_latency_us, 1),
        "p99_latency_us": round(report.p99_latency_us, 1),
        "max_queue_depth": report.max_queue_depth,
    }
    return summary, failures


def check_observability(seed: int) -> tuple[dict, list[str], str]:
    """Snapshot validity, span/counter reconciliation and determinism.

    Runs the seeded burst demo twice: the first run's snapshot is
    checked structurally and reconciled against its report, the second
    must serialise byte-identically (the virtual-time clock makes the
    whole trace deterministic).

    Returns:
        ``(summary, failures, snapshot_json)``.
    """
    report, executor = run_overload_demo(seed=seed, burst_factor=10.0)
    snapshot = executor.snapshot()
    failures = [f"snapshot invalid: {p}" for p in validate_snapshot(snapshot)]
    registry = executor.obs.registry
    if registry.counter_total("stream_windows_total") == 0:
        failures.append("metrics snapshot recorded no windows (empty run?)")
    if not snapshot["trace"]:
        failures.append("trace tree is empty")

    counts = executor.obs.tracer.span_counts()
    failed_serve = registry.counter_value(
        "stream_windows_total", {"outcome": "failed_serve"}
    )
    checks = [
        ("ingest span count", counts.get("ingest", 0), report.offered),
        ("expire span count", counts.get("expire", 0), report.expired),
        (
            "serve span count",
            counts.get("serve", 0),
            report.processed + int(failed_serve),
        ),
        (
            "offered window counter",
            registry.counter_value("stream_windows_total", {"outcome": "offered"}),
            report.offered,
        ),
        (
            "processed window counter",
            registry.counter_value("stream_windows_total", {"outcome": "processed"}),
            report.processed,
        ),
        (
            "expired window counter",
            registry.counter_value("stream_windows_total", {"outcome": "expired"}),
            report.expired,
        ),
        (
            "shed window counter",
            registry.counter_value("stream_windows_total", {"outcome": "shed"}),
            report.shed_windows,
        ),
        (
            "shed events counter",
            registry.counter_total("stream_shed_events_total"),
            report.ledger.total_events_shed,
        ),
        (
            "breaker trip counter",
            registry.counter_total("stream_breaker_transitions_total"),
            len(report.breaker_transitions),
        ),
        (
            "latency histogram count",
            sum(
                h["count"]
                for h in snapshot["metrics"]["histograms"]
                if h["name"] == "stream_latency_us"
            ),
            report.processed,
        ),
    ]
    for name, stats in report.stage_stats.items():
        checks.append(
            (f"call:{name} span count", counts.get(f"call:{name}", 0), stats.calls)
        )
    for label, got, want in checks:
        if int(got) != int(want):
            failures.append(f"{label} {int(got)} != report's {int(want)}")

    snapshot_json = to_json(snapshot)
    _, executor2 = run_overload_demo(seed=seed, burst_factor=10.0)
    if to_json(executor2.snapshot()) != snapshot_json:
        failures.append("two identical seeded runs produced different snapshots")

    summary = {
        "spans": sum(counts.values()),
        "counter_series": len(snapshot["metrics"]["counters"]),
        "snapshot_bytes": len(snapshot_json),
        "reconciliation_checks": len(checks),
    }
    return summary, failures, snapshot_json


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "streaming_sweep.json"
    )
    parser.add_argument(
        "--metrics-output",
        type=Path,
        default=REPO_ROOT / "streaming_metrics.json",
        help="where the demo's instrumentation snapshot artifact goes "
        "(a Prometheus text twin lands next to it with a .prom suffix)",
    )
    args = parser.parse_args()

    t0 = time.time()
    demo_summary, failures = check_demo(args.seed)
    obs_summary, obs_failures, snapshot_json = check_observability(args.seed)
    failures += obs_failures
    args.metrics_output.write_text(snapshot_json)
    args.metrics_output.with_suffix(".prom").write_text(
        to_prometheus(json.loads(snapshot_json))
    )

    if args.quick:
        num_windows, load_factors = 80, (0.5, 2.0, 6.0)
    else:
        num_windows, load_factors = 240, (0.5, 1.0, 2.0, 4.0, 8.0)
    stream = make_bursty_stream(
        num_windows=num_windows,
        burst_factor=1.0,
        burst_windows=(0, 0),
        seed=args.seed + 1,
    )
    result = run_streaming_sweep(
        stream, 10_000, load_factors=load_factors, seed=args.seed
    )
    failures += degradation_violations(result)
    scores = overload_scores(result)
    elapsed = time.time() - t0

    payload = {
        "elapsed_s": round(elapsed, 2),
        "demo": demo_summary,
        "observability": obs_summary,
        "load_factors": list(load_factors),
        "curves": {
            name: [round(f, 4) for f in result.delivered(name)]
            for name in result.curves
        },
        "overload_scores": {k: round(v, 4) for k, v in scores.items()},
        "failures": failures,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"streaming sweep finished in {elapsed:.1f}s -> {args.output}")
    print(
        f"  observability: {obs_summary['spans']} spans, "
        f"{obs_summary['counter_series']} counter series, "
        f"{obs_summary['reconciliation_checks']} reconciliation checks "
        f"-> {args.metrics_output}"
    )
    print(
        f"  demo: {demo_summary['processed']}/{demo_summary['offered']} delivered, "
        f"tiers {demo_summary['tiers_engaged']}, "
        f"breakers opened {demo_summary['breakers_opened']}"
    )
    for name in result.curves:
        curve = ", ".join(
            f"{lf:g}x:{f:.3f}" for lf, f in zip(load_factors, result.delivered(name))
        )
        print(f"  {name}: {curve}  (overload score {scores[name]:.3f})")
    if failures:
        print("FAILURES:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("accounting exact, breakers recovered, degradation monotone")
    return 0


if __name__ == "__main__":
    sys.exit(main())
