#!/usr/bin/env python
"""Run the hot-path regression benchmark and append to BENCH_hotpaths.json.

Each invocation appends one run record (timestamp, git revision, event
count, per-hot-path before/after throughput) to the JSON trajectory
file at the repository root, so successive PRs can see whether the
vectorized hot paths are holding their speedups.

Usage:
    python tools/run_hotpath_bench.py            # full run, 100k events
    python tools/run_hotpath_bench.py --quick    # CI-sized run, 5k events
    python tools/run_hotpath_bench.py --n 50000 --output /tmp/bench.json
"""

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_hotpath_regression import DEFAULT_N, QUICK_N, bench_all, format_table


def git_revision() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help=f"run at {QUICK_N} events (CI mode)"
    )
    parser.add_argument(
        "--n", type=int, default=None, help=f"event count (default {DEFAULT_N})"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_hotpaths.json",
        help="trajectory file to append to",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    n = args.n if args.n is not None else (QUICK_N if args.quick else DEFAULT_N)
    results = bench_all(n, seed=args.seed)
    run = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "git_rev": git_revision(),
        "quick": bool(args.quick),
        "n_events": n,
        "results": results,
    }

    if args.output.exists():
        data = json.loads(args.output.read_text())
    else:
        data = {"runs": []}
    data["runs"].append(run)
    args.output.write_text(json.dumps(data, indent=2) + "\n")

    print(format_table(results))
    print(f"\nappended run ({run['git_rev']}, n={n}) to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
