#!/usr/bin/env python
"""Benchmark per-event incremental GNN serving and append to BENCH_async.json.

Runs :func:`benchmarks.bench_async_inference.bench_async_inference` on a
synthetic stream, records per-event latency and MACs against the
per-window full recompute, and appends a run record to
``BENCH_async.json``.  The benchmark itself asserts the serving
invariant (per-event scores bit-equal to the windowed forward), so a
numerics regression fails the run, not just the CI equivalence tests.

The session runs with a wall-clock :class:`~repro.observability.
Instrumentation` attached; ``--metrics-output`` dumps the resulting
snapshot (per-event latency histogram, events/MACs counters) and the
run fails if :func:`~repro.observability.validate_snapshot` objects.

Usage:
    PYTHONPATH=src:benchmarks python tools/run_async_bench.py
    PYTHONPATH=src:benchmarks python tools/run_async_bench.py --quick \
        --output /tmp/bench.json --metrics-output /tmp/async_metrics.json

Exits non-zero when the snapshot is invalid or, outside ``--quick``,
when the fast path fails the >=10x latency advantage the ROADMAP claims
at 10k-event windows.
"""

from __future__ import annotations

import argparse
import json
import resource
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "benchmarks"))

from bench_async_inference import (  # noqa: E402
    DEFAULT_N,
    QUICK_N,
    bench_async_inference,
    bench_bounded_inference,
    format_bounded_table,
    format_table,
)
from repro.observability import (  # noqa: E402
    Instrumentation,
    to_json,
    validate_snapshot,
)

#: Full runs must beat the windowed recompute by at least this factor.
MIN_LATENCY_RATIO = 10.0


def peak_rss_bytes() -> int:
    """This process's peak resident set size (``ru_maxrss`` is KB on Linux).

    Recorded on every run so ``BENCH_async.json`` and
    ``BENCH_memory.json`` report comparable memory columns.
    """
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def git_revision() -> str:
    """Current commit hash, or "unknown" outside a checkout."""
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=REPO,
                capture_output=True,
                text=True,
                check=True,
            ).stdout.strip()
        )
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"CI mode: {QUICK_N} events, latency-ratio gate relaxed",
    )
    parser.add_argument(
        "--n", type=int, default=None, help="window size in events (overrides mode)"
    )
    parser.add_argument("--seed", type=int, default=0, help="stream seed")
    parser.add_argument(
        "--bounded",
        action="store_true",
        help="also benchmark bounded-state mode (drift + peak state vs exact)",
    )
    parser.add_argument(
        "--bounded-n",
        type=int,
        default=None,
        help="stream length of the bounded-mode run (defaults to --n)",
    )
    parser.add_argument(
        "--capacity",
        type=int,
        default=4096,
        help="max_live_nodes budget of the bounded-mode run",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO / "BENCH_async.json",
        help="run-record file to append to",
    )
    parser.add_argument(
        "--metrics-output",
        type=Path,
        default=None,
        help="write the observability snapshot (JSON) here",
    )
    args = parser.parse_args(argv)

    n = args.n if args.n is not None else (QUICK_N if args.quick else DEFAULT_N)
    obs = Instrumentation()  # wall clock: real per-event latencies
    record = bench_async_inference(n, seed=args.seed, instrumentation=obs)
    print(format_table(record))

    failures: list[str] = []
    snapshot = obs.snapshot()
    failures += [f"snapshot invalid: {p}" for p in validate_snapshot(snapshot)]
    hists = {h["name"]: h for h in snapshot["metrics"]["histograms"]}
    latency_hist = hists.get("incremental_event_latency_us")
    if latency_hist is None or latency_hist["count"] != n:
        failures.append(
            "incremental_event_latency_us histogram missing or short: "
            f"expected {n} observations, got {latency_hist}"
        )
    if not args.quick and record["latency_ratio"] < MIN_LATENCY_RATIO:
        failures.append(
            f"fast path only {record['latency_ratio']:.1f}x faster than "
            f"recompute at n={n}; ROADMAP claims >={MIN_LATENCY_RATIO:.0f}x"
        )

    if args.metrics_output is not None:
        args.metrics_output.write_text(to_json(snapshot))
        print(f"metrics snapshot -> {args.metrics_output}")

    run = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "git_rev": git_revision(),
        "quick": bool(args.quick),
        "seed": args.seed,
        "peak_rss_bytes": peak_rss_bytes(),
        **record,
    }
    if args.output.exists():
        data = json.loads(args.output.read_text())
    else:
        data = {"runs": []}
    data["runs"].append(run)

    if args.bounded:
        bounded_n = args.bounded_n if args.bounded_n is not None else n
        bounded = bench_bounded_inference(
            bounded_n, capacity=args.capacity, seed=args.seed
        )
        print(format_bounded_table(bounded))
        if not bounded["bounded_state_flat"]:
            failures.append(
                "bounded-state footprint still grew over the final third "
                f"of a {bounded_n}-event stream (capacity {args.capacity})"
            )
        data["runs"].append(
            {
                "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
                "git_rev": git_revision(),
                "quick": bool(args.quick),
                "seed": args.seed,
                "peak_rss_bytes": peak_rss_bytes(),
                **bounded,
            }
        )

    args.output.write_text(json.dumps(data, indent=2) + "\n")
    print(f"run record -> {args.output}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
