#!/usr/bin/env python
"""Run the incremental-serving robustness sweep (session-fault curve).

Trains a GNN pipeline on a synthetic gestures dataset, then serves a
held-out split window by window through auditing incremental sessions
while injecting mid-window session faults (state corruption, NaN
features, clock skew) at each severity.  Writes the degradation curve,
the recovery-path counters (audits tripped, restores, crashes,
fallbacks) and the retained-accuracy scores to JSON.  Exits non-zero
when the sweep fails its own acceptance criteria: a dirty clean point
(faults or trips at severity 0), a stressed point that never exercised
the recovery machinery, a non-finite score, or an invalid observability
snapshot — so CI can use it as a smoke test.

Usage:
    PYTHONPATH=src python tools/run_incremental_sweep.py          # full-size
    PYTHONPATH=src python tools/run_incremental_sweep.py --quick  # CI-sized
    PYTHONPATH=src python tools/run_incremental_sweep.py \
        --max-live-nodes 512   # bounded-state serving mode
"""

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro.core import GNNPipeline
from repro.datasets import make_gestures_dataset
from repro.gnn import GraphBuildConfig
from repro.observability import Instrumentation, to_json, validate_snapshot
from repro.reliability import (
    run_incremental_robustness,
    session_robustness_scores,
)


def make_pipeline(quick: bool, seed: int) -> GNNPipeline:
    if quick:
        return GNNPipeline(
            config=GraphBuildConfig(
                radius=4.0, time_scale_us=3000.0, max_events=150, max_degree=8
            ),
            hidden=8,
            epochs=2,
            seed=seed,
        )
    return GNNPipeline(seed=seed)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--max-live-nodes",
        type=int,
        default=None,
        help="serve in bounded-state mode with this live-node budget",
    )
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "incremental_robustness.json"
    )
    parser.add_argument(
        "--metrics-output",
        type=Path,
        default=REPO_ROOT / "incremental_robustness_metrics.json",
        help="where the sweep's instrumentation snapshot artifact goes",
    )
    args = parser.parse_args()

    if args.quick:
        train = make_gestures_dataset(
            num_per_class=2, duration_us=50_000, seed=args.seed
        )
        test = make_gestures_dataset(
            num_per_class=1, duration_us=50_000, seed=args.seed + 100
        )
        severities = (0.0, 1.0)
    else:
        train = make_gestures_dataset(
            num_per_class=6, duration_us=60_000, seed=args.seed
        )
        test = make_gestures_dataset(
            num_per_class=3, duration_us=60_000, seed=args.seed + 100
        )
        severities = (0.0, 0.5, 1.0)

    pipeline = make_pipeline(args.quick, args.seed)
    instrumentation = Instrumentation()  # wall clock: batch sweep
    pipeline.instrument(instrumentation)
    t0 = time.time()
    result = run_incremental_robustness(
        train,
        test,
        severities=severities,
        pipeline=pipeline,
        seed=args.seed,
        max_live_nodes=args.max_live_nodes,
    )
    elapsed = time.time() - t0
    scores = session_robustness_scores(result)

    failures: list[str] = []
    snapshot = instrumentation.snapshot()
    failures += [f"metrics snapshot invalid: {p}" for p in validate_snapshot(snapshot)]
    registry = instrumentation.registry
    if registry.counter_total("incremental_events_total") == 0:
        failures.append("no per-event serving work reached the sessions")
    args.metrics_output.write_text(to_json(snapshot))

    clean, stressed = result.points[0], result.points[-1]
    if clean.faults_injected or clean.audits_tripped or clean.crashes:
        failures.append(
            "clean point is dirty: "
            f"{clean.faults_injected} faults, {clean.audits_tripped} trips, "
            f"{clean.crashes} crashes at severity 0"
        )
    if not np.isfinite(clean.accuracy):
        failures.append("clean point has no finite accuracy")
    if stressed.faults_injected == 0:
        failures.append("stressed point injected no session faults")
    if stressed.audits_tripped == 0:
        failures.append("stressed point: no divergence audit ever tripped")
    if stressed.restores == 0:
        failures.append("stressed point: no checkpoint restore ever ran")
    if not np.isfinite(scores["GNN"]) or not 0.0 <= scores["GNN"] <= 1.0:
        failures.append(f"GNN retained score out of range: {scores['GNN']}")

    payload = {
        "elapsed_s": round(elapsed, 2),
        "max_live_nodes": args.max_live_nodes,
        **result.to_dict(),
        "session_robustness_scores": {
            k: (round(v, 4) if np.isfinite(v) else None) for k, v in scores.items()
        },
        "failures": failures,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"incremental robustness sweep finished in {elapsed:.1f}s -> {args.output}")
    mode = (
        f"bounded (max_live_nodes={args.max_live_nodes})"
        if args.max_live_nodes
        else "exact"
    )
    print(f"  serving mode: {mode}")
    for p in result.points:
        print(
            f"  severity {p.severity:.2f}: accuracy {p.accuracy:.3f} over "
            f"{p.windows} windows ({p.faults_injected} faults, "
            f"{p.audits_tripped} trips, {p.crashes} crashes, "
            f"{p.restores} restores, {p.fallbacks} fallbacks)"
        )
    print(f"  GNN retained score: {scores['GNN']:.3f}")
    if failures:
        print("FAILURES:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("clean point clean; faulted points recovered through the session's defences")
    return 0


if __name__ == "__main__":
    sys.exit(main())
