#!/usr/bin/env python
"""Lint: every NumPy sort in src/ must be deterministic under ties.

``np.sort`` / ``np.argsort`` default to an unstable introsort, so any
sort whose keys can tie is a reproducibility hazard — the two bugs this
rule grew from were an ``np.argsort`` fallback in the radius-graph
builder and the channel-pruning norm sort, both of which reordered tied
keys from run to run.  The rule:

* every ``np.sort(`` / ``np.argsort(`` call must pass
  ``kind="stable"``, OR
* carry a ``# sort-ok: <reason>`` pragma on the call's first line or
  the line directly above it, asserting the sort is order-canonical
  (packed unique keys, a pure value sort whose equal elements are
  interchangeable, a permutation, ...).

Calls spanning several lines are handled by balanced-parenthesis
scanning, so a ``kind="stable"`` on a continuation line counts.

Usage:
    python tools/check_determinism.py            # lints src/
    python tools/check_determinism.py PATH ...   # lints the given trees
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Call heads the lint tracks.
_CALL_RE = re.compile(r"\bnp\.(?:arg)?sort\(")

#: Accepted stability argument, single or double quotes.
_STABLE_RE = re.compile(r"kind\s*=\s*(['\"])stable\1")

#: Allowlist pragma. Must carry a reason after the colon.
_PRAGMA_RE = re.compile(r"#\s*sort-ok:\s*\S")


def _call_text(source: str, open_paren: int) -> str:
    """The call's argument text from its opening paren to the balanced close.

    Falls back to the rest of the file when unbalanced (a syntax error —
    the linted call text is then a superset, which can only suppress a
    violation in a file Python would reject anyway).
    """
    depth = 0
    for pos in range(open_paren, len(source)):
        ch = source[pos]
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth == 0:
                return source[open_paren : pos + 1]
    return source[open_paren:]


def lint_source(source: str, path: str = "<string>") -> list[str]:
    """All violations in one file's source, as ``path:line: message``."""
    lines = source.splitlines()
    violations = []
    for match in _CALL_RE.finditer(source):
        call = _call_text(source, match.end() - 1)
        if _STABLE_RE.search(call):
            continue
        line_no = source.count("\n", 0, match.start()) + 1  # 1-indexed
        here = lines[line_no - 1]
        above = lines[line_no - 2] if line_no >= 2 else ""
        if _PRAGMA_RE.search(here) or _PRAGMA_RE.search(above):
            continue
        head = match.group(0)[:-1]
        violations.append(
            f"{path}:{line_no}: {head}(...) without kind=\"stable\" — "
            "add it, or mark an order-canonical sort with '# sort-ok: <reason>'"
        )
    return violations


def lint_paths(paths: list[Path]) -> list[str]:
    """Violations across every ``*.py`` file under the given trees."""
    violations = []
    for root in paths:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for file in files:
            rel = file.relative_to(REPO_ROOT) if file.is_relative_to(REPO_ROOT) else file
            violations += lint_source(file.read_text(), str(rel))
    return violations


def main(argv: list[str]) -> int:
    paths = [Path(a).resolve() for a in argv] or [REPO_ROOT / "src"]
    violations = lint_paths(paths)
    for violation in violations:
        print(violation)
    if violations:
        print(f"{len(violations)} non-deterministic sort(s)")
        return 1
    print("determinism lint: all NumPy sorts stable or allowlisted")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
