#!/usr/bin/env python
"""Benchmark dense vs compact graph storage and append to BENCH_memory.json.

Runs :mod:`benchmarks.bench_graph_memory` on a synthetic stream: one
*subprocess per representation* (so each leg's peak RSS is measured in
isolation), an in-process edge-set equivalence spot check, and — outside
``--smoke`` — the quantization accuracy-delta leg on the gestures task.

Usage:
    PYTHONPATH=src:benchmarks python tools/run_memory_bench.py          # 1M events
    PYTHONPATH=src:benchmarks python tools/run_memory_bench.py --smoke  # CI gate

Exits non-zero when the compact representation fails the bytes/event
regression gate (>= 4x smaller than dense), or, outside ``--smoke``,
when the quantization accuracy delta exceeds 1 point.
"""

from __future__ import annotations

import argparse
import json
import resource
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "benchmarks"))

from bench_graph_memory import (  # noqa: E402
    DEFAULT_N,
    MIN_BYTES_RATIO,
    SMOKE_N,
    bench_accuracy_delta,
    bench_graph_memory,
    format_table,
    measure_representation,
)

#: Full runs must retain accuracy within this many points of dense.
MAX_ACCURACY_DELTA_POINTS = 1.0

#: Cap on the in-process edge-equivalence spot check (the per-leg
#: subprocesses handle the full size; this re-verifies correctness
#: without doubling the peak RSS of the runner itself).
EDGE_CHECK_N = 50_000


def peak_rss_bytes() -> int:
    """This process's peak resident set size (``ru_maxrss`` is KB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def git_revision() -> str:
    """Current commit hash, or "unknown" outside a checkout."""
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=REPO,
                capture_output=True,
                text=True,
                check=True,
            ).stdout.strip()
        )
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def run_leg(representation: str, n: int, seed: int) -> dict:
    """One representation in a fresh subprocess; returns its record."""
    proc = subprocess.run(
        [
            sys.executable,
            str(Path(__file__).resolve()),
            "--leg",
            representation,
            "--n",
            str(n),
            "--seed",
            str(seed),
        ],
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"{representation} leg failed:\n{proc.stdout}\n{proc.stderr}"
        )
    return json.loads(proc.stdout)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"CI mode: {SMOKE_N} events, accuracy leg skipped",
    )
    parser.add_argument(
        "--n", type=int, default=None, help="stream length in events (overrides mode)"
    )
    parser.add_argument("--seed", type=int, default=0, help="stream seed")
    parser.add_argument(
        "--skip-accuracy",
        action="store_true",
        help="skip the quantization accuracy-delta leg (it trains a model)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO / "BENCH_memory.json",
        help="run-record file to append to",
    )
    parser.add_argument(
        "--leg",
        choices=("dense", "compact"),
        default=None,
        help=argparse.SUPPRESS,  # internal: single-representation subprocess
    )
    args = parser.parse_args(argv)

    n = args.n if args.n is not None else (SMOKE_N if args.smoke else DEFAULT_N)

    if args.leg is not None:
        record = measure_representation(args.leg, n, seed=args.seed)
        record["peak_rss_bytes"] = peak_rss_bytes()
        print(json.dumps(record))
        return 0

    legs = {rep: run_leg(rep, n, args.seed) for rep in ("dense", "compact")}
    ratio = (
        legs["dense"]["bytes_per_event"] / legs["compact"]["bytes_per_event"]
    )
    record = {
        "n_events": n,
        "num_edges": legs["dense"]["num_edges"],
        "mean_degree": legs["dense"]["mean_degree"],
        "dense_bytes_per_event": legs["dense"]["bytes_per_event"],
        "compact_bytes_per_event": legs["compact"]["bytes_per_event"],
        "bytes_ratio": ratio,
        "dense_peak_rss_bytes": legs["dense"]["peak_rss_bytes"],
        "compact_peak_rss_bytes": legs["compact"]["peak_rss_bytes"],
        "dense_build_s": legs["dense"]["build_s"],
        "compact_build_s": legs["compact"]["build_s"],
        "legs": legs,
    }

    failures: list[str] = []
    if legs["dense"]["num_edges"] != legs["compact"]["num_edges"]:
        failures.append(
            "edge counts diverged between representations: "
            f"{legs['dense']['num_edges']} dense vs "
            f"{legs['compact']['num_edges']} compact"
        )
    # Spot-check full edge-set equality in process (bounded size, so the
    # runner's own RSS stays out of the per-leg numbers).
    check = bench_graph_memory(min(n, EDGE_CHECK_N), seed=args.seed)
    record["edge_check_n"] = check["n_events"]
    if ratio < MIN_BYTES_RATIO:
        failures.append(
            f"compact only {ratio:.2f}x smaller than dense at n={n}; "
            f"the regression gate requires >={MIN_BYTES_RATIO:.0f}x"
        )

    if not args.smoke and not args.skip_accuracy:
        accuracy = bench_accuracy_delta(seed=args.seed)
        record.update(accuracy)
        if abs(accuracy["accuracy_delta_points"]) > MAX_ACCURACY_DELTA_POINTS:
            failures.append(
                "quantization cost "
                f"{accuracy['accuracy_delta_points']:.1f} accuracy points; "
                f"the gate allows {MAX_ACCURACY_DELTA_POINTS:.0f}"
            )

    print(format_table(record))

    run = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "git_rev": git_revision(),
        "smoke": bool(args.smoke),
        "seed": args.seed,
        **record,
    }
    if args.output.exists():
        data = json.loads(args.output.read_text())
    else:
        data = {"runs": []}
    data["runs"].append(run)
    args.output.write_text(json.dumps(data, indent=2) + "\n")
    print(f"run record -> {args.output}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
