#!/usr/bin/env python
"""Benchmark the sharded executor and append to BENCH_parallel.json.

Runs the same comparison grid through four legs — serial (the
baseline), the process backend, the thread backend with a cold
per-shard cache, and the thread backend with the shared
representation-cache tier (``CacheConfig(shared=True)``) — verifies
each parallel leg against the serial one, and appends one run record
(timestamp, git revision, per-leg wall times and speedups, CPU count,
bit-identity flags, cold vs shared cache stats) to the JSON trajectory
file at the repository root.  Exits non-zero if any parallel leg
diverges from serial.

Bit-identity is leg-specific by design: the cold legs must match the
serial results *and* the merged instrumentation snapshot byte for
byte; the shared-cache leg must match the serial results byte for
byte, while its snapshot legitimately drops the per-shard
``repr_cache_*`` counters (the shared tier is counted once by the
coordinator, never bound to shard instrumentation — that is what keeps
its miss totals scheduling-independent).

The speedups are reported honestly: on a single-CPU container neither
a process pool nor a thread pool can beat serial wall-clock on the
same work (``cpu_count`` is part of the record for exactly that
reason).  The shared-cache leg is where parallelism pays on any CPU
count — it eliminates the redundant encoder recomputation the cold
legs repeat per shard.

Usage:
    python tools/run_parallel_bench.py            # full grid
    python tools/run_parallel_bench.py --quick    # CI-sized grid
    python tools/run_parallel_bench.py --quick --check-thread-speedup
                                       # CI gate: fail if the best
                                       # thread leg is slower than serial
"""

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro.core import CNNConfig, GNNConfig, SNNConfig
from repro.datasets import make_shapes_dataset, train_test_split
from repro.events import Resolution
from repro.observability import to_json
from repro.parallel import CacheConfig, ParallelConfig, SweepSpec, run_sweep


def git_revision() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def build_grid(quick: bool):
    if quick:
        ds = make_shapes_dataset(
            num_per_class=3, resolution=Resolution(16, 16), seed=3
        )
        configs = {
            "SNN": SNNConfig(num_steps=6, hidden=8, epochs=2),
            "CNN": CNNConfig(base_width=4, epochs=2),
            "GNN": GNNConfig(max_events=60, hidden=6, epochs=2),
        }
        conditions = (0, 1)
    else:
        ds = make_shapes_dataset(
            num_per_class=4, resolution=Resolution(24, 24), seed=3
        )
        configs = {
            "SNN": SNNConfig(num_steps=10, hidden=16, epochs=4),
            "CNN": CNNConfig(base_width=6, epochs=4),
            "GNN": GNNConfig(max_events=120, hidden=8, epochs=4),
        }
        conditions = (0, 1, 2)
    train, test = train_test_split(ds, 0.4, np.random.default_rng(0))
    return train, test, configs, conditions


def timed_run(
    train,
    test,
    configs,
    conditions,
    parallel: ParallelConfig,
    cache=None,
    repeats: int = 1,
):
    """Run the sweep ``repeats`` times; return (best wall time, result).

    The minimum over repeats is the standard low-noise timing
    estimator: every source of interference (scheduler, allocator,
    GC) only ever adds time.  The sweeps are deterministic, so every
    repeat returns the identical result object content.
    """
    spec = SweepSpec(
        kind="comparison",
        train=train,
        test=test,
        conditions=conditions,
        pipelines=configs,
        parallel=parallel,
        cache=cache if cache is not None else CacheConfig(),
    )
    best_s, result = float("inf"), None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        out = run_sweep(spec)
        elapsed = time.perf_counter() - start
        if elapsed < best_s:
            best_s = elapsed
        result = out
    return best_s, result


def comparison_bytes(result) -> str:
    results = result if isinstance(result, list) else [result]
    return repr(
        [
            {name: vars(m) for name, m in sorted(r.metrics.items())}
            for r in results
        ]
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized grid")
    parser.add_argument(
        "--check-thread-speedup",
        action="store_true",
        help="exit non-zero unless the best thread leg beats serial",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed repeats per leg; the minimum is recorded",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_parallel.json",
        help="trajectory file to append to",
    )
    args = parser.parse_args(argv)

    train, test, configs, conditions = build_grid(args.quick)
    num_cells = 3 * len(conditions)
    print(
        f"grid: 3 paradigms x {len(conditions)} seeds = {num_cells} cells"
        f" (min of {args.repeats} repeats per leg)"
    )

    serial_s, serial = timed_run(
        train, test, configs, conditions, ParallelConfig(n_workers=1),
        repeats=args.repeats,
    )
    print(f"serial backend:                 {serial_s:8.2f}s")
    process4_s, process4 = timed_run(
        train, test, configs, conditions,
        ParallelConfig(n_workers=4, backend="process"),
        repeats=args.repeats,
    )
    print(f"process backend (4 workers):    {process4_s:8.2f}s")
    thread4_s, thread4 = timed_run(
        train, test, configs, conditions,
        ParallelConfig(n_workers=4, backend="thread"),
        repeats=args.repeats,
    )
    print(f"thread backend (4 workers):     {thread4_s:8.2f}s")
    thread4_shared_s, thread4_shared = timed_run(
        train, test, configs, conditions,
        ParallelConfig(n_workers=4, backend="thread"),
        cache=CacheConfig(shared=True),
        repeats=args.repeats,
    )
    print(f"thread + shared cache (4 wkrs): {thread4_shared_s:8.2f}s")

    serial_bytes = comparison_bytes(serial.result)
    serial_snap = to_json(serial.snapshot)
    # Cold legs: results and merged snapshot must both match serial.
    identity = {
        "process4": comparison_bytes(process4.result) == serial_bytes
        and to_json(process4.snapshot) == serial_snap,
        "thread4": comparison_bytes(thread4.result) == serial_bytes
        and to_json(thread4.snapshot) == serial_snap,
        # Shared-cache leg: results must match; the snapshot drops the
        # per-shard repr_cache_* counters by design (coordinator-owned
        # cache), so only the results are compared.
        "thread4_shared": comparison_bytes(thread4_shared.result)
        == serial_bytes,
    }
    bit_identical = all(identity.values())

    def ratio(base, leg):
        return base / leg if leg > 0 else float("inf")

    speedups = {
        "process4": ratio(serial_s, process4_s),
        "thread4": ratio(serial_s, thread4_s),
        "thread4_shared": ratio(serial_s, thread4_shared_s),
    }
    cpu_count = os.cpu_count() or 1
    for leg, s in speedups.items():
        print(f"speedup {leg:<15} {s:5.2f}x  bit-identical: {identity[leg]}")
    print(f"({cpu_count} CPU(s) available)")

    run = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "git_rev": git_revision(),
        "quick": bool(args.quick),
        "repeats": args.repeats,
        "results": {
            "grid": {
                "paradigms": 3,
                "seeds": len(conditions),
                "cells": num_cells,
            },
            "serial_s": serial_s,
            "process4_s": process4_s,
            "thread4_s": thread4_s,
            "thread4_shared_s": thread4_shared_s,
            # Kept for trajectory continuity with pre-thread-backend
            # records, where "parallel4"/"speedup" meant the process leg.
            "parallel4_s": process4_s,
            "speedup": speedups["process4"],
            "speedup_thread4": speedups["thread4"],
            "speedup_thread4_shared": speedups["thread4_shared"],
            "cpu_count": cpu_count,
            "bit_identical": bit_identical,
            "bit_identical_legs": identity,
            "cache_stats_cold": serial.cache_stats,
            "cache_stats_shared": thread4_shared.cache_stats,
        },
    }
    if args.output.exists():
        data = json.loads(args.output.read_text())
    else:
        data = {"runs": []}
    data["runs"].append(run)
    args.output.write_text(json.dumps(data, indent=2) + "\n")
    print(f"appended run ({run['git_rev']}) to {args.output}")

    if not bit_identical:
        failed = [leg for leg, ok in identity.items() if not ok]
        print(
            f"FAIL: legs not bit-identical to serial: {', '.join(failed)}",
            file=sys.stderr,
        )
        return 1
    if args.check_thread_speedup:
        best_thread = max(speedups["thread4"], speedups["thread4_shared"])
        if best_thread < 1.0:
            print(
                f"FAIL: best thread-leg speedup {best_thread:.2f}x < 1.0 "
                "— the thread backend no longer pays for itself",
                file=sys.stderr,
            )
            return 1
        print(f"thread-speedup gate passed ({best_thread:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
