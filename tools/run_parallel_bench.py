#!/usr/bin/env python
"""Benchmark the sharded executor and append to BENCH_parallel.json.

Runs the same comparison grid twice — serial backend, then the process
backend with four workers — verifies the results and merged snapshots
are byte-identical, and appends one run record (timestamp, git
revision, wall times, speedup, CPU count, bit-identity flag) to the
JSON trajectory file at the repository root.  Exits non-zero if the
parallel run is not bit-identical to the serial one.

The speedup is reported honestly: on a single-CPU container a process
pool cannot beat serial wall-clock, and the record says so
(``cpu_count`` is part of the record for exactly that reason).

Usage:
    python tools/run_parallel_bench.py            # full grid
    python tools/run_parallel_bench.py --quick    # CI-sized grid
"""

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro.core import CNNConfig, GNNConfig, SNNConfig
from repro.datasets import make_shapes_dataset, train_test_split
from repro.events import Resolution
from repro.observability import to_json
from repro.parallel import ParallelConfig, SweepSpec, run_sweep


def git_revision() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def build_grid(quick: bool):
    if quick:
        ds = make_shapes_dataset(
            num_per_class=3, resolution=Resolution(16, 16), seed=3
        )
        configs = {
            "SNN": SNNConfig(num_steps=6, hidden=8, epochs=2),
            "CNN": CNNConfig(base_width=4, epochs=2),
            "GNN": GNNConfig(max_events=60, hidden=6, epochs=2),
        }
        conditions = (0, 1)
    else:
        ds = make_shapes_dataset(
            num_per_class=4, resolution=Resolution(24, 24), seed=3
        )
        configs = {
            "SNN": SNNConfig(num_steps=10, hidden=16, epochs=4),
            "CNN": CNNConfig(base_width=6, epochs=4),
            "GNN": GNNConfig(max_events=120, hidden=8, epochs=4),
        }
        conditions = (0, 1, 2)
    train, test = train_test_split(ds, 0.4, np.random.default_rng(0))
    return train, test, configs, conditions


def timed_run(train, test, configs, conditions, parallel: ParallelConfig):
    spec = SweepSpec(
        kind="comparison",
        train=train,
        test=test,
        conditions=conditions,
        pipelines=configs,
        parallel=parallel,
    )
    start = time.perf_counter()
    result = run_sweep(spec)
    return time.perf_counter() - start, result


def comparison_bytes(result) -> str:
    results = result if isinstance(result, list) else [result]
    return repr(
        [
            {name: vars(m) for name, m in sorted(r.metrics.items())}
            for r in results
        ]
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized grid")
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_parallel.json",
        help="trajectory file to append to",
    )
    args = parser.parse_args(argv)

    train, test, configs, conditions = build_grid(args.quick)
    num_cells = 3 * len(conditions)
    print(f"grid: 3 paradigms x {len(conditions)} seeds = {num_cells} cells")

    serial_s, serial = timed_run(
        train, test, configs, conditions, ParallelConfig(n_workers=1)
    )
    print(f"serial backend:            {serial_s:8.2f}s")
    parallel4_s, parallel4 = timed_run(
        train, test, configs, conditions, ParallelConfig(n_workers=4)
    )
    print(f"process backend (4 workers): {parallel4_s:6.2f}s")

    bit_identical = comparison_bytes(serial.result) == comparison_bytes(
        parallel4.result
    ) and to_json(serial.snapshot) == to_json(parallel4.snapshot)
    speedup = serial_s / parallel4_s if parallel4_s > 0 else float("inf")
    cpu_count = os.cpu_count() or 1
    print(f"speedup: {speedup:.2f}x on {cpu_count} CPU(s)")
    print(f"bit-identical (results + snapshot): {bit_identical}")

    run = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "git_rev": git_revision(),
        "quick": bool(args.quick),
        "results": {
            "grid": {
                "paradigms": 3,
                "seeds": len(conditions),
                "cells": num_cells,
            },
            "serial_s": serial_s,
            "parallel4_s": parallel4_s,
            "speedup": speedup,
            "cpu_count": cpu_count,
            "bit_identical": bit_identical,
            "cache_stats": serial.cache_stats,
        },
    }
    if args.output.exists():
        data = json.loads(args.output.read_text())
    else:
        data = {"runs": []}
    data["runs"].append(run)
    args.output.write_text(json.dumps(data, indent=2) + "\n")
    print(f"appended run ({run['git_rev']}) to {args.output}")

    if not bit_identical:
        print("FAIL: parallel run is not bit-identical to serial", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
