#!/usr/bin/env python
"""Run the multi-tenant serving chaos replay and gate its guarantees.

Five checks back the serving layer's isolation story:

1. **accounting** — all four replay runs ({isolated, shared} x
   {fault-free, chaos}) must reconcile exactly: per-tenant ledgers
   partition the offered windows, SLO met/missed partitions them again,
   isolated ledgers equal their own balanced ``StreamReport`` counters
   and shared member ledgers sum to their group's counters;
2. **bulkhead isolation** — under chaos, every admitted non-targeted
   tenant's delivered-at-SLO fraction must sit within
   ``ISOLATION_TOLERANCE`` of its fault-free control, while the shared
   no-isolation baseline must show measurable cross-tenant degradation
   (the coupling the bulkheads remove);
3. **paradigm failover** — each admitted stage-fault target must show
   its primary paradigm's breaker opening, windows re-routing onto the
   fallback chain, and the breaker re-closing with the primary serving
   again after the fault interval;
4. **observability** — both merged fleet snapshots must be
   schema-valid and non-empty, and the fleet's ``serving_*`` counters
   must reconcile exactly against the per-tenant ledgers and the
   tenant-labelled executor counters inside the same snapshot;
5. **determinism** — re-running the identical seeded replay must
   serialise byte-identically, and the isolated fleet must stay
   byte-identical across 1, 2 and 4 shards (placement independence).

Exits non-zero when any check fails, so CI uses it as a smoke test.

Usage:
    python tools/run_serving_replay.py               # full-size run
    python tools/run_serving_replay.py --quick       # CI-sized run
    python tools/run_serving_replay.py --output /tmp/serving.json
    python tools/run_serving_replay.py --metrics-output /tmp/metrics.json
"""

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.observability import to_json, to_prometheus, validate_snapshot
from repro.serving import run_serving_replay
from repro.serving.fleet import _LEDGER_KEYS
from repro.serving.replay import ISOLATION_TOLERANCE


def _counter_value(snapshot: dict, name: str, labels: dict) -> int | None:
    """Exact-label counter lookup inside a merged snapshot."""
    for entry in snapshot["metrics"]["counters"]:
        if entry["name"] == name and entry["labels"] == labels:
            return int(entry["value"])
    return None


def check_isolation(result) -> tuple[dict, list[str]]:
    """Gate the bulkhead story: isolated holds, shared couples."""
    failures: list[str] = []
    stories = result.payload["modes"]
    iso = stories["isolated"]
    shared = stories["shared"]
    if not iso["isolation_holds"]:
        failures.append(
            "bulkhead breach: isolated non-targeted delta "
            f"{iso['max_non_targeted_delta']:.4f} > {ISOLATION_TOLERANCE}"
        )
    if shared["max_non_targeted_delta"] <= ISOLATION_TOLERANCE:
        failures.append(
            "shared baseline shows no cross-tenant coupling "
            f"({shared['max_non_targeted_delta']:.4f}) — the replay "
            "proves nothing at this configuration"
        )
    targeted = set(result.payload["targeted_tenants"])
    admitted = set(result.reports["isolated"]["chaos"].admitted_ids)
    if not targeted & admitted:
        failures.append("no chaos-targeted tenant was admitted")
    summary = {
        "targeted": sorted(targeted),
        "isolated_max_non_targeted_delta": iso["max_non_targeted_delta"],
        "shared_max_non_targeted_delta": shared["max_non_targeted_delta"],
        "isolated_holds": iso["isolation_holds"],
        "shared_couples": shared["max_non_targeted_delta"]
        > ISOLATION_TOLERANCE,
    }
    return summary, failures


def check_failover(result) -> tuple[list[dict], list[str]]:
    """Gate the end-to-end failover evidence of stage-fault targets."""
    failures: list[str] = []
    evidence = result.payload["failover"] or []
    if not evidence:
        failures.append("no admitted stage-fault target to exercise failover")
    recovered = 0
    for item in evidence:
        tid = item["tenant_id"]
        if not item.get("available"):
            failures.append(f"failover: {tid} has no stream report")
            continue
        if not item["breaker_opened"]:
            failures.append(
                f"failover: {tid} primary {item['primary']} never tripped"
            )
        if item["served_by_fallbacks"] == 0:
            failures.append(f"failover: {tid} never re-routed to a fallback")
        if item["recovered"]:
            recovered += 1
        else:
            failures.append(
                f"failover: {tid} primary {item['primary']} did not recover "
                f"(final state {item['final_state']!r})"
            )
    if evidence and recovered == 0:
        failures.append("no targeted tenant completed the failover round trip")
    return evidence, failures


def check_observability(result) -> tuple[dict, list[str]]:
    """Snapshot validity plus exact counter/ledger reconciliation."""
    failures: list[str] = []
    checks = 0
    for mode, snapshot in result.snapshots.items():
        failures.extend(
            f"{mode} snapshot invalid: {p}" for p in validate_snapshot(snapshot)
        )
        if not snapshot["metrics"]["counters"]:
            failures.append(f"{mode} snapshot has no counters")
            continue
        report = result.reports[mode]["chaos"]
        for outcome_name, want in (
            ("admitted", len(report.admitted_ids)),
            ("refused", len(report.refused_ids)),
        ):
            got = _counter_value(
                snapshot, "serving_tenants_total", {"outcome": outcome_name}
            )
            checks += 1
            if got != want:
                failures.append(
                    f"{mode}: serving_tenants_total[{outcome_name}] "
                    f"{got} != {want}"
                )
        for tid, outcome in report.tenants.items():
            for key in _LEDGER_KEYS:
                got = _counter_value(
                    snapshot,
                    "serving_windows_total",
                    {"tenant": tid, "outcome": key},
                )
                checks += 1
                if got != outcome.ledger[key]:
                    failures.append(
                        f"{mode}: serving_windows_total[{tid},{key}] "
                        f"{got} != ledger {outcome.ledger[key]}"
                    )
            for slo_outcome, want in (
                ("met", outcome.slo_met),
                ("missed", outcome.slo_missed),
            ):
                got = _counter_value(
                    snapshot,
                    "serving_slo_windows_total",
                    {"tenant": tid, "outcome": slo_outcome},
                )
                checks += 1
                if got != want:
                    failures.append(
                        f"{mode}: serving_slo_windows_total[{tid},"
                        f"{slo_outcome}] {got} != {want}"
                    )
            # Isolated mode also carries each tenant's own executor
            # counters, relabelled with the tenant id — the serving
            # ledger must agree with them series-for-series.
            if mode == "isolated" and outcome.admission.admitted:
                for stream_outcome, want in (
                    ("offered", outcome.ledger["offered"]),
                    ("processed", outcome.ledger["processed"]),
                    ("expired", outcome.ledger["expired"]),
                    ("shed", outcome.ledger["shed"]),
                ):
                    got = _counter_value(
                        snapshot,
                        "stream_windows_total",
                        {"outcome": stream_outcome, "tenant": tid},
                    )
                    checks += 1
                    if got != want:
                        failures.append(
                            f"isolated: stream_windows_total[{tid},"
                            f"{stream_outcome}] {got} != ledger {want}"
                        )
    summary = {
        "modes": sorted(result.snapshots),
        "reconciliation_checks": checks,
        "counter_series": {
            mode: len(snap["metrics"]["counters"])
            for mode, snap in result.snapshots.items()
        },
    }
    return summary, failures


def check_determinism(result, replay_kwargs: dict) -> tuple[dict, list[str]]:
    """Byte-identity across re-runs and isolated shard counts."""
    failures: list[str] = []
    payload_json = json.dumps(result.payload, sort_keys=True)
    snapshot_json = {
        mode: to_json(snap) for mode, snap in result.snapshots.items()
    }
    rerun = run_serving_replay(**replay_kwargs)
    if json.dumps(rerun.payload, sort_keys=True) != payload_json:
        failures.append("re-run with identical seed changed the payload")
    for mode, snap in rerun.snapshots.items():
        if to_json(snap) != snapshot_json[mode]:
            failures.append(f"re-run changed the {mode} merged snapshot")

    report_json = json.dumps(
        result.reports["isolated"]["chaos"].to_dict(), sort_keys=True
    )
    shard_counts = [2, 4]
    for n_shards in shard_counts:
        sharded = run_serving_replay(
            **{**replay_kwargs, "n_shards": n_shards, "modes": ("isolated",)}
        )
        if (
            json.dumps(
                sharded.reports["isolated"]["chaos"].to_dict(), sort_keys=True
            )
            != report_json
        ):
            failures.append(
                f"isolated report differs at n_shards={n_shards} "
                "(placement leaked into the accounting)"
            )
        if to_json(sharded.snapshots["isolated"]) != snapshot_json["isolated"]:
            failures.append(
                f"isolated snapshot differs at n_shards={n_shards}"
            )
    summary = {
        "payload_bytes": len(payload_json),
        "snapshot_bytes": {m: len(s) for m, s in snapshot_json.items()},
        "shard_counts_checked": [1, *shard_counts],
    }
    return summary, failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--tenants", type=int, default=12)
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "serving_replay.json"
    )
    parser.add_argument(
        "--metrics-output",
        type=Path,
        default=REPO_ROOT / "serving_metrics.json",
        help="where the isolated chaos run's merged snapshot artifact "
        "goes (a Prometheus text twin lands next to it with a .prom "
        "suffix)",
    )
    args = parser.parse_args()

    num_windows = 40 if args.quick else 60
    replay_kwargs = dict(
        num_tenants=args.tenants,
        num_windows=num_windows,
        seed=args.seed,
        include_traces=not args.quick,
    )

    t0 = time.time()
    result = run_serving_replay(**replay_kwargs)
    failures = list(result.validation_errors)
    iso_summary, iso_failures = check_isolation(result)
    failover_evidence, failover_failures = check_failover(result)
    obs_summary, obs_failures = check_observability(result)
    det_summary, det_failures = check_determinism(result, replay_kwargs)
    failures += iso_failures + failover_failures + obs_failures + det_failures

    snapshot_json = to_json(result.snapshots["isolated"])
    args.metrics_output.write_text(snapshot_json)
    args.metrics_output.with_suffix(".prom").write_text(
        to_prometheus(json.loads(snapshot_json))
    )
    elapsed = time.time() - t0

    aggregate = {
        mode: {
            label: result.reports[mode][label].aggregate()
            for label in ("fault_free", "chaos")
        }
        for mode in result.reports
    }
    payload = {
        "elapsed_s": round(elapsed, 2),
        "config": result.payload["config"],
        "isolation": iso_summary,
        "failover": failover_evidence,
        "observability": obs_summary,
        "determinism": det_summary,
        "aggregate": aggregate,
        "per_tenant": {
            mode: story["per_tenant"]
            for mode, story in result.payload["modes"].items()
        },
        "failures": failures,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"serving replay finished in {elapsed:.1f}s -> {args.output}")
    agg = aggregate["isolated"]["chaos"]
    print(
        f"  isolated chaos: {agg['admitted']} admitted, "
        f"{agg['slo_met']}/{agg['offered']} windows at SLO, "
        f"{agg['failover_windows']} failover windows"
    )
    print(
        f"  isolation: non-targeted delta "
        f"{iso_summary['isolated_max_non_targeted_delta']:.4f} isolated vs "
        f"{iso_summary['shared_max_non_targeted_delta']:.4f} shared"
    )
    for item in failover_evidence:
        if item.get("available"):
            print(
                f"  failover {item['tenant_id']}: {item['primary']} "
                f"opened={item['breaker_opened']} "
                f"fallback_windows={item['served_by_fallbacks']} "
                f"recovered={item['recovered']}"
            )
    print(
        f"  observability: {obs_summary['reconciliation_checks']} "
        f"reconciliation checks -> {args.metrics_output}"
    )
    if failures:
        print("FAILURES:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(
        "accounting exact, bulkheads held, failover recovered, "
        "byte-identical at 1/2/4 shards"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
