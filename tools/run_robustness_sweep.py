#!/usr/bin/env python
"""Run the robustness sweep and regenerate the Table-I robustness cell.

Trains the three paradigm pipelines on a synthetic shapes dataset whose
test split deliberately contains corrupted recordings, sweeps the
default fault profile across severities through the hardened runner,
and writes the accuracy-degradation curves + retained-accuracy scores
to JSON.  Exits non-zero when the sweep fails its own acceptance
criteria (corrupted recordings not quarantined exactly, or a
degradation curve trending upward), so CI can use it as a smoke test.

Usage:
    python tools/run_robustness_sweep.py                 # full-size run
    python tools/run_robustness_sweep.py --quick         # CI-sized run
    python tools/run_robustness_sweep.py --output /tmp/robustness.json
    python tools/run_robustness_sweep.py --checkpoint-dir /tmp/sweep  # resumable
"""

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro.core import CNNPipeline, GNNPipeline, SNNPipeline
from repro.datasets import make_shapes_dataset, train_test_split
from repro.datasets.base import EventDataset, EventSample
from repro.events import Resolution
from repro.gnn import GraphBuildConfig
from repro.observability import Instrumentation, to_json, validate_snapshot
from repro.reliability import (
    OutOfOrderCorruption,
    robustness_scores,
    run_robustness_sweep,
)


def make_pipelines(quick: bool, seed: int):
    if quick:
        return {
            "SNN": SNNPipeline(num_steps=10, pool=3, hidden=24, epochs=8, seed=seed),
            "CNN": CNNPipeline(base_width=4, epochs=8, seed=seed),
            "GNN": GNNPipeline(
                config=GraphBuildConfig(
                    radius=4.0, time_scale_us=3000.0, max_events=150, max_degree=8
                ),
                hidden=8,
                epochs=8,
                seed=seed,
            ),
        }
    return {
        "SNN": SNNPipeline(seed=seed),
        "CNN": CNNPipeline(seed=seed),
        "GNN": GNNPipeline(seed=seed),
    }


def corrupt_recordings(test: EventDataset, indices, seed: int) -> EventDataset:
    """Deliberately break the given test recordings (out-of-order time)."""
    samples = list(test.samples)
    for offset, index in enumerate(indices):
        sample = samples[index]
        broken = OutOfOrderCorruption(fraction=0.2)(sample.stream, seed=seed + offset)
        samples[index] = EventSample(broken, sample.label, sample.metadata)
    return EventDataset(samples, test.class_names, f"{test.name}-corrupted")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "robustness_sweep.json"
    )
    parser.add_argument(
        "--checkpoint-dir",
        type=Path,
        default=None,
        help="persist model checkpoints + completed points here (resumable)",
    )
    parser.add_argument(
        "--metrics-output",
        type=Path,
        default=REPO_ROOT / "robustness_metrics.json",
        help="where the sweep's instrumentation snapshot artifact goes",
    )
    args = parser.parse_args()

    if args.quick:
        dataset = make_shapes_dataset(
            num_per_class=8, resolution=Resolution(24, 24), duration_us=40_000,
            seed=args.seed,
        )
        severities = (0.0, 0.5, 1.0)
    else:
        dataset = make_shapes_dataset(
            num_per_class=20, resolution=Resolution(32, 32), duration_us=60_000,
            seed=args.seed,
        )
        severities = (0.0, 0.25, 0.5, 0.75, 1.0)
    train, test = train_test_split(dataset, 0.4, np.random.default_rng(args.seed))
    corrupted_indices = (1, len(test) - 1)
    test = corrupt_recordings(test, corrupted_indices, seed=args.seed + 1000)

    t0 = time.time()
    instrumentation = Instrumentation()  # wall clock: batch sweep, not virtual time
    result = run_robustness_sweep(
        train,
        test,
        severities=severities,
        pipelines=make_pipelines(args.quick, args.seed),
        seed=args.seed,
        checkpoint_dir=args.checkpoint_dir,
        instrumentation=instrumentation,
    )
    elapsed = time.time() - t0
    scores = robustness_scores(result)

    failures: list[str] = []
    snapshot = instrumentation.snapshot()
    failures += [f"metrics snapshot invalid: {p}" for p in validate_snapshot(snapshot)]
    registry = instrumentation.registry
    if registry.counter_total("guard_calls_total") == 0:
        failures.append("metrics snapshot recorded no guarded stage calls")
    if args.checkpoint_dir is None:
        # Cached sweep points come from a previous process, so their
        # records never hit this run's counters — reconcile only when
        # every point was evaluated here.
        recorded = {}
        for points in result.curves.values():
            for point in points:
                for outcome, count in point.report.outcome_counts().items():
                    recorded[outcome] = recorded.get(outcome, 0) + count
        for outcome, want in sorted(recorded.items()):
            got = int(
                registry.counter_value("runner_records_total", {"outcome": outcome})
            )
            if got != want:
                failures.append(
                    f"runner_records_total{{outcome={outcome}}} {got} != "
                    f"report total {want}"
                )
    args.metrics_output.write_text(to_json(snapshot))
    expected_quarantine = sorted(corrupted_indices)
    for name, points in result.curves.items():
        for point in points:
            got = sorted(point.report.quarantined_indices)
            if got != expected_quarantine:
                failures.append(
                    f"{name}@{point.severity}: quarantined {got}, "
                    f"expected exactly {expected_quarantine}"
                )
        curve = [p.accuracy for p in points]
        if curve[0] + 1e-9 < curve[-1]:
            failures.append(f"{name}: degradation curve trends upward: {curve}")

    payload = {
        "elapsed_s": round(elapsed, 2),
        "severities": list(severities),
        "corrupted_test_indices": list(expected_quarantine),
        "curves": {
            name: [round(p.accuracy, 4) for p in points]
            for name, points in result.curves.items()
        },
        "outcome_counts": {
            name: [p.report.outcome_counts() for p in points]
            for name, points in result.curves.items()
        },
        "robustness_scores": {k: round(v, 4) for k, v in scores.items()},
        "guarded_stage_calls": int(registry.counter_total("guard_calls_total")),
        "failures": failures,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"robustness sweep finished in {elapsed:.1f}s -> {args.output}")
    print(
        f"  observability: "
        f"{int(registry.counter_total('guard_calls_total'))} guarded calls, "
        f"{int(registry.counter_total('runner_records_total'))} records "
        f"-> {args.metrics_output}"
    )
    for name, points in result.curves.items():
        curve = ", ".join(f"{p.severity:.2f}:{p.accuracy:.3f}" for p in points)
        print(f"  {name}: {curve}  (retained {scores[name]:.3f})")
    if failures:
        print("FAILURES:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("quarantine exact at every severity; curves degrade as expected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
