"""CNN classifier architectures for dense event frames.

Small convolutional classifiers sized for the synthetic datasets, plus a
training loop helper shared by the benchmark harnesses.  The models are
deliberately conventional — the paper's point is that dense-frame CNNs
reuse mature architectures and hardware unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn import (
    Adam,
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
    Tensor,
    accuracy,
    cross_entropy,
    no_grad,
)

__all__ = ["make_small_cnn", "make_mlp", "TrainResult", "fit_classifier", "evaluate"]


def make_small_cnn(
    in_channels: int,
    num_classes: int,
    input_hw: tuple[int, int],
    base_width: int = 8,
    rng: np.random.Generator | None = None,
) -> Sequential:
    """Two-conv-block CNN sized to the input resolution.

    Args:
        in_channels: frame channel count (depends on the representation).
        num_classes: output classes.
        input_hw: input spatial size ``(H, W)``; must be divisible by 4.
        base_width: channels of the first conv block.
        rng: initialisation generator.

    Returns:
        ``conv-relu-pool ×2 → flatten → linear`` Sequential.
    """
    h, w = input_hw
    if h % 4 or w % 4:
        raise ValueError(f"input size {h}x{w} must be divisible by 4")
    rng = rng or np.random.default_rng(0)
    return Sequential(
        Conv2d(in_channels, base_width, 3, padding=1, rng=rng),
        ReLU(),
        MaxPool2d(2),
        Conv2d(base_width, base_width * 2, 3, padding=1, rng=rng),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        Linear(base_width * 2 * (h // 4) * (w // 4), num_classes, rng=rng),
    )


def make_mlp(
    in_features: int,
    num_classes: int,
    hidden: tuple[int, ...] = (64,),
    rng: np.random.Generator | None = None,
) -> Sequential:
    """ReLU MLP (used for the ANN→SNN conversion experiments)."""
    rng = rng or np.random.default_rng(0)
    layers: list[Module] = []
    prev = in_features
    for width in hidden:
        layers.append(Linear(prev, width, rng=rng))
        layers.append(ReLU())
        prev = width
    layers.append(Linear(prev, num_classes, rng=rng))
    return Sequential(*layers)


@dataclass
class TrainResult:
    """Training-run summary.

    Attributes:
        train_losses: mean loss per epoch.
        train_accuracy: final training accuracy.
    """

    train_losses: list[float]
    train_accuracy: float


def fit_classifier(
    model: Module,
    x: np.ndarray,
    y: np.ndarray,
    epochs: int = 20,
    batch_size: int = 16,
    lr: float = 1e-3,
    rng: np.random.Generator | None = None,
) -> TrainResult:
    """Train a classifier with Adam and cross-entropy.

    Args:
        model: any model mapping ``(N, ...)`` inputs to ``(N, C)`` logits.
        x: inputs.
        y: integer labels.
        epochs: passes over the data.
        batch_size: minibatch size.
        lr: learning rate.
        rng: shuffling generator.

    Returns:
        Loss history and final training accuracy.
    """
    if len(x) != len(y):
        raise ValueError("x and y must have equal length")
    if epochs <= 0 or batch_size <= 0:
        raise ValueError("epochs and batch_size must be positive")
    rng = rng or np.random.default_rng(0)
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.int64)
    opt = Adam(model.parameters(), lr=lr)
    losses: list[float] = []
    model.train()
    for _ in range(epochs):
        order = rng.permutation(len(x))
        epoch_loss = 0.0
        num_batches = 0
        for lo in range(0, len(x), batch_size):
            idx = order[lo : lo + batch_size]
            opt.zero_grad()
            loss = cross_entropy(model(Tensor(x[idx])), y[idx])
            loss.backward()
            opt.step()
            epoch_loss += loss.item()
            num_batches += 1
        losses.append(epoch_loss / num_batches)
    model.eval()
    return TrainResult(losses, evaluate(model, x, y))


def evaluate(model: Module, x: np.ndarray, y: np.ndarray, batch_size: int = 64) -> float:
    """Accuracy of ``model`` on ``(x, y)`` without building autograd graphs."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.int64)
    preds: list[np.ndarray] = []
    with no_grad():
        for lo in range(0, len(x), batch_size):
            preds.append(model(Tensor(x[lo : lo + batch_size])).data)
    return accuracy(np.concatenate(preds), y)
