"""Dense-frame CNN pipeline: representations, models, sparsity tooling."""

from .frames import (
    REPRESENTATIONS,
    FrameRepresentation,
    count_and_surface,
    count_frame,
    time_surface,
    tore_volume,
    two_channel_frame,
    voxel_grid,
)
from .models import TrainResult, evaluate, fit_classifier, make_mlp, make_small_cnn
from .pruning import (
    PruningMask,
    magnitude_prune,
    structured_prune_channels,
    weight_sparsity,
)
from .quantization import (
    QuantizationReport,
    QuantLinear,
    dequantize,
    quantize_model_weights,
    quantize_symmetric,
    ste_quantize,
)
from .recurrent import ConvGRUCell, RecurrentFrameClassifier
from .sparse import AsyncSparseConv2d, SparseConvStats, dense_conv_macs

__all__ = [
    "count_frame",
    "two_channel_frame",
    "time_surface",
    "count_and_surface",
    "voxel_grid",
    "tore_volume",
    "FrameRepresentation",
    "REPRESENTATIONS",
    "make_small_cnn",
    "make_mlp",
    "TrainResult",
    "fit_classifier",
    "evaluate",
    "AsyncSparseConv2d",
    "SparseConvStats",
    "dense_conv_macs",
    "PruningMask",
    "magnitude_prune",
    "structured_prune_channels",
    "weight_sparsity",
    "quantize_symmetric",
    "dequantize",
    "ste_quantize",
    "QuantLinear",
    "quantize_model_weights",
    "QuantizationReport",
    "ConvGRUCell",
    "RecurrentFrameClassifier",
]
