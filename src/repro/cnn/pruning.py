"""Weight pruning (Section III-B, ref [51]).

"Techniques such as pruning and weight quantization result in many
zero-valued weights — making the CNN itself sparse."  This module
implements global and per-layer magnitude pruning with persistent masks
(so fine-tuning keeps pruned weights at zero), plus the sparsity
measurements the zero-skipping hardware model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.layers import Conv2d, Linear, Module
from ..nn.tensor import Tensor

__all__ = ["PruningMask", "magnitude_prune", "weight_sparsity", "structured_prune_channels"]


@dataclass
class PruningMask:
    """Binary keep-masks for a model's prunable parameters.

    Attributes:
        masks: parameter tensor id → {0, 1} mask array.
    """

    masks: dict[int, np.ndarray]

    def apply(self, model: Module) -> None:
        """Zero out pruned weights in place (call after every optimizer step)."""
        for p in model.parameters():
            mask = self.masks.get(id(p))
            if mask is not None:
                p.data *= mask

    def sparsity(self) -> float:
        """Fraction of masked-out weights across all covered parameters."""
        total = sum(m.size for m in self.masks.values())
        kept = sum(int(m.sum()) for m in self.masks.values())
        return 1.0 - kept / total if total else 0.0


def _prunable_weights(model: Module) -> list[Tensor]:
    """Weight matrices/kernels of Linear and Conv2d layers (biases excluded)."""
    weights: list[Tensor] = []
    for module in model.modules():
        if isinstance(module, (Linear, Conv2d)):
            weights.append(module.weight)
    return weights


def magnitude_prune(model: Module, fraction: float, per_layer: bool = False) -> PruningMask:
    """Prune the smallest-magnitude weights.

    Args:
        model: model whose Linear/Conv2d weights are pruned.
        fraction: fraction of weights to remove, in [0, 1).
        per_layer: prune each layer to ``fraction`` separately (True) or
            use one global magnitude threshold (False).

    Returns:
        The mask (already applied once to the model).
    """
    if not 0.0 <= fraction < 1.0:
        raise ValueError("fraction must be in [0, 1)")
    weights = _prunable_weights(model)
    if not weights:
        raise ValueError("model has no prunable Linear/Conv2d weights")
    masks: dict[int, np.ndarray] = {}
    if per_layer:
        for wt in weights:
            flat = np.abs(wt.data).reshape(-1)
            k = int(fraction * flat.size)
            mask = np.ones(flat.size)
            if k > 0:
                mask[np.argpartition(flat, k - 1)[:k]] = 0.0
            masks[id(wt)] = mask.reshape(wt.data.shape)
    else:
        all_mags = np.concatenate([np.abs(wt.data).reshape(-1) for wt in weights])
        k = int(fraction * all_mags.size)
        global_mask = np.ones(all_mags.size)
        if k > 0:
            global_mask[np.argpartition(all_mags, k - 1)[:k]] = 0.0
        offset = 0
        for wt in weights:
            n = wt.data.size
            masks[id(wt)] = global_mask[offset : offset + n].reshape(wt.data.shape)
            offset += n
    mask = PruningMask(masks)
    mask.apply(model)
    return mask


def structured_prune_channels(conv: Conv2d, fraction: float) -> np.ndarray:
    """Structured pruning: zero whole output channels by kernel L1 norm.

    Structured sparsity keeps memory access patterns regular — the
    property Section III-B notes benefits both zero-skipping and systolic
    hardware (ref [65]).

    Args:
        conv: convolution layer pruned in place.
        fraction: fraction of output channels to remove.

    Returns:
        Boolean keep-mask over output channels.
    """
    if not 0.0 <= fraction < 1.0:
        raise ValueError("fraction must be in [0, 1)")
    norms = np.abs(conv.weight.data).sum(axis=(1, 2, 3))
    k = int(fraction * norms.size)
    keep = np.ones(norms.size, dtype=bool)
    if k > 0:
        # Stable, so tied channel norms drop the lowest-index channels
        # deterministically (default introsort breaks ties arbitrarily).
        drop = np.argsort(norms, kind="stable")[:k]
        keep[drop] = False
        conv.weight.data[drop] = 0.0
        if conv.bias is not None:
            conv.bias.data[drop] = 0.0
    return keep


def weight_sparsity(model: Module) -> float:
    """Fraction of exactly-zero weights across prunable layers."""
    weights = _prunable_weights(model)
    if not weights:
        return 0.0
    total = sum(wt.size for wt in weights)
    zeros = sum(int(np.count_nonzero(wt.data == 0.0)) for wt in weights)
    return zeros / total
