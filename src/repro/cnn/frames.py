"""Event → dense-frame representations (Section III-B).

"2D CNNs take as input stacked 2D matrices … therefore a pre-processing
step is required to convert the stream of events into a so-called
dense-frame."  This module implements the aggregation family the paper
surveys:

* **event-count histograms** (refs [53], [54]) — per-pixel counts over a
  temporal window, either signed into one channel or split into
  ON/OFF channels (the Fig. 2 centre panel);
* **time surfaces** (Sironi et al. 2018, ref [56]) — pixel intensity
  encodes the time since the pixel last fired, with exponential or
  linear decay;
* **count + time-surface stacks** (ref [57], EV-FlowNet style);
* **voxel grids** (Gehrig et al. 2019, ref [54]) — bilinear temporal
  binning into B time slices;
* **TORE-lite volumes** (Baldwin et al. 2022, ref [77]) — per pixel and
  polarity, the K most recent event ages.

All functions return ``(C, H, W)`` float arrays ready for the CNN input,
and each has a ``channels`` helper so models can be sized automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..events.stream import EventStream

__all__ = [
    "count_frame",
    "two_channel_frame",
    "time_surface",
    "count_and_surface",
    "voxel_grid",
    "tore_volume",
    "FrameRepresentation",
    "REPRESENTATIONS",
]


def count_frame(stream: EventStream, signed: bool = True) -> np.ndarray:
    """Single-channel event-count frame ``(1, H, W)``.

    Args:
        stream: events in the aggregation window.
        signed: subtract OFF counts from ON counts (True) or count all
            events regardless of polarity (False).
    """
    h, w = stream.resolution.height, stream.resolution.width
    out = np.zeros((1, h, w), dtype=np.float64)
    if len(stream) == 0:
        return out
    weights = stream.p.astype(np.float64) if signed else None
    flat = np.bincount(stream.pixel_index(), weights=weights, minlength=h * w)
    out[0] = flat.reshape(h, w)
    return out


def two_channel_frame(stream: EventStream) -> np.ndarray:
    """ON/OFF two-channel count frame ``(2, H, W)`` — the Fig. 2 encoding."""
    h, w = stream.resolution.height, stream.resolution.width
    out = np.zeros((2, h, w), dtype=np.float64)
    if len(stream) == 0:
        return out
    pix = stream.pixel_index()
    on = stream.p == 1
    out[0] = np.bincount(pix[on], minlength=h * w).reshape(h, w)
    out[1] = np.bincount(pix[~on], minlength=h * w).reshape(h, w)
    return out


def time_surface(
    stream: EventStream,
    tau_us: float = 30_000.0,
    t_ref: int | None = None,
    decay: str = "exp",
) -> np.ndarray:
    """Two-channel time surface ``(2, H, W)``.

    Each pixel stores a decayed function of the time since its most
    recent event of each polarity, referenced to ``t_ref`` (default: the
    last event's timestamp).

    Args:
        stream: events in the window.
        tau_us: decay constant (exp) or linear window length.
        t_ref: reference "now" timestamp.
        decay: "exp" for ``exp(-(t_ref - t)/tau)`` or "linear" for
            ``max(0, 1 - (t_ref - t)/tau)``.
    """
    if tau_us <= 0:
        raise ValueError("tau_us must be positive")
    if decay not in ("exp", "linear"):
        raise ValueError(f"decay must be 'exp' or 'linear', got {decay!r}")
    h, w = stream.resolution.height, stream.resolution.width
    out = np.zeros((2, h, w), dtype=np.float64)
    if len(stream) == 0:
        return out
    if t_ref is None:
        t_ref = int(stream.t[-1])
    # Events are time-sorted, so later writes overwrite earlier ones:
    # each pixel ends holding its most recent event time per polarity.
    last = np.full((2, h, w), -np.inf)
    chan = (stream.p < 0).astype(np.int64)
    last[chan, stream.y, stream.x] = stream.t
    age = t_ref - last
    if decay == "exp":
        out = np.where(np.isfinite(age), np.exp(-np.maximum(age, 0.0) / tau_us), 0.0)
    else:
        out = np.where(
            np.isfinite(age), np.maximum(0.0, 1.0 - np.maximum(age, 0.0) / tau_us), 0.0
        )
    return out


def count_and_surface(stream: EventStream, tau_us: float = 30_000.0) -> np.ndarray:
    """Joint counts + time-surface representation ``(4, H, W)`` (ref [57])."""
    return np.concatenate([two_channel_frame(stream), time_surface(stream, tau_us)])


def voxel_grid(stream: EventStream, num_bins: int = 5) -> np.ndarray:
    """Bilinearly-interpolated voxel grid ``(num_bins, H, W)`` (ref [54]).

    Each event deposits its signed polarity into the two temporally
    adjacent bins with linear weights, preserving sub-bin timing.
    """
    if num_bins <= 0:
        raise ValueError("num_bins must be positive")
    h, w = stream.resolution.height, stream.resolution.width
    out = np.zeros((num_bins, h, w), dtype=np.float64)
    n = len(stream)
    if n == 0:
        return out
    t = stream.t.astype(np.float64)
    t0, t1 = t[0], t[-1]
    span = max(t1 - t0, 1.0)
    # Continuous bin coordinate in [0, num_bins - 1].
    tb = (t - t0) / span * (num_bins - 1) if num_bins > 1 else np.zeros(n)
    lo = np.floor(tb).astype(np.int64)
    hi = np.minimum(lo + 1, num_bins - 1)
    w_hi = tb - lo
    w_lo = 1.0 - w_hi
    pol = stream.p.astype(np.float64)
    np.add.at(out, (lo, stream.y, stream.x), pol * w_lo)
    np.add.at(out, (hi, stream.y, stream.x), pol * w_hi)
    return out


def tore_volume(stream: EventStream, k: int = 3, tau_us: float = 50_000.0) -> np.ndarray:
    """Time-Ordered-Recent-Event volume ``(2k, H, W)`` (TORE-lite, ref [77]).

    For each pixel and polarity, the ages of the K most recent events are
    stored (newest first), log-compressed to the unit range.  This keeps
    more temporal structure than a single time surface.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if tau_us <= 0:
        raise ValueError("tau_us must be positive")
    h, w = stream.resolution.height, stream.resolution.width
    n = len(stream)
    out = np.zeros((2 * k, h, w), dtype=np.float64)
    if n == 0:
        return out
    t_ref = int(stream.t[-1])
    # Ring buffers of the last K event times per pixel/polarity.
    buf = np.full((2, h, w, k), -np.inf)
    chan_all = (stream.p < 0).astype(np.int64)
    for i in range(n):
        c, y, x = chan_all[i], int(stream.y[i]), int(stream.x[i])
        buf[c, y, x, 1:] = buf[c, y, x, :-1]
        buf[c, y, x, 0] = stream.t[i]
    age = np.maximum(t_ref - buf, 0.0)
    vals = np.where(np.isfinite(age), 1.0 / (1.0 + np.log1p(age / tau_us * np.e)), 0.0)
    # (2, H, W, K) -> (2K, H, W): polarity-major channel layout.
    out = vals.transpose(0, 3, 1, 2).reshape(2 * k, h, w)
    return out


@dataclass(frozen=True)
class FrameRepresentation:
    """A named event → frame mapping with a fixed channel count.

    Attributes:
        name: representation identifier.
        channels: output channel count.
        fn: mapping from a stream to a ``(channels, H, W)`` array.
        preserves_timing: whether sub-window event timing survives into
            the representation (True for surfaces/voxels, False for raw
            counts) — the property Section III-B's critique turns on.
    """

    name: str
    channels: int
    fn: Callable[[EventStream], np.ndarray]
    preserves_timing: bool

    def __call__(self, stream: EventStream) -> np.ndarray:
        frame = self.fn(stream)
        if frame.shape[0] != self.channels:
            raise RuntimeError(
                f"{self.name} produced {frame.shape[0]} channels, declared {self.channels}"
            )
        return frame


#: The representation zoo used by the comparison experiments.
REPRESENTATIONS: dict[str, FrameRepresentation] = {
    "count": FrameRepresentation("count", 1, lambda s: count_frame(s), False),
    "two_channel": FrameRepresentation("two_channel", 2, two_channel_frame, False),
    "time_surface": FrameRepresentation("time_surface", 2, lambda s: time_surface(s), True),
    "count_surface": FrameRepresentation(
        "count_surface", 4, lambda s: count_and_surface(s), True
    ),
    "voxel": FrameRepresentation("voxel", 5, lambda s: voxel_grid(s, 5), True),
    "tore": FrameRepresentation("tore", 6, lambda s: tore_volume(s, 3), True),
}
