"""Recurrent convolutional block for temporal memory in CNNs.

Section V: "While it may be argued that SNNs are required for tasks
relying on temporal memory, recurrent blocks can be readily incorporated
into CNNs for this purpose, too [76]" (Perot et al. 2020, the 1-Mpx
recurrent event detector).

This module provides a convolutional gated recurrent unit (ConvGRU) and
a sequence classifier that consumes a *sequence* of dense frames — the
recurrent-CNN counterpart of the SNN's intrinsic temporal state.
"""

from __future__ import annotations

import numpy as np

from ..nn import functional as F
from ..nn.layers import Conv2d, Flatten, Linear, Module
from ..nn.tensor import Tensor

__all__ = ["ConvGRUCell", "RecurrentFrameClassifier"]


class ConvGRUCell(Module):
    """Convolutional gated recurrent unit.

    Update and reset gates and the candidate state are each computed by a
    'same' convolution over the concatenated input and hidden planes.

    Args:
        in_channels: input frame channels.
        hidden_channels: recurrent state channels.
        kernel: odd square kernel size.
        rng: initialisation generator.
    """

    def __init__(
        self,
        in_channels: int,
        hidden_channels: int,
        kernel: int = 3,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if kernel % 2 == 0:
            raise ValueError("kernel must be odd for 'same' padding")
        rng = rng or np.random.default_rng(0)
        pad = kernel // 2
        both = in_channels + hidden_channels
        self.hidden_channels = hidden_channels
        self.update_gate = Conv2d(both, hidden_channels, kernel, padding=pad, rng=rng)
        self.reset_gate = Conv2d(both, hidden_channels, kernel, padding=pad, rng=rng)
        self.candidate = Conv2d(both, hidden_channels, kernel, padding=pad, rng=rng)

    def forward(self, x: Tensor, h: Tensor | None = None) -> Tensor:
        """One recurrent step.

        Args:
            x: ``(N, C_in, H, W)`` input frame.
            h: ``(N, C_h, H, W)`` previous state (zeros when None).

        Returns:
            New hidden state ``(N, C_h, H, W)``.
        """
        if x.ndim != 4:
            raise ValueError(f"expected (N, C, H, W) input, got {x.shape}")
        n, _, height, width = x.shape
        if h is None:
            h = Tensor(np.zeros((n, self.hidden_channels, height, width)))
        xh = F.concatenate([x, h], axis=1)
        z = self.update_gate(xh).sigmoid()
        r = self.reset_gate(xh).sigmoid()
        xh_reset = F.concatenate([x, h * r], axis=1)
        h_tilde = self.candidate(xh_reset).tanh()
        return h * (1.0 - z) + h_tilde * z


class RecurrentFrameClassifier(Module):
    """ConvGRU over a frame sequence followed by a linear readout.

    Args:
        in_channels: channels of each input frame.
        hidden_channels: recurrent state width.
        num_classes: output classes.
        input_hw: spatial size ``(H, W)``.
        rng: initialisation generator.
    """

    def __init__(
        self,
        in_channels: int,
        hidden_channels: int,
        num_classes: int,
        input_hw: tuple[int, int],
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.cell = ConvGRUCell(in_channels, hidden_channels, rng=rng)
        h, w = input_hw
        self.flatten = Flatten()
        self.head = Linear(hidden_channels * h * w, num_classes, rng=rng)

    def forward(self, frames: Tensor) -> Tensor:
        """Classify a ``(T, N, C, H, W)`` frame sequence into ``(N, classes)``."""
        if frames.ndim != 5:
            raise ValueError(f"expected (T, N, C, H, W), got {frames.shape}")
        h: Tensor | None = None
        for t in range(frames.shape[0]):
            h = self.cell(frames[t], h)
        return self.head(self.flatten(h))
