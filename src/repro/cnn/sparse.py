"""Submanifold sparse convolution with asynchronous event-driven updates.

Section III-B: "One solution to this may be through sub-manifold
convolutions [59] whereby, as events arrive one at a time, only a subset
of calculations are performed based on determining the active regions of
affected feature maps."

A *submanifold* convolution evaluates the kernel only at active sites
(pixels whose input is non-zero) and produces output only at those same
sites, so sparsity is preserved through the layer instead of dilating by
the kernel radius.  The asynchronous mode exploits locality further: when
one event toggles one pixel, only the ``k x k`` output neighbourhood can
change, so the layer is updated with O(k^2 * C_in * C_out) work instead
of a full recompute.

The implementation counts multiply-accumulates so the ABL-SPARSE
benchmark can compare dense, submanifold-batch and asynchronous costs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SparseConvStats", "AsyncSparseConv2d", "dense_conv_macs"]


def dense_conv_macs(
    in_channels: int, out_channels: int, kernel: int, out_h: int, out_w: int
) -> int:
    """MAC count of a dense convolution over the full output plane."""
    return in_channels * out_channels * kernel * kernel * out_h * out_w


@dataclass
class SparseConvStats:
    """Work accounting for sparse convolution.

    Attributes:
        macs: multiply-accumulates actually performed.
        active_sites: output sites computed.
        dense_macs: what a dense evaluation would have cost.
    """

    macs: int = 0
    active_sites: int = 0
    dense_macs: int = 0

    @property
    def savings(self) -> float:
        """Fraction of dense work avoided (0 = none, 1 = all)."""
        if self.dense_macs == 0:
            return 0.0
        return 1.0 - self.macs / self.dense_macs


class AsyncSparseConv2d:
    """Stateful submanifold convolution layer with incremental updates.

    The layer keeps the current input plane and the output at active
    sites; :meth:`set_input` performs a full sparse evaluation and
    :meth:`update_pixel` folds in a single changed pixel.

    Only stride 1 with 'same' padding is supported — the configuration
    asynchronous CNNs use so that site coordinates align across layers.

    Args:
        weight: dense kernel bank ``(C_out, C_in, k, k)`` with odd k.
        bias: optional ``(C_out,)`` bias applied at active sites.
    """

    def __init__(self, weight: np.ndarray, bias: np.ndarray | None = None) -> None:
        weight = np.asarray(weight, dtype=np.float64)
        if weight.ndim != 4 or weight.shape[2] != weight.shape[3]:
            raise ValueError(f"weight must be (C_out, C_in, k, k), got {weight.shape}")
        if weight.shape[2] % 2 == 0:
            raise ValueError("kernel size must be odd for 'same' submanifold conv")
        self.weight = weight
        self.bias = None if bias is None else np.asarray(bias, dtype=np.float64)
        if self.bias is not None and self.bias.shape != (weight.shape[0],):
            raise ValueError("bias shape must be (C_out,)")
        self._input: np.ndarray | None = None
        self._output: np.ndarray | None = None
        self._active: np.ndarray | None = None

    @property
    def kernel(self) -> int:
        """Kernel side length."""
        return self.weight.shape[2]

    @property
    def output(self) -> np.ndarray:
        """Current output plane ``(C_out, H, W)`` (zeros at inactive sites)."""
        if self._output is None:
            raise RuntimeError("call set_input first")
        return self._output

    @property
    def active_mask(self) -> np.ndarray:
        """Boolean ``(H, W)`` mask of active (computed) output sites."""
        if self._active is None:
            raise RuntimeError("call set_input first")
        return self._active

    def _site_value(self, x: np.ndarray, cy: int, cx: int) -> np.ndarray:
        """Evaluate all output channels at one site from input plane ``x``."""
        k = self.kernel
        r = k // 2
        _, h, w = x.shape
        y0, y1 = max(0, cy - r), min(h, cy + r + 1)
        x0, x1 = max(0, cx - r), min(w, cx + r + 1)
        patch = x[:, y0:y1, x0:x1]
        ky0, kx0 = y0 - (cy - r), x0 - (cx - r)
        kern = self.weight[:, :, ky0 : ky0 + (y1 - y0), kx0 : kx0 + (x1 - x0)]
        out = np.einsum("chw,ochw->o", patch, kern)
        if self.bias is not None:
            out = out + self.bias
        return out

    def set_input(self, x: np.ndarray) -> SparseConvStats:
        """Full submanifold evaluation of a new input plane.

        Args:
            x: ``(C_in, H, W)`` input (zeros = inactive).

        Returns:
            Work statistics for the evaluation.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 3 or x.shape[0] != self.weight.shape[1]:
            raise ValueError(
                f"input must be ({self.weight.shape[1]}, H, W), got {x.shape}"
            )
        self._input = x.copy()
        c_out, c_in, k, _ = self.weight.shape
        _, h, w = x.shape
        self._output = np.zeros((c_out, h, w))
        self._active = np.any(x != 0.0, axis=0)
        stats = SparseConvStats(dense_macs=dense_conv_macs(c_in, c_out, k, h, w))
        ys, xs = np.nonzero(self._active)
        for cy, cx in zip(ys, xs):
            self._output[:, cy, cx] = self._site_value(x, int(cy), int(cx))
            stats.macs += c_in * c_out * k * k
            stats.active_sites += 1
        return stats

    def update_pixel(self, cx: int, cy: int, new_value: np.ndarray) -> SparseConvStats:
        """Fold in one changed input pixel (an arriving event).

        Recomputes only the output sites whose receptive field contains
        ``(cx, cy)`` and that are active under the updated input.

        Args:
            cx, cy: pixel coordinates.
            new_value: new ``(C_in,)`` input vector at the pixel.

        Returns:
            Work statistics for the incremental update.
        """
        if self._input is None or self._output is None or self._active is None:
            raise RuntimeError("call set_input first")
        new_value = np.asarray(new_value, dtype=np.float64)
        c_out, c_in, k, _ = self.weight.shape
        if new_value.shape != (c_in,):
            raise ValueError(f"new_value must be ({c_in},), got {new_value.shape}")
        _, h, w = self._input.shape
        if not (0 <= cx < w and 0 <= cy < h):
            raise ValueError(f"pixel ({cx}, {cy}) outside {w}x{h}")
        self._input[:, cy, cx] = new_value
        now_active = bool(np.any(new_value != 0.0))
        self._active[cy, cx] = now_active
        stats = SparseConvStats(dense_macs=dense_conv_macs(c_in, c_out, k, h, w))

        r = k // 2
        for oy in range(max(0, cy - r), min(h, cy + r + 1)):
            for ox in range(max(0, cx - r), min(w, cx + r + 1)):
                if self._active[oy, ox]:
                    self._output[:, oy, ox] = self._site_value(self._input, oy, ox)
                    stats.macs += c_in * c_out * k * k
                    stats.active_sites += 1
                else:
                    self._output[:, oy, ox] = 0.0
        return stats

    def dense_reference(self) -> np.ndarray:
        """Dense 'same' convolution of the current input, masked to active
        sites — the correctness oracle for the incremental path."""
        if self._input is None:
            raise RuntimeError("call set_input first")
        c_out, _, k, _ = self.weight.shape
        _, h, w = self._input.shape
        out = np.zeros((c_out, h, w))
        ys, xs = np.nonzero(self._active)
        for cy, cx in zip(ys, xs):
            out[:, cy, cx] = self._site_value(self._input, int(cy), int(cx))
        return out
