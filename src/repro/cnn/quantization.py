"""Weight quantization with the straight-through estimator.

Section III-B cites incremental network quantization (ref [52]) as a
source of CNN weight sparsity and efficiency; Section III-A notes that
ANN→SNN conversion pipelines constrain "the non-spiking neurons to a
low-precision integer number and train using the straight-through
estimator" (ref [39]).

This module provides symmetric uniform quantization, quantization-aware
layers whose forward uses quantized weights but whose backward passes
gradients straight through the rounding, and a post-training
quantization helper with accuracy reporting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn import functional as F
from ..nn.layers import Linear, Module
from ..nn.tensor import Tensor, custom_gradient

__all__ = [
    "quantize_symmetric",
    "dequantize",
    "ste_quantize",
    "QuantLinear",
    "quantize_model_weights",
    "QuantizationReport",
]


def quantize_symmetric(
    values: np.ndarray, num_bits: int
) -> tuple[np.ndarray, float]:
    """Symmetric uniform quantization to signed ``num_bits`` integers.

    Args:
        values: float array.
        num_bits: total bit width (>= 2); one bit is the sign.

    Returns:
        ``(q, scale)`` where ``q`` holds integers in
        ``[-(2^(b-1) - 1), 2^(b-1) - 1]`` and ``values ≈ q * scale``.
    """
    if num_bits < 2:
        raise ValueError("num_bits must be >= 2")
    qmax = 2 ** (num_bits - 1) - 1
    max_abs = float(np.abs(values).max()) if values.size else 0.0
    scale = max_abs / qmax if max_abs > 0 else 1.0
    q = np.clip(np.round(values / scale), -qmax, qmax)
    return q, scale


def dequantize(q: np.ndarray, scale: float) -> np.ndarray:
    """Map quantized integers back to floats."""
    return q * scale


def ste_quantize(weight: Tensor, num_bits: int) -> Tensor:
    """Quantize a weight tensor in the forward pass, identity backward.

    The straight-through estimator: rounding has zero gradient almost
    everywhere, so the backward pass pretends it is the identity and the
    underlying float (shadow) weights keep receiving useful gradients.
    """
    q, scale = quantize_symmetric(weight.data, num_bits)
    return custom_gradient(dequantize(q, scale), [weight], lambda g: [g])


class QuantLinear(Module):
    """Quantization-aware fully connected layer.

    Holds float shadow weights; every forward quantizes them to
    ``num_bits`` with the STE, so training converges to weights that
    survive quantization.

    Args:
        in_features, out_features: layer size.
        num_bits: weight bit width.
        rng: initialisation generator.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        num_bits: int = 4,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if num_bits < 2:
            raise ValueError("num_bits must be >= 2")
        self.inner = Linear(in_features, out_features, rng=rng)
        self.num_bits = num_bits

    def forward(self, x: Tensor) -> Tensor:
        w_q = ste_quantize(self.inner.weight, self.num_bits)
        out = x @ w_q.T
        if self.inner.bias is not None:
            out = out + self.inner.bias
        return out


@dataclass(frozen=True)
class QuantizationReport:
    """Post-training quantization outcome.

    Attributes:
        num_bits: bit width used.
        weight_zero_fraction: fraction of weights quantized exactly to 0.
        max_abs_error: worst-case weight reconstruction error.
    """

    num_bits: int
    weight_zero_fraction: float
    max_abs_error: float


def quantize_model_weights(model: Module, num_bits: int) -> QuantizationReport:
    """Quantize every parameter of a trained model in place.

    Args:
        model: model whose parameters are replaced by their quantized
            reconstruction.
        num_bits: bit width.

    Returns:
        Quantization statistics (zero fraction feeds the zero-skipping
        hardware model).
    """
    total = 0
    zeros = 0
    max_err = 0.0
    for p in model.parameters():
        q, scale = quantize_symmetric(p.data, num_bits)
        recon = dequantize(q, scale)
        max_err = max(max_err, float(np.abs(recon - p.data).max()))
        zeros += int(np.count_nonzero(q == 0))
        total += q.size
        p.data[...] = recon
    return QuantizationReport(
        num_bits=num_bits,
        weight_zero_fraction=zeros / total if total else 0.0,
        max_abs_error=max_err,
    )
