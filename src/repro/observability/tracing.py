"""Structured tracing: nested spans forming a deterministic trace tree.

A :class:`Tracer` hands out :meth:`~Tracer.span` context managers;
nesting them builds a tree of :class:`Span` records.  Timestamps come
from an injectable ``clock`` callable returning *microseconds*:

* virtual-time subsystems (the streaming executor's
  :class:`~repro.streaming.executor.ServiceModel` clock) pass their own
  clock, so two identical seeded runs produce **byte-identical** trace
  trees;
* everything else defaults to wall time via :func:`time.perf_counter`.

Spans record begin/end order, not threads — the tracer is a
single-logical-thread instrument, matching the deterministic
single-server execution model of the repository.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = ["Span", "Tracer", "wall_clock_us"]


def wall_clock_us() -> float:
    """Wall time in microseconds (monotonic, sub-microsecond resolution)."""
    return time.perf_counter() * 1e6


@dataclass
class Span:
    """One named interval in the trace tree.

    Attributes:
        name: span name (stable across runs; indices go in ``attrs``).
        start_us: clock reading at entry.
        end_us: clock reading at exit (None while open).
        attrs: small JSON-serialisable annotations (window index, ...).
        children: spans opened while this one was open.
    """

    name: str
    start_us: float
    end_us: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def duration_us(self) -> float:
        """Span length (0.0 while still open)."""
        if self.end_us is None:
            return 0.0
        return self.end_us - self.start_us

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (timestamps rounded to 1e-3 us)."""
        out: dict[str, Any] = {
            "name": self.name,
            "start_us": round(self.start_us, 3),
            "end_us": round(self.end_us, 3) if self.end_us is not None else None,
            "duration_us": round(self.duration_us, 3),
        }
        if self.attrs:
            out["attrs"] = {k: self.attrs[k] for k in sorted(self.attrs)}
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out


class Tracer:
    """Builds a trace tree from nested ``span`` contexts.

    Args:
        clock: microsecond clock; defaults to wall time
            (:func:`wall_clock_us`).  Virtual-time callers pass a
            closure over their own clock so the trace is deterministic.
    """

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self.clock = clock if clock is not None else wall_clock_us
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a span; it closes (records its end time) on exit.

        The span is attached to the innermost open span, or to the
        trace roots when none is open.  Exceptions propagate — the span
        still closes, so the tree never holds dangling intervals.
        """
        span = Span(name=name, start_us=float(self.clock()), attrs=dict(attrs))
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            span.end_us = float(self.clock())
            self._stack.pop()

    # ------------------------------------------------------------------
    def walk(self) -> Iterator[Span]:
        """Every span, depth-first in start order."""
        stack = list(reversed(self.roots))
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    def span_counts(self) -> dict[str, int]:
        """Span name → number of occurrences across the whole tree."""
        counts: dict[str, int] = {}
        for span in self.walk():
            counts[span.name] = counts.get(span.name, 0) + 1
        return counts

    def find(self, name: str) -> list[Span]:
        """All spans with the given name, depth-first in start order."""
        return [s for s in self.walk() if s.name == name]

    def to_dict(self) -> list[dict[str, Any]]:
        """JSON-serialisable trace tree (list of root span dicts)."""
        return [root.to_dict() for root in self.roots]

    def reset(self) -> None:
        """Drop the recorded tree (open spans are abandoned)."""
        self.roots = []
        self._stack = []
