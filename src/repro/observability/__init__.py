"""Observability: metrics, tracing and profiling hooks in one substrate.

Table I is only credible if every measured cell comes from instrumented
runs — the per-layer event-driven profiling of EvGNN and the per-event
cost accounting of AEGNN, generalised to this repository's three
pipelines.  This package provides the shared substrate:

* :mod:`~repro.observability.metrics` — a :class:`MetricsRegistry` of
  counters, gauges and fixed-bucket histograms, cheap enough for hot
  paths and snapshot-exportable;
* :mod:`~repro.observability.tracing` — nested :meth:`Tracer.span`
  contexts building a deterministic trace tree, virtual-time aware so
  streaming runs stay byte-for-byte reproducible;
* :mod:`~repro.observability.export` — canonical JSON and Prometheus
  text serialisation plus the snapshot schema check the CI smoke uses;
* :class:`ProfilingHooks` / :class:`Instrumentation` (below) — the
  bundle wired through :class:`~repro.core.pipeline.ParadigmPipeline`,
  :class:`~repro.reliability.runner.HardenedRunner` and the
  :class:`~repro.streaming.executor.StreamingExecutor`, whose report
  counters are derived views over one registry rather than parallel
  bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from .export import (
    SNAPSHOT_SCHEMA,
    label_snapshot,
    to_json,
    to_prometheus,
    validate_snapshot,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
)
from .tracing import Span, Tracer, wall_clock_us

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "exponential_buckets",
    "DEFAULT_BUCKETS",
    "Span",
    "Tracer",
    "wall_clock_us",
    "SNAPSHOT_SCHEMA",
    "label_snapshot",
    "to_json",
    "to_prometheus",
    "validate_snapshot",
    "ProfilingHooks",
    "Instrumentation",
]


@dataclass
class ProfilingHooks:
    """User callbacks fired at the instrumented subsystems' seams.

    All hooks are optional; a hook must not raise (there is no guard —
    a raising hook is a bug in the caller's instrumentation, not a
    runtime condition to degrade around).

    Attributes:
        on_stage_start: ``(stage, index)`` — a guarded stage call (a
            pipeline fit/predict/measure, a streaming predict stage, a
            shed transform) is about to run; ``index`` is the window or
            recording index, -1 when not applicable.
        on_stage_end: ``(stage, index, ok)`` — the call returned.
        on_window: ``(index, outcome)`` — one unit of work reached a
            terminal outcome ("processed" / "expired" / "failed" / ...;
            recordings in batch runs, windows in streaming runs).
        on_shed: ``(tier, events_removed)`` — a shedding tier removed
            events (or evicted a whole window).
        on_trip: ``(stage, from_state, to_state)`` — a circuit breaker
            changed state.
    """

    on_stage_start: Callable[[str, int], None] | None = None
    on_stage_end: Callable[[str, int, bool], None] | None = None
    on_window: Callable[[int, str], None] | None = None
    on_shed: Callable[[str, int], None] | None = None
    on_trip: Callable[[str, str, str], None] | None = None


class Instrumentation:
    """One registry + one tracer + one hook set, shared by a run.

    Args:
        clock: microsecond clock for the tracer; ``None`` means wall
            time.  Virtual-time subsystems pass their own clock so the
            whole snapshot is deterministic.
        hooks: optional profiling callbacks.

    Attributes:
        registry: the run's :class:`MetricsRegistry`.
        tracer: the run's :class:`Tracer`.
        hooks: the run's :class:`ProfilingHooks`.
    """

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        hooks: ProfilingHooks | None = None,
    ) -> None:
        self.registry = MetricsRegistry()
        self.tracer = Tracer(clock=clock)
        self.hooks = hooks or ProfilingHooks()

    # ------------------------------------------------------------------
    # Hook emitters (None-safe so call sites stay one-liners)
    # ------------------------------------------------------------------
    def stage_start(self, stage: str, index: int = -1) -> None:
        """Fire ``on_stage_start``."""
        if self.hooks.on_stage_start is not None:
            self.hooks.on_stage_start(stage, index)

    def stage_end(self, stage: str, index: int = -1, ok: bool = True) -> None:
        """Fire ``on_stage_end``."""
        if self.hooks.on_stage_end is not None:
            self.hooks.on_stage_end(stage, index, ok)

    def window(self, index: int, outcome: str) -> None:
        """Fire ``on_window``."""
        if self.hooks.on_window is not None:
            self.hooks.on_window(index, outcome)

    def shed(self, tier: str, events_removed: int) -> None:
        """Fire ``on_shed``."""
        if self.hooks.on_shed is not None:
            self.hooks.on_shed(tier, events_removed)

    def trip(self, stage: str, from_state: str, to_state: str) -> None:
        """Fire ``on_trip``."""
        if self.hooks.on_trip is not None:
            self.hooks.on_trip(stage, from_state, to_state)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Full deterministic snapshot: schema tag, metrics and trace."""
        return {
            "schema": SNAPSHOT_SCHEMA,
            "metrics": self.registry.snapshot(),
            "trace": self.tracer.to_dict(),
        }
