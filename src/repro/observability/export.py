"""Snapshot export: canonical JSON and Prometheus text exposition.

A snapshot (from :meth:`repro.observability.Instrumentation.snapshot`
or :meth:`~repro.observability.metrics.MetricsRegistry.snapshot`) is a
plain dict; this module serialises it deterministically:

* :func:`to_json` — canonical JSON (sorted keys, fixed separators), so
  two identical virtual-time runs produce byte-identical artifacts —
  the property the streaming CI smoke asserts;
* :func:`to_prometheus` — the text exposition format (``# HELP`` /
  ``# TYPE`` lines, cumulative ``_bucket{le=...}`` histogram series)
  for scraping a long-running service;
* :func:`validate_snapshot` — structural schema check used by the CI
  tools before an artifact is trusted.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from .metrics import MetricsRegistry

__all__ = [
    "SNAPSHOT_SCHEMA",
    "label_snapshot",
    "to_json",
    "to_prometheus",
    "validate_snapshot",
]

#: Schema tag stamped on full instrumentation snapshots.
SNAPSHOT_SCHEMA = "repro.observability/1"


def to_json(snapshot: Mapping[str, Any], indent: int | None = 2) -> str:
    """Canonical JSON serialisation (deterministic for identical runs)."""
    return json.dumps(snapshot, indent=indent, sort_keys=True) + "\n"


def _format_value(value: float | int) -> str:
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _label_str(labels: Mapping[str, str], extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = [*sorted(labels.items()), *extra]
    if not items:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in items)
    return "{" + body + "}"


def to_prometheus(snapshot: Mapping[str, Any], registry: MetricsRegistry | None = None) -> str:
    """Render a metrics snapshot in the Prometheus text format.

    Args:
        snapshot: a :meth:`MetricsRegistry.snapshot` dict, or a full
            instrumentation snapshot (its ``"metrics"`` key is used).
        registry: optional source registry for ``# HELP`` strings.

    Returns:
        The exposition text, families sorted by name.
    """
    metrics = snapshot.get("metrics", snapshot)
    lines: list[str] = []
    families: dict[str, tuple[str, list[dict]]] = {}
    for kind in ("counter", "gauge", "histogram"):
        for series in metrics.get(kind + "s", []):
            name = series["name"]
            families.setdefault(name, (kind, []))[1].append(series)
    for name in sorted(families):
        kind, series_list = families[name]
        help_text = registry.help_text(name) if registry is not None else ""
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for series in series_list:
            labels = series.get("labels", {})
            if kind == "histogram":
                cumulative = 0
                for bound, count in zip(series["buckets"], series["counts"]):
                    cumulative += count
                    lines.append(
                        f"{name}_bucket"
                        f'{_label_str(labels, (("le", _format_value(bound)),))}'
                        f" {cumulative}"
                    )
                cumulative += series["counts"][-1]
                lines.append(
                    f'{name}_bucket{_label_str(labels, (("le", "+Inf"),))} '
                    f"{cumulative}"
                )
                lines.append(
                    f"{name}_sum{_label_str(labels)} {_format_value(series['sum'])}"
                )
                lines.append(f"{name}_count{_label_str(labels)} {series['count']}")
            else:
                lines.append(
                    f"{name}{_label_str(labels)} {_format_value(series['value'])}"
                )
    return "\n".join(lines) + "\n"


def label_snapshot(
    snapshot: Mapping[str, Any],
    labels: Mapping[str, str],
    root: str | None = None,
) -> dict[str, Any]:
    """A relabeled copy of a snapshot, for multi-run aggregation.

    Adds ``labels`` to every metric series (so e.g. a per-tenant run's
    ``stream_*`` series become distinguishable inside a fleet-wide
    snapshot) and optionally nests the whole trace under a new ``root``
    span spanning its children.  The input is not modified.  Relabeled
    snapshots with distinct label values never collide, which makes
    :func:`repro.parallel.merge.merge_snapshots` a pure concatenation
    over them.

    Args:
        snapshot: a full instrumentation snapshot.
        labels: label keys/values stamped onto every series.  A key
            already present on a series is a wiring error (the caller
            is double-labelling) and raises :class:`ValueError`.
        root: optional name of a synthetic root span wrapping the trace.

    Returns:
        A new snapshot dict sharing no mutable structure with the input
        where labels or trace were rewritten.
    """
    labels = dict(labels)
    metrics_in = snapshot.get("metrics", {})
    metrics_out: dict[str, Any] = {}
    for kind in ("counters", "gauges", "histograms"):
        section = []
        for series in metrics_in.get(kind, ()):
            existing = dict(series.get("labels", {}))
            clash = set(existing) & set(labels)
            if clash:
                raise ValueError(
                    f"series {series.get('name')!r} already carries "
                    f"label(s) {sorted(clash)}"
                )
            relabeled = dict(series)
            relabeled["labels"] = {**existing, **labels}
            section.append(relabeled)
        metrics_out[kind] = section
    trace = list(snapshot.get("trace", ()))
    if root is not None:
        starts = [s["start_us"] for s in trace if isinstance(s, dict)]
        ends = [
            s["start_us"] + s["duration_us"] for s in trace if isinstance(s, dict)
        ]
        start = min(starts) if starts else 0.0
        trace = [
            {
                "name": root,
                "start_us": start,
                "duration_us": (max(ends) - start) if ends else 0.0,
                "children": trace,
            }
        ]
    return {
        "schema": snapshot.get("schema", SNAPSHOT_SCHEMA),
        "metrics": metrics_out,
        "trace": trace,
    }


def _check_series(series: Any, kind: str, problems: list[str]) -> None:
    if not isinstance(series, dict):
        problems.append(f"{kind} series is not an object: {series!r}")
        return
    if not isinstance(series.get("name"), str) or not series.get("name"):
        problems.append(f"{kind} series without a name: {series!r}")
    labels = series.get("labels", {})
    if not isinstance(labels, dict) or not all(
        isinstance(k, str) and isinstance(v, str) for k, v in labels.items()
    ):
        problems.append(f"{kind} {series.get('name')!r}: labels must be str->str")
    if kind == "histogram":
        buckets, counts = series.get("buckets"), series.get("counts")
        if not isinstance(buckets, list) or not buckets:
            problems.append(f"histogram {series.get('name')!r}: missing buckets")
        elif not isinstance(counts, list) or len(counts) != len(buckets) + 1:
            problems.append(
                f"histogram {series.get('name')!r}: counts must have "
                "len(buckets) + 1 entries"
            )
        if not isinstance(series.get("count"), int):
            problems.append(f"histogram {series.get('name')!r}: missing count")
    elif not isinstance(series.get("value"), (int, float)):
        problems.append(f"{kind} {series.get('name')!r}: missing numeric value")


def _check_span(span: Any, problems: list[str]) -> None:
    if not isinstance(span, dict):
        problems.append(f"trace span is not an object: {span!r}")
        return
    if not isinstance(span.get("name"), str) or not span.get("name"):
        problems.append(f"trace span without a name: {span!r}")
    for key in ("start_us", "duration_us"):
        if not isinstance(span.get(key), (int, float)):
            problems.append(f"span {span.get('name')!r}: missing {key}")
    for child in span.get("children", []):
        _check_span(child, problems)


def validate_snapshot(snapshot: Any) -> list[str]:
    """Structural problems of a full instrumentation snapshot.

    Checks the schema tag, the metrics sections (every series named and
    typed, histogram counts sized to their buckets) and the trace tree
    (every span named with numeric timestamps).  An empty list means the
    snapshot is usable; the CI smoke additionally requires at least one
    non-zero counter (a snapshot of nothing measures nothing).

    Args:
        snapshot: a parsed snapshot dict.

    Returns:
        Human-readable problem descriptions; empty when valid.
    """
    problems: list[str] = []
    if not isinstance(snapshot, dict):
        return [f"snapshot is not an object: {type(snapshot).__name__}"]
    if snapshot.get("schema") != SNAPSHOT_SCHEMA:
        problems.append(
            f"schema tag {snapshot.get('schema')!r} != {SNAPSHOT_SCHEMA!r}"
        )
    metrics = snapshot.get("metrics")
    if not isinstance(metrics, dict):
        problems.append("missing 'metrics' section")
    else:
        for kind in ("counter", "gauge", "histogram"):
            section = metrics.get(kind + "s")
            if not isinstance(section, list):
                problems.append(f"metrics section '{kind}s' is not a list")
                continue
            for series in section:
                _check_series(series, kind, problems)
    trace = snapshot.get("trace")
    if not isinstance(trace, list):
        problems.append("missing 'trace' section")
    else:
        for span in trace:
            _check_span(span, problems)
    return problems
