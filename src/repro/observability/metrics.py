"""Counters, gauges and fixed-bucket histograms behind one registry.

The measurement substrate of the repository: every instrumented
subsystem (the paradigm pipelines, the hardened runner, the streaming
executor) increments metrics in a single :class:`MetricsRegistry`
instead of keeping ad-hoc tallies, so the numbers that back Table I all
come from one place and can be exported together
(:mod:`repro.observability.export`).

Design constraints, in order:

* **cheap on hot paths** — a metric object is a plain attribute
  increment; the registry lookup (a dict access) happens once, at
  wiring time, and callers hold the returned object;
* **deterministic snapshots** — :meth:`MetricsRegistry.snapshot`
  orders every series by ``(name, labels)``, so two identical
  virtual-time runs serialise to byte-identical JSON;
* **Prometheus-compatible naming** — names match
  ``[a-zA-Z_:][a-zA-Z0-9_:]*`` and labels are string→string, so the
  text exposition format needs no renaming.
"""

from __future__ import annotations

import math
import re
from typing import Any, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "exponential_buckets",
    "DEFAULT_BUCKETS",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Labels normalised to a hashable, deterministically ordered key.
LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, str] | None) -> LabelKey:
    if not labels:
        return ()
    items = []
    for key in sorted(labels):
        if not _LABEL_NAME_RE.match(key):
            raise ValueError(f"invalid label name {key!r}")
        items.append((key, str(labels[key])))
    return tuple(items)


def exponential_buckets(start: float, factor: float, count: int) -> tuple[float, ...]:
    """``count`` geometric histogram bucket bounds from ``start``.

    Args:
        start: first (smallest) upper bound, > 0.
        factor: ratio between consecutive bounds, > 1.
        count: number of finite bounds (the +Inf overflow bucket is
            implicit in every histogram).
    """
    if start <= 0:
        raise ValueError("start must be positive")
    if factor <= 1.0:
        raise ValueError("factor must be > 1")
    if count < 1:
        raise ValueError("count must be >= 1")
    return tuple(start * factor**i for i in range(count))


#: Default histogram bounds: 1 us .. ~1e9 us in decade-and-a-half steps,
#: wide enough for both per-stage virtual times and wall-clock spans.
DEFAULT_BUCKETS = exponential_buckets(1.0, 10.0, 10)


class Counter:
    """Monotonically increasing value (calls, events, virtual busy-us).

    Attributes:
        name: metric family name.
        labels: this series' label set.
        value: current total (float; integral totals export as ints).
    """

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative — counters never fall)."""
        if amount < 0:
            raise ValueError("counters can only increase")
        self.value += amount


class Gauge:
    """Point-in-time value (queue depth, current shedding tier)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the current value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative)."""
        self.value += amount

    def max(self, value: float) -> None:
        """Raise the gauge to ``value`` if it is higher (high-watermark)."""
        self.value = max(self.value, float(value))


class Histogram:
    """Fixed-bucket histogram of a distribution (latencies, sizes).

    Buckets are upper bounds, ascending; an implicit +Inf bucket
    catches overflow.  Counts are stored per-bucket (non-cumulative);
    the Prometheus exporter accumulates them on the way out.

    Attributes:
        name: metric family name.
        labels: this series' label set.
        buckets: finite upper bounds, ascending.
        counts: observations per bucket (len(buckets) + 1, last = +Inf).
        sum: sum of observed values.
        count: total observations.
    """

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        labels: LabelKey = (),
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError("bucket bounds must be finite (+Inf is implicit)")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("bucket bounds must be strictly ascending")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1


def _export_value(value: float) -> float | int:
    """Integral floats export as ints so snapshots are byte-stable."""
    return int(value) if float(value).is_integer() else float(value)


class MetricsRegistry:
    """Get-or-create home of every metric series.

    One registry per measured run (the streaming executor builds a fresh
    one per :meth:`~repro.streaming.executor.StreamingExecutor.run`);
    subsystems share it through
    :class:`~repro.observability.Instrumentation`.
    """

    def __init__(self) -> None:
        self._counters: dict[tuple[str, LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, LabelKey], Histogram] = {}
        self._kinds: dict[str, str] = {}
        self._help: dict[str, str] = {}

    # ------------------------------------------------------------------
    def _family(self, name: str, kind: str, help: str) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        existing = self._kinds.get(name)
        if existing is None:
            self._kinds[name] = kind
            self._help[name] = help
        elif existing != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {existing}, "
                f"cannot reuse it as a {kind}"
            )
        elif help and not self._help[name]:
            self._help[name] = help

    def counter(
        self, name: str, labels: Mapping[str, str] | None = None, help: str = ""
    ) -> Counter:
        """Get or create the counter series ``name{labels}``."""
        self._family(name, "counter", help)
        key = (name, _label_key(labels))
        series = self._counters.get(key)
        if series is None:
            series = self._counters[key] = Counter(name, key[1])
        return series

    def gauge(
        self, name: str, labels: Mapping[str, str] | None = None, help: str = ""
    ) -> Gauge:
        """Get or create the gauge series ``name{labels}``."""
        self._family(name, "gauge", help)
        key = (name, _label_key(labels))
        series = self._gauges.get(key)
        if series is None:
            series = self._gauges[key] = Gauge(name, key[1])
        return series

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        labels: Mapping[str, str] | None = None,
        help: str = "",
    ) -> Histogram:
        """Get or create the histogram series ``name{labels}``.

        Re-requesting an existing series with different ``buckets``
        raises — one family, one bucket layout.
        """
        self._family(name, "histogram", help)
        key = (name, _label_key(labels))
        series = self._histograms.get(key)
        if series is None:
            series = self._histograms[key] = Histogram(name, buckets, key[1])
        elif series.buckets != tuple(float(b) for b in buckets):
            raise ValueError(
                f"histogram {name!r} already registered with buckets "
                f"{series.buckets}"
            )
        return series

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def counter_value(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> float:
        """Current value of one counter series (0.0 when absent)."""
        series = self._counters.get((name, _label_key(labels)))
        return series.value if series is not None else 0.0

    def counter_total(self, name: str) -> float:
        """Sum of one counter family across all label sets."""
        return sum(
            c.value for (n, _), c in self._counters.items() if n == name
        )

    def help_text(self, name: str) -> str:
        """HELP string of a metric family ("" when unset)."""
        return self._help.get(name, "")

    def kind(self, name: str) -> str | None:
        """"counter" / "gauge" / "histogram", or None when unregistered."""
        return self._kinds.get(name)

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Deterministic, JSON-serialisable dump of every series.

        Series are ordered by ``(name, labels)`` regardless of creation
        order, and integral values are exported as ints, so identical
        runs produce byte-identical serialisations.
        """
        counters = [
            {
                "name": name,
                "labels": dict(key),
                "value": _export_value(series.value),
            }
            for (name, key), series in sorted(self._counters.items())
        ]
        gauges = [
            {
                "name": name,
                "labels": dict(key),
                "value": _export_value(series.value),
            }
            for (name, key), series in sorted(self._gauges.items())
        ]
        histograms = [
            {
                "name": name,
                "labels": dict(key),
                "buckets": [_export_value(b) for b in series.buckets],
                "counts": list(series.counts),
                "sum": _export_value(round(series.sum, 6)),
                "count": series.count,
            }
            for (name, key), series in sorted(self._histograms.items())
        ]
        return {"counters": counters, "gauges": gauges, "histograms": histograms}
