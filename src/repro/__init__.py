"""repro: a paradigm-comparison framework for event-camera processing.

A from-scratch reproduction of "The CNN vs. SNN Event-camera Dichotomy
and Perspectives For Event-Graph Neural Networks" (Dalgaty et al.,
DATE 2023): an event-camera simulator, the three processing paradigms
(spiking, dense-frame convolutional and event-graph neural networks),
analytical hardware cost models, and the comparison framework that
regenerates the paper's Table I and Fig. 1 from measurements.
"""

__version__ = "1.0.0"

from . import (
    analysis,
    camera,
    cnn,
    core,
    datasets,
    events,
    gnn,
    hw,
    nn,
    observability,
    parallel,
    reliability,
    sensors,
    snn,
    streaming,
)

__all__ = [
    "events",
    "camera",
    "sensors",
    "datasets",
    "nn",
    "snn",
    "cnn",
    "gnn",
    "hw",
    "core",
    "analysis",
    "reliability",
    "streaming",
    "observability",
    "parallel",
    "__version__",
]
