"""Command-line entry point: ``python -m repro``.

Prints the package inventory and runs a 2-second smoke demo of the full
pipeline (camera → events → three representations → streaming GNN
decision), so a fresh install can be sanity-checked in one command.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_info() -> int:
    import repro

    print(f"repro {repro.__version__} — event-camera paradigm-comparison framework")
    print("reproduction of: Dalgaty et al., 'The CNN vs. SNN Event-camera")
    print("Dichotomy and Perspectives For Event-Graph Neural Networks', DATE 2023")
    print()
    print("subpackages:")
    for name in repro.__all__:
        if name.startswith("__"):
            continue
        module = getattr(repro, name, None)
        doc = (module.__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        print(f"  repro.{name:<10} {summary}")
    print()
    print("run `python -m repro demo` for a pipeline smoke test,")
    print("`pytest tests/` for the test suite, and")
    print("`pytest benchmarks/ --benchmark-only -s` to regenerate the paper's artefacts.")
    return 0


def _cmd_demo() -> int:
    import numpy as np

    from repro.camera import CameraConfig, EventCamera, MovingDisk
    from repro.cnn import two_channel_frame
    from repro.events import Resolution
    from repro.gnn import AsyncEventGNN, EventGNNClassifier
    from repro.snn import events_to_spike_tensor

    res = Resolution(32, 32)
    camera = EventCamera(res, CameraConfig(seed=0, sample_period_us=500))
    events, _ = camera.record(
        MovingDisk(res, radius=4.0, x0=4.0, y0=16.0, vx_px_per_s=700.0), 40_000
    )
    print(f"simulated {len(events)} events ({events.event_rate()/1e3:.1f} kEPS)")

    spikes = events_to_spike_tensor(events, num_steps=16, pool=2)
    frame = two_channel_frame(events)
    print(f"SNN spike tensor {spikes.shape} (density {spikes.mean():.4f})")
    print(f"CNN dense frame  {frame.shape} (zeros {np.mean(frame == 0):.0%})")

    engine = AsyncEventGNN(
        EventGNNClassifier(3, hidden=8, rng=np.random.default_rng(0)),
        radius=4.0,
        time_scale_us=3000.0,
    )
    sub = events[:: max(1, len(events) // 200)]
    reports = engine.process_stream(sub)
    print(
        f"GNN streamed {len(reports)} events: graph {engine.num_events} nodes, "
        f"{reports[-1].macs} MACs on the last event, decision class {engine.predict()}"
    )
    print("ok")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI dispatcher."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument(
        "command",
        nargs="?",
        default="info",
        choices=("info", "demo"),
        help="info: package inventory; demo: pipeline smoke test",
    )
    args = parser.parse_args(argv)
    if args.command == "demo":
        return _cmd_demo()
    return _cmd_info()


if __name__ == "__main__":
    sys.exit(main())
