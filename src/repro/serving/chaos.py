"""Chaos injection and synthetic tenant workloads for the serving fleet.

A "million-user day" replay is only trustworthy if faults are injected
the way production faults arrive: scoped to one tenant, scheduled in
time, and drawn from the failure taxonomy the reliability layer already
models.  This module supplies both halves:

* **workloads** — :func:`make_tenant_windows` synthesises one tenant's
  day as pre-split event windows with a diurnal load curve, entirely
  from the tenant's own seed;
* **faults** — a seeded :class:`ChaosSchedule` of per-tenant
  :class:`ChaosEvent`\\ s in five kinds:

  ============  =========================================================
  ``flood``     the tenant's event rate multiplies by ``magnitude``
                (applied at stream synthesis — an input fault);
  ``skew``      a far-future timestamp corrupts one event per affected
                window (``magnitude`` hours, the
                :class:`~repro.reliability.faults.ClockSkew` regime) —
                the executor quarantines such windows as failed ingest;
  ``poison``    the tenant's primary model emits NaN (trips breakers
                via :func:`~repro.streaming.breaker.is_bad_output`);
  ``stall``     the tenant's primary model raises (a hung/crashed
                stage);
  ``corrupt``   the primary model's *session state* is corrupted
                through its own checkpoint round trip, reusing
                :class:`~repro.reliability.faults.NaNFeatureInjection`
                via :func:`~repro.reliability.faults.apply_session_fault`
                — and healed by restoring the pre-fault checkpoint when
                the event ends (the last-good-restore recovery path).
  ============  =========================================================

Stage-level faults are delivered by :class:`ChaosPredictor`, which maps
each model call back to a window index — from the stream's own
timestamps when serving one tenant (exact), or by call position with a
stride when a shared executor interleaves many tenants (approximate
under shedding, and documented as such: attribution drift is itself a
symptom of the no-isolation architecture).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

import numpy as np

from ..events import EventStream, Resolution
from ..parallel import derive_seed
from ..reliability.faults import NaNFeatureInjection, apply_session_fault

__all__ = [
    "CHAOS_KINDS",
    "ChaosEvent",
    "ChaosSchedule",
    "TenantModel",
    "MODEL_SNAPSHOT_FORMAT",
    "CallFault",
    "ChaosPredictor",
    "make_tenant_windows",
]

#: The supported fault kinds, in documentation order.
CHAOS_KINDS = ("flood", "skew", "poison", "stall", "corrupt")

#: Kinds applied to the event stream at synthesis time.
STREAM_KINDS = ("flood", "skew")

#: Kinds applied to the tenant's primary model at call time.
STAGE_KINDS = ("poison", "stall", "corrupt")

#: Checkpoint format tag of :class:`TenantModel` snapshots.
MODEL_SNAPSHOT_FORMAT = "serving-model/v1"

#: Microseconds per hour of clock skew (``skew`` magnitude unit).
_SKEW_US_PER_HOUR = 3_600_000_000


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault against one tenant.

    Attributes:
        tenant_id: the targeted tenant.
        kind: one of :data:`CHAOS_KINDS`.
        start_window: first affected window index (inclusive).
        stop_window: first unaffected window index (exclusive).
        magnitude: kind-specific severity — event-rate multiplier for
            ``flood``, hours of skew for ``skew``; ignored by the
            binary kinds.
    """

    tenant_id: str
    kind: str
    start_window: int
    stop_window: int
    magnitude: float = 4.0

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ValueError(f"kind must be one of {CHAOS_KINDS}, got {self.kind!r}")
        if self.start_window < 0 or self.stop_window <= self.start_window:
            raise ValueError("need 0 <= start_window < stop_window")
        if self.magnitude <= 0:
            raise ValueError("magnitude must be positive")

    def windows(self, num_windows: int) -> int:
        """How many of the run's windows this event touches."""
        return max(0, min(self.stop_window, num_windows) - self.start_window)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "tenant_id": self.tenant_id,
            "kind": self.kind,
            "start_window": self.start_window,
            "stop_window": self.stop_window,
            "magnitude": self.magnitude,
        }


@dataclass(frozen=True)
class ChaosSchedule:
    """A deterministic set of scheduled tenant faults.

    Attributes:
        events: the scheduled faults, in schedule order.
        seed: seed recorded for provenance (randomised schedules) and
            used to derive per-injection corruption seeds.
    """

    events: tuple[ChaosEvent, ...] = ()
    seed: int = 0

    def for_tenant(self, tenant_id: str) -> tuple[ChaosEvent, ...]:
        """The faults targeting one tenant, in schedule order."""
        return tuple(e for e in self.events if e.tenant_id == tenant_id)

    @property
    def targeted_tenants(self) -> tuple[str, ...]:
        """Unique targeted tenant ids, in first-appearance order."""
        seen: dict[str, None] = {}
        for event in self.events:
            seen.setdefault(event.tenant_id, None)
        return tuple(seen)

    def kind_windows(self, tenant_id: str, num_windows: int) -> dict[str, int]:
        """kind → windows of ``tenant_id`` touched within the run."""
        counts: dict[str, int] = {}
        for event in self.for_tenant(tenant_id):
            touched = event.windows(num_windows)
            if touched:
                counts[event.kind] = counts.get(event.kind, 0) + touched
        return counts

    @classmethod
    def random(
        cls,
        tenant_ids: Sequence[str],
        num_windows: int,
        *,
        kinds: Sequence[str] = CHAOS_KINDS,
        num_events: int = 4,
        seed: int = 0,
    ) -> "ChaosSchedule":
        """A seeded random schedule over the given tenants.

        Kinds rotate round-robin (every schedule exercises the
        taxonomy); targets and windows are drawn from a generator
        seeded only by ``seed``, so the schedule is a pure function of
        its arguments.
        """
        if not tenant_ids:
            raise ValueError("tenant_ids must be non-empty")
        if num_windows < 2:
            raise ValueError("num_windows must be >= 2")
        rng = np.random.default_rng(np.random.SeedSequence([seed & 0xFFFFFFFF]))
        span_lo = max(1, num_windows // 10)
        span_hi = max(span_lo + 1, num_windows // 4)
        events = []
        for i in range(num_events):
            kind = kinds[i % len(kinds)]
            tenant = tenant_ids[int(rng.integers(len(tenant_ids)))]
            start = int(rng.integers(0, num_windows - span_lo))
            span = int(rng.integers(span_lo, span_hi + 1))
            magnitude = {"flood": 6.0, "skew": 2.0}.get(kind, 4.0)
            events.append(
                ChaosEvent(tenant, kind, start, min(start + span, num_windows), magnitude)
            )
        return cls(events=tuple(events), seed=seed)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form."""
        return {"seed": self.seed, "events": [e.to_dict() for e in self.events]}


class TenantModel:
    """A deterministic stateful stand-in classifier for one paradigm.

    The serving fleet needs thousands of cheap per-tenant "models" whose
    behaviour is a pure function of their seed, yet which carry real
    *session state* so the reliability layer's session faults
    (:class:`~repro.reliability.faults.SessionFault`) apply to them
    unchanged.  The model therefore keeps a small feature bank shaped
    like an engine checkpoint (``x2`` rows + a ``running_max`` readout,
    the keys the session faults mutate) and exposes the same
    ``snapshot()``/``restore()`` contract as the real sessions —
    including rejection of unknown format tags and truncated payloads.

    A healthy model maps a window to a class from the event count and
    its readout; a model whose state holds non-finite values emits NaN,
    which the executor's breakers treat as failure
    (:func:`~repro.streaming.breaker.is_bad_output`) — exactly how a
    corrupted real session degrades.

    Args:
        paradigm: paradigm name (folded into the seed, so the same
            tenant's SNN and GNN models differ).
        num_classes: size of the label space.
        state_rows / state_dim: feature-bank shape.
        seed: seeds the initial state.
    """

    def __init__(
        self,
        paradigm: str,
        *,
        num_classes: int = 4,
        state_rows: int = 16,
        state_dim: int = 8,
        seed: int = 0,
    ) -> None:
        if num_classes < 2:
            raise ValueError("num_classes must be >= 2")
        if state_rows < 1 or state_dim < 1:
            raise ValueError("state shape must be positive")
        self.paradigm = paradigm
        self.num_classes = num_classes
        rng = np.random.default_rng(
            np.random.SeedSequence(
                [zlib.crc32(paradigm.encode("utf-8")), seed & 0xFFFFFFFF]
            )
        )
        self._x2 = rng.standard_normal((state_rows, state_dim))
        self._running_max = np.max(np.abs(self._x2), axis=0)
        self._last_t_us = 0
        self.calls = 0

    # ------------------------------------------------------------------
    # Session checkpoint contract (shared with the real engines)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Engine-schema checkpoint of the model's session state."""
        return {
            "format": MODEL_SNAPSHOT_FORMAT,
            "bounded": False,
            "capacity": int(self._x2.shape[0]),
            "count": int(self._x2.shape[0]),
            "live_start": 0,
            "last_t_us": int(self._last_t_us),
            "x2": self._x2.copy(),
            "running_max": self._running_max.copy(),
        }

    def restore(self, state: dict[str, Any]) -> None:
        """Restore from a checkpoint, rejecting malformed payloads."""
        if not isinstance(state, dict):
            raise ValueError(
                f"malformed {MODEL_SNAPSHOT_FORMAT!r} checkpoint: "
                f"expected a dict, got {type(state).__name__}"
            )
        fmt = state.get("format")
        if fmt != MODEL_SNAPSHOT_FORMAT:
            raise ValueError(
                f"unknown checkpoint format {fmt!r}: expected "
                f"{MODEL_SNAPSHOT_FORMAT!r}"
            )
        try:
            x2 = np.asarray(state["x2"], dtype=np.float64)
            running_max = np.asarray(state["running_max"], dtype=np.float64)
            last_t_us = int(state["last_t_us"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                f"malformed {MODEL_SNAPSHOT_FORMAT!r} checkpoint "
                f"(truncated or corrupt payload): {exc!r}"
            ) from exc
        if x2.ndim != 2 or running_max.shape != (x2.shape[1],):
            raise ValueError(
                f"malformed {MODEL_SNAPSHOT_FORMAT!r} checkpoint: state "
                f"shapes {x2.shape} / {running_max.shape} are inconsistent"
            )
        self._x2 = x2.copy()
        self._running_max = running_max.copy()
        self._last_t_us = last_t_us

    # ------------------------------------------------------------------
    def __call__(self, stream: EventStream) -> int | float:
        """Classify one window (NaN when the session state is corrupt)."""
        self.calls += 1
        if len(stream):
            self._last_t_us = int(stream.t[-1])
        if not (
            np.isfinite(self._running_max).all() and np.isfinite(self._x2).all()
        ):
            return float("nan")
        signature = int(round(float(np.abs(self._running_max).sum()) * 8.0))
        return int((len(stream) + signature) % self.num_classes)


@dataclass(frozen=True)
class CallFault:
    """One stage-level fault interval in window/call index space.

    Attributes:
        kind: one of :data:`STAGE_KINDS`.
        start / stop: affected index interval ``[start, stop)``.
        every / offset: stride filter for interleaved (shared-executor)
            streams — an index ``i`` is targeted when additionally
            ``(i - offset) % every == 0``.  The default stride of 1
            targets every index in the interval.
    """

    kind: str
    start: int
    stop: int
    every: int = 1
    offset: int = 0

    def __post_init__(self) -> None:
        if self.kind not in STAGE_KINDS:
            raise ValueError(f"kind must be one of {STAGE_KINDS}, got {self.kind!r}")
        if self.start < 0 or self.stop <= self.start:
            raise ValueError("need 0 <= start < stop")
        if self.every < 1:
            raise ValueError("every must be >= 1")

    def active(self, index: int) -> bool:
        """Whether ``index`` falls inside the fault interval."""
        return self.start <= index < self.stop

    def targets(self, index: int) -> bool:
        """Whether ``index`` is targeted (interval and stride)."""
        return self.active(index) and (index - self.offset) % self.every == 0


class ChaosPredictor:
    """Wraps a tenant's primary model, injecting scheduled stage faults.

    For each call the wrapper derives a fault index — the stream's own
    window index (``t[0] // window_us``) when ``window_us`` is given,
    or the call position otherwise — and consults its
    :class:`CallFault` list:

    * ``stall`` raises, ``poison`` returns NaN: both register as stage
      failures with the executor's guard/breakers.
    * ``corrupt`` checkpoints the model once on entry, injects
      :class:`~repro.reliability.faults.NaNFeatureInjection` through
      :func:`~repro.reliability.faults.apply_session_fault` (the same
      snapshot → corrupt → restore round trip the robustness harness
      uses), and restores the pre-fault checkpoint on the first call
      past the interval — modelling operator-driven recovery from the
      last good checkpoint.

    Timestamp indexing is exact even when the breaker refuses calls
    (window indices advance with the stream, not with the call count),
    which is what lets a tripped primary recover on schedule: the first
    half-open probe after the fault interval finds a healed model.

    Args:
        model: the wrapped :class:`TenantModel`.
        faults: stage-fault intervals.
        window_us: window length for timestamp indexing; ``None``
            switches to call-position indexing (shared executors).
        seed: derives per-injection corruption seeds.
    """

    def __init__(
        self,
        model: TenantModel,
        faults: Iterable[CallFault] = (),
        *,
        window_us: int | None = None,
        seed: int = 0,
    ) -> None:
        if window_us is not None and window_us <= 0:
            raise ValueError("window_us must be positive")
        self.model = model
        self.faults = tuple(faults)
        self.window_us = window_us
        self.seed = seed
        self.calls = 0
        self.injections = 0
        self.heals = 0
        self._clean: dict[str, Any] | None = None
        self._applied: set[int] = set()

    def _index(self, stream: EventStream) -> int:
        if self.window_us is not None and len(stream):
            return int(stream.t[0]) // self.window_us
        return self.calls

    def __call__(self, stream: EventStream) -> int | float:
        index = self._index(stream)
        self.calls += 1
        corrupt_active = False
        for i, fault in enumerate(self.faults):
            if fault.kind == "corrupt":
                if fault.active(index):
                    corrupt_active = True
                    if i not in self._applied:
                        if self._clean is None:
                            self._clean = self.model.snapshot()
                        apply_session_fault(
                            NaNFeatureInjection(fraction=1.0),
                            self.model,
                            derive_seed(self.seed, i, fault.start),
                        )
                        self._applied.add(i)
                        self.injections += 1
            elif fault.targets(index):
                if fault.kind == "stall":
                    raise RuntimeError(
                        f"chaos: stalled stage at window {index}"
                    )
                return float("nan")
        if not corrupt_active and self._clean is not None:
            self.model.restore(self._clean)
            self._clean = None
            self._applied.clear()
            self.heals += 1
        return self.model(stream)


def make_tenant_windows(
    spec: Any,
    *,
    num_windows: int,
    window_us: int,
    resolution: Resolution,
    chaos_events: Sequence[ChaosEvent] = (),
    diurnal_amplitude: float = 0.4,
) -> list[EventStream]:
    """One tenant's synthetic day as pre-split event windows.

    The per-window event count follows a diurnal curve around the
    tenant's nominal rate — ``base * (1 + amplitude * sin(2π w / W))``
    — the compressed shape of a million-user day: ramp, peak, trough.
    Stream-level chaos is applied here, where the input is made:
    ``flood`` events multiply affected windows' counts; ``skew`` events
    push one timestamp per affected window ``magnitude`` hours into the
    future (the window stays internally ordered, but its span defeats
    rate profiling, so the executor quarantines it as failed ingest).

    Everything derives from ``spec.seed``, so a tenant's fault-free
    windows are bit-identical whether or not *other* tenants are being
    targeted — the ground truth the isolation acceptance check
    compares against.

    Args:
        spec: a :class:`~repro.serving.tenancy.TenantSpec` (anything
            with ``tenant_id``, ``events_per_window``, ``seed``).
        num_windows: number of windows to synthesise.
        window_us: window length in microseconds.
        resolution: sensor resolution of the synthetic events.
        chaos_events: the tenant's scheduled faults (non-stream kinds
            are ignored here).
        diurnal_amplitude: relative amplitude of the load curve.

    Returns:
        ``num_windows`` event windows, ready for
        :meth:`~repro.streaming.executor.StreamingExecutor.run`.
    """
    if num_windows < 1:
        raise ValueError("num_windows must be >= 1")
    if window_us <= 0:
        raise ValueError("window_us must be positive")
    if not 0.0 <= diurnal_amplitude < 1.0:
        raise ValueError("diurnal_amplitude must be in [0, 1)")
    floods = [e for e in chaos_events if e.kind == "flood"]
    skews = [e for e in chaos_events if e.kind == "skew"]
    rng = np.random.default_rng(
        np.random.SeedSequence([spec.seed & 0xFFFFFFFF, num_windows])
    )
    windows: list[EventStream] = []
    for w in range(num_windows):
        phase = 2.0 * np.pi * w / num_windows
        count = max(
            1,
            int(
                round(
                    spec.events_per_window
                    * (1.0 + diurnal_amplitude * np.sin(phase))
                )
            ),
        )
        for flood in floods:
            if flood.start_window <= w < flood.stop_window:
                count = max(count, int(round(count * flood.magnitude)))
        # sort-ok: pure value sort of timestamps; equal stamps interchangeable
        t = w * window_us + np.sort(
            rng.integers(0, window_us, size=count, dtype=np.int64)
        )
        for skew in skews:
            if skew.start_window <= w < skew.stop_window:
                t[-1] += int(skew.magnitude * _SKEW_US_PER_HOUR)
        x = rng.integers(0, resolution.width, size=count, dtype=np.int32)
        y = rng.integers(0, resolution.height, size=count, dtype=np.int32)
        p = np.where(rng.random(count) < 0.5, -1, 1).astype(np.int8)
        windows.append(EventStream.from_arrays(t, x, y, p, resolution))
    return windows
