"""Degradation-aware paradigm routing from the measured scorecard.

The paper's Table I is usually read as a static comparison; here it
becomes a *live routing policy*.  Each paradigm (SNN / CNN / GNN) is
summarised as a :class:`ParadigmProfile` — accuracy, decision latency,
energy efficiency and an analytic service-cost model — and the
:class:`PolicyRouter` assigns every tenant a primary paradigm plus a
degradation chain:

* **primary** — the most accurate paradigm that satisfies the tenant's
  SLO class (accuracy floor, energy floor, latency bound at the
  tenant's event rate); ties break on energy efficiency, then name.
* **fallbacks** — the remaining paradigms ordered cheapest-energy
  first, which is exactly the executor's breaker-driven failover
  order: when the primary's circuit breaker opens, windows re-route to
  the cheapest healthy paradigm, and re-route back once the breaker's
  seeded half-open probes re-close it.

Profiles can come from :data:`DEFAULT_SCORECARD` (paper-representative
figures) or from a measured comparison via
:func:`scorecard_from_comparison`, making the router's policy exactly
as good as the benchmark that feeds it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..streaming import ServiceModel
from .tenancy import SLOClass, TenantSpec

__all__ = [
    "ParadigmProfile",
    "DEFAULT_SCORECARD",
    "scorecard_from_comparison",
    "fallback_chain",
    "RoutingDecision",
    "PolicyRouter",
]


@dataclass(frozen=True)
class ParadigmProfile:
    """One paradigm's routing-relevant scorecard row.

    Attributes:
        paradigm: paradigm name ("SNN" / "CNN" / "GNN").
        accuracy: classification accuracy in [0, 1].
        energy_efficiency: classifications per joule (higher = cheaper).
        service_base_us: fixed virtual cost of serving one window.
        service_per_event_us: incremental virtual cost per event.
    """

    paradigm: str
    accuracy: float
    energy_efficiency: float
    service_base_us: float
    service_per_event_us: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.accuracy <= 1.0:
            raise ValueError("accuracy must be in [0, 1]")
        if self.energy_efficiency < 0:
            raise ValueError("energy_efficiency must be >= 0")
        if self.service_base_us < 0 or self.service_per_event_us < 0:
            raise ValueError("service costs must be >= 0")

    def service_us(self, events: int) -> float:
        """Unscaled virtual service time of one window of ``events``."""
        return self.service_base_us + self.service_per_event_us * events

    def service_model(self, share: float = 1.0) -> ServiceModel:
        """The tenant-scaled executor cost model.

        A tenant granted rate share ``share`` of the pool serves each
        window in ``service_us / share`` virtual microseconds — the
        fluid (generalized-processor-sharing) view that makes every
        tenant's timeline independent of co-tenants and shard count.
        """
        if share <= 0:
            raise ValueError("share must be positive")
        return ServiceModel(
            base_us=self.service_base_us / share,
            per_event_us=self.service_per_event_us / share,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "paradigm": self.paradigm,
            "accuracy": self.accuracy,
            "energy_efficiency": self.energy_efficiency,
            "service_base_us": self.service_base_us,
            "service_per_event_us": self.service_per_event_us,
        }


#: Paper-representative scorecard: the CNN is the most accurate but
#: costly per window; the SNN is energy-frugal but least accurate; the
#: event-graph GNN is the low-latency middle ground (cheap per-event
#: updates).  Calibrated so the built-in SLO classes each route to a
#: different paradigm (gold → GNN, silver → CNN, bronze → SNN).
DEFAULT_SCORECARD: dict[str, ParadigmProfile] = {
    "SNN": ParadigmProfile(
        "SNN",
        accuracy=0.72,
        energy_efficiency=5e5,
        service_base_us=400.0,
        service_per_event_us=25.0,
    ),
    "CNN": ParadigmProfile(
        "CNN",
        accuracy=0.90,
        energy_efficiency=6e3,
        service_base_us=900.0,
        service_per_event_us=55.0,
    ),
    "GNN": ParadigmProfile(
        "GNN",
        accuracy=0.85,
        energy_efficiency=8e4,
        service_base_us=250.0,
        service_per_event_us=6.0,
    ),
}


def scorecard_from_comparison(
    metrics: Mapping[str, Any],
    *,
    ops_per_us: float = 1e3,
    nominal_events: int = 100,
) -> dict[str, ParadigmProfile]:
    """Build a routing scorecard from measured per-paradigm metrics.

    Args:
        metrics: paradigm name → an object exposing ``accuracy``,
            ``latency`` (µs per decision), ``energy_efficiency``
            (classifications/J) and ``num_operations`` — the fields of
            :class:`repro.core.metrics.PipelineMetrics`, so a Table-I
            run feeds the router directly.
        ops_per_us: virtual throughput used to convert operation counts
            into per-event service cost.
        nominal_events: event count the measured latency is attributed
            to when splitting it into base + per-event cost.

    Returns:
        Paradigm name → profile; paradigms whose metrics are missing or
        non-finite fall back to their :data:`DEFAULT_SCORECARD` row.
    """
    import math

    scorecard: dict[str, ParadigmProfile] = {}
    for name, m in metrics.items():
        default = DEFAULT_SCORECARD.get(name)
        accuracy = getattr(m, "accuracy", float("nan"))
        latency = getattr(m, "latency", float("nan"))
        energy = getattr(m, "energy_efficiency", float("nan"))
        ops = getattr(m, "num_operations", float("nan"))
        if not all(map(math.isfinite, (accuracy, latency, energy, ops))):
            if default is not None:
                scorecard[name] = default
            continue
        per_event = max(0.0, (ops / ops_per_us) / max(nominal_events, 1))
        base = max(0.0, latency - per_event * nominal_events)
        scorecard[name] = ParadigmProfile(
            paradigm=name,
            accuracy=float(accuracy),
            energy_efficiency=float(energy),
            service_base_us=base,
            service_per_event_us=per_event,
        )
    return scorecard


def fallback_chain(
    scorecard: Mapping[str, ParadigmProfile], primary: str
) -> tuple[str, ...]:
    """The degradation order behind ``primary``: cheapest energy first.

    Ties break on paradigm name, so the chain is a pure function of the
    scorecard.
    """
    rest = [p for name, p in sorted(scorecard.items()) if name != primary]
    rest.sort(key=lambda p: (-p.energy_efficiency, p.paradigm))
    return tuple(p.paradigm for p in rest)


@dataclass(frozen=True)
class RoutingDecision:
    """One tenant's paradigm assignment.

    Attributes:
        tenant_id: the routed tenant.
        primary: paradigm serving the tenant while healthy.
        fallbacks: breaker-failover chain, cheapest energy first.
        degraded: True when no paradigm met the tenant's policy and the
            cheapest-latency paradigm was assigned best-effort.
        reasons: per-paradigm eligibility notes, for explainability.
    """

    tenant_id: str
    primary: str
    fallbacks: tuple[str, ...]
    degraded: bool = False
    reasons: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "tenant_id": self.tenant_id,
            "primary": self.primary,
            "fallbacks": list(self.fallbacks),
            "degraded": self.degraded,
            "reasons": list(self.reasons),
        }


class PolicyRouter:
    """Assigns tenants a paradigm + degradation chain from a scorecard.

    Args:
        scorecard: paradigm name → :class:`ParadigmProfile`; defaults
            to :data:`DEFAULT_SCORECARD`.
    """

    def __init__(
        self, scorecard: Mapping[str, ParadigmProfile] | None = None
    ) -> None:
        table = dict(scorecard) if scorecard is not None else dict(DEFAULT_SCORECARD)
        if not table:
            raise ValueError("scorecard must contain at least one paradigm")
        self.scorecard = table

    def route(self, tenant: TenantSpec, slo: SLOClass) -> RoutingDecision:
        """The routing decision for one tenant under its SLO class.

        Eligibility at the tenant's nominal event rate: accuracy floor,
        energy floor and the unscaled service latency against the SLO
        bound (admission re-checks latency at the actually granted
        share).  The primary is the most accurate eligible paradigm
        (ties: higher energy efficiency, then name); when nothing is
        eligible the cheapest-latency paradigm serves best-effort with
        ``degraded=True``.
        """
        events = tenant.events_per_window
        eligible: list[ParadigmProfile] = []
        reasons: list[str] = []
        for name in sorted(self.scorecard):
            profile = self.scorecard[name]
            latency = profile.service_us(events)
            if profile.accuracy < slo.accuracy_floor:
                reasons.append(
                    f"{name}: accuracy {profile.accuracy:.2f} < floor "
                    f"{slo.accuracy_floor:.2f}"
                )
            elif profile.energy_efficiency < slo.energy_floor:
                reasons.append(
                    f"{name}: energy efficiency {profile.energy_efficiency:.0f} "
                    f"< floor {slo.energy_floor:.0f}"
                )
            elif latency > slo.latency_slo_us:
                reasons.append(
                    f"{name}: service {latency:.0f}us > SLO "
                    f"{slo.latency_slo_us:.0f}us"
                )
            else:
                reasons.append(f"{name}: eligible")
                eligible.append(profile)
        if eligible:
            primary = max(
                eligible,
                key=lambda p: (p.accuracy, p.energy_efficiency, p.paradigm),
            ).paradigm
            degraded = False
        else:
            primary = min(
                self.scorecard.values(),
                key=lambda p: (p.service_us(events), p.paradigm),
            ).paradigm
            degraded = True
            reasons.append(f"no eligible paradigm; degraded to {primary}")
        return RoutingDecision(
            tenant_id=tenant.tenant_id,
            primary=primary,
            fallbacks=fallback_chain(self.scorecard, primary),
            degraded=degraded,
            reasons=tuple(reasons),
        )
