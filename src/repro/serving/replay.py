"""The "million-user day" chaos replay and its isolation evidence.

The replay answers one question four ways: *what fraction of each
tenant's day is delivered within SLO when another tenant misbehaves?*
It runs the same seeded tenant mix through the fleet in a 2×2 grid —
{isolated, shared} × {fault-free, chaos} — and compares each chaos run
against its own architecture's fault-free control:

* under **isolation**, a non-targeted tenant's day is *bit-identical*
  to its fault-free control (the bulkhead property holds by
  construction, and the replay verifies it empirically);
* under the **shared** baseline, the same chaos measurably degrades
  non-targeted tenants — flooded queues evict their windows, a
  corrupted shared session trips everyone's breakers.

The replay also extracts the paradigm-failover evidence end to end: the
chaos-targeted tenant's breaker transition log must show its primary
paradigm tripping open, its windows re-routing onto the fallback chain,
and the breaker re-closing after recovery with the primary serving
again.

:func:`sweep_tenant_counts` repeats the story across mix sizes to
produce the ``BENCH_serving.json`` capacity curves: sustained tenants ×
delivered-fraction-at-SLO, with and without isolation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from ..parallel import ParallelConfig
from ..streaming import StreamReport
from .admission import AdmissionPolicy
from .chaos import ChaosEvent, ChaosSchedule
from .fleet import ServingFleet, ServingReport
from .tenancy import TenantSpec, make_tenant_mix

__all__ = [
    "default_chaos",
    "ReplayResult",
    "run_serving_replay",
    "sweep_tenant_counts",
]

#: Tolerance of the bulkhead acceptance check: a non-targeted tenant's
#: delivered-at-SLO fraction may move by at most this much under chaos.
ISOLATION_TOLERANCE = 0.01


def default_chaos(
    tenants: Sequence[TenantSpec], num_windows: int, *, seed: int = 0
) -> ChaosSchedule:
    """The canonical replay schedule: one fault per taxonomy entry.

    Targets the first tenant of each SLO class (and the second, where
    the mix has one) so every paradigm group contains both targeted and
    non-targeted tenants.  Faults start at a quarter of the day and end
    at half, leaving the second half for breaker recovery.
    """
    start = num_windows // 4
    stop = num_windows // 2
    by_class: dict[str, list[TenantSpec]] = {}
    for spec in tenants:
        by_class.setdefault(spec.slo_class, []).append(spec)
    golds = by_class.get("gold", [])
    silvers = by_class.get("silver", [])
    bronzes = by_class.get("bronze", [])
    events: list[ChaosEvent] = []
    if golds:
        events.append(
            ChaosEvent(golds[0].tenant_id, "poison", start, stop)
        )
    if silvers:
        events.append(
            ChaosEvent(silvers[0].tenant_id, "corrupt", start, stop)
        )
    if bronzes:
        events.append(
            ChaosEvent(bronzes[0].tenant_id, "flood", start, stop, magnitude=6.0)
        )
    if len(golds) > 1:
        events.append(
            ChaosEvent(
                golds[1].tenant_id,
                "skew",
                start,
                min(start + max(2, (stop - start) // 2), num_windows),
                magnitude=2.0,
            )
        )
    if len(silvers) > 1:
        events.append(
            ChaosEvent(silvers[1].tenant_id, "stall", start, stop)
        )
    return ChaosSchedule(events=tuple(events), seed=seed)


@dataclass
class ReplayResult:
    """One replay's full output.

    Attributes:
        payload: the JSON-serialisable replay record (configuration,
            per-mode reports, per-tenant deltas, acceptance checks).
        reports: mode → {"fault_free" | "chaos"} → the live
            :class:`~repro.serving.fleet.ServingReport` objects.
        snapshots: mode → the chaos run's merged observability
            snapshot.
        validation_errors: reconciliation problems across all four
            runs (empty on a healthy replay).
    """

    payload: dict[str, Any]
    reports: dict[str, dict[str, ServingReport]]
    snapshots: dict[str, dict[str, Any]]
    validation_errors: list[str]


def _failover_evidence(
    report: ServingReport, tenant_id: str
) -> dict[str, Any]:
    """Breaker/failover facts of one targeted tenant's isolated run."""
    outcome = report.tenants[tenant_id]
    stream: StreamReport | None = outcome.report
    primary = outcome.decision.primary
    if stream is None:
        return {"tenant_id": tenant_id, "primary": primary, "available": False}
    opened = any(
        t.stage == primary and t.to_state.value == "open"
        for t in stream.breaker_transitions
    )
    reclosed = any(
        t.stage == primary and t.to_state.value == "closed"
        for t in stream.breaker_transitions
    )
    return {
        "tenant_id": tenant_id,
        "primary": primary,
        "available": True,
        "breaker_opened": opened,
        "breaker_reclosed": reclosed,
        "final_state": stream.breaker_states.get(primary),
        "served_by": dict(stream.served_by),
        "served_by_primary": stream.served_by.get(primary, 0),
        "served_by_fallbacks": sum(
            count
            for stage, count in stream.served_by.items()
            if stage != primary
        ),
        "recovered": (
            reclosed
            and stream.breaker_states.get(primary) == "closed"
            and stream.served_by.get(primary, 0) > 0
        ),
    }


def _mode_story(
    fault_free: ServingReport,
    chaos_run: ServingReport,
    targeted: Sequence[str],
) -> dict[str, Any]:
    """Per-tenant fault-free → chaos comparison for one architecture."""
    per_tenant = {}
    non_targeted_deltas = []
    for tid in fault_free.tenants:
        base = fault_free.tenants[tid].delivered_at_slo
        under = chaos_run.tenants[tid].delivered_at_slo
        delta = under - base
        is_target = tid in targeted
        per_tenant[tid] = {
            "targeted": is_target,
            "delivered_at_slo_fault_free": base,
            "delivered_at_slo_chaos": under,
            "delta": delta,
        }
        if not is_target and fault_free.tenants[tid].admission.admitted:
            non_targeted_deltas.append(abs(delta))
    max_delta = max(non_targeted_deltas, default=0.0)
    return {
        "fault_free": fault_free.to_dict(),
        "chaos": chaos_run.to_dict(),
        "per_tenant": per_tenant,
        "max_non_targeted_delta": max_delta,
        "isolation_holds": max_delta <= ISOLATION_TOLERANCE,
    }


def run_serving_replay(
    num_tenants: int = 12,
    *,
    num_windows: int = 60,
    window_us: int = 10_000,
    capacity: float = 16.0,
    n_shards: int = 1,
    seed: int = 0,
    chaos: ChaosSchedule | None = None,
    modes: Sequence[str] = ("isolated", "shared"),
    parallel: ParallelConfig | None = None,
    include_traces: bool = True,
) -> ReplayResult:
    """Run the 2×2 chaos replay on one seeded tenant mix.

    Args:
        num_tenants: mix size (classes rotate gold/silver/bronze).
        num_windows: windows per tenant — the compressed day.
        window_us: serving window length.
        capacity: admission pool capacity (executor-equivalents).
        n_shards: isolated-mode shard count (bit-identity invariant).
        seed: master seed of mix, workloads and chaos.
        chaos: fault schedule; defaults to :func:`default_chaos`.
        modes: architectures to run ("isolated" and/or "shared").
        parallel: isolated-mode execution backend.
        include_traces: keep executor traces in merged snapshots.

    Returns:
        A :class:`ReplayResult`; ``payload`` alone tells the whole
        story and serialises deterministically.
    """
    tenants = make_tenant_mix(num_tenants, seed=seed)
    schedule = chaos if chaos is not None else default_chaos(
        tenants, num_windows, seed=seed
    )
    targeted = schedule.targeted_tenants
    policy = AdmissionPolicy(capacity=capacity)

    def build(isolation: bool, with_chaos: bool) -> ServingFleet:
        return ServingFleet(
            tenants,
            window_us=window_us,
            num_windows=num_windows,
            policy=policy,
            chaos=schedule if with_chaos else None,
            isolation=isolation,
            n_shards=n_shards if isolation else 1,
            parallel=parallel,
            include_traces=include_traces,
            seed=seed,
        )

    reports: dict[str, dict[str, ServingReport]] = {}
    snapshots: dict[str, dict[str, Any]] = {}
    stories: dict[str, dict[str, Any]] = {}
    validation_errors: list[str] = []
    for mode in modes:
        isolation = mode == "isolated"
        fleet_ff = build(isolation, with_chaos=False)
        report_ff = fleet_ff.run()
        fleet_chaos = build(isolation, with_chaos=True)
        report_chaos = fleet_chaos.run()
        reports[mode] = {"fault_free": report_ff, "chaos": report_chaos}
        snapshots[mode] = fleet_chaos.snapshot()
        for label, rep in (("fault_free", report_ff), ("chaos", report_chaos)):
            validation_errors.extend(
                f"{mode}/{label}: {p}" for p in rep.validate()
            )
        stories[mode] = _mode_story(report_ff, report_chaos, targeted)

    failover = None
    if "isolated" in reports:
        chaos_report = reports["isolated"]["chaos"]
        stage_targets = [
            e.tenant_id
            for e in schedule.events
            if e.kind in ("poison", "stall", "corrupt")
            and chaos_report.tenants.get(e.tenant_id) is not None
            and chaos_report.tenants[e.tenant_id].admission.admitted
        ]
        failover = [
            _failover_evidence(chaos_report, tid)
            for tid in dict.fromkeys(stage_targets)
        ]

    payload: dict[str, Any] = {
        "schema": "repro.serving.replay/1",
        "config": {
            "num_tenants": num_tenants,
            "num_windows": num_windows,
            "window_us": window_us,
            "capacity": capacity,
            "seed": seed,
            "modes": list(modes),
        },
        "chaos": schedule.to_dict(),
        "targeted_tenants": list(targeted),
        "modes": stories,
        "failover": failover,
        "validation_errors": list(validation_errors),
    }
    return ReplayResult(
        payload=payload,
        reports=reports,
        snapshots=snapshots,
        validation_errors=validation_errors,
    )


def sweep_tenant_counts(
    tenant_counts: Sequence[int] = (6, 12, 18, 24, 36),
    *,
    num_windows: int = 60,
    window_us: int = 10_000,
    capacity: float = 16.0,
    seed: int = 0,
) -> dict[str, Any]:
    """The ``BENCH_serving.json`` capacity curves.

    For each mix size, runs the chaos replay in both architectures and
    records admitted tenants and fleet delivered-at-SLO, fault-free and
    under chaos — the "sustained tenants × delivered fraction" curves
    with and without bulkhead isolation.
    """
    curves: dict[str, list[dict[str, Any]]] = {"isolated": [], "shared": []}
    for count in tenant_counts:
        result = run_serving_replay(
            count,
            num_windows=num_windows,
            window_us=window_us,
            capacity=capacity,
            seed=seed,
            include_traces=False,
        )
        for mode, story in result.payload["modes"].items():
            ff = story["fault_free"]["aggregate"]
            ch = story["chaos"]["aggregate"]
            curves[mode].append(
                {
                    "tenants_requested": count,
                    "tenants_admitted": ff["admitted"],
                    "delivered_at_slo_fault_free": ff["delivered_at_slo"],
                    "delivered_at_slo_chaos": ch["delivered_at_slo"],
                    "max_non_targeted_delta": story["max_non_targeted_delta"],
                    "isolation_holds": story["isolation_holds"],
                }
            )
    return {
        "schema": "repro.serving.bench/1",
        "config": {
            "tenant_counts": list(tenant_counts),
            "num_windows": num_windows,
            "window_us": window_us,
            "capacity": capacity,
            "seed": seed,
        },
        "curves": curves,
    }
