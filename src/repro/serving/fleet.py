"""The multi-tenant serving fleet: bulkheads, fair shares, failover.

:class:`ServingFleet` admits a requested tenant mix, routes every
tenant to a paradigm, and serves each tenant's synthetic day through
:class:`~repro.streaming.executor.StreamingExecutor` machinery in one
of two architectures:

* **isolated** (the bulkhead design) — every admitted tenant gets its
  own executor with a service model scaled to its granted fair share
  (the fluid generalized-processor-sharing view), its own bounded
  queue, shed controller and per-stage circuit breakers.  A tenant's
  virtual timeline is then a pure function of ``(mix, seed, its own
  chaos)`` — independent of co-tenants *and* of how tenants are placed
  on shards, which is what makes fleet reports bit-identical at 1, 2
  or 4 shards.  Tenant executors are placed on shards with
  :func:`~repro.parallel.sharding.balance_assignments` and run via
  :func:`~repro.parallel.sharding.run_shards`.
* **shared** (the no-isolation baseline) — tenants routed to the same
  primary paradigm are interleaved window-by-window into one executor
  per paradigm group, with one shared queue, shared breakers, a shared
  model and the group's summed share as capacity.  Per-tenant outcomes
  are attributed back through profiling hooks.  This is the
  architecture the chaos replay indicts: one tenant's flood evicts its
  neighbours' windows, one tenant's corrupted session trips breakers
  for everyone.

Either way the fleet reconciles exactly: per-tenant ledgers partition
each executor report's balanced accounting
(:func:`~repro.streaming.report.validate_report`), per-tenant SLO
attribution uses the report's ``window_latencies``, and the fleet's
``serving_*`` metrics registry plus per-tenant labelled snapshots merge
into one deterministic observability snapshot via
:func:`~repro.observability.export.label_snapshot` and
:func:`~repro.parallel.merge.merge_snapshots`.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Sequence

from ..events import Resolution
from ..observability import MetricsRegistry, ProfilingHooks, label_snapshot
from ..observability.export import SNAPSHOT_SCHEMA
from ..parallel import (
    ParallelConfig,
    balance_assignments,
    derive_seed,
    merge_snapshots,
    run_shards,
)
from ..streaming import ServiceModel, StreamingExecutor, StreamReport, validate_report
from ..streaming.executor import SHED_STAGE
from .admission import AdmissionController, AdmissionPolicy, AdmissionResult
from .chaos import (
    STAGE_KINDS,
    CallFault,
    ChaosPredictor,
    ChaosSchedule,
    TenantModel,
    make_tenant_windows,
)
from .router import PolicyRouter, RoutingDecision, fallback_chain
from .tenancy import SLO_CLASSES, SLOClass, TenantSpec

__all__ = ["TenantOutcome", "ServingReport", "ServingFleet"]

#: Window-ledger keys, in partition order.
_LEDGER_KEYS = ("offered", "processed", "expired", "shed", "failed")

#: Terminal window outcomes (hook names) folded into each ledger key.
_OUTCOME_TO_KEY = {
    "processed": "processed",
    "expired": "expired",
    "shed": "shed",
    "failed_ingest": "failed",
    "failed_serve": "failed",
}


def _empty_ledger() -> dict[str, int]:
    return {key: 0 for key in _LEDGER_KEYS}


@dataclass
class TenantOutcome:
    """Everything the fleet knows about one requested tenant.

    Attributes:
        spec: the requested session.
        slo: the tenant's resolved SLO class.
        decision: paradigm routing (primary + failover chain).
        admission: admission verdict with granted share / retry hints.
        ledger: window partition — ``offered == processed + expired +
            shed + failed`` (all zero for refused tenants).
        slo_met / slo_missed: offered windows that did / did not
            produce a prediction within the class latency SLO
            (unserved windows count as missed, so ``met + missed ==
            offered``).
        failover_windows: processed windows served by a stage other
            than the primary paradigm (fallback chain or last-good).
        served_by: serving stage → windows it delivered.
        chaos_windows: chaos kind → windows of this tenant it touched.
        report: the tenant's own :class:`StreamReport` (isolated mode
            only; shared-mode tenants are views over a group report).
    """

    spec: TenantSpec
    slo: SLOClass
    decision: RoutingDecision
    admission: AdmissionResult
    ledger: dict[str, int] = field(default_factory=_empty_ledger)
    slo_met: int = 0
    slo_missed: int = 0
    failover_windows: int = 0
    served_by: dict[str, int] = field(default_factory=dict)
    chaos_windows: dict[str, int] = field(default_factory=dict)
    report: StreamReport | None = None

    @property
    def delivered_at_slo(self) -> float:
        """Fraction of offered windows delivered within the SLO."""
        if self.ledger["offered"] == 0:
            return 0.0
        return self.slo_met / self.ledger["offered"]

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (tenant report included when owned)."""
        return {
            "spec": self.spec.to_dict(),
            "slo": self.slo.to_dict(),
            "decision": self.decision.to_dict(),
            "admission": self.admission.to_dict(),
            "ledger": dict(self.ledger),
            "slo_met": self.slo_met,
            "slo_missed": self.slo_missed,
            "delivered_at_slo": self.delivered_at_slo,
            "failover_windows": self.failover_windows,
            "served_by": dict(self.served_by),
            "chaos_windows": dict(self.chaos_windows),
            "report": None if self.report is None else self.report.to_dict(),
        }


@dataclass
class ServingReport:
    """The fleet-level account of one serving run.

    Deliberately contains nothing placement-dependent: shard count and
    backend never appear, so identical seeded runs serialise
    byte-identically at any parallelism.

    Attributes:
        mode: ``"isolated"`` or ``"shared"``.
        window_us / num_windows / seed / capacity / total_weight: run
            configuration echoes.
        tenants: tenant id → outcome, in requested-mix order.
        group_reports: shared mode only — paradigm → the group
            executor's report.
    """

    mode: str
    window_us: int
    num_windows: int
    seed: int
    capacity: float
    total_weight: float
    tenants: dict[str, TenantOutcome] = field(default_factory=dict)
    group_reports: dict[str, StreamReport] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def admitted_ids(self) -> list[str]:
        """Admitted tenant ids, in mix order."""
        return [t for t, o in self.tenants.items() if o.admission.admitted]

    @property
    def refused_ids(self) -> list[str]:
        """Refused tenant ids, in mix order."""
        return [t for t, o in self.tenants.items() if not o.admission.admitted]

    def group_members(self, paradigm: str) -> list[str]:
        """Admitted tenants routed to ``paradigm`` as primary."""
        return [
            t
            for t, o in self.tenants.items()
            if o.admission.admitted and o.decision.primary == paradigm
        ]

    def aggregate(self) -> dict[str, Any]:
        """Fleet-wide sums over admitted tenants."""
        totals = _empty_ledger()
        slo_met = slo_missed = failovers = 0
        for outcome in self.tenants.values():
            for key in _LEDGER_KEYS:
                totals[key] += outcome.ledger[key]
            slo_met += outcome.slo_met
            slo_missed += outcome.slo_missed
            failovers += outcome.failover_windows
        offered = totals["offered"]
        return {
            **totals,
            "slo_met": slo_met,
            "slo_missed": slo_missed,
            "failover_windows": failovers,
            "admitted": len(self.admitted_ids),
            "refused": len(self.refused_ids),
            "delivered_at_slo": (slo_met / offered) if offered else 0.0,
        }

    # ------------------------------------------------------------------
    def validate(self) -> list[str]:
        """Reconciliation problems across every accounting layer.

        Checks, per tenant: the window-ledger partition, the SLO
        partition, zero activity for refused tenants, and (isolated
        mode) exact equality between the tenant ledger and its own
        balanced :class:`StreamReport`.  Checks, per shared group: the
        group report's own balance plus exact equality between the sum
        of member ledgers and the group counters.  Empty means every
        window the fleet was offered is accounted for exactly once.
        """
        problems: list[str] = []
        for tid, outcome in self.tenants.items():
            ledger = outcome.ledger
            parts = sum(ledger[k] for k in _LEDGER_KEYS if k != "offered")
            if parts != ledger["offered"]:
                problems.append(
                    f"{tid}: ledger partition {parts} != offered "
                    f"{ledger['offered']}"
                )
            if outcome.slo_met + outcome.slo_missed != ledger["offered"]:
                problems.append(
                    f"{tid}: SLO partition {outcome.slo_met}+"
                    f"{outcome.slo_missed} != offered {ledger['offered']}"
                )
            if not outcome.admission.admitted:
                if any(ledger[k] for k in _LEDGER_KEYS):
                    problems.append(f"{tid}: refused tenant has activity")
                continue
            if ledger["offered"] != self.num_windows:
                problems.append(
                    f"{tid}: offered {ledger['offered']} != "
                    f"num_windows {self.num_windows}"
                )
            report = outcome.report
            if report is not None:
                problems.extend(validate_report(report, context=tid))
                expected = {
                    "offered": report.offered,
                    "processed": report.processed,
                    "expired": report.expired,
                    "shed": report.shed_windows,
                    "failed": report.failed,
                }
                if expected != ledger:
                    problems.append(
                        f"{tid}: ledger {ledger} != report counters {expected}"
                    )
            elif self.mode == "isolated":
                problems.append(f"{tid}: admitted isolated tenant lacks a report")
        for paradigm, report in self.group_reports.items():
            context = f"group:{paradigm}"
            problems.extend(validate_report(report, context=context))
            members = self.group_members(paradigm)
            sums = _empty_ledger()
            for tid in members:
                for key in _LEDGER_KEYS:
                    sums[key] += self.tenants[tid].ledger[key]
            expected = {
                "offered": report.offered,
                "processed": report.processed,
                "expired": report.expired,
                "shed": report.shed_windows,
                "failed": report.failed,
            }
            if sums != expected:
                problems.append(
                    f"{context}: member ledgers {sums} != group counters "
                    f"{expected}"
                )
        return problems

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON-serialisable form (placement-independent)."""
        return {
            "mode": self.mode,
            "window_us": self.window_us,
            "num_windows": self.num_windows,
            "seed": self.seed,
            "capacity": self.capacity,
            "total_weight": self.total_weight,
            "aggregate": self.aggregate(),
            "tenants": {t: o.to_dict() for t, o in self.tenants.items()},
            "group_reports": {
                p: r.to_dict() for p, r in self.group_reports.items()
            },
        }


# ----------------------------------------------------------------------
# Isolated-mode shard worker (module-level: picklable for process pools)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _TenantTask:
    """Everything one tenant's bulkhead run needs, self-contained."""

    index: int
    spec: TenantSpec
    decision: RoutingDecision
    share: float
    service_base_us: float
    service_per_event_us: float
    chaos_events: tuple
    window_us: int
    num_windows: int
    resolution: Resolution
    queue_capacity: int
    deadline_us: float | None
    diurnal_amplitude: float
    seed: int
    include_trace: bool


def _run_tenant(task: _TenantTask) -> tuple[str, StreamReport, dict[str, Any]]:
    """Serve one tenant's day in its own bulkhead executor."""
    windows = make_tenant_windows(
        task.spec,
        num_windows=task.num_windows,
        window_us=task.window_us,
        resolution=task.resolution,
        chaos_events=task.chaos_events,
        diurnal_amplitude=task.diurnal_amplitude,
    )
    model = TenantModel(
        task.decision.primary, seed=derive_seed(task.seed, task.index, 0)
    )
    faults = [
        CallFault(e.kind, e.start_window, e.stop_window)
        for e in task.chaos_events
        if e.kind in STAGE_KINDS
    ]
    primary = (
        task.decision.primary,
        ChaosPredictor(
            model,
            faults,
            window_us=task.window_us,
            seed=derive_seed(task.seed, task.index, 1),
        ),
    )
    fallbacks = [
        (name, TenantModel(name, seed=derive_seed(task.seed, task.index, 2 + j)))
        for j, name in enumerate(task.decision.fallbacks)
    ]
    executor = StreamingExecutor(
        primary,
        window_us=task.window_us,
        fallbacks=fallbacks,
        service=_scaled_service(
            task.service_base_us, task.service_per_event_us, task.share
        ),
        queue_capacity=task.queue_capacity,
        deadline_us=task.deadline_us,
        seed=derive_seed(task.seed, task.index, 9),
    )
    report = executor.run(windows, load_factor=1.0)
    snapshot = executor.snapshot()
    if not task.include_trace:
        snapshot = dict(snapshot)
        snapshot["trace"] = []
    return task.spec.tenant_id, report, snapshot


def _scaled_service(base_us: float, per_event_us: float, share: float) -> ServiceModel:
    if share <= 0:
        raise ValueError("share must be positive")
    return ServiceModel(base_us=base_us / share, per_event_us=per_event_us / share)


def _run_tenant_shard(
    tasks: Sequence[_TenantTask],
) -> list[tuple[str, StreamReport, dict[str, Any]]]:
    """Run one shard's tenants serially, in tenant-index order."""
    return [_run_tenant(task) for task in tasks]


class _WindowLog:
    """Profiling-hook sink attributing shared-executor activity.

    Records each arrival index's terminal outcome and the first stage
    that successfully served it (shedding excluded) — the information
    needed to fold one interleaved group report back into exact
    per-tenant ledgers.
    """

    def __init__(self) -> None:
        self.outcomes: dict[int, str] = {}
        self.served: dict[int, str] = {}

    def hooks(self) -> ProfilingHooks:
        return ProfilingHooks(
            on_stage_end=self._on_stage_end, on_window=self._on_window
        )

    def _on_window(self, index: int, outcome: str) -> None:
        self.outcomes[index] = outcome

    def _on_stage_end(self, stage: str, index: int, ok: bool) -> None:
        if ok and index >= 0 and stage != SHED_STAGE and index not in self.served:
            self.served[index] = stage


class ServingFleet:
    """Admits a tenant mix and serves it with or without bulkheads.

    Args:
        tenants: the requested mix, in order (ids must be unique).
        window_us: serving window length.
        num_windows: windows per tenant (the compressed "day").
        resolution: sensor resolution of the synthetic workloads.
        scorecard: routing scorecard; defaults to the paper-shaped
            :data:`~repro.serving.router.DEFAULT_SCORECARD`.
        policy: admission policy (pool capacity, caps, retry hints).
        slo_classes: SLO class table; defaults to
            :data:`~repro.serving.tenancy.SLO_CLASSES`.
        chaos: optional fault schedule.
        isolation: True → per-tenant bulkhead executors; False → one
            shared executor per paradigm group (the baseline the chaos
            replay degrades).
        n_shards: shard count for isolated-mode placement.  A pure
            computation partition: reports and snapshots are
            bit-identical for any value.
        parallel: execution backend for isolated-mode shards.
        queue_capacity: per-bulkhead ingest queue bound (shared
            executors scale it by group size).
        deadline_us: window expiry age; ``None`` = executor default.
        diurnal_amplitude: workload day-curve amplitude.
        include_traces: keep per-executor trace trees in the merged
            snapshot (disable for very large fleets).
        seed: master seed; every stochastic quantity derives from it
            and stable indices only.
    """

    def __init__(
        self,
        tenants: Sequence[TenantSpec],
        *,
        window_us: int = 10_000,
        num_windows: int = 60,
        resolution: Resolution = Resolution(64, 64),
        scorecard: dict | None = None,
        policy: AdmissionPolicy | None = None,
        slo_classes: dict[str, SLOClass] | None = None,
        chaos: ChaosSchedule | None = None,
        isolation: bool = True,
        n_shards: int = 1,
        parallel: ParallelConfig | None = None,
        queue_capacity: int = 16,
        deadline_us: float | None = None,
        diurnal_amplitude: float = 0.4,
        include_traces: bool = True,
        seed: int = 0,
    ) -> None:
        ids = [t.tenant_id for t in tenants]
        if len(set(ids)) != len(ids):
            raise ValueError("tenant ids must be unique")
        if not tenants:
            raise ValueError("tenants must be non-empty")
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.tenants = tuple(tenants)
        self.window_us = int(window_us)
        self.num_windows = int(num_windows)
        self.resolution = resolution
        self.router = PolicyRouter(scorecard)
        self.policy = policy or AdmissionPolicy()
        self.slo_classes = dict(slo_classes or SLO_CLASSES)
        self.chaos = chaos or ChaosSchedule()
        self.isolation = bool(isolation)
        self.n_shards = int(n_shards)
        self.parallel = parallel or ParallelConfig()
        self.queue_capacity = int(queue_capacity)
        self.deadline_us = deadline_us
        self.diurnal_amplitude = float(diurnal_amplitude)
        self.include_traces = bool(include_traces)
        self.seed = int(seed)
        self.registry: MetricsRegistry | None = None
        self._snapshot: dict[str, Any] | None = None

    # ------------------------------------------------------------------
    def _slo_of(self, spec: TenantSpec) -> SLOClass:
        try:
            return self.slo_classes[spec.slo_class]
        except KeyError:
            raise ValueError(
                f"{spec.tenant_id}: unknown SLO class {spec.slo_class!r} "
                f"(have {sorted(self.slo_classes)})"
            ) from None

    def run(self) -> ServingReport:
        """Admit, route and serve the mix; returns the reconciled report."""
        slos = {t.tenant_id: self._slo_of(t) for t in self.tenants}
        total_weight = sum(
            t.resolved_weight(slos[t.tenant_id]) for t in self.tenants
        )
        controller = AdmissionController(self.policy, total_weight)
        report = ServingReport(
            mode="isolated" if self.isolation else "shared",
            window_us=self.window_us,
            num_windows=self.num_windows,
            seed=self.seed,
            capacity=self.policy.capacity,
            total_weight=total_weight,
        )
        for spec in self.tenants:
            slo = slos[spec.tenant_id]
            decision = self.router.route(spec, slo)
            admission = controller.consider(
                spec, slo, self.router.scorecard[decision.primary], self.window_us
            )
            report.tenants[spec.tenant_id] = TenantOutcome(
                spec=spec,
                slo=slo,
                decision=decision,
                admission=admission,
                chaos_windows=self.chaos.kind_windows(
                    spec.tenant_id, self.num_windows
                ),
            )
        if self.isolation:
            labeled = self._run_isolated(report)
        else:
            labeled = self._run_shared(report)
        self._build_registry(report)
        fleet_snapshot = {
            "schema": SNAPSHOT_SCHEMA,
            "metrics": self.registry.snapshot(),
            "trace": [],
        }
        self._snapshot = merge_snapshots([fleet_snapshot, *labeled])
        return report

    # ------------------------------------------------------------------
    # Isolated mode: one bulkhead executor per admitted tenant
    # ------------------------------------------------------------------
    def _run_isolated(self, report: ServingReport) -> list[dict[str, Any]]:
        tasks: list[_TenantTask] = []
        for index, spec in enumerate(self.tenants):
            outcome = report.tenants[spec.tenant_id]
            if not outcome.admission.admitted:
                continue
            profile = self.router.scorecard[outcome.decision.primary]
            tasks.append(
                _TenantTask(
                    index=index,
                    spec=spec,
                    decision=outcome.decision,
                    share=outcome.admission.granted_share,
                    service_base_us=profile.service_base_us,
                    service_per_event_us=profile.service_per_event_us,
                    chaos_events=self.chaos.for_tenant(spec.tenant_id),
                    window_us=self.window_us,
                    num_windows=self.num_windows,
                    resolution=self.resolution,
                    queue_capacity=self.queue_capacity,
                    deadline_us=self.deadline_us,
                    diurnal_amplitude=self.diurnal_amplitude,
                    seed=self.seed,
                    include_trace=self.include_traces,
                )
            )
        placement = balance_assignments(
            [(t.spec.tenant_id, t.share) for t in tasks], self.n_shards
        )
        shards = [
            [t for t in tasks if placement[t.spec.tenant_id] == s]
            for s in range(self.n_shards)
        ]
        results = run_shards(shards, _run_tenant_shard, self.parallel)
        by_tenant = {
            tid: (rep, snap) for shard in results for tid, rep, snap in shard
        }
        labeled: list[dict[str, Any]] = []
        for task in tasks:  # mix order, not placement order
            tid = task.spec.tenant_id
            stream_report, snapshot = by_tenant[tid]
            outcome = report.tenants[tid]
            outcome.report = stream_report
            outcome.ledger = {
                "offered": stream_report.offered,
                "processed": stream_report.processed,
                "expired": stream_report.expired,
                "shed": stream_report.shed_windows,
                "failed": stream_report.failed,
            }
            slo_us = outcome.slo.latency_slo_us
            outcome.slo_met = sum(
                1
                for latency in stream_report.window_latencies.values()
                if latency <= slo_us
            )
            outcome.slo_missed = stream_report.offered - outcome.slo_met
            outcome.served_by = dict(stream_report.served_by)
            outcome.failover_windows = stream_report.processed - (
                stream_report.served_by.get(outcome.decision.primary, 0)
            )
            labeled.append(
                label_snapshot(snapshot, {"tenant": tid}, root=f"tenant:{tid}")
            )
        return labeled

    # ------------------------------------------------------------------
    # Shared mode: one executor per paradigm group (no bulkheads)
    # ------------------------------------------------------------------
    def _run_shared(self, report: ServingReport) -> list[dict[str, Any]]:
        groups: dict[str, list[tuple[int, TenantSpec]]] = {}
        for index, spec in enumerate(self.tenants):
            outcome = report.tenants[spec.tenant_id]
            if outcome.admission.admitted:
                groups.setdefault(outcome.decision.primary, []).append(
                    (index, spec)
                )
        labeled: list[dict[str, Any]] = []
        for paradigm in sorted(groups):
            members = groups[paradigm]
            size = len(members)
            member_windows = []
            group_share = 0.0
            for index, spec in members:
                outcome = report.tenants[spec.tenant_id]
                group_share += outcome.admission.granted_share
                member_windows.append(
                    make_tenant_windows(
                        spec,
                        num_windows=self.num_windows,
                        window_us=self.window_us,
                        resolution=self.resolution,
                        chaos_events=self.chaos.for_tenant(spec.tenant_id),
                        diurnal_amplitude=self.diurnal_amplitude,
                    )
                )
            interleaved = [
                member_windows[g][w]
                for w in range(self.num_windows)
                for g in range(size)
            ]
            # Stage faults land on the shared model; tenant attribution
            # works by call stride, which drifts once shedding skips
            # calls — an honest artifact of sharing the stage.
            faults = []
            for g, (index, spec) in enumerate(members):
                for event in self.chaos.for_tenant(spec.tenant_id):
                    if event.kind not in STAGE_KINDS:
                        continue
                    faults.append(
                        CallFault(
                            event.kind,
                            event.start_window * size,
                            event.stop_window * size,
                            every=size if event.kind != "corrupt" else 1,
                            offset=g if event.kind != "corrupt" else 0,
                        )
                    )
            group_seed = derive_seed(
                self.seed, zlib.crc32(paradigm.encode("utf-8"))
            )
            model = TenantModel(paradigm, seed=derive_seed(group_seed, 0))
            primary = (
                paradigm,
                ChaosPredictor(model, faults, seed=derive_seed(group_seed, 1)),
            )
            fallbacks = [
                (name, TenantModel(name, seed=derive_seed(group_seed, 2 + j)))
                for j, name in enumerate(
                    fallback_chain(self.router.scorecard, paradigm)
                )
            ]
            profile = self.router.scorecard[paradigm]
            log = _WindowLog()
            executor = StreamingExecutor(
                primary,
                window_us=self.window_us,
                fallbacks=fallbacks,
                service=profile.service_model(group_share),
                queue_capacity=self.queue_capacity * size,
                deadline_us=self.deadline_us,
                seed=derive_seed(group_seed, 9),
                hooks=log.hooks(),
            )
            group_report = executor.run(interleaved, load_factor=float(size))
            report.group_reports[paradigm] = group_report
            snapshot = executor.snapshot()
            if not self.include_traces:
                snapshot = dict(snapshot)
                snapshot["trace"] = []
            labeled.append(
                label_snapshot(
                    snapshot, {"group": paradigm}, root=f"group:{paradigm}"
                )
            )
            for g, (index, spec) in enumerate(members):
                outcome = report.tenants[spec.tenant_id]
                ledger = _empty_ledger()
                served: dict[str, int] = {}
                slo_met = 0
                slo_us = outcome.slo.latency_slo_us
                for w in range(self.num_windows):
                    arrival = w * size + g
                    ledger["offered"] += 1
                    key = _OUTCOME_TO_KEY.get(log.outcomes.get(arrival, ""))
                    if key is not None:
                        ledger[key] += 1
                    latency = group_report.window_latencies.get(arrival)
                    if latency is not None and latency <= slo_us:
                        slo_met += 1
                    stage = log.served.get(arrival)
                    if stage is not None and arrival in group_report.predictions:
                        served[stage] = served.get(stage, 0) + 1
                outcome.ledger = ledger
                outcome.slo_met = slo_met
                outcome.slo_missed = ledger["offered"] - slo_met
                outcome.served_by = dict(sorted(served.items()))
                outcome.failover_windows = ledger["processed"] - served.get(
                    paradigm, 0
                )
        return labeled

    # ------------------------------------------------------------------
    # Fleet metrics + merged snapshot
    # ------------------------------------------------------------------
    def _build_registry(self, report: ServingReport) -> None:
        reg = MetricsRegistry()
        for outcome_name, count in (
            ("admitted", len(report.admitted_ids)),
            ("refused", len(report.refused_ids)),
        ):
            reg.counter(
                "serving_tenants_total",
                labels={"outcome": outcome_name},
                help="requested tenants by admission outcome",
            ).inc(count)
        for tid, outcome in report.tenants.items():
            for key in _LEDGER_KEYS:
                reg.counter(
                    "serving_windows_total",
                    labels={"tenant": tid, "outcome": key},
                    help="per-tenant window ledger (offered is the partition total)",
                ).inc(outcome.ledger[key])
            for slo_outcome, count in (
                ("met", outcome.slo_met),
                ("missed", outcome.slo_missed),
            ):
                reg.counter(
                    "serving_slo_windows_total",
                    labels={"tenant": tid, "outcome": slo_outcome},
                    help="offered windows by SLO outcome (unserved windows miss)",
                ).inc(count)
            reg.counter(
                "serving_failover_windows_total",
                labels={"tenant": tid},
                help="processed windows served off the primary paradigm",
            ).inc(outcome.failover_windows)
            for kind, count in sorted(outcome.chaos_windows.items()):
                reg.counter(
                    "serving_chaos_windows_total",
                    labels={"tenant": tid, "kind": kind},
                    help="scheduled chaos windows by kind",
                ).inc(count)
            reg.gauge(
                "serving_granted_share",
                labels={"tenant": tid},
                help="granted fair rate share in executor-equivalents",
            ).set(outcome.admission.granted_share)
            if not outcome.admission.admitted:
                reg.gauge(
                    "serving_retry_after_s",
                    labels={"tenant": tid},
                    help="seeded retry-after hint handed to the refused tenant",
                ).set(outcome.admission.retry_after_s or 0.0)
        self.registry = reg

    def snapshot(self) -> dict[str, Any]:
        """The merged fleet observability snapshot of the latest run.

        One deterministic snapshot: the fleet's ``serving_*`` registry
        plus every executor's relabelled snapshot (per tenant in
        isolated mode, per paradigm group in shared mode), merged in
        mix order — placement-independent by construction.

        Raises:
            RuntimeError: before the first :meth:`run`.
        """
        if self._snapshot is None:
            raise RuntimeError("snapshot() requires a completed run()")
        return self._snapshot
