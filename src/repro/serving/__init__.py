"""Fault-isolated multi-tenant serving with admission and failover.

The streaming layer hardened *one* stream; this package serves *many*:
a fleet of tenant sessions multiplexed over the repository's
virtual-time executors, with the paper's CNN/SNN/GNN scorecard acting
as a live routing policy rather than a static table.

* :mod:`~repro.serving.tenancy` — tenant specs and the gold / silver /
  bronze SLO classes (latency SLO vs. accuracy floor vs. energy
  floor);
* :mod:`~repro.serving.router` — degradation-aware paradigm routing:
  primary = most accurate eligible paradigm, fallbacks = cheapest
  energy first, which the executor's circuit breakers turn into live
  failover and recovery;
* :mod:`~repro.serving.admission` — deterministic weighted fair
  sharing of a fixed pool, refusal with seeded jittered retry hints
  (shared :class:`~repro.reliability.backoff.ExponentialBackoff`);
* :mod:`~repro.serving.chaos` — seeded per-tenant fault schedules
  (flood, skew, poison, stall, session-state corruption reusing the
  reliability layer's :class:`~repro.reliability.faults.SessionFault`
  models) plus the synthetic diurnal tenant workloads;
* :mod:`~repro.serving.fleet` — the bulkhead-isolated fleet and its
  shared-executor baseline, with exact per-tenant ledgers reconciling
  against the executors' balanced accounting and one merged
  observability snapshot;
* :mod:`~repro.serving.replay` — the "million-user day" chaos replay
  and the ``BENCH_serving.json`` capacity curves.

Determinism contract: for a fixed tenant mix, seed and chaos schedule,
fleet reports and merged snapshots are byte-identical across shard
counts and backends.
"""

from .admission import AdmissionController, AdmissionPolicy, AdmissionResult
from .chaos import (
    CHAOS_KINDS,
    MODEL_SNAPSHOT_FORMAT,
    CallFault,
    ChaosEvent,
    ChaosPredictor,
    ChaosSchedule,
    TenantModel,
    make_tenant_windows,
)
from .fleet import ServingFleet, ServingReport, TenantOutcome
from .replay import (
    ReplayResult,
    default_chaos,
    run_serving_replay,
    sweep_tenant_counts,
)
from .router import (
    DEFAULT_SCORECARD,
    ParadigmProfile,
    PolicyRouter,
    RoutingDecision,
    fallback_chain,
    scorecard_from_comparison,
)
from .tenancy import SLO_CLASSES, SLOClass, TenantSpec, make_tenant_mix

__all__ = [
    "SLOClass",
    "SLO_CLASSES",
    "TenantSpec",
    "make_tenant_mix",
    "ParadigmProfile",
    "DEFAULT_SCORECARD",
    "scorecard_from_comparison",
    "fallback_chain",
    "PolicyRouter",
    "RoutingDecision",
    "AdmissionPolicy",
    "AdmissionResult",
    "AdmissionController",
    "CHAOS_KINDS",
    "MODEL_SNAPSHOT_FORMAT",
    "ChaosEvent",
    "ChaosSchedule",
    "TenantModel",
    "CallFault",
    "ChaosPredictor",
    "make_tenant_windows",
    "TenantOutcome",
    "ServingReport",
    "ServingFleet",
    "default_chaos",
    "ReplayResult",
    "run_serving_replay",
    "sweep_tenant_counts",
]
