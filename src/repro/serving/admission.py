"""Admission control and deterministic weighted fair sharing.

The fleet is a fixed pool of virtual serving capacity; admission
decides which requested tenants get a slice and how big.  The sharing
discipline is deliberately the *fluid* (generalized-processor-sharing)
one:

* every requested tenant's share is ``weight / total_weight *
  capacity``, where ``total_weight`` sums over the **full requested
  mix** — so shares are a pure function of the mix, independent of
  admission order, co-tenant behaviour and shard placement;
* a tenant is admitted only if its granted rate can sustain its window
  stream (service per window <= window length at the granted rate)
  *and* meet its latency SLO — a tenant that could never keep up is
  refused up front instead of admitted into guaranteed expiry;
* refusals carry a seeded, jittered retry-after hint from the shared
  :class:`~repro.reliability.backoff.ExponentialBackoff` (the same
  machinery the hardened runner retries with), so a polite client
  population spreads its re-admission attempts deterministically.

The static share is the bulkhead trade-off: unused capacity of an idle
tenant is *not* redistributed (non-work-conserving), in exchange for
per-tenant virtual timelines that are bit-identical whether the tenant
runs alone or alongside a thousand others.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..parallel import derive_seed
from ..reliability import ExponentialBackoff
from .router import ParadigmProfile
from .tenancy import SLOClass, TenantSpec

__all__ = ["AdmissionPolicy", "AdmissionResult", "AdmissionController"]

#: Default retry-hint generator: 0.5 s base, doubling, capped at 30 s,
#: with 50% seeded jitter to decorrelate the refused population.
_DEFAULT_BACKOFF = ExponentialBackoff(
    base_s=0.5, factor=2.0, max_s=30.0, jitter=0.5
)


@dataclass(frozen=True)
class AdmissionPolicy:
    """Fleet-wide admission knobs.

    Attributes:
        capacity: virtual pool capacity in executor-equivalents (the
            total rate shared out; a policy constant, never derived
            from the shard count).
        max_tenants: hard cap on admitted tenants.
        backoff: retry-hint schedule attached to refusals; per-tenant
            seeded, so hints are deterministic yet decorrelated.
        retry_hints: how many retry delays a refusal enumerates.
    """

    capacity: float = 16.0
    max_tenants: int = 1024
    backoff: ExponentialBackoff = _DEFAULT_BACKOFF
    retry_hints: int = 3

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")
        if self.max_tenants < 1:
            raise ValueError("max_tenants must be >= 1")
        if self.retry_hints < 1:
            raise ValueError("retry_hints must be >= 1")


@dataclass(frozen=True)
class AdmissionResult:
    """One tenant's admission verdict.

    Attributes:
        tenant_id: the considered tenant.
        admitted: whether the tenant got a slice.
        granted_share: fair share of the pool (executor-equivalents);
            also set on refusals, as the share the tenant *would* get.
        demand: unscaled service time per window over the window length
            (the executor-equivalents the tenant actually needs).
        est_latency_us: estimated per-window latency at the granted
            share.
        reason: human-readable verdict explanation.
        retry_after_s: seeded jittered first-retry hint (refusals
            only).
        retry_hints_s: the full enumerated retry schedule (refusals
            only).
    """

    tenant_id: str
    admitted: bool
    granted_share: float
    demand: float
    est_latency_us: float
    reason: str
    retry_after_s: float | None = None
    retry_hints_s: tuple[float, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "tenant_id": self.tenant_id,
            "admitted": self.admitted,
            "granted_share": self.granted_share,
            "demand": self.demand,
            "est_latency_us": self.est_latency_us,
            "reason": self.reason,
            "retry_after_s": self.retry_after_s,
            "retry_hints_s": list(self.retry_hints_s),
        }


@dataclass
class AdmissionController:
    """Considers tenants in mix order against one admission policy.

    Args:
        policy: the fleet's admission knobs.
        total_weight: summed resolved weight of the full requested mix
            (refused tenants included — shares must not depend on who
            else happened to be refused).

    Attributes:
        admitted: tenant ids admitted so far, in consideration order.
        refused: tenant ids refused so far, in consideration order.
    """

    policy: AdmissionPolicy
    total_weight: float
    admitted: list[str] = field(default_factory=list)
    refused: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.total_weight <= 0:
            raise ValueError("total_weight must be positive")

    def share_of(self, tenant: TenantSpec, slo: SLOClass) -> float:
        """The tenant's fair rate share of the pool."""
        return (
            tenant.resolved_weight(slo) / self.total_weight * self.policy.capacity
        )

    def consider(
        self,
        tenant: TenantSpec,
        slo: SLOClass,
        profile: ParadigmProfile,
        window_us: int,
    ) -> AdmissionResult:
        """Admit or refuse one tenant at its fair share.

        Admission requires, at the granted share ``s``:

        * **sustainability** — ``service_us(events) / s <= window_us``
          (the tenant's stream can be drained at real-time rate);
        * **SLO feasibility** — ``service_us(events) / s <=
          latency_slo_us`` (an unqueued window meets the SLO);
        * the :attr:`AdmissionPolicy.max_tenants` cap.

        Refusals get a deterministic retry schedule seeded from the
        tenant's own seed.
        """
        share = self.share_of(tenant, slo)
        service_us = profile.service_us(tenant.events_per_window)
        demand = service_us / window_us
        est_latency_us = service_us / share if share > 0 else float("inf")
        reason = ""
        if len(self.admitted) >= self.policy.max_tenants:
            reason = f"tenant cap {self.policy.max_tenants} reached"
        elif est_latency_us > window_us:
            reason = (
                f"unsustainable: needs {demand:.3f} executor-equivalents, "
                f"granted {share:.3f}"
            )
        elif est_latency_us > slo.latency_slo_us:
            reason = (
                f"SLO-infeasible: {est_latency_us:.0f}us per window at share "
                f"{share:.3f} > SLO {slo.latency_slo_us:.0f}us"
            )
        if reason:
            self.refused.append(tenant.tenant_id)
            backoff = self.policy.backoff.with_seed(
                derive_seed(tenant.seed, len(self.refused))
            )
            hints = tuple(backoff.delays(self.policy.retry_hints))
            return AdmissionResult(
                tenant_id=tenant.tenant_id,
                admitted=False,
                granted_share=share,
                demand=demand,
                est_latency_us=est_latency_us,
                reason=reason,
                retry_after_s=hints[0],
                retry_hints_s=hints,
            )
        self.admitted.append(tenant.tenant_id)
        return AdmissionResult(
            tenant_id=tenant.tenant_id,
            admitted=True,
            granted_share=share,
            demand=demand,
            est_latency_us=est_latency_us,
            reason=(
                f"admitted at share {share:.3f} "
                f"({est_latency_us:.0f}us/window, SLO {slo.latency_slo_us:.0f}us)"
            ),
        )
