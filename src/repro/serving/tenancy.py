"""Tenant sessions and SLO classes of the multi-tenant serving layer.

A *tenant* is one event-camera session admitted to the serving fleet: a
sensor (or user) with its own event rate, its own service-level class
and its own seeded synthetic workload.  The SLO class captures the
three-way policy trade the paper's Table I makes measurable — latency
SLO vs. energy budget vs. accuracy floor — as admission/routing
constraints:

* **gold** — interactive sessions: tight latency, high accuracy floor,
  energy is someone else's problem; heaviest fair-share weight.
* **silver** — quality-first sessions: relaxed latency, high accuracy
  floor.
* **bronze** — battery-powered sessions: lax latency, no accuracy
  floor, but a hard energy-efficiency floor; lightest weight.

Weights feed the fleet's deterministic fair sharing: a tenant's granted
rate is ``weight / total_weight * pool_capacity``, a pure function of
the requested tenant mix (see :mod:`~repro.serving.admission`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..parallel import derive_seed

__all__ = ["SLOClass", "SLO_CLASSES", "TenantSpec", "make_tenant_mix"]


@dataclass(frozen=True)
class SLOClass:
    """One service-level class: the policy knobs routing/admission obey.

    Attributes:
        name: class name ("gold" / "silver" / "bronze").
        latency_slo_us: per-window arrival→completion latency bound; a
            processed window slower than this counts as an SLO miss.
        accuracy_floor: minimum scorecard accuracy a paradigm must
            offer to be routing-eligible for this class.
        energy_floor: minimum scorecard energy efficiency
            (classifications per joule); 0 disables the constraint.
        weight: fair-share weight in the fleet's rate allocation.
    """

    name: str
    latency_slo_us: float
    accuracy_floor: float = 0.0
    energy_floor: float = 0.0
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.latency_slo_us <= 0:
            raise ValueError("latency_slo_us must be positive")
        if not 0.0 <= self.accuracy_floor <= 1.0:
            raise ValueError("accuracy_floor must be in [0, 1]")
        if self.energy_floor < 0:
            raise ValueError("energy_floor must be >= 0")
        if self.weight <= 0:
            raise ValueError("weight must be positive")

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "name": self.name,
            "latency_slo_us": self.latency_slo_us,
            "accuracy_floor": self.accuracy_floor,
            "energy_floor": self.energy_floor,
            "weight": self.weight,
        }


#: The three built-in service classes.  Latency bounds assume the
#: default 10 ms serving window; accuracy/energy floors are calibrated
#: against :data:`~repro.serving.router.DEFAULT_SCORECARD` so that each
#: class routes to a different paradigm (gold → GNN, silver → CNN,
#: bronze → SNN) — the serving-layer restatement of the paper's
#: dichotomy.
SLO_CLASSES: dict[str, SLOClass] = {
    "gold": SLOClass(
        "gold", latency_slo_us=6_000.0, accuracy_floor=0.80, weight=4.0
    ),
    "silver": SLOClass(
        "silver", latency_slo_us=20_000.0, accuracy_floor=0.80, weight=2.0
    ),
    "bronze": SLOClass(
        "bronze", latency_slo_us=50_000.0, energy_floor=1e5, weight=1.0
    ),
}


@dataclass(frozen=True)
class TenantSpec:
    """One tenant session requested from the fleet.

    Attributes:
        tenant_id: unique tenant identifier.
        slo_class: name of the tenant's :class:`SLOClass` (a key of the
            fleet's class table, by default :data:`SLO_CLASSES`).
        events_per_window: nominal event count per serving window; the
            diurnal load model modulates around it.
        weight: fair-share weight override; ``None`` inherits the SLO
            class weight.
        seed: seeds the tenant's synthetic workload.
    """

    tenant_id: str
    slo_class: str = "silver"
    events_per_window: int = 100
    weight: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.tenant_id:
            raise ValueError("tenant_id must be non-empty")
        if self.events_per_window < 1:
            raise ValueError("events_per_window must be >= 1")
        if self.weight is not None and self.weight <= 0:
            raise ValueError("weight must be positive")

    def resolved_weight(self, slo: SLOClass) -> float:
        """The fair-share weight this tenant contributes to the mix."""
        return self.weight if self.weight is not None else slo.weight

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "tenant_id": self.tenant_id,
            "slo_class": self.slo_class,
            "events_per_window": self.events_per_window,
            "weight": self.weight,
            "seed": self.seed,
        }


def make_tenant_mix(
    num_tenants: int,
    *,
    seed: int = 0,
    classes: tuple[str, ...] = ("gold", "silver", "bronze"),
    events_range: tuple[int, int] = (60, 140),
) -> tuple[TenantSpec, ...]:
    """A deterministic synthetic tenant mix for replay and benchmarks.

    Classes rotate round-robin so every mix exercises all three policy
    corners; per-tenant event rates and workload seeds derive from
    ``seed`` and the tenant index only, so the mix — like everything
    downstream of it — is independent of shard count and execution
    order.

    Args:
        num_tenants: number of tenants (>= 1).
        seed: master seed of the mix.
        classes: SLO class rotation.
        events_range: inclusive bounds of the nominal per-window event
            count.

    Returns:
        Tenant specs in id order (``t000-…``, ``t001-…``, ...).
    """
    if num_tenants < 1:
        raise ValueError("num_tenants must be >= 1")
    if not classes:
        raise ValueError("classes must be non-empty")
    lo, hi = events_range
    if lo < 1 or hi < lo:
        raise ValueError("events_range must satisfy 1 <= lo <= hi")
    rng = np.random.default_rng(np.random.SeedSequence([seed & 0xFFFFFFFF]))
    specs = []
    for index in range(num_tenants):
        cls = classes[index % len(classes)]
        specs.append(
            TenantSpec(
                tenant_id=f"t{index:03d}-{cls}",
                slo_class=cls,
                events_per_window=int(rng.integers(lo, hi + 1)),
                seed=derive_seed(seed, index),
            )
        )
    return tuple(specs)
