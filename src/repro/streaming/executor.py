"""The overload-resilient streaming executor.

Feeds live event windows through a fitted
:class:`~repro.core.pipeline.ParadigmPipeline` (or any predictor
callable) under a *virtual-time* single-server model, so every run is
exactly reproducible: windows arrive on a schedule derived from their
nominal duration and a ``load_factor``, service costs are charged by an
analytic :class:`ServiceModel` (per-event microseconds, like the
hardware cost models in :mod:`repro.hw`), and a queue builds whenever
offered load exceeds sustained capacity.

Resilience comes from three cooperating mechanisms:

* **backpressure + expiry** (:mod:`~repro.streaming.queueing`) — a
  bounded ingest queue whose depth drives the shedding watermarks, and
  deadline-aware expiry of windows too stale to be worth serving;
* **tiered load shedding** (:mod:`~repro.streaming.shedding`) — the
  controller escalates subsampling → spatial pooling → drop-oldest as
  depth and burstiness rise, recording exactly what was shed;
* **per-stage circuit breakers + fallback chain**
  (:mod:`~repro.streaming.breaker`) — each predict stage is guarded by
  a breaker (consecutive-failure and NaN trips, seeded half-open
  probes); refused or failed stages fall through to cheaper fallback
  paradigms and finally to the last-good cached prediction.

Stage calls run through the :class:`~repro.reliability.runner.StageGuard`
retry/timeout machinery shared with the batch
:class:`~repro.reliability.runner.HardenedRunner`; unfitted pipelines
raise :class:`~repro.core.pipeline.NotFittedError` up front.  The run
returns a :class:`~repro.streaming.report.StreamReport` whose window and
event accounting balances exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

from ..core.pipeline import ParadigmPipeline
from ..events.ops import split_by_time
from ..events.rate import rate_profile
from ..events.stream import EventStream
from ..reliability.runner import StageGuard
from .breaker import BreakerPolicy, CircuitBreaker, is_bad_output
from .queueing import BoundedWindowQueue, WindowTicket
from .report import StageStats, StreamReport
from .shedding import ShedController, ShedPolicy, ShedTier

__all__ = ["ServiceModel", "StreamStage", "StreamingExecutor", "LAST_GOOD_STAGE"]

#: Name of the implicit final fallback serving the last-good cached
#: prediction (it has no breaker — a cache lookup cannot fail).
LAST_GOOD_STAGE = "last_good"

#: Reserved name of the ingest shedding stage's breaker.
SHED_STAGE = "shed"


@dataclass(frozen=True)
class ServiceModel:
    """Analytic virtual-time cost of serving one window.

    Attributes:
        base_us: fixed per-window overhead (dispatch, framing).
        per_event_us: marginal cost per event fed to the model.
        cache_us: cost of answering from the last-good cache (defaults
            to ``base_us``).
    """

    base_us: float = 1000.0
    per_event_us: float = 0.5
    cache_us: float | None = None

    def __post_init__(self) -> None:
        if self.base_us < 0 or self.per_event_us < 0:
            raise ValueError("service costs must be non-negative")
        if self.cache_us is not None and self.cache_us < 0:
            raise ValueError("cache_us must be non-negative")

    def service_us(self, num_events: int) -> float:
        """Virtual service time of one stage call on ``num_events``."""
        return self.base_us + self.per_event_us * num_events

    def sustainable_events_per_window(self, window_us: float) -> float | None:
        """Event budget per window period at 100% utilisation.

        ``None`` when events are free (no meaningful budget).
        """
        if self.per_event_us <= 0:
            return None
        return max(1.0, (window_us - self.base_us) / self.per_event_us)


@dataclass
class StreamStage:
    """One predict stage of the fallback chain.

    Attributes:
        name: unique stage name (breaker + report key).
        predict: window → prediction callable.
    """

    name: str
    predict: Callable[[EventStream], Any]


def _as_stage(obj: Any, used: set[str]) -> StreamStage:
    """Normalise a pipeline / (name, fn) pair / callable into a stage."""
    if isinstance(obj, StreamStage):
        stage = obj
    elif isinstance(obj, ParadigmPipeline):
        stage = StreamStage(obj.name, obj.predict)
    elif isinstance(obj, tuple) and len(obj) == 2:
        stage = StreamStage(str(obj[0]), obj[1])
    elif callable(obj):
        stage = StreamStage(getattr(obj, "__name__", "stage"), obj)
    else:
        raise TypeError(
            "stages must be ParadigmPipeline, StreamStage, (name, callable) "
            f"or callable, got {type(obj).__name__}"
        )
    name = stage.name
    suffix = 2
    while name in used or name in (LAST_GOOD_STAGE, SHED_STAGE):
        name = f"{stage.name}#{suffix}"
        suffix += 1
    used.add(name)
    return StreamStage(name, stage.predict)


class StreamingExecutor:
    """Overload-resilient window-at-a-time execution of a fitted pipeline.

    Args:
        primary: the pipeline (or predictor callable, or ``(name, fn)``)
            that should serve windows when healthy.
        window_us: nominal window length of the stream (> 0); also sets
            the arrival schedule.
        fallbacks: cheaper stages tried, in order, when the primary's
            breaker refuses or its call fails.
        service: virtual-time cost model of one stage call.
        queue_capacity: bound of the ingest queue.
        deadline_us: maximum age (arrival → service start) before a
            window expires; defaults to ``4 * window_us``.
        shed_policy: watermarks + transform parameters of the shedding
            controller.
        breaker_policy: trip/recovery parameters shared by all stage
            breakers.
        guard: retry/timeout machinery for stage calls (defaults to no
            retries, no wall-clock timeout — a live executor prefers
            falling back over burning queue time).
        use_last_good: serve the most recent successful prediction when
            every stage fails or is refused.
        seed: seeds the breakers' half-open probe generators.
    """

    def __init__(
        self,
        primary: Any,
        *,
        window_us: int,
        fallbacks: Iterable[Any] = (),
        service: ServiceModel | None = None,
        queue_capacity: int = 16,
        deadline_us: float | None = None,
        shed_policy: ShedPolicy | None = None,
        breaker_policy: BreakerPolicy | None = None,
        guard: StageGuard | None = None,
        use_last_good: bool = True,
        seed: int = 0,
    ) -> None:
        if window_us <= 0:
            raise ValueError("window_us must be positive")
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if deadline_us is not None and deadline_us <= 0:
            raise ValueError("deadline_us must be positive")
        used: set[str] = set()
        self._pipelines = [
            obj for obj in (primary, *fallbacks) if isinstance(obj, ParadigmPipeline)
        ]
        self.stages: list[StreamStage] = [
            _as_stage(obj, used) for obj in (primary, *fallbacks)
        ]
        self.window_us = int(window_us)
        self.service = service or ServiceModel()
        self.queue_capacity = queue_capacity
        self.deadline_us = (
            float(deadline_us) if deadline_us is not None else 4.0 * window_us
        )
        self.shed_policy = shed_policy or ShedPolicy()
        self.breaker_policy = breaker_policy or BreakerPolicy()
        self.guard = guard or StageGuard(max_retries=0)
        self.use_last_good = use_last_good
        self.seed = seed
        # Per-run state, exposed for inspection after run().
        self.breakers: dict[str, CircuitBreaker] = {}
        self.controller: ShedController | None = None
        self.last_good: Any = None

    # ------------------------------------------------------------------
    # Run setup
    # ------------------------------------------------------------------
    def _reset(self) -> StreamReport:
        for pipeline in self._pipelines:
            pipeline._require_fitted()  # NotFittedError is a config error
        self.breakers = {
            stage.name: CircuitBreaker(stage.name, self.breaker_policy, self.seed)
            for stage in self.stages
        }
        self.breakers[SHED_STAGE] = CircuitBreaker(
            SHED_STAGE, self.breaker_policy, self.seed
        )
        self.controller = ShedController(
            self.shed_policy,
            self.service.sustainable_events_per_window(self.window_us),
        )
        self.last_good = None
        self._queue = BoundedWindowQueue(self.queue_capacity)
        self._clock = 0.0
        report = StreamReport(window_us=self.window_us)
        for stage in self.stages:
            report.stage_stats[stage.name] = StageStats(stage.name)
        report.stage_stats[SHED_STAGE] = StageStats(SHED_STAGE)
        report.stage_stats[LAST_GOOD_STAGE] = StageStats(LAST_GOOD_STAGE)
        return report

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def _serve(self, ticket: WindowTicket, start_us: float, report: StreamReport) -> None:
        """Run one window through the fallback chain at virtual ``start_us``."""
        clock = start_us
        value: Any = None
        served_by: str | None = None
        for stage in self.stages:
            breaker = self.breakers[stage.name]
            if not breaker.allow(ticket.index):
                continue
            stats = report.stage_stats[stage.name]
            cost = self.service.service_us(len(ticket.stream))
            clock += cost
            stats.calls += 1
            stats.busy_us += cost
            result = self.guard.run(stage.name, lambda: stage.predict(ticket.stream))
            if result.ok and not is_bad_output(result.value):
                breaker.record_success(ticket.index)
                stats.successes += 1
                value, served_by = result.value, stage.name
                break
            nan_trip = result.ok  # call returned, but the output is bad
            stats.failures += 1
            if nan_trip:
                stats.nan_trips += 1
            breaker.record_failure(
                ticket.index,
                nan_output=nan_trip,
                reason=result.error_message or result.error_type,
            )
        if served_by is None and self.use_last_good and self.last_good is not None:
            cache_cost = (
                self.service.cache_us
                if self.service.cache_us is not None
                else self.service.base_us
            )
            clock += cache_cost
            stats = report.stage_stats[LAST_GOOD_STAGE]
            stats.calls += 1
            stats.successes += 1
            stats.busy_us += cache_cost
            value, served_by = self.last_good, LAST_GOOD_STAGE

        self._clock = clock
        if served_by is None:
            report.failed += 1
            report.failed_events += len(ticket.stream)
            return
        self.last_good = value
        report.processed += 1
        report.processed_events += len(ticket.stream)
        report.served_by[served_by] = report.served_by.get(served_by, 0) + 1
        report.stage_stats[served_by].served += 1
        report.latencies_us.append(clock - ticket.arrival_us)
        report.predictions[ticket.index] = value

    def _drain(self, until_us: float, report: StreamReport) -> None:
        """Serve queued windows whose service can start before ``until_us``."""
        while self._queue.depth:
            head = self._queue.peek()
            start = max(self._clock, head.arrival_us)
            if start >= until_us:
                break
            self._queue.pop()
            if start > head.deadline_us:
                # Expiry is pure bookkeeping: no service time is spent.
                report.expired += 1
                report.expired_events += len(head.stream)
                continue
            self._serve(head, start, report)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def _ingest(
        self, index: int, arrival_us: float, window: EventStream, report: StreamReport
    ) -> None:
        """Shed (per the controller) and enqueue one arriving window."""
        offered_events = len(window)
        report.offered += 1
        report.offered_events += offered_events
        try:
            burstiness = rate_profile(
                window, bin_us=self.shed_policy.burst_bin_us
            ).burstiness
        except ValueError as exc:
            # Corrupt span inside one window (e.g. a far-future
            # timestamp): quarantine the window, never the run.
            report.failed += 1
            report.failed_events += offered_events
            shed = self.breakers[SHED_STAGE]
            shed.record_failure(index, reason=f"unprofilable window: {exc}")
            return
        tier = self.controller.update(self._queue.depth, burstiness, index)

        shed_breaker = self.breakers[SHED_STAGE]
        applied = ShedTier.NONE
        if tier is not ShedTier.NONE and shed_breaker.allow(index):
            stats = report.stage_stats[SHED_STAGE]
            stats.calls += 1
            result = self.guard.run(
                SHED_STAGE, lambda: self.controller.apply(window, report.ledger)
            )
            if result.ok:
                window, applied = result.value
                shed_breaker.record_success(index)
                stats.successes += 1
            else:
                # A broken transform must not take the stream down:
                # the window passes through unshed.
                shed_breaker.record_failure(index, reason=result.error_message)
                stats.failures += 1

        if tier is ShedTier.DROP_OLDEST:
            evicted = self._queue.drop_oldest()
            if evicted is not None:
                report.shed_windows += 1
                report.ledger.record_window_drop(len(evicted.stream))
        ticket = WindowTicket(
            index=index,
            arrival_us=arrival_us,
            deadline_us=arrival_us + self.deadline_us,
            stream=window,
            offered_events=offered_events,
            tier=applied.name,
        )
        evicted = self._queue.push(ticket)
        if evicted is not None:
            report.shed_windows += 1
            report.ledger.record_window_drop(len(evicted.stream))

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(
        self,
        source: EventStream | Iterable[EventStream],
        load_factor: float = 1.0,
    ) -> StreamReport:
        """Stream every window through the executor and report.

        Args:
            source: an :class:`EventStream` (split into ``window_us``
                windows — a corrupted far-future timestamp raises
                :class:`ValueError` here, in O(len(stream)), via the
                :func:`~repro.events.ops.split_by_time` span guard) or
                an iterable of pre-split windows.
            load_factor: offered-load multiplier; arrivals are spaced
                ``window_us / load_factor`` apart, so 2.0 offers twice
                sustained real-time rate.

        Returns:
            The balanced :class:`~repro.streaming.report.StreamReport`.
        """
        if load_factor <= 0:
            raise ValueError("load_factor must be positive")
        report = self._reset()
        report.load_factor = float(load_factor)
        windows = (
            split_by_time(source, self.window_us)
            if isinstance(source, EventStream)
            else source
        )
        inter_arrival = self.window_us / load_factor
        arrival = 0.0
        for index, window in enumerate(windows):
            arrival = (index + 1) * inter_arrival
            self._drain(arrival, report)
            self._ingest(index, arrival, window, report)
        self._drain(float("inf"), report)
        report.max_queue_depth = self._queue.max_depth
        report.duration_us = max(self._clock, arrival)
        transitions = [t for b in self.breakers.values() for t in b.transitions]
        report.breaker_transitions = sorted(transitions, key=lambda t: t.at_window)
        report.breaker_states = {
            name: b.state.value for name, b in self.breakers.items()
        }
        report.tier_transitions = [t.to_dict() for t in self.controller.transitions]
        return report
