"""The overload-resilient streaming executor.

Feeds live event windows through a fitted
:class:`~repro.core.pipeline.ParadigmPipeline` (or any predictor
callable) under a *virtual-time* single-server model, so every run is
exactly reproducible: windows arrive on a schedule derived from their
nominal duration and a ``load_factor``, service costs are charged by an
analytic :class:`ServiceModel` (per-event microseconds, like the
hardware cost models in :mod:`repro.hw`), and a queue builds whenever
offered load exceeds sustained capacity.

Resilience comes from three cooperating mechanisms:

* **backpressure + expiry** (:mod:`~repro.streaming.queueing`) — a
  bounded ingest queue whose depth drives the shedding watermarks, and
  deadline-aware expiry of windows too stale to be worth serving;
* **tiered load shedding** (:mod:`~repro.streaming.shedding`) — the
  controller escalates subsampling → spatial pooling → drop-oldest as
  depth and burstiness rise, recording exactly what was shed;
* **per-stage circuit breakers + fallback chain**
  (:mod:`~repro.streaming.breaker`) — each predict stage is guarded by
  a breaker (consecutive-failure and NaN trips, seeded half-open
  probes); refused or failed stages fall through to cheaper fallback
  paradigms and finally to the last-good cached prediction.

Stage calls run through the :class:`~repro.reliability.runner.StageGuard`
retry/timeout machinery shared with the batch
:class:`~repro.reliability.runner.HardenedRunner`; unfitted pipelines
raise :class:`~repro.core.pipeline.NotFittedError` up front.

With ``serve_mode="event"`` the executor serves stages whose pipeline
exposes a per-event incremental session
(:meth:`~repro.core.pipeline.ParadigmPipeline.open_session`) by feeding
each window's events one at a time and emitting the decision at the
window boundary — the GNN fast path of the paper's Section-IV
perspective.  Accounting, shedding, expiry and breaker behaviour are
identical to window mode; fast-path work is additionally counted in
``stream_incremental_*`` counters and ``call:{stage}[incremental]`` /
``call:{stage}[recompute]`` span names.  The run
returns a :class:`~repro.streaming.report.StreamReport` whose window and
event accounting balances exactly.

Every run builds a fresh :class:`~repro.observability.Instrumentation`
on the executor's *virtual* clock (exposed as :attr:`StreamingExecutor.obs`).
During the run the metrics registry is the single source of truth — the
executor increments ``stream_*`` counters and opens ``ingest`` /
``serve`` / ``call:{stage}`` / ``expire`` spans — and the report's
scalar counters are derived from the registry when the run finishes, so
the two can never disagree.  Because every timestamp in the trace comes
from the virtual clock, two identical seeded runs produce byte-identical
snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

from ..core.pipeline import ParadigmPipeline
from ..events.ops import split_by_time
from ..events.rate import rate_profile
from ..events.stream import EventStream
from ..observability import Instrumentation, ProfilingHooks, exponential_buckets
from ..reliability.runner import StageGuard
from .breaker import BreakerPolicy, BreakerTransition, CircuitBreaker, is_bad_output
from .queueing import BoundedWindowQueue, WindowTicket
from .report import StageStats, StreamReport
from .shedding import ShedController, ShedLedger, ShedPolicy, ShedTier

__all__ = ["ServiceModel", "StreamStage", "StreamingExecutor", "LAST_GOOD_STAGE"]

#: Name of the implicit final fallback serving the last-good cached
#: prediction (it has no breaker — a cache lookup cannot fail).
LAST_GOOD_STAGE = "last_good"

#: Reserved name of the ingest shedding stage's breaker.
SHED_STAGE = "shed"

#: Window outcome label values of ``stream_windows_total``.  "shed" has
#: no event-counter twin: evicted windows' events are charged to the
#: DROP_OLDEST tier of ``stream_shed_events_total`` instead.
_WINDOW_OUTCOMES = (
    "offered",
    "processed",
    "expired",
    "shed",
    "failed_ingest",
    "failed_serve",
)
_EVENT_OUTCOMES = ("offered", "processed", "expired", "failed_ingest", "failed_serve")

#: Shed tiers that remove data (NONE never appears in the ledger).
_SHED_TIERS = tuple(t.name for t in ShedTier if t is not ShedTier.NONE)

#: Latency buckets: 1 ms .. ~1e4 s of virtual time, decade steps.
_LATENCY_BUCKETS = exponential_buckets(1e3, 10.0, 8)


class _InstrumentedLedger(ShedLedger):
    """A :class:`ShedLedger` that mirrors every entry into the registry.

    The ledger stays the canonical shed accounting on the report; this
    subclass additionally increments ``stream_shed_windows_total`` /
    ``stream_shed_events_total`` and fires the ``on_shed`` hook, so the
    registry and the report are written by one code path.
    """

    def __init__(self, obs: Instrumentation) -> None:
        super().__init__()
        self._obs = obs

    def __getstate__(self) -> dict:
        # A pickled ledger is a finished run's data record: drop the
        # instrumentation (its clock closes over the executor), keep
        # the accounting.  Mirroring resumes as a no-op.
        state = self.__dict__.copy()
        state["_obs"] = None
        return state

    def _mirror(self, tier_name: str, events_removed: int) -> None:
        if self._obs is None:
            return
        reg = self._obs.registry
        reg.counter(
            "stream_shed_windows_total",
            labels={"tier": tier_name},
            help="windows a shedding tier touched (DROP_OLDEST: evicted)",
        ).inc()
        reg.counter(
            "stream_shed_events_total",
            labels={"tier": tier_name},
            help="events removed per shedding tier",
        ).inc(events_removed)
        self._obs.shed(tier_name, events_removed)

    def record(self, tier: ShedTier, events_before: int, events_after: int) -> None:
        super().record(tier, events_before, events_after)
        if tier is not ShedTier.NONE:
            self._mirror(tier.name, events_before - events_after)

    def record_window_drop(self, num_events: int) -> None:
        super().record_window_drop(num_events)
        self._mirror(ShedTier.DROP_OLDEST.name, num_events)


@dataclass(frozen=True)
class ServiceModel:
    """Analytic virtual-time cost of serving one window.

    Attributes:
        base_us: fixed per-window overhead (dispatch, framing).
        per_event_us: marginal cost per event fed to the model.
        cache_us: cost of answering from the last-good cache (defaults
            to ``base_us``).
        incremental_event_us: marginal cost per event on the per-event
            incremental fast path (``serve_mode="event"``).  Defaults to
            ``per_event_us`` so switching serve modes leaves the virtual
            timeline — arrivals, queueing, shedding, expiry — untouched;
            calibrated runs pass the measured (much smaller) figure.
    """

    base_us: float = 1000.0
    per_event_us: float = 0.5
    cache_us: float | None = None
    incremental_event_us: float | None = None

    def __post_init__(self) -> None:
        if self.base_us < 0 or self.per_event_us < 0:
            raise ValueError("service costs must be non-negative")
        if self.cache_us is not None and self.cache_us < 0:
            raise ValueError("cache_us must be non-negative")
        if self.incremental_event_us is not None and self.incremental_event_us < 0:
            raise ValueError("incremental_event_us must be non-negative")

    def service_us(self, num_events: int) -> float:
        """Virtual service time of one stage call on ``num_events``."""
        return self.base_us + self.per_event_us * num_events

    def incremental_us(self, num_events: int) -> float:
        """Virtual service time of one fast-path window of ``num_events``."""
        per = (
            self.per_event_us
            if self.incremental_event_us is None
            else self.incremental_event_us
        )
        return self.base_us + per * num_events

    def sustainable_events_per_window(self, window_us: float) -> float | None:
        """Event budget per window period at 100% utilisation.

        ``None`` when events are free (no meaningful budget).
        """
        if self.per_event_us <= 0:
            return None
        return max(1.0, (window_us - self.base_us) / self.per_event_us)


@dataclass
class StreamStage:
    """One predict stage of the fallback chain.

    Attributes:
        name: unique stage name (breaker + report key).
        predict: window → prediction callable.
        pipeline: the originating :class:`ParadigmPipeline`, when the
            stage wraps one — what gives the per-event serve mode access
            to the pipeline's incremental session fast path.
    """

    name: str
    predict: Callable[[EventStream], Any]
    pipeline: ParadigmPipeline | None = None


def _as_stage(obj: Any, used: set[str]) -> StreamStage:
    """Normalise a pipeline / (name, fn) pair / callable into a stage."""
    if isinstance(obj, StreamStage):
        stage = obj
    elif isinstance(obj, ParadigmPipeline):
        stage = StreamStage(obj.name, obj.predict, pipeline=obj)
    elif isinstance(obj, tuple) and len(obj) == 2:
        stage = StreamStage(str(obj[0]), obj[1])
    elif callable(obj):
        stage = StreamStage(getattr(obj, "__name__", "stage"), obj)
    else:
        raise TypeError(
            "stages must be ParadigmPipeline, StreamStage, (name, callable) "
            f"or callable, got {type(obj).__name__}"
        )
    name = stage.name
    suffix = 2
    while name in used or name in (LAST_GOOD_STAGE, SHED_STAGE):
        name = f"{stage.name}#{suffix}"
        suffix += 1
    used.add(name)
    return StreamStage(name, stage.predict, stage.pipeline)


class StreamingExecutor:
    """Overload-resilient window-at-a-time execution of a fitted pipeline.

    Args:
        primary: the pipeline (or predictor callable, or ``(name, fn)``)
            that should serve windows when healthy.
        window_us: nominal window length of the stream (> 0); also sets
            the arrival schedule.
        fallbacks: cheaper stages tried, in order, when the primary's
            breaker refuses or its call fails.
        service: virtual-time cost model of one stage call.
        queue_capacity: bound of the ingest queue.
        deadline_us: maximum age (arrival → service start) before a
            window expires; defaults to ``4 * window_us``.
        shed_policy: watermarks + transform parameters of the shedding
            controller.
        breaker_policy: trip/recovery parameters shared by all stage
            breakers.
        guard: retry/timeout machinery for stage calls (defaults to no
            retries, no wall-clock timeout — a live executor prefers
            falling back over burning queue time).
        use_last_good: serve the most recent successful prediction when
            every stage fails or is refused.
        seed: seeds the breakers' half-open probe generators.
        hooks: optional :class:`~repro.observability.ProfilingHooks`
            fired from the per-run instrumentation (stage calls, window
            outcomes, shed applications, breaker trips).
        serve_mode: ``"window"`` (default) calls each stage's windowed
            ``predict``; ``"event"`` feeds events one at a time through
            the incremental session of any stage whose pipeline exposes
            the fast path (:attr:`~repro.core.pipeline.ParadigmPipeline
            .supports_incremental`), emitting the decision at the window
            boundary so report accounting is unchanged.  Stages without
            a fast path — and windows beyond a pipeline's
            ``incremental_capacity``, where windowed ``predict`` would
            subsample — are served windowed exactly as in window mode.
            Each fast path sits behind its own probation breaker
            (closed/open/half-open, reusing ``fastpath_policy`` or
            ``breaker_policy``): a fast path that raises trips a
            failure, the window is recomputed windowed on the same
            stage (span ``call:{stage}[recompute]``, counted in
            ``stream_incremental_fallbacks_total``), and its session is
            restored from the last good checkpoint (counted in
            ``stream_incremental_restores_total``) or discarded.  A
            tripped fast path re-enables after seeded half-open probes
            succeed; windows the open breaker refuses are served
            windowed and counted in
            ``stream_incremental_refusals_total``.  Shedding, expiry,
            stage breakers and the fallback chain behave identically in
            both modes; with the default service model the virtual
            timeline is identical too.
        fastpath_policy: trip/recovery parameters of the per-stage
            fast-path probation breakers (event mode only); defaults to
            ``breaker_policy``.
        session_kwargs: keyword arguments forwarded to
            ``pipeline.open_session`` when the fast path opens a
            session (event mode only), e.g. ``max_live_nodes`` or an
            ``audit`` policy for bounded, self-auditing serving.
    """

    def __init__(
        self,
        primary: Any,
        *,
        window_us: int,
        fallbacks: Iterable[Any] = (),
        service: ServiceModel | None = None,
        queue_capacity: int = 16,
        deadline_us: float | None = None,
        shed_policy: ShedPolicy | None = None,
        breaker_policy: BreakerPolicy | None = None,
        guard: StageGuard | None = None,
        use_last_good: bool = True,
        seed: int = 0,
        hooks: ProfilingHooks | None = None,
        serve_mode: str = "window",
        fastpath_policy: BreakerPolicy | None = None,
        session_kwargs: dict[str, Any] | None = None,
    ) -> None:
        if window_us <= 0:
            raise ValueError("window_us must be positive")
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if deadline_us is not None and deadline_us <= 0:
            raise ValueError("deadline_us must be positive")
        if serve_mode not in ("window", "event"):
            raise ValueError("serve_mode must be 'window' or 'event'")
        used: set[str] = set()
        self._pipelines = [
            obj for obj in (primary, *fallbacks) if isinstance(obj, ParadigmPipeline)
        ]
        self.stages: list[StreamStage] = [
            _as_stage(obj, used) for obj in (primary, *fallbacks)
        ]
        self.window_us = int(window_us)
        self.service = service or ServiceModel()
        self.queue_capacity = queue_capacity
        self.deadline_us = (
            float(deadline_us) if deadline_us is not None else 4.0 * window_us
        )
        self.shed_policy = shed_policy or ShedPolicy()
        self.breaker_policy = breaker_policy or BreakerPolicy()
        self.guard = guard or StageGuard(max_retries=0)
        self.use_last_good = use_last_good
        self.seed = seed
        self.hooks = hooks
        self.serve_mode = serve_mode
        self.fastpath_policy = fastpath_policy or self.breaker_policy
        self.session_kwargs = dict(session_kwargs or {})
        # Per-run state, exposed for inspection after run().
        self.breakers: dict[str, CircuitBreaker] = {}
        self.inc_breakers: dict[str, CircuitBreaker] = {}
        self.controller: ShedController | None = None
        self.last_good: Any = None
        self.obs: Instrumentation | None = None
        self.sessions: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Run setup
    # ------------------------------------------------------------------
    def _on_transition(self, transition: BreakerTransition) -> None:
        """Mirror one breaker state change into the run instrumentation."""
        self.obs.registry.counter(
            "stream_breaker_transitions_total",
            labels={"stage": transition.stage, "to": transition.to_state.value},
            help="circuit-breaker state changes by destination state",
        ).inc()
        self.obs.trip(
            transition.stage,
            transition.from_state.value,
            transition.to_state.value,
        )

    def _reset(self) -> StreamReport:
        for pipeline in self._pipelines:
            pipeline._require_fitted()  # NotFittedError is a config error
        self._clock = 0.0
        obs = Instrumentation(clock=lambda: self._clock, hooks=self.hooks)
        self.obs = obs
        self.breakers = {
            stage.name: CircuitBreaker(
                stage.name,
                self.breaker_policy,
                self.seed,
                on_transition=self._on_transition,
            )
            for stage in self.stages
        }
        self.breakers[SHED_STAGE] = CircuitBreaker(
            SHED_STAGE, self.breaker_policy, self.seed,
            on_transition=self._on_transition,
        )
        self.controller = ShedController(
            self.shed_policy,
            self.service.sustainable_events_per_window(self.window_us),
        )
        self.last_good = None
        self._queue = BoundedWindowQueue(self.queue_capacity)
        self.sessions = {}
        self._inc_snapshots: dict[str, Any] = {}
        self._last_inc_macs = 0

        # Pre-create every per-run series so snapshots carry the full
        # schema (explicit zeros, stable family set) and the hot paths
        # only touch held objects, never the registry.
        reg = obs.registry
        self._win = {
            o: reg.counter(
                "stream_windows_total",
                labels={"outcome": o},
                help="windows by outcome (offered is the partition total)",
            )
            for o in _WINDOW_OUTCOMES
        }
        self._evt = {
            o: reg.counter(
                "stream_events_total",
                labels={"outcome": o},
                help="events by window outcome (shed events are per-tier)",
            )
            for o in _EVENT_OUTCOMES
        }
        for tier in _SHED_TIERS:
            reg.counter(
                "stream_shed_windows_total",
                labels={"tier": tier},
                help="windows a shedding tier touched (DROP_OLDEST: evicted)",
            )
            reg.counter(
                "stream_shed_events_total",
                labels={"tier": tier},
                help="events removed per shedding tier",
            )
        stage_names = [s.name for s in self.stages] + [SHED_STAGE, LAST_GOOD_STAGE]
        self._stage_m = {
            name: {
                field: reg.counter(
                    f"stream_stage_{field}_total",
                    labels={"stage": name},
                    help=help_text,
                )
                for field, help_text in (
                    ("calls", "stage invocations (breaker refusals excluded)"),
                    ("successes", "stage calls returning a usable output"),
                    ("failures", "stage calls raising, timing out or NaN"),
                    ("nan_trips", "failures caused by non-finite outputs"),
                    ("served", "windows whose final prediction this stage gave"),
                    ("busy_us", "virtual service microseconds spent in stage"),
                )
            }
            for name in stage_names
        }
        self._latency = reg.histogram(
            "stream_latency_us",
            buckets=_LATENCY_BUCKETS,
            help="arrival-to-completion virtual latency of processed windows",
        )
        self._queue_peak = reg.gauge(
            "stream_queue_depth_peak", help="deepest the ingest queue got"
        )
        # Fast-path counters exist only in event mode, so window-mode
        # snapshots keep their pre-existing schema byte for byte.
        self._inc_m = {
            stage.name: {
                field: reg.counter(
                    f"stream_incremental_{field}_total",
                    labels={"stage": stage.name},
                    help=help_text,
                )
                for field, help_text in (
                    ("windows", "windows served by the per-event fast path"),
                    ("events", "events fed through the per-event fast path"),
                    ("macs", "multiply-accumulates spent by the fast path"),
                    (
                        "fallbacks",
                        "fast-path trips recomputed windowed on the same stage",
                    ),
                    (
                        "refusals",
                        "eligible windows the open fast-path breaker refused",
                    ),
                    (
                        "restores",
                        "sessions restored from their last good checkpoint",
                    ),
                )
            }
            for stage in self.stages
            if self.serve_mode == "event"
            and stage.pipeline is not None
            and stage.pipeline.supports_incremental
        }
        # One probation breaker per fast-path stage, separate from the
        # stage breakers so ``report.breaker_states`` (and window-mode
        # behaviour) is untouched.  Closed-state allow() touches no rng,
        # so a healthy run stays bitwise identical to the pre-probation
        # executor.
        self.inc_breakers = {
            name: CircuitBreaker(
                f"{name}:incremental",
                self.fastpath_policy,
                self.seed,
                on_transition=self._on_transition,
            )
            for name in self._inc_m
        }

        report = StreamReport(window_us=self.window_us, ledger=_InstrumentedLedger(obs))
        for name in stage_names:
            report.stage_stats[name] = StageStats(name)
        return report

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def _fast_path_eligible(
        self, stage: StreamStage, num_events: int, index: int
    ) -> bool:
        """Should this window go through the stage's per-event session?

        Windows larger than the pipeline's ``incremental_capacity`` are
        served windowed: beyond it windowed ``predict`` subsamples its
        input, so the fast path would no longer be exactly equivalent.
        Empty windows are served windowed too, matching window mode.
        Otherwise-eligible windows the probation breaker refuses are
        counted as refusals and served windowed; half-open probes
        re-enable a tripped fast path.
        """
        if stage.name not in self._inc_m:
            return False
        if num_events == 0:
            return False
        cap = stage.pipeline.incremental_capacity
        if cap is not None and num_events > cap:
            return False
        if not self.inc_breakers[stage.name].allow(index):
            self._inc_m[stage.name]["refusals"].inc()
            return False
        return True

    def _serve_incremental(self, stage: StreamStage, window: EventStream) -> Any:
        """Feed one window event by event; decide at the boundary."""
        session = self.sessions.get(stage.name)
        if session is None:
            # Call open_session() bare unless kwargs were given: stages
            # may wrap pipelines whose open_session takes no kwargs.
            if self.session_kwargs:
                session = stage.pipeline.open_session(**self.session_kwargs)
            else:
                session = stage.pipeline.open_session()
            self.sessions[stage.name] = session
        session.reset()
        before = session.macs_total
        for t, x, y, p in zip(window.t, window.x, window.y, window.p):
            session.process_event(int(x), int(y), int(t), int(p))
        self._last_inc_macs = int(session.macs_total - before)
        return session.predict()

    def _checkpoint_session(self, stage: StreamStage) -> None:
        """Record the session's state after a successful window."""
        session = self.sessions.get(stage.name)
        if session is None:
            return
        try:
            self._inc_snapshots[stage.name] = session.snapshot()
        except NotImplementedError:
            pass  # session type has no checkpoint support

    def _recover_session(self, stage: StreamStage) -> None:
        """Roll the session back to its last good checkpoint, or drop it.

        Restoring (rather than always reopening) preserves per-session
        counters such as ``macs_total`` and keeps recovery O(state)
        instead of O(retrain-free reopen + warmup).
        """
        session = self.sessions.get(stage.name)
        snap = self._inc_snapshots.get(stage.name)
        if session is not None and snap is not None:
            try:
                session.restore(snap)
                self._inc_m[stage.name]["restores"].inc()
                return
            except Exception:
                pass  # corrupt checkpoint or session: fall through to drop
        self.sessions.pop(stage.name, None)
        self._inc_snapshots.pop(stage.name, None)

    def _serve(self, ticket: WindowTicket, start_us: float, report: StreamReport) -> None:
        """Run one window through the fallback chain at virtual ``start_us``."""
        obs = self.obs
        self._clock = start_us
        value: Any = None
        served_by: str | None = None
        with obs.tracer.span("serve", index=ticket.index):
            for stage in self.stages:
                breaker = self.breakers[stage.name]
                if not breaker.allow(ticket.index):
                    continue
                m = self._stage_m[stage.name]
                num_events = len(ticket.stream)
                if self._fast_path_eligible(stage, num_events, ticket.index):
                    cost = self.service.incremental_us(num_events)
                    m["calls"].inc()
                    m["busy_us"].inc(cost)
                    obs.stage_start(stage.name, ticket.index)
                    with obs.tracer.span(f"call:{stage.name}[incremental]"):
                        self._clock += cost
                        result = self.guard.run(
                            stage.name,
                            lambda: self._serve_incremental(stage, ticket.stream),
                        )
                    ok = result.ok and not is_bad_output(result.value)
                    obs.stage_end(stage.name, ticket.index, ok=ok)
                    inc = self._inc_m[stage.name]
                    inc_breaker = self.inc_breakers[stage.name]
                    if ok:
                        breaker.record_success(ticket.index)
                        inc_breaker.record_success(ticket.index)
                        m["successes"].inc()
                        inc["windows"].inc()
                        inc["events"].inc(num_events)
                        inc["macs"].inc(self._last_inc_macs)
                        self._checkpoint_session(stage)
                        value, served_by = result.value, stage.name
                        break
                    # The fast path is now suspect: put it on probation
                    # (its breaker opens after fastpath_policy's failure
                    # threshold, then re-enables via half-open probes),
                    # roll its session back to the last good checkpoint,
                    # and recompute this window through the stage's
                    # windowed predict.  Stage-level failure and breaker
                    # bookkeeping belong to that windowed attempt, so
                    # stage-breaker semantics match window mode exactly.
                    inc_breaker.record_failure(
                        ticket.index,
                        nan_output=result.ok,
                        reason=result.error_message or result.error_type,
                    )
                    self._recover_session(stage)
                    inc["fallbacks"].inc()
                cost = self.service.service_us(num_events)
                m["calls"].inc()
                m["busy_us"].inc(cost)
                obs.stage_start(stage.name, ticket.index)
                # Fast-path-capable stages label their windowed calls
                # [recompute] in event mode, so traces separate the two
                # regimes; everything else keeps the window-mode name.
                span_name = (
                    f"call:{stage.name}[recompute]"
                    if stage.name in self._inc_m
                    else f"call:{stage.name}"
                )
                with obs.tracer.span(span_name):
                    self._clock += cost
                    result = self.guard.run(
                        stage.name, lambda: stage.predict(ticket.stream)
                    )
                ok = result.ok and not is_bad_output(result.value)
                obs.stage_end(stage.name, ticket.index, ok=ok)
                if ok:
                    breaker.record_success(ticket.index)
                    m["successes"].inc()
                    value, served_by = result.value, stage.name
                    break
                nan_trip = result.ok  # call returned, but the output is bad
                m["failures"].inc()
                if nan_trip:
                    m["nan_trips"].inc()
                breaker.record_failure(
                    ticket.index,
                    nan_output=nan_trip,
                    reason=result.error_message or result.error_type,
                )
            if served_by is None and self.use_last_good and self.last_good is not None:
                cache_cost = (
                    self.service.cache_us
                    if self.service.cache_us is not None
                    else self.service.base_us
                )
                m = self._stage_m[LAST_GOOD_STAGE]
                m["calls"].inc()
                m["successes"].inc()
                m["busy_us"].inc(cache_cost)
                obs.stage_start(LAST_GOOD_STAGE, ticket.index)
                with obs.tracer.span(f"call:{LAST_GOOD_STAGE}"):
                    self._clock += cache_cost
                obs.stage_end(LAST_GOOD_STAGE, ticket.index, ok=True)
                value, served_by = self.last_good, LAST_GOOD_STAGE

            if served_by is None:
                self._win["failed_serve"].inc()
                self._evt["failed_serve"].inc(len(ticket.stream))
                obs.window(ticket.index, "failed_serve")
                return
            self.last_good = value
            self._win["processed"].inc()
            self._evt["processed"].inc(len(ticket.stream))
            self._stage_m[served_by]["served"].inc()
            latency = self._clock - ticket.arrival_us
            self._latency.observe(latency)
            report.latencies_us.append(latency)
            report.window_latencies[ticket.index] = latency
            report.predictions[ticket.index] = value
            obs.window(ticket.index, "processed")

    def _drain(self, until_us: float, report: StreamReport) -> None:
        """Serve queued windows whose service can start before ``until_us``."""
        while self._queue.depth:
            head = self._queue.peek()
            start = max(self._clock, head.arrival_us)
            if start >= until_us:
                break
            self._queue.pop()
            if start > head.deadline_us:
                # Expiry is pure bookkeeping: no service time is spent.
                with self.obs.tracer.span("expire", index=head.index):
                    self._win["expired"].inc()
                    self._evt["expired"].inc(len(head.stream))
                self.obs.window(head.index, "expired")
                continue
            self._serve(head, start, report)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def _ingest(
        self, index: int, arrival_us: float, window: EventStream, report: StreamReport
    ) -> None:
        """Shed (per the controller) and enqueue one arriving window."""
        obs = self.obs
        offered_events = len(window)
        with obs.tracer.span("ingest", index=index):
            self._win["offered"].inc()
            self._evt["offered"].inc(offered_events)
            try:
                burstiness = rate_profile(
                    window, bin_us=self.shed_policy.burst_bin_us
                ).burstiness
            except ValueError as exc:
                # Corrupt span inside one window (e.g. a far-future
                # timestamp): quarantine the window, never the run.
                self._win["failed_ingest"].inc()
                self._evt["failed_ingest"].inc(offered_events)
                shed = self.breakers[SHED_STAGE]
                shed.record_failure(index, reason=f"unprofilable window: {exc}")
                obs.window(index, "failed_ingest")
                return
            tier = self.controller.update(self._queue.depth, burstiness, index)

            shed_breaker = self.breakers[SHED_STAGE]
            applied = ShedTier.NONE
            if tier is not ShedTier.NONE and shed_breaker.allow(index):
                m = self._stage_m[SHED_STAGE]
                m["calls"].inc()
                obs.stage_start(SHED_STAGE, index)
                with obs.tracer.span(f"call:{SHED_STAGE}"):
                    result = self.guard.run(
                        SHED_STAGE,
                        lambda: self.controller.apply(window, report.ledger),
                    )
                obs.stage_end(SHED_STAGE, index, ok=result.ok)
                if result.ok:
                    window, applied = result.value
                    shed_breaker.record_success(index)
                    m["successes"].inc()
                else:
                    # A broken transform must not take the stream down:
                    # the window passes through unshed.
                    shed_breaker.record_failure(index, reason=result.error_message)
                    m["failures"].inc()

            if tier is ShedTier.DROP_OLDEST:
                evicted = self._queue.drop_oldest()
                if evicted is not None:
                    self._win["shed"].inc()
                    report.ledger.record_window_drop(len(evicted.stream))
                    obs.window(evicted.index, "shed")
            ticket = WindowTicket(
                index=index,
                arrival_us=arrival_us,
                deadline_us=arrival_us + self.deadline_us,
                stream=window,
                offered_events=offered_events,
                tier=applied.name,
            )
            evicted = self._queue.push(ticket)
            if evicted is not None:
                self._win["shed"].inc()
                report.ledger.record_window_drop(len(evicted.stream))
                obs.window(evicted.index, "shed")

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(
        self,
        source: EventStream | Iterable[EventStream],
        load_factor: float = 1.0,
    ) -> StreamReport:
        """Stream every window through the executor and report.

        Args:
            source: an :class:`EventStream` (split into ``window_us``
                windows — a corrupted far-future timestamp raises
                :class:`ValueError` here, in O(len(stream)), via the
                :func:`~repro.events.ops.split_by_time` span guard) or
                an iterable of pre-split windows.
            load_factor: offered-load multiplier; arrivals are spaced
                ``window_us / load_factor`` apart, so 2.0 offers twice
                sustained real-time rate.

        Returns:
            The balanced :class:`~repro.streaming.report.StreamReport`.
        """
        if load_factor <= 0:
            raise ValueError("load_factor must be positive")
        report = self._reset()
        report.load_factor = float(load_factor)
        windows = (
            split_by_time(source, self.window_us)
            if isinstance(source, EventStream)
            else source
        )
        inter_arrival = self.window_us / load_factor
        arrival = 0.0
        for index, window in enumerate(windows):
            arrival = (index + 1) * inter_arrival
            self._drain(arrival, report)
            self._ingest(index, arrival, window, report)
        self._drain(float("inf"), report)
        report.max_queue_depth = self._queue.max_depth
        report.duration_us = max(self._clock, arrival)
        transitions = [t for b in self.breakers.values() for t in b.transitions]
        report.breaker_transitions = sorted(transitions, key=lambda t: t.at_window)
        report.breaker_states = {
            name: b.state.value for name, b in self.breakers.items()
        }
        report.tier_transitions = [t.to_dict() for t in self.controller.transitions]
        self._finalise(report)
        return report

    def _finalise(self, report: StreamReport) -> None:
        """Derive the report's scalar counters from the metrics registry.

        The registry is the only thing the hot paths increment; copying
        its values here (instead of keeping parallel tallies) makes the
        :class:`StreamReport` a view that cannot drift from the metrics
        a scrape would see.
        """
        self._queue_peak.max(self._queue.max_depth)
        report.offered = int(self._win["offered"].value)
        report.processed = int(self._win["processed"].value)
        report.expired = int(self._win["expired"].value)
        report.shed_windows = int(self._win["shed"].value)
        report.failed = int(
            self._win["failed_ingest"].value + self._win["failed_serve"].value
        )
        report.offered_events = int(self._evt["offered"].value)
        report.processed_events = int(self._evt["processed"].value)
        report.expired_events = int(self._evt["expired"].value)
        report.failed_events = int(
            self._evt["failed_ingest"].value + self._evt["failed_serve"].value
        )
        for name, stats in report.stage_stats.items():
            m = self._stage_m[name]
            stats.calls = int(m["calls"].value)
            stats.successes = int(m["successes"].value)
            stats.failures = int(m["failures"].value)
            stats.nan_trips = int(m["nan_trips"].value)
            stats.served = int(m["served"].value)
            stats.busy_us = float(m["busy_us"].value)
        report.served_by = {
            name: int(m["served"].value)
            for name, m in self._stage_m.items()
            if m["served"].value > 0
        }
        report.incremental_windows = sum(
            int(m["windows"].value) for m in self._inc_m.values()
        )
        report.incremental_events = sum(
            int(m["events"].value) for m in self._inc_m.values()
        )
        report.incremental_macs = sum(
            int(m["macs"].value) for m in self._inc_m.values()
        )
        report.incremental_fallbacks = sum(
            int(m["fallbacks"].value) for m in self._inc_m.values()
        )
        report.incremental_refusals = sum(
            int(m["refusals"].value) for m in self._inc_m.values()
        )
        report.incremental_restores = sum(
            int(m["restores"].value) for m in self._inc_m.values()
        )

    def snapshot(self) -> dict[str, Any]:
        """Deterministic instrumentation snapshot of the latest run.

        Raises:
            RuntimeError: before the first :meth:`run`.
        """
        if self.obs is None:
            raise RuntimeError("snapshot() requires a completed run()")
        return self.obs.snapshot()
