"""Bounded ingest queue with watermark signals and deadline expiry.

The ingest stage of the streaming executor: arriving event windows wait
here for the (single, virtual-time) server.  The queue is strictly
bounded — when full, pushing evicts the *oldest* ticket and returns it
so the caller can account for the shed window — and exposes its depth
for the watermark-based backpressure decisions of the
:class:`~repro.streaming.shedding.ShedController`.  Tickets carry an
absolute deadline; windows that would start service after it are
expired by the executor rather than processed late (stale inference on
event data is worthless — the scene has moved on).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from ..events.stream import EventStream

__all__ = ["WindowTicket", "BoundedWindowQueue"]


@dataclass
class WindowTicket:
    """One event window in flight through the executor.

    Attributes:
        index: window sequence number (0-based arrival order).
        arrival_us: virtual arrival time at the ingest queue.
        deadline_us: absolute virtual time after which starting service
            is pointless; the executor expires the ticket instead.
        stream: the (possibly shed) events of the window.
        offered_events: event count as offered, before any shedding.
        tier: name of the shedding tier applied at ingest.
    """

    index: int
    arrival_us: float
    deadline_us: float
    stream: EventStream
    offered_events: int
    tier: str = "NONE"

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable summary (events are not serialised)."""
        return {
            "index": self.index,
            "arrival_us": self.arrival_us,
            "deadline_us": self.deadline_us,
            "num_events": len(self.stream),
            "offered_events": self.offered_events,
            "tier": self.tier,
        }


@dataclass
class BoundedWindowQueue:
    """Bounded FIFO of :class:`WindowTicket`, oldest evicted when full.

    Attributes:
        capacity: maximum pending tickets.
        max_depth: deepest the queue has been (high-watermark telemetry).
    """

    capacity: int
    max_depth: int = 0
    _items: deque = field(default_factory=deque, repr=False)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")

    def __len__(self) -> int:
        return len(self._items)

    @property
    def depth(self) -> int:
        """Current number of pending tickets."""
        return len(self._items)

    def push(self, ticket: WindowTicket) -> WindowTicket | None:
        """Enqueue a ticket; returns the evicted oldest ticket when full.

        Eviction (rather than rejecting the newcomer) implements the
        drop-*oldest* discipline: under sustained overload the freshest
        data is the most valuable, and the oldest queued window is the
        one closest to its deadline anyway.
        """
        evicted: WindowTicket | None = None
        if len(self._items) >= self.capacity:
            evicted = self._items.popleft()
        self._items.append(ticket)
        self.max_depth = max(self.max_depth, len(self._items))
        return evicted

    def pop(self) -> WindowTicket:
        """Dequeue the oldest ticket."""
        return self._items.popleft()

    def peek(self) -> WindowTicket:
        """The oldest ticket, without removing it."""
        return self._items[0]

    def drop_oldest(self) -> WindowTicket | None:
        """Explicitly evict the oldest ticket (DROP_OLDEST tier action)."""
        if not self._items:
            return None
        return self._items.popleft()
