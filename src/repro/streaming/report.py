"""StreamReport: the health snapshot of one streaming run.

Everything the executor did is reduced to counters that must balance
exactly: every offered window is processed, expired, shed or failed —
nothing disappears — and every offered event is either delivered to a
stage, removed by a named shedding tier, expired with its window, or
failed with its window.  :meth:`StreamReport.accounting_errors` checks
both identities; the sweep tool treats any violation as a CI failure.

The report also carries the operational telemetry the ROADMAP's
"graceful degradation" goal needs: per-stage throughput, shed fractions
per tier, the full breaker transition log and p50/p99 window latency in
virtual microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .breaker import BreakerTransition
from .shedding import ShedLedger, ShedTier

__all__ = ["StageStats", "StreamReport", "validate_report"]


@dataclass
class StageStats:
    """Aggregate activity of one executor stage.

    Attributes:
        name: stage name ("shed", the primary paradigm, fallbacks,
            "last_good").
        calls: stage invocations (refused calls not included).
        successes: calls returning a usable output.
        failures: calls raising, timing out or returning NaN.
        nan_trips: failures caused specifically by non-finite outputs.
        served: windows whose final prediction this stage provided.
        busy_us: virtual service time spent in this stage.
    """

    name: str
    calls: int = 0
    successes: int = 0
    failures: int = 0
    nan_trips: int = 0
    served: int = 0
    busy_us: float = 0.0

    @property
    def throughput_wps(self) -> float:
        """Windows served per second of this stage's virtual busy time."""
        if self.busy_us <= 0:
            return 0.0
        return self.served / (self.busy_us * 1e-6)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "name": self.name,
            "calls": self.calls,
            "successes": self.successes,
            "failures": self.failures,
            "nan_trips": self.nan_trips,
            "served": self.served,
            "busy_us": round(self.busy_us, 3),
            "throughput_wps": round(self.throughput_wps, 3),
        }


@dataclass
class StreamReport:
    """Structured account of one streaming run.

    Window counters partition the offered windows; event counters
    partition the offered events.  See :meth:`accounting_errors`.

    Attributes:
        window_us: nominal window length.
        load_factor: offered-load multiplier of the arrival schedule.
        offered / processed / expired / shed_windows / failed: window
            counters (``shed_windows`` are whole windows evicted by the
            DROP_OLDEST tier).
        offered_events / processed_events / expired_events /
        failed_events: event counters; events removed by shedding tiers
            live in ``ledger``.
        ledger: exact per-tier shed accounting.
        served_by: stage name → windows whose prediction it provided.
        stage_stats: per-stage activity.
        breaker_transitions: every breaker state change, in order.
        tier_transitions: every shedding-tier change, in order
            (dictionaries from
            :class:`~repro.streaming.shedding.TierTransition`).
        latencies_us: arrival→completion virtual latency per processed
            window.
        window_latencies: window index → virtual latency (the same
            samples as ``latencies_us``, keyed by window so per-tenant
            SLO attribution can pick out individual windows).
        predictions: window index → delivered prediction.
        max_queue_depth: deepest the ingest queue got.
        duration_us: virtual time span of the run.
        incremental_windows / incremental_events / incremental_macs:
            windows, events and multiply-accumulates served by the
            per-event fast path (``serve_mode="event"``; zero in window
            mode).  Fast-path windows are a subset of ``processed`` —
            they do not change the conservation identities.
        incremental_fallbacks: fast-path trips that were recomputed
            through the windowed path on the same stage.
        incremental_refusals: otherwise-eligible windows the open
            fast-path probation breaker refused (served windowed).
        incremental_restores: fast-path sessions rolled back to their
            last good checkpoint after a trip.
    """

    window_us: int
    load_factor: float = 1.0
    offered: int = 0
    processed: int = 0
    expired: int = 0
    shed_windows: int = 0
    failed: int = 0
    offered_events: int = 0
    processed_events: int = 0
    expired_events: int = 0
    failed_events: int = 0
    ledger: ShedLedger = field(default_factory=ShedLedger)
    served_by: dict[str, int] = field(default_factory=dict)
    stage_stats: dict[str, StageStats] = field(default_factory=dict)
    breaker_transitions: list[BreakerTransition] = field(default_factory=list)
    breaker_states: dict[str, str] = field(default_factory=dict)
    tier_transitions: list[dict] = field(default_factory=list)
    latencies_us: list[float] = field(default_factory=list)
    window_latencies: dict[int, float] = field(default_factory=dict)
    predictions: dict[int, Any] = field(default_factory=dict)
    max_queue_depth: int = 0
    duration_us: float = 0.0
    incremental_windows: int = 0
    incremental_events: int = 0
    incremental_macs: int = 0
    incremental_fallbacks: int = 0
    incremental_refusals: int = 0
    incremental_restores: int = 0

    # ------------------------------------------------------------------
    # Derived health metrics
    # ------------------------------------------------------------------
    @property
    def delivered_fraction(self) -> float:
        """Windows that produced a prediction, as a fraction of offered."""
        if self.offered == 0:
            return 1.0
        return self.processed / self.offered

    @property
    def shed_event_fraction(self) -> float:
        """Offered events removed by shedding tiers."""
        if self.offered_events == 0:
            return 0.0
        return self.ledger.total_events_shed / self.offered_events

    def shed_fractions_by_tier(self) -> dict[str, float]:
        """Tier name → fraction of offered events it removed."""
        if self.offered_events == 0:
            return {name: 0.0 for name in self.ledger.events_shed}
        return {
            name: count / self.offered_events
            for name, count in self.ledger.events_shed.items()
        }

    def latency_us(self, percentile: float) -> float:
        """Virtual latency percentile over processed windows (nan if none)."""
        if not self.latencies_us:
            return float("nan")
        return float(np.percentile(np.asarray(self.latencies_us), percentile))

    @property
    def p50_latency_us(self) -> float:
        """Median window latency."""
        return self.latency_us(50.0)

    @property
    def p99_latency_us(self) -> float:
        """Tail window latency."""
        return self.latency_us(99.0)

    @property
    def tiers_engaged(self) -> list[str]:
        """Shedding tiers that actually touched at least one window."""
        return [
            name
            for name in (t.name for t in ShedTier if t is not ShedTier.NONE)
            if self.ledger.windows_touched.get(name, 0) > 0
        ]

    # ------------------------------------------------------------------
    # Conservation checks
    # ------------------------------------------------------------------
    def accounting_errors(self) -> list[str]:
        """Violations of the window/event conservation identities.

        Returns an empty list when
        ``processed + expired + shed_windows + failed == offered`` and
        ``processed_events + expired_events + failed_events +
        total_events_shed == offered_events``.
        """
        errors: list[str] = []
        window_sum = self.processed + self.expired + self.shed_windows + self.failed
        if window_sum != self.offered:
            errors.append(
                f"window accounting inexact: processed {self.processed} + "
                f"expired {self.expired} + shed {self.shed_windows} + "
                f"failed {self.failed} = {window_sum} != offered {self.offered}"
            )
        event_sum = (
            self.processed_events
            + self.expired_events
            + self.failed_events
            + self.ledger.total_events_shed
        )
        if event_sum != self.offered_events:
            errors.append(
                f"event accounting inexact: processed {self.processed_events} + "
                f"expired {self.expired_events} + failed {self.failed_events} + "
                f"shed {self.ledger.total_events_shed} = {event_sum} "
                f"!= offered {self.offered_events}"
            )
        served_total = sum(self.served_by.values())
        if served_total != self.processed:
            errors.append(
                f"served_by breakdown {served_total} != processed {self.processed}"
            )
        return errors

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (predictions summarised, not dumped)."""
        return {
            "window_us": self.window_us,
            "load_factor": self.load_factor,
            "offered": self.offered,
            "processed": self.processed,
            "expired": self.expired,
            "shed_windows": self.shed_windows,
            "failed": self.failed,
            "offered_events": self.offered_events,
            "processed_events": self.processed_events,
            "expired_events": self.expired_events,
            "failed_events": self.failed_events,
            "ledger": self.ledger.to_dict(),
            "served_by": dict(self.served_by),
            "stage_stats": {k: v.to_dict() for k, v in self.stage_stats.items()},
            "breaker_transitions": [t.to_dict() for t in self.breaker_transitions],
            "breaker_states": dict(self.breaker_states),
            "tier_transitions": list(self.tier_transitions),
            "delivered_fraction": self.delivered_fraction,
            "shed_fractions_by_tier": self.shed_fractions_by_tier(),
            "p50_latency_us": self.p50_latency_us,
            "p99_latency_us": self.p99_latency_us,
            "max_queue_depth": self.max_queue_depth,
            "duration_us": self.duration_us,
            "num_predictions": len(self.predictions),
            "incremental_windows": self.incremental_windows,
            "incremental_events": self.incremental_events,
            "incremental_macs": self.incremental_macs,
            "incremental_fallbacks": self.incremental_fallbacks,
            "incremental_refusals": self.incremental_refusals,
            "incremental_restores": self.incremental_restores,
        }


def validate_report(report: StreamReport, context: str = "") -> list[str]:
    """Check a report's balanced-accounting invariants, returning problems.

    The single entry point every sweep tool and serving ledger calls
    instead of re-asserting the identities ad hoc: window partition
    (``processed + expired + shed_windows + failed == offered``), event
    partition (including the shed ledger), the ``served_by`` breakdown,
    plus basic sanity (no negative counters, one latency sample per
    processed window).

    Args:
        report: the report to validate.
        context: optional prefix (e.g. a tenant id) attached to every
            problem string, so fleet-level validation stays attributable.

    Returns:
        Problem descriptions; empty when the report balances.
    """
    problems = list(report.accounting_errors())
    for name in (
        "offered",
        "processed",
        "expired",
        "shed_windows",
        "failed",
        "offered_events",
        "processed_events",
        "expired_events",
        "failed_events",
    ):
        value = getattr(report, name)
        if value < 0:
            problems.append(f"negative counter {name}={value}")
    if len(report.latencies_us) != report.processed:
        problems.append(
            f"latency samples {len(report.latencies_us)} != "
            f"processed {report.processed}"
        )
    if len(report.predictions) != report.processed:
        problems.append(
            f"predictions {len(report.predictions)} != "
            f"processed {report.processed}"
        )
    if len(report.window_latencies) != len(report.latencies_us):
        problems.append(
            f"window_latencies {len(report.window_latencies)} != "
            f"latency samples {len(report.latencies_us)}"
        )
    if context:
        problems = [f"{context}: {p}" for p in problems]
    return problems
