"""Per-stage circuit breakers for the streaming executor.

A stage that keeps failing (a crashed model, a poisoned preprocessing
step, a NaN-emitting head) must be isolated quickly: every failed call
burns service time the queue cannot spare under overload.  The classic
remedy is the circuit-breaker state machine:

* **closed** — calls flow normally; consecutive failures are counted,
  and reaching the threshold *trips* the breaker;
* **open** — calls are refused outright (the executor routes straight to
  the fallback chain) for a cooldown measured in refused calls;
* **half-open** — after the cooldown, a seeded coin decides which calls
  may *probe* the stage; enough consecutive probe successes re-close the
  breaker, any probe failure re-opens it.

Both thrown exceptions and structurally bad outputs (NaN / None — see
:func:`is_bad_output`) count as failures, so a model that "succeeds"
with garbage trips the breaker just like one that raises.

Everything is deterministic: probe decisions come from a generator
seeded per breaker, and every state change is recorded as a
:class:`BreakerTransition` for the
:class:`~repro.streaming.report.StreamReport`.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable

import numpy as np

__all__ = [
    "BreakerState",
    "BreakerPolicy",
    "BreakerTransition",
    "CircuitBreaker",
    "is_bad_output",
]


class BreakerState(str, Enum):
    """The three circuit-breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerPolicy:
    """Trip/recovery parameters of one circuit breaker.

    Attributes:
        failure_threshold: consecutive failures that trip a closed
            breaker open.
        cooldown_calls: refused calls an open breaker waits before
            moving to half-open.
        probe_probability: chance that a call arriving at a half-open
            breaker is admitted as a probe (seeded, so deterministic).
        success_threshold: consecutive probe successes that re-close a
            half-open breaker.
    """

    failure_threshold: int = 3
    cooldown_calls: int = 4
    probe_probability: float = 0.5
    success_threshold: int = 2

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown_calls < 1:
            raise ValueError("cooldown_calls must be >= 1")
        if not 0.0 < self.probe_probability <= 1.0:
            raise ValueError("probe_probability must be in (0, 1]")
        if self.success_threshold < 1:
            raise ValueError("success_threshold must be >= 1")


@dataclass(frozen=True)
class BreakerTransition:
    """One state change of one breaker.

    Attributes:
        stage: breaker/stage name.
        from_state: state before the transition.
        to_state: state after the transition.
        at_window: index of the window whose call caused it.
        reason: human-readable trigger description.
    """

    stage: str
    from_state: BreakerState
    to_state: BreakerState
    at_window: int
    reason: str

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "stage": self.stage,
            "from": self.from_state.value,
            "to": self.to_state.value,
            "at_window": self.at_window,
            "reason": self.reason,
        }


def is_bad_output(value: Any) -> bool:
    """Whether a stage output should count as a NaN-trip failure.

    ``None`` and non-finite floats are bad; arrays are bad when any
    element is non-finite.  Integers (the usual class prediction) and
    other objects pass.
    """
    if value is None:
        return True
    if isinstance(value, (float, np.floating)):
        return not np.isfinite(value)
    if isinstance(value, np.ndarray):
        return value.dtype.kind == "f" and not bool(np.all(np.isfinite(value)))
    return False


@dataclass
class CircuitBreaker:
    """Closed/open/half-open breaker guarding one executor stage.

    Attributes:
        stage: name of the guarded stage.
        policy: trip/recovery parameters.
        seed: seed of the half-open probe generator.
        on_transition: optional observer called with every
            :class:`BreakerTransition` as it happens (the executor uses
            it to mirror trips into the metrics registry and fire the
            ``on_trip`` profiling hook).  Must not raise.
    """

    stage: str
    policy: BreakerPolicy = field(default_factory=BreakerPolicy)
    seed: int = 0
    on_transition: Callable[[BreakerTransition], None] | None = None

    def __post_init__(self) -> None:
        self.state = BreakerState.CLOSED
        self.transitions: list[BreakerTransition] = []
        self.calls = 0
        self.refusals = 0
        self.failures = 0
        self.nan_trips = 0
        self.probes = 0
        self._consecutive_failures = 0
        self._cooldown_remaining = 0
        self._probe_successes = 0
        # zlib.crc32 is stable across processes (str.__hash__ is salted).
        self._rng = np.random.default_rng(
            np.random.SeedSequence(
                [zlib.crc32(self.stage.encode("utf-8")), self.seed]
            )
        )

    # ------------------------------------------------------------------
    def _move(self, to: BreakerState, at_window: int, reason: str) -> None:
        transition = BreakerTransition(self.stage, self.state, to, at_window, reason)
        self.transitions.append(transition)
        self.state = to
        if self.on_transition is not None:
            self.on_transition(transition)

    def allow(self, at_window: int) -> bool:
        """Whether the stage may be called for this window.

        Open breakers refuse and count down their cooldown; the call
        that exhausts it moves the breaker to half-open and immediately
        takes part in the probe lottery.  Half-open breakers admit a
        seeded-random subset of calls as probes.
        """
        if self.state is BreakerState.OPEN:
            self._cooldown_remaining -= 1
            if self._cooldown_remaining > 0:
                self.refusals += 1
                return False
            self._probe_successes = 0
            self._move(
                BreakerState.HALF_OPEN, at_window, "cooldown elapsed"
            )
        if self.state is BreakerState.HALF_OPEN:
            if float(self._rng.random()) < self.policy.probe_probability:
                self.probes += 1
                return True
            self.refusals += 1
            return False
        return True

    def record_success(self, at_window: int) -> None:
        """Report a successful (finite-output) stage call."""
        self.calls += 1
        self._consecutive_failures = 0
        if self.state is BreakerState.HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.policy.success_threshold:
                self._move(
                    BreakerState.CLOSED,
                    at_window,
                    f"{self._probe_successes} probe successes",
                )

    def record_failure(
        self, at_window: int, *, nan_output: bool = False, reason: str = ""
    ) -> None:
        """Report a failed stage call (exception, timeout or NaN output)."""
        self.calls += 1
        self.failures += 1
        if nan_output:
            self.nan_trips += 1
        self._consecutive_failures += 1
        detail = reason or ("non-finite output" if nan_output else "stage error")
        if self.state is BreakerState.HALF_OPEN:
            self._cooldown_remaining = self.policy.cooldown_calls
            self._probe_successes = 0
            self._move(BreakerState.OPEN, at_window, f"probe failed: {detail}")
        elif (
            self.state is BreakerState.CLOSED
            and self._consecutive_failures >= self.policy.failure_threshold
        ):
            self._cooldown_remaining = self.policy.cooldown_calls
            self._move(
                BreakerState.OPEN,
                at_window,
                f"{self._consecutive_failures} consecutive failures: {detail}",
            )

    # ------------------------------------------------------------------
    @property
    def recovered(self) -> bool:
        """Whether every open episode later re-closed through probes."""
        if not self.transitions:
            return True
        return self.state is BreakerState.CLOSED

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable summary."""
        return {
            "stage": self.stage,
            "state": self.state.value,
            "calls": self.calls,
            "refusals": self.refusals,
            "failures": self.failures,
            "nan_trips": self.nan_trips,
            "probes": self.probes,
            "transitions": [t.to_dict() for t in self.transitions],
        }
