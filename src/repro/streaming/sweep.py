"""Streaming overload sweep: graceful-degradation curves across load.

The batch robustness sweep (:mod:`repro.reliability.sweep`) measures how
accuracy degrades as *data* corrupts; this sweep measures how delivery
degrades as *load* rises.  Each paradigm's predictor runs inside a fresh
:class:`~repro.streaming.executor.StreamingExecutor` at every offered
load factor, and its delivered-window fraction traces a degradation
curve.  A resilient configuration degrades gracefully — the curve falls
smoothly and monotonically as load rises, because the shedding tiers
trade data quality for throughput instead of collapsing.

Per-paradigm capacity differs by :data:`CAPACITY_HEADROOM`, grounded in
the paper's "# Operations" row (SNN ``+``, CNN ``-``, GNN ``++``): the
service model is calibrated so each paradigm sustains the stream's mean
rate with that much headroom.  Curves reduce to one delivered-fraction
score per paradigm (:func:`overload_scores`) which
:func:`repro.core.comparison.attach_overload` folds into the regenerated
Table I next to the measured robustness row.

The module also carries the deterministic burst demo
(:func:`run_overload_demo`) used by the tests, the benchmark and the CI
smoke tool: a seeded 10× rate burst plus a transient primary-stage
outage, after which the report's accounting must balance exactly, at
least two shedding tiers must have engaged, and every breaker that
opened must have re-closed through half-open probes.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..core.comparison import PARADIGMS, ComparisonResult, attach_overload
from ..events.stream import EventStream, Resolution, EVENT_DTYPE
from .breaker import BreakerPolicy
from .executor import ServiceModel, StreamingExecutor
from .report import StreamReport, validate_report
from .shedding import ShedPolicy

__all__ = [
    "CAPACITY_HEADROOM",
    "StreamingPoint",
    "StreamingSweepResult",
    "calibrate_service",
    "run_paradigm_stream",
    "run_streaming_sweep",
    "overload_scores",
    "attach_to_comparison",
    "degradation_violations",
    "make_bursty_stream",
    "TransientOutage",
    "run_overload_demo",
]

#: Relative sustained-capacity headroom per paradigm at load factor 1,
#: derived from the paper's "# Operations (down)" ratings (SNN ``+``,
#: CNN ``-``, GNN ``++``): the GNN does the fewest operations per event
#: and so sustains the most load; the dense CNN saturates first.
CAPACITY_HEADROOM: dict[str, float] = {"SNN": 1.2, "CNN": 0.7, "GNN": 1.5}


def calibrate_service(
    stream: EventStream,
    window_us: int,
    headroom: float,
    base_fraction: float = 0.1,
) -> ServiceModel:
    """Build a service model sustaining ``headroom``× the stream's mean rate.

    The per-event cost is chosen so that, at the stream's mean events
    per window, one window costs ``window_us / headroom`` of virtual
    service time — headroom 2.0 means half-utilised at real-time load,
    0.7 means overloaded even before the load factor rises.

    Args:
        stream: the workload whose mean rate anchors the calibration.
        window_us: window length of the executor.
        headroom: sustained-capacity multiple of the mean offered rate.
        base_fraction: fraction of the window period charged as fixed
            per-window overhead.
    """
    if headroom <= 0:
        raise ValueError("headroom must be positive")
    if not 0.0 <= base_fraction < 1.0:
        raise ValueError("base_fraction must be in [0, 1)")
    base_us = base_fraction * window_us
    span = max(int(stream.t[-1] - stream.t[0]), window_us) if len(stream) else window_us
    mean_events = max(1.0, len(stream) * window_us / span)
    per_event_us = (window_us / headroom - base_us) / mean_events
    return ServiceModel(base_us=base_us, per_event_us=max(0.0, per_event_us))


@dataclass
class StreamingPoint:
    """One (paradigm, load factor) streaming run.

    Attributes:
        load_factor: offered-load multiplier of this point.
        report: the full balanced account of the run.
    """

    load_factor: float
    report: StreamReport

    @property
    def delivered_fraction(self) -> float:
        """Windows that produced a prediction, as a fraction of offered."""
        return self.report.delivered_fraction

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "load_factor": self.load_factor,
            "delivered_fraction": self.delivered_fraction,
            "report": self.report.to_dict(),
        }


@dataclass
class StreamingSweepResult:
    """Everything produced by one streaming overload sweep.

    Attributes:
        load_factors: the swept offered-load multipliers, ascending.
        window_us: window length shared by every run.
        curves: paradigm name → one :class:`StreamingPoint` per load.
        seed: master seed of the sweep.
    """

    load_factors: tuple[float, ...]
    window_us: int
    curves: dict[str, list[StreamingPoint]] = field(default_factory=dict)
    seed: int = 0

    def delivered(self, paradigm: str) -> list[float]:
        """The graceful-degradation curve of one paradigm."""
        return [p.delivered_fraction for p in self.curves[paradigm]]

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "load_factors": list(self.load_factors),
            "window_us": self.window_us,
            "seed": self.seed,
            "curves": {
                name: [p.to_dict() for p in points]
                for name, points in self.curves.items()
            },
        }


def overload_scores(result: StreamingSweepResult) -> dict[str, float]:
    """Reduce degradation curves to one delivered-fraction score each.

    The score is the mean delivered-window fraction over the *stressed*
    load factors (those above 1.0; all of them when none exceed 1.0),
    clipped to [0, 1] — an executor that keeps answering under overload
    scores near 1, one that collapses scores near 0.

    Args:
        result: a completed sweep.

    Returns:
        paradigm name → graceful-degradation score.
    """
    scores: dict[str, float] = {}
    for name, points in result.curves.items():
        stressed = [p for p in points if p.load_factor > 1.0] or list(points)
        if not stressed:
            scores[name] = float("nan")
            continue
        fractions = [min(1.0, max(0.0, p.delivered_fraction)) for p in stressed]
        scores[name] = float(np.mean(fractions))
    return scores


def attach_to_comparison(
    comparison: ComparisonResult, result: StreamingSweepResult
) -> ComparisonResult:
    """Fold a measured overload sweep into a Table-I comparison."""
    return attach_overload(comparison, overload_scores(result))


def degradation_violations(
    result: StreamingSweepResult, tolerance: float = 0.02
) -> list[str]:
    """Check every curve for graceful (monotone) degradation and balance.

    A healthy executor delivers a non-increasing fraction of windows as
    offered load rises (within ``tolerance``, for discretisation
    wiggle), and every report's window/event accounting balances
    exactly.  The streaming-sweep CI tool treats any returned violation
    as a failure.

    Args:
        result: a completed sweep.
        tolerance: allowed upward wiggle between consecutive points.

    Returns:
        Human-readable violation descriptions; empty when clean.
    """
    violations: list[str] = []
    for name, points in result.curves.items():
        for prev, cur in zip(points, points[1:]):
            if cur.delivered_fraction > prev.delivered_fraction + tolerance:
                violations.append(
                    f"{name}: delivered fraction rises from "
                    f"{prev.delivered_fraction:.4f} (load {prev.load_factor}) to "
                    f"{cur.delivered_fraction:.4f} (load {cur.load_factor})"
                )
        for point in points:
            violations.extend(
                validate_report(
                    point.report, context=f"{name} @ load {point.load_factor}"
                )
            )
    return violations


class _CountClassifier:
    """Deterministic stand-in predictor: class = event count mod 4."""

    __name__ = "count_classifier"

    def __call__(self, stream: EventStream) -> int:
        return int(len(stream) % 4)


def _default_predictors() -> dict[str, Callable[[EventStream], int]]:
    return {name: _CountClassifier() for name in PARADIGMS}


def run_paradigm_stream(
    name: str,
    predictor: Any,
    stream: EventStream,
    window_us: int,
    load_factors: Sequence[float],
    fallbacks: Sequence[Any] = (),
    service: ServiceModel | None = None,
    shed_policy: ShedPolicy | None = None,
    breaker_policy: BreakerPolicy | None = None,
    queue_capacity: int = 16,
    seed: int = 0,
) -> list[StreamingPoint]:
    """Measure one paradigm's graceful-degradation curve.

    The unit of work of one streaming shard: the predictor streams the
    same workload once per load factor through a fresh executor (fresh
    queue, breakers and shedding controller — points are independent).
    Virtual-time execution makes the curve a pure function of the
    arguments, so parallel shards reproduce the serial sweep bit for
    bit.

    Args:
        name: paradigm name (capacity calibration key when ``service``
            is None).
        predictor: fitted pipeline or predictor callable.
        stream: the workload (split into ``window_us`` windows per run).
        window_us: window length.
        load_factors: ascending offered-load multipliers.
        fallbacks: fallback stage chain of this paradigm.
        service: virtual-time cost model; defaults to
            :func:`calibrate_service` with :data:`CAPACITY_HEADROOM`.
        shed_policy / breaker_policy / queue_capacity: executor knobs
            shared by every run.
        seed: seeds the breaker probe generators.

    Returns:
        One :class:`StreamingPoint` per load factor.
    """
    if service is None:
        service = calibrate_service(stream, window_us, CAPACITY_HEADROOM[name])
    points: list[StreamingPoint] = []
    for load in load_factors:
        executor = StreamingExecutor(
            predictor,
            window_us=window_us,
            fallbacks=tuple(fallbacks),
            service=service,
            queue_capacity=queue_capacity,
            shed_policy=shed_policy,
            breaker_policy=breaker_policy,
            seed=seed,
        )
        points.append(StreamingPoint(load, executor.run(stream, load_factor=load)))
    return points


def run_streaming_sweep(
    stream: EventStream,
    window_us: int,
    load_factors: Sequence[float] = (0.5, 1.0, 2.0, 4.0, 8.0),
    predictors: Mapping[str, Any] | None = None,
    fallbacks: Mapping[str, Sequence[Any]] | None = None,
    service_models: Mapping[str, ServiceModel] | None = None,
    shed_policy: ShedPolicy | None = None,
    breaker_policy: BreakerPolicy | None = None,
    queue_capacity: int = 16,
    seed: int = 0,
) -> StreamingSweepResult:
    """Measure graceful-degradation curves for all three paradigms.

    .. deprecated::
        Thin shim over the unified sweep entry point — prefer
        ``repro.parallel.run_sweep(SweepSpec(kind="streaming", ...))``,
        which adds sharded parallel execution behind the same
        semantics.  This signature keeps working and produces
        identical results.

    Each paradigm's predictor streams the same workload once per load
    factor through a fresh executor (fresh queue, breakers and shedding
    controller — points are independent).  The whole sweep is
    deterministic in ``seed``.

    Args:
        stream: the workload (split into ``window_us`` windows per run).
        window_us: window length.
        load_factors: ascending offered-load multipliers; include values
            above 1.0 so :func:`overload_scores` measures real stress.
        predictors: paradigm name → fitted pipeline or predictor
            callable (keys must be 'SNN', 'CNN', 'GNN'); defaults to
            deterministic stand-in classifiers, which exercise the
            executor without the cost of training.
        fallbacks: optional per-paradigm fallback stage chains.
        service_models: per-paradigm virtual-time cost models; defaults
            to :func:`calibrate_service` with :data:`CAPACITY_HEADROOM`.
        shed_policy / breaker_policy / queue_capacity: executor knobs
            shared by every run.
        seed: seeds the breaker probe generators.

    Returns:
        The sweep result with one curve per paradigm.
    """
    warnings.warn(
        "run_streaming_sweep is deprecated; use "
        "repro.parallel.run_sweep(SweepSpec(kind='streaming', ...))",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..parallel.api import SweepSpec, run_sweep

    spec = SweepSpec(
        kind="streaming",
        stream=stream,
        window_us=int(window_us),
        conditions=tuple(load_factors),
        pipelines=predictors,
        seed=seed,
        options={
            "fallbacks": fallbacks,
            "service_models": service_models,
            "shed_policy": shed_policy,
            "breaker_policy": breaker_policy,
            "queue_capacity": queue_capacity,
        },
    )
    return run_sweep(spec).result


# ----------------------------------------------------------------------
# Deterministic burst workload + outage demo
# ----------------------------------------------------------------------
def make_bursty_stream(
    resolution: Resolution = Resolution(32, 32),
    num_windows: int = 200,
    window_us: int = 10_000,
    base_events_per_window: int = 200,
    burst_factor: float = 10.0,
    burst_windows: tuple[int, int] = (80, 130),
    seed: int = 0,
) -> EventStream:
    """Synthesise a steady stream with one sustained rate burst.

    Every window carries ``base_events_per_window`` events at uniform
    random positions, except the half-open window range
    ``burst_windows`` where the count is multiplied by ``burst_factor``
    — a deterministic model of the arbiter-saturating activity bursts
    of Section II of the paper.

    Args:
        resolution: sensor size.
        num_windows: total stream length in windows.
        window_us: window period.
        base_events_per_window: quiescent per-window event count.
        burst_factor: rate multiplier inside the burst.
        burst_windows: half-open ``[start, stop)`` window-index range of
            the burst.
        seed: seeds positions, polarities and in-window timestamps.
    """
    if num_windows < 1 or base_events_per_window < 1:
        raise ValueError("num_windows and base_events_per_window must be >= 1")
    if burst_factor < 1.0:
        raise ValueError("burst_factor must be >= 1")
    rng = np.random.default_rng(seed)
    chunks: list[np.ndarray] = []
    for w in range(num_windows):
        count = base_events_per_window
        if burst_windows[0] <= w < burst_windows[1]:
            count = int(round(count * burst_factor))
        arr = np.zeros(count, dtype=EVENT_DTYPE)
        # sort-ok: value sort of random offsets; equal values are interchangeable
        arr["t"] = w * window_us + np.sort(
            rng.integers(0, window_us, size=count)
        ).astype(np.int64)
        arr["x"] = rng.integers(0, resolution.width, size=count)
        arr["y"] = rng.integers(0, resolution.height, size=count)
        arr["p"] = rng.choice(np.array([-1, 1], dtype=np.int8), size=count)
        chunks.append(arr)
    return EventStream(np.concatenate(chunks), resolution)


@dataclass
class TransientOutage:
    """Wrap a predictor with a deterministic call-counted outage.

    Calls in ``[fail_from_call, fail_from_call + fail_calls)`` (1-based)
    fail — by raising, or by returning NaN when ``mode`` is ``"nan"``
    (exercising the breaker's NaN trip) — then the stage heals.

    Attributes:
        inner: the healthy predictor.
        fail_from_call: first failing call number.
        fail_calls: number of failing calls.
        mode: ``"raise"`` or ``"nan"``.
        calls: calls made so far (mutates).
    """

    inner: Callable[[EventStream], Any]
    fail_from_call: int
    fail_calls: int
    mode: str = "raise"
    calls: int = 0

    def __post_init__(self) -> None:
        if self.fail_from_call < 1 or self.fail_calls < 0:
            raise ValueError("fail_from_call must be >= 1 and fail_calls >= 0")
        if self.mode not in ("raise", "nan"):
            raise ValueError("mode must be 'raise' or 'nan'")

    def __call__(self, stream: EventStream) -> Any:
        self.calls += 1
        if self.fail_from_call <= self.calls < self.fail_from_call + self.fail_calls:
            if self.mode == "nan":
                return float("nan")
            raise RuntimeError(f"transient outage (call {self.calls})")
        return self.inner(stream)


def run_overload_demo(
    seed: int = 0, burst_factor: float = 10.0
) -> tuple[StreamReport, StreamingExecutor]:
    """The seeded burst + outage demo behind the tests and CI smoke.

    A 200-window stream carries a sustained ``burst_factor``× rate burst
    while the primary predictor suffers a transient nine-call outage
    well before the burst.  The executor must absorb both: the breaker
    trips on the outage, routes windows to the fallback, and re-closes
    through half-open probes; the burst drives the queue past its
    watermarks, escalating the shedding tiers.  The returned report's
    accounting balances exactly (``processed + expired + shed + failed
    == offered``) with ``failed == 0``.

    Args:
        seed: master seed (stream synthesis + breaker probes).
        burst_factor: rate multiplier of the burst.

    Returns:
        ``(report, executor)`` — the executor exposes its breakers and
        shedding controller for inspection.
    """
    window_us = 10_000
    stream = make_bursty_stream(
        num_windows=200,
        window_us=window_us,
        base_events_per_window=200,
        burst_factor=burst_factor,
        burst_windows=(80, 130),
        seed=seed,
    )
    primary = TransientOutage(
        _CountClassifier(), fail_from_call=30, fail_calls=9
    )
    executor = StreamingExecutor(
        ("flaky_primary", primary),
        window_us=window_us,
        fallbacks=[("fallback", _CountClassifier())],
        # 200-event quiescent windows cost 1000 + 200*45 = 10000 us:
        # exactly real-time at base rate, ~9x overloaded in the burst.
        service=ServiceModel(base_us=1000.0, per_event_us=45.0),
        queue_capacity=12,
        shed_policy=ShedPolicy(high_watermark=8, low_watermark=2),
        breaker_policy=BreakerPolicy(
            failure_threshold=3,
            cooldown_calls=4,
            probe_probability=0.6,
            success_threshold=2,
        ),
        seed=seed,
    )
    report = executor.run(stream, load_factor=1.0)
    return report, executor
