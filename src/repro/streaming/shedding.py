"""Tiered load shedding: degrade data quality before dropping work.

Section II of the paper describes how a saturated camera arbiter
degrades: first events queue, then the readout thins them, and finally
whole rows are skipped.  The streaming executor mirrors that escalation
in software with four tiers:

* **NONE** — windows pass untouched;
* **SUBSAMPLE** — rate-proportional event subsampling: the window is
  thinned to the event budget the service model can sustain, keeping
  evenly spaced events so the temporal structure survives;
* **DOWNSAMPLE** — additionally pool events into super-pixels
  (:func:`repro.events.ops.spatial_downsample`) and re-project them
  onto the original resolution, merging bursts that hit one region;
* **DROP_OLDEST** — on top of both transforms, evict the oldest queued
  window entirely (it would expire anyway).

The :class:`ShedController` escalates one tier each time queue depth
crosses the high watermark and de-escalates below the low watermark;
a bursty arrival window (peak-to-mean rate from
:class:`repro.events.rate.RateProfile`) escalates pre-emptively.  Every
event removed is recorded in a :class:`ShedLedger`, so the executor's
accounting is exact — nothing is shed silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any

import numpy as np

from ..events.ops import spatial_downsample
from ..events.stream import EventStream

__all__ = [
    "ShedTier",
    "ShedPolicy",
    "ShedLedger",
    "ShedController",
    "subsample_events",
    "spatial_shed",
]


class ShedTier(IntEnum):
    """Degradation levels, mild to drastic (mirrors the camera arbiter)."""

    NONE = 0
    SUBSAMPLE = 1
    DOWNSAMPLE = 2
    DROP_OLDEST = 3


@dataclass(frozen=True)
class ShedPolicy:
    """Watermarks and transform parameters of the shedding controller.

    Attributes:
        high_watermark: queue depth at (or above) which the controller
            escalates one tier per ingested window.
        low_watermark: queue depth at (or below) which it de-escalates.
        burstiness_threshold: peak-to-mean rate ratio of an arriving
            window that pre-emptively engages SUBSAMPLE even before the
            high watermark is hit.
        burst_bin_us: bin width of the per-window rate profile used for
            the burstiness signal.
        subsample_keep: floor on the SUBSAMPLE keep fraction (the
            rate-proportional budget can only thin *harder* than this,
            never softer once the tier is engaged).
        downsample_factor: super-pixel edge length of the DOWNSAMPLE
            tier.
        downsample_refractory_us: merge window of the DOWNSAMPLE tier
            (events on one super-pixel within it collapse to one).
    """

    high_watermark: int = 8
    low_watermark: int = 2
    burstiness_threshold: float = 6.0
    burst_bin_us: int = 1000
    subsample_keep: float = 0.5
    downsample_factor: int = 2
    downsample_refractory_us: int = 1000

    def __post_init__(self) -> None:
        if self.low_watermark < 0:
            raise ValueError("low_watermark must be non-negative")
        if self.high_watermark <= self.low_watermark:
            raise ValueError("high_watermark must exceed low_watermark")
        if self.burstiness_threshold <= 1.0:
            raise ValueError("burstiness_threshold must be > 1")
        if self.burst_bin_us <= 0:
            raise ValueError("burst_bin_us must be positive")
        if not 0.0 < self.subsample_keep <= 1.0:
            raise ValueError("subsample_keep must be in (0, 1]")
        if self.downsample_factor < 2:
            raise ValueError("downsample_factor must be >= 2")
        if self.downsample_refractory_us < 0:
            raise ValueError("downsample_refractory_us must be non-negative")


def subsample_events(stream: EventStream, keep_fraction: float) -> EventStream:
    """Deterministically thin a stream to ``keep_fraction`` of its events.

    Kept events are evenly spaced in stream order (``linspace`` over the
    indices), so the result is a valid, time-ordered substream whose
    rate is reduced proportionally — the software analogue of an
    arbiter granting every k-th request.

    Args:
        stream: input events.
        keep_fraction: fraction of events to keep, in [0, 1].
    """
    if not 0.0 <= keep_fraction <= 1.0:
        raise ValueError("keep_fraction must be in [0, 1]")
    n = len(stream)
    if n == 0 or keep_fraction >= 1.0:
        return stream
    kept = int(round(n * keep_fraction))
    if kept <= 0:
        return stream[np.zeros(0, dtype=np.int64)]
    idx = np.unique(np.round(np.linspace(0, n - 1, kept)).astype(np.int64))
    return stream[idx]


def spatial_shed(
    stream: EventStream, factor: int, refractory_us: int = 0
) -> EventStream:
    """Pool events into super-pixels, keeping the original resolution.

    :func:`repro.events.ops.spatial_downsample` merges same-super-pixel
    events within the refractory window but shrinks the resolution —
    which would invalidate a model fitted on full-resolution input.
    This wrapper re-projects the pooled events back onto the original
    array (each lands on its super-pixel's top-left corner), so the
    stream keeps its resolution while the event count drops.

    Args:
        stream: input events.
        factor: super-pixel edge length (>= 2).
        refractory_us: merge window of the pooled comparator.
    """
    if factor < 2:
        raise ValueError("factor must be >= 2")
    down = spatial_downsample(stream, factor, refractory_us)
    if len(down) == 0:
        return stream[np.zeros(0, dtype=np.int64)]
    arr = down.raw.copy()
    # Super-pixel corners always lie inside the original array:
    # x_down <= width//factor - 1, so x_down * factor <= width - factor.
    arr["x"] *= factor
    arr["y"] *= factor
    return EventStream(arr, stream.resolution, check=False)


@dataclass
class ShedLedger:
    """Exact account of everything the shedding tiers removed.

    Attributes:
        windows_touched: tier name → windows a transform was applied to
            (DROP_OLDEST counts evicted windows).
        events_shed: tier name → events removed at that tier.
    """

    windows_touched: dict[str, int] = field(
        default_factory=lambda: {t.name: 0 for t in ShedTier if t is not ShedTier.NONE}
    )
    events_shed: dict[str, int] = field(
        default_factory=lambda: {t.name: 0 for t in ShedTier if t is not ShedTier.NONE}
    )

    def record(self, tier: ShedTier, events_before: int, events_after: int) -> None:
        """Record one transform application (no-op rejections included)."""
        if tier is ShedTier.NONE:
            return
        if events_after > events_before:
            raise ValueError("shedding cannot add events")
        self.windows_touched[tier.name] += 1
        self.events_shed[tier.name] += events_before - events_after

    def record_window_drop(self, num_events: int) -> None:
        """Record one whole evicted window (DROP_OLDEST tier)."""
        self.windows_touched[ShedTier.DROP_OLDEST.name] += 1
        self.events_shed[ShedTier.DROP_OLDEST.name] += num_events

    @property
    def total_events_shed(self) -> int:
        """Events removed across all tiers."""
        return sum(self.events_shed.values())

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "windows_touched": dict(self.windows_touched),
            "events_shed": dict(self.events_shed),
        }


@dataclass(frozen=True)
class TierTransition:
    """One controller tier change.

    Attributes:
        at_window: index of the arriving window that triggered it.
        from_tier / to_tier: tier names.
        reason: trigger description (watermark or burstiness).
    """

    at_window: int
    from_tier: str
    to_tier: str
    reason: str

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "at_window": self.at_window,
            "from": self.from_tier,
            "to": self.to_tier,
            "reason": self.reason,
        }


class ShedController:
    """Escalates/de-escalates the shedding tier from queue + rate signals.

    Args:
        policy: watermarks and transform parameters.
        target_events_per_window: event budget the service model can
            sustain per window period; the SUBSAMPLE tier thins windows
            toward it (rate-proportional).  ``None`` disables the
            budget and falls back to ``policy.subsample_keep``.
    """

    def __init__(
        self,
        policy: ShedPolicy | None = None,
        target_events_per_window: float | None = None,
    ) -> None:
        if (
            target_events_per_window is not None
            and target_events_per_window <= 0
        ):
            raise ValueError("target_events_per_window must be positive")
        self.policy = policy or ShedPolicy()
        self.target_events_per_window = target_events_per_window
        self.tier = ShedTier.NONE
        self.transitions: list[TierTransition] = []
        self.tiers_engaged: set[ShedTier] = set()

    def _move(self, to: ShedTier, at_window: int, reason: str) -> None:
        if to is self.tier:
            return
        self.transitions.append(
            TierTransition(at_window, self.tier.name, to.name, reason)
        )
        self.tier = to
        if to is not ShedTier.NONE:
            self.tiers_engaged.add(to)

    def update(
        self, queue_depth: int, burstiness: float, at_window: int
    ) -> ShedTier:
        """Advance the tier for one arriving window and return it.

        Args:
            queue_depth: pending windows before this arrival is queued.
            burstiness: peak-to-mean rate ratio of the arriving window.
            at_window: arriving window's index (for the transition log).
        """
        p = self.policy
        if queue_depth >= p.high_watermark:
            self._move(
                ShedTier(min(self.tier + 1, ShedTier.DROP_OLDEST)),
                at_window,
                f"queue depth {queue_depth} >= high watermark {p.high_watermark}",
            )
        elif queue_depth <= p.low_watermark:
            self._move(
                ShedTier(max(self.tier - 1, ShedTier.NONE)),
                at_window,
                f"queue depth {queue_depth} <= low watermark {p.low_watermark}",
            )
        if (
            self.tier is ShedTier.NONE
            and burstiness >= p.burstiness_threshold
            and queue_depth > p.low_watermark
        ):
            self._move(
                ShedTier.SUBSAMPLE,
                at_window,
                f"burstiness {burstiness:.1f} >= {p.burstiness_threshold}",
            )
        return self.tier

    def keep_fraction(self, window_events: int) -> float:
        """SUBSAMPLE keep fraction for a window of the given size.

        Rate-proportional: thin toward the sustainable event budget, but
        never keep more than ``policy.subsample_keep`` once the tier is
        engaged (shedding that sheds nothing would stall recovery).
        """
        if window_events == 0:
            return 1.0
        keep = self.policy.subsample_keep
        if self.target_events_per_window is not None:
            keep = min(keep, self.target_events_per_window / window_events)
        return max(0.0, min(1.0, keep))

    def apply(
        self, stream: EventStream, ledger: ShedLedger
    ) -> tuple[EventStream, ShedTier]:
        """Apply the current tier's transforms to one arriving window.

        DROP_OLDEST applies the DOWNSAMPLE transforms to the arriving
        window (the eviction itself is the queue's job); every removed
        event is recorded in ``ledger``.

        Returns:
            ``(transformed stream, tier applied)``.
        """
        tier = self.tier
        if tier is ShedTier.NONE or len(stream) == 0:
            return stream, ShedTier.NONE
        before = len(stream)
        out = subsample_events(stream, self.keep_fraction(before))
        if tier >= ShedTier.DOWNSAMPLE:
            out = spatial_shed(
                out,
                self.policy.downsample_factor,
                self.policy.downsample_refractory_us,
            )
        ledger.record(min(tier, ShedTier.DOWNSAMPLE), before, len(out))
        return out, tier
