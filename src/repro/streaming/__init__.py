"""Overload-resilient streaming execution of the paradigm pipelines.

Batch evaluation answers "how accurate is each paradigm?"; this package
answers the ROADMAP's production question: "what happens when the event
rate exceeds what the system can process?".  A
:class:`~repro.streaming.executor.StreamingExecutor` feeds live event
windows through any fitted pipeline under a deterministic virtual-time
model, degrading gracefully under overload instead of collapsing:

* bounded-queue ingest with watermark backpressure and deadline expiry
  (:mod:`~repro.streaming.queueing`);
* tiered load shedding — subsample → spatial pool → drop-oldest — with
  exact shed accounting (:mod:`~repro.streaming.shedding`);
* per-stage circuit breakers with seeded half-open probes and a
  fallback chain ending at the last-good cached prediction
  (:mod:`~repro.streaming.breaker`);
* a balanced :class:`~repro.streaming.report.StreamReport` health
  snapshot, and an overload sweep
  (:mod:`~repro.streaming.sweep`) whose graceful-degradation scores
  join the regenerated Table I via
  :func:`repro.core.comparison.attach_overload`.
"""

from .breaker import (
    BreakerPolicy,
    BreakerState,
    BreakerTransition,
    CircuitBreaker,
    is_bad_output,
)
from .executor import (
    LAST_GOOD_STAGE,
    ServiceModel,
    StreamingExecutor,
    StreamStage,
)
from .queueing import BoundedWindowQueue, WindowTicket
from .report import StageStats, StreamReport, validate_report
from .shedding import (
    ShedController,
    ShedLedger,
    ShedPolicy,
    ShedTier,
    spatial_shed,
    subsample_events,
)
from .sweep import (
    CAPACITY_HEADROOM,
    StreamingPoint,
    StreamingSweepResult,
    TransientOutage,
    attach_to_comparison,
    calibrate_service,
    degradation_violations,
    make_bursty_stream,
    overload_scores,
    run_overload_demo,
    run_paradigm_stream,
    run_streaming_sweep,
)

__all__ = [
    "BreakerState",
    "BreakerPolicy",
    "BreakerTransition",
    "CircuitBreaker",
    "is_bad_output",
    "ShedTier",
    "ShedPolicy",
    "ShedLedger",
    "ShedController",
    "subsample_events",
    "spatial_shed",
    "WindowTicket",
    "BoundedWindowQueue",
    "StageStats",
    "StreamReport",
    "validate_report",
    "ServiceModel",
    "StreamStage",
    "StreamingExecutor",
    "LAST_GOOD_STAGE",
    "CAPACITY_HEADROOM",
    "calibrate_service",
    "StreamingPoint",
    "StreamingSweepResult",
    "run_paradigm_stream",
    "run_streaming_sweep",
    "overload_scores",
    "attach_to_comparison",
    "degradation_violations",
    "make_bursty_stream",
    "TransientOutage",
    "run_overload_demo",
]
