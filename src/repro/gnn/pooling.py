"""Graph pooling operations.

Event graphs can contain thousands of nodes; classification needs a
fixed-size representation.  Voxel pooling coarsens the graph spatially
(as in AEGNN's pooling stages) and global pooling reduces node features
to one vector for the readout head.
"""

from __future__ import annotations

import numpy as np

from ..nn.tensor import Tensor
from .graph import EventGraph
from .layers import scatter_max, scatter_mean

__all__ = ["voxel_pool_graph", "global_mean_pool", "global_max_pool"]


def voxel_pool_graph(graph: EventGraph, cell_size: tuple[float, float, float]) -> tuple[EventGraph, np.ndarray]:
    """Coarsen a graph by merging nodes that share a spatiotemporal voxel.

    Merged node positions are voxel means; features are voxel means;
    edges are remapped and deduplicated (self-loops dropped).

    Args:
        graph: input graph.
        cell_size: voxel extents along (x, y, t-scaled).

    Returns:
        ``(pooled_graph, cluster)`` where ``cluster[i]`` is the pooled
        node index of original node i.
    """
    cs = np.asarray(cell_size, dtype=np.float64)
    if cs.shape != (3,) or np.any(cs <= 0):
        raise ValueError("cell_size must be three positive extents")
    if graph.num_nodes == 0:
        return graph, np.zeros(0, dtype=np.int64)
    cells = np.floor(graph.positions / cs).astype(np.int64)
    _, cluster = np.unique(cells, axis=0, return_inverse=True)
    num_clusters = int(cluster.max()) + 1

    pos_sum = np.zeros((num_clusters, 3))
    np.add.at(pos_sum, cluster, graph.positions)
    feat_sum = np.zeros((num_clusters, graph.features.shape[1]))
    np.add.at(feat_sum, cluster, graph.features)
    counts = np.bincount(cluster, minlength=num_clusters).astype(np.float64)

    if graph.num_edges:
        src = cluster[graph.edges[:, 0]]
        dst = cluster[graph.edges[:, 1]]
        keep = src != dst
        pairs = np.unique(np.stack([src[keep], dst[keep]], axis=1), axis=0)
    else:
        pairs = np.zeros((0, 2), dtype=np.int64)

    pooled = EventGraph(
        pos_sum / counts[:, None],
        feat_sum / counts[:, None],
        pairs,
        graph.time_scale_us,
    )
    return pooled, cluster


def global_mean_pool(x: Tensor) -> Tensor:
    """Mean of all node features: ``(N, F) -> (1, F)``."""
    if x.ndim != 2:
        raise ValueError(f"expected (N, F) node features, got {x.shape}")
    return x.mean(axis=0, keepdims=True)


def global_max_pool(x: Tensor) -> Tensor:
    """Feature-wise max over nodes: ``(N, F) -> (1, F)``."""
    if x.ndim != 2:
        raise ValueError(f"expected (N, F) node features, got {x.shape}")
    return x.max(axis=0, keepdims=True)
