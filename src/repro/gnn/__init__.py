"""Event-graph neural networks: construction, layers, models, async updates."""

from .async_network import SNAPSHOT_FORMAT, AsyncEventGNN, AsyncStepReport
from .asynchronous import (
    BoundedHashInserter,
    HashInserter,
    InsertionStats,
    KDTreeInserter,
    NaiveInserter,
)
from .build import (
    RADIUS_GRAPH_METHODS,
    knn_graph,
    limit_in_degree,
    make_causal,
    radius_graph,
    radius_graph_kdtree,
    radius_graph_naive,
    radius_graph_spatial_hash,
    radius_graph_spatial_hash_reference,
)
from .compact import (
    CompactEventGraph,
    CompactGraphBuilder,
    dequantize_unit,
    quantize_offsets,
    quantize_unit,
)
from .detection import EventGNNLocalizer, fit_localizer, localisation_error
from .graph import EventGraph
from .representation import (
    REPRESENTATIONS,
    CompactGraphRepresentation,
    DenseGraphRepresentation,
    GraphRepresentation,
    get_representation,
    subsample_stream,
)
from .hierarchical import HierarchicalEventGNN
from .layers import EdgeConv, GCNConv, SplineConvLite, scatter_max, scatter_mean, scatter_sum
from .models import (
    EventGNNClassifier,
    GraphBuildConfig,
    build_event_graph,
    evaluate_gnn,
    fit_gnn,
)
from .pooling import global_max_pool, global_mean_pool, voxel_pool_graph

__all__ = [
    "EventGraph",
    "CompactEventGraph",
    "CompactGraphBuilder",
    "quantize_unit",
    "dequantize_unit",
    "quantize_offsets",
    "GraphRepresentation",
    "DenseGraphRepresentation",
    "CompactGraphRepresentation",
    "REPRESENTATIONS",
    "get_representation",
    "subsample_stream",
    "radius_graph",
    "RADIUS_GRAPH_METHODS",
    "HierarchicalEventGNN",
    "EventGNNLocalizer",
    "fit_localizer",
    "localisation_error",
    "radius_graph_naive",
    "radius_graph_kdtree",
    "radius_graph_spatial_hash",
    "radius_graph_spatial_hash_reference",
    "knn_graph",
    "make_causal",
    "limit_in_degree",
    "NaiveInserter",
    "KDTreeInserter",
    "HashInserter",
    "BoundedHashInserter",
    "InsertionStats",
    "AsyncEventGNN",
    "SNAPSHOT_FORMAT",
    "AsyncStepReport",
    "scatter_sum",
    "scatter_mean",
    "scatter_max",
    "GCNConv",
    "EdgeConv",
    "SplineConvLite",
    "voxel_pool_graph",
    "global_mean_pool",
    "global_max_pool",
    "GraphBuildConfig",
    "build_event_graph",
    "EventGNNClassifier",
    "fit_gnn",
    "evaluate_gnn",
]
