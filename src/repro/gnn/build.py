"""Event-graph construction algorithms.

Section IV identifies graph construction as the critical bottleneck:
"Perhaps most problematic of all is the latency required to incorporate
events into a continuously evolving event-graph (generally based on
tree-search methods [75]) — although algorithmic innovations have
already resulted in a four order of magnitude speed-up [72]".

Three radius-graph constructors with identical outputs but different
complexity are provided — brute force O(N^2), k-d tree (the tree-search
baseline) and spatial hashing — plus k-nearest-neighbour graphs and the
*causal* variants (edges from past to future only) that asynchronous
processing requires.  The incremental, per-event builder that realises
the HUGNet-style speed-up lives in :mod:`repro.gnn.asynchronous`.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

__all__ = [
    "radius_graph_naive",
    "radius_graph_kdtree",
    "radius_graph_spatial_hash",
    "knn_graph",
    "make_causal",
    "limit_in_degree",
]


def _check_points(points: np.ndarray) -> np.ndarray:
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError(f"points must be (N, 3), got {points.shape}")
    return points


def _canonical(edges: np.ndarray) -> np.ndarray:
    """Sort an edge list for deterministic, comparable output."""
    if edges.size == 0:
        return np.zeros((0, 2), dtype=np.int64)
    order = np.lexsort((edges[:, 1], edges[:, 0]))
    return edges[order]


def radius_graph_naive(points: np.ndarray, radius: float) -> np.ndarray:
    """All directed pairs within ``radius``, by O(N^2) comparison.

    Self-loops are excluded; both directions of each pair are included.
    """
    points = _check_points(points)
    if radius <= 0:
        raise ValueError("radius must be positive")
    n = points.shape[0]
    if n == 0:
        return np.zeros((0, 2), dtype=np.int64)
    diff = points[:, None, :] - points[None, :, :]
    dist2 = np.einsum("ijk,ijk->ij", diff, diff)
    mask = dist2 <= radius * radius
    np.fill_diagonal(mask, False)
    src, dst = np.nonzero(mask)
    return _canonical(np.stack([src, dst], axis=1).astype(np.int64))


def radius_graph_kdtree(points: np.ndarray, radius: float) -> np.ndarray:
    """Radius graph via k-d tree (the tree-search method of ref [75])."""
    points = _check_points(points)
    if radius <= 0:
        raise ValueError("radius must be positive")
    if points.shape[0] == 0:
        return np.zeros((0, 2), dtype=np.int64)
    tree = cKDTree(points)
    pairs = tree.query_pairs(radius, output_type="ndarray")
    if pairs.size == 0:
        return np.zeros((0, 2), dtype=np.int64)
    both = np.concatenate([pairs, pairs[:, ::-1]])
    return _canonical(both.astype(np.int64))


def radius_graph_spatial_hash(points: np.ndarray, radius: float) -> np.ndarray:
    """Radius graph via uniform-grid spatial hashing.

    Points are bucketed into cells of side ``radius``; each point is only
    compared against the 27 neighbouring cells.  For bounded point
    density this is O(N) — the algorithmic ingredient behind real-time
    event-graph updates.
    """
    points = _check_points(points)
    if radius <= 0:
        raise ValueError("radius must be positive")
    n = points.shape[0]
    if n == 0:
        return np.zeros((0, 2), dtype=np.int64)
    cells = np.floor(points / radius).astype(np.int64)
    buckets: dict[tuple[int, int, int], list[int]] = {}
    for i, c in enumerate(map(tuple, cells)):
        buckets.setdefault(c, []).append(i)

    r2 = radius * radius
    src_list: list[int] = []
    dst_list: list[int] = []
    offsets = [
        (dx, dy, dz)
        for dx in (-1, 0, 1)
        for dy in (-1, 0, 1)
        for dz in (-1, 0, 1)
    ]
    for i in range(n):
        cx, cy, cz = cells[i]
        p = points[i]
        for dx, dy, dz in offsets:
            neighbours = buckets.get((cx + dx, cy + dy, cz + dz))
            if not neighbours:
                continue
            for j in neighbours:
                if j == i:
                    continue
                d = points[j] - p
                if d @ d <= r2:
                    src_list.append(i)
                    dst_list.append(j)
    if not src_list:
        return np.zeros((0, 2), dtype=np.int64)
    return _canonical(np.stack([src_list, dst_list], axis=1).astype(np.int64))


def knn_graph(points: np.ndarray, k: int) -> np.ndarray:
    """Directed edges from each node's k nearest neighbours into the node."""
    points = _check_points(points)
    if k <= 0:
        raise ValueError("k must be positive")
    n = points.shape[0]
    if n <= 1:
        return np.zeros((0, 2), dtype=np.int64)
    k_eff = min(k, n - 1)
    tree = cKDTree(points)
    _, idx = tree.query(points, k=k_eff + 1)  # first hit is the point itself
    idx = np.atleast_2d(idx)
    dst = np.repeat(np.arange(n), k_eff)
    src = idx[:, 1:].reshape(-1)
    return _canonical(np.stack([src, dst], axis=1).astype(np.int64))


def make_causal(edges: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Keep only edges flowing forward in time (source earlier or equal).

    Ties in the time coordinate are broken by index so the result is a
    DAG — the "hemispherical" neighbourhood of the HUGNet idea: a node
    aggregates only from its past.
    """
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    points = _check_points(points)
    if edges.size == 0:
        return edges
    t_src = points[edges[:, 0], 2]
    t_dst = points[edges[:, 1], 2]
    keep = (t_src < t_dst) | ((t_src == t_dst) & (edges[:, 0] < edges[:, 1]))
    return _canonical(edges[keep])


def limit_in_degree(
    edges: np.ndarray, points: np.ndarray, max_degree: int
) -> np.ndarray:
    """Cap each node's in-degree, keeping its spatially nearest sources.

    Degree capping bounds the per-event work of asynchronous graph
    convolution — a hardware-motivated constraint (Section IV).
    """
    if max_degree <= 0:
        raise ValueError("max_degree must be positive")
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    points = _check_points(points)
    if edges.size == 0:
        return edges
    d = points[edges[:, 1]] - points[edges[:, 0]]
    dist2 = np.einsum("ij,ij->i", d, d)
    keep_rows: list[int] = []
    order = np.argsort(dist2, kind="stable")
    counts: dict[int, int] = {}
    for row in order:
        dst = int(edges[row, 1])
        if counts.get(dst, 0) < max_degree:
            counts[dst] = counts.get(dst, 0) + 1
            keep_rows.append(row)
    return _canonical(edges[np.array(sorted(keep_rows), dtype=np.int64)])
