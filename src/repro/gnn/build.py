"""Event-graph construction algorithms.

Section IV identifies graph construction as the critical bottleneck:
"Perhaps most problematic of all is the latency required to incorporate
events into a continuously evolving event-graph (generally based on
tree-search methods [75]) — although algorithmic innovations have
already resulted in a four order of magnitude speed-up [72]".

Three radius-graph constructors with identical outputs but different
complexity are provided — brute force O(N^2), k-d tree (the tree-search
baseline) and spatial hashing — plus k-nearest-neighbour graphs and the
*causal* variants (edges from past to future only) that asynchronous
processing requires.  The incremental, per-event builder that realises
the HUGNet-style speed-up lives in :mod:`repro.gnn.asynchronous`.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

__all__ = [
    "radius_graph",
    "RADIUS_GRAPH_METHODS",
    "radius_graph_naive",
    "radius_graph_kdtree",
    "radius_graph_spatial_hash",
    "radius_graph_spatial_hash_reference",
    "knn_graph",
    "make_causal",
    "limit_in_degree",
]


def _check_points(points: np.ndarray) -> np.ndarray:
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError(f"points must be (N, 3), got {points.shape}")
    return points


def _canonical(edges: np.ndarray) -> np.ndarray:
    """Sort an edge list for deterministic, comparable output.

    Equivalent to a (src, dst) lexsort, but packs each row into one
    int64 so a plain value sort does the work (~20x faster on 100k+
    edge lists).
    """
    if edges.size == 0:
        return np.zeros((0, 2), dtype=np.int64)
    hi = int(edges.max()) + 1
    if float(hi) * float(hi) >= 2**62:
        order = np.lexsort((edges[:, 1], edges[:, 0]))
        return edges[order]
    packed = np.sort(edges[:, 0] * hi + edges[:, 1])  # sort-ok: packed pairs, ties identical
    out = np.empty((packed.size, 2), dtype=np.int64)
    out[:, 0] = packed // hi
    out[:, 1] = packed % hi
    return out


def radius_graph_naive(points: np.ndarray, radius: float) -> np.ndarray:
    """Deprecated alias for ``radius_graph(points, r, method="naive")``.

    All directed pairs within ``radius``, by O(N^2) comparison.
    Self-loops are excluded; both directions of each pair are included.
    Retained as the brute-force oracle the fast methods are pinned to.
    """
    points = _check_points(points)
    if radius <= 0:
        raise ValueError("radius must be positive")
    n = points.shape[0]
    if n == 0:
        return np.zeros((0, 2), dtype=np.int64)
    diff = points[:, None, :] - points[None, :, :]
    dist2 = np.einsum("ijk,ijk->ij", diff, diff)
    mask = dist2 <= radius * radius
    np.fill_diagonal(mask, False)
    src, dst = np.nonzero(mask)
    return _canonical(np.stack([src, dst], axis=1).astype(np.int64))


def radius_graph_kdtree(points: np.ndarray, radius: float) -> np.ndarray:
    """Deprecated alias for ``radius_graph(points, r, method="kdtree")``.

    Radius graph via k-d tree (the tree-search method of ref [75]).
    """
    points = _check_points(points)
    if radius <= 0:
        raise ValueError("radius must be positive")
    if points.shape[0] == 0:
        return np.zeros((0, 2), dtype=np.int64)
    tree = cKDTree(points)
    pairs = tree.query_pairs(radius, output_type="ndarray")
    if pairs.size == 0:
        return np.zeros((0, 2), dtype=np.int64)
    both = np.concatenate([pairs, pairs[:, ::-1]])
    return _canonical(both.astype(np.int64))


def radius_graph_spatial_hash_reference(
    points: np.ndarray, radius: float
) -> np.ndarray:
    """Loop-based reference for :func:`radius_graph_spatial_hash`.

    Kept as the readable oracle the vectorized implementation is
    validated against (see ``tests/test_hotpath_equivalence.py``); use
    the vectorized version everywhere else.
    """
    points = _check_points(points)
    if radius <= 0:
        raise ValueError("radius must be positive")
    n = points.shape[0]
    if n == 0:
        return np.zeros((0, 2), dtype=np.int64)
    cells = np.floor(points / radius).astype(np.int64)
    buckets: dict[tuple[int, int, int], list[int]] = {}
    for i, c in enumerate(map(tuple, cells)):
        buckets.setdefault(c, []).append(i)

    r2 = radius * radius
    src_list: list[int] = []
    dst_list: list[int] = []
    offsets = [
        (dx, dy, dz)
        for dx in (-1, 0, 1)
        for dy in (-1, 0, 1)
        for dz in (-1, 0, 1)
    ]
    for i in range(n):
        cx, cy, cz = cells[i]
        p = points[i]
        for dx, dy, dz in offsets:
            neighbours = buckets.get((cx + dx, cy + dy, cz + dz))
            if not neighbours:
                continue
            for j in neighbours:
                if j == i:
                    continue
                d = points[j] - p
                if d @ d <= r2:
                    src_list.append(i)
                    dst_list.append(j)
    if not src_list:
        return np.zeros((0, 2), dtype=np.int64)
    return _canonical(np.stack([src_list, dst_list], axis=1).astype(np.int64))


def radius_graph_spatial_hash(points: np.ndarray, radius: float) -> np.ndarray:
    """Deprecated alias for ``radius_graph(points, r, method="spatial_hash")``.

    Radius graph via uniform-grid spatial hashing.  Points are bucketed
    into cells of side ``radius``; each point is only
    compared against the 27 neighbouring cells.  For bounded point
    density this is O(N) — the algorithmic ingredient behind real-time
    event-graph updates.

    The buckets are sorted cell-key arrays rather than dict-of-lists:
    points are sorted by a packed integer cell key, each neighbour-cell
    offset becomes one ``searchsorted`` against the unique keys (probed
    with sorted needles, so the binary searches stay cache-resident),
    and all candidate pairs are gathered and distance-tested in a
    handful of array operations.  Only the 13 lexicographically
    positive offsets plus the home cell are probed — each unordered
    pair is distance-tested once and mirrored afterwards.
    """
    points = _check_points(points)
    if radius <= 0:
        raise ValueError("radius must be positive")
    n = points.shape[0]
    if n == 0:
        return np.zeros((0, 2), dtype=np.int64)
    cells = np.floor(points / radius).astype(np.int64)
    # Shift to non-negative and pad by one so neighbour offsets of -1
    # stay representable without wrapping into an adjacent row/plane.
    cells = cells - cells.min(axis=0) + 1
    span = cells.max(axis=0) + 2
    if float(span[0]) * float(span[1]) * float(span[2]) >= 2**62:
        # Packed keys would overflow int64 (astronomically spread input);
        # fall back to the dict-based reference.
        return radius_graph_spatial_hash_reference(points, radius)
    keys = (cells[:, 0] * span[1] + cells[:, 1]) * span[2] + cells[:, 2]

    if float(keys.max() + 1) * float(n) < 2**62:
        # Append the point index to the key: a plain value sort then
        # replaces the much slower stable argsort.
        packed = np.sort(keys * n + np.arange(n))  # sort-ok: packed keys are unique
        order = packed % n
        sorted_keys = packed // n
    else:
        # Stable, so tied keys keep point order and the edge list matches
        # the packed fast path exactly (default introsort reorders ties).
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
    uniq_keys, bucket_start = np.unique(sorted_keys, return_index=True)
    bucket_count = np.diff(np.append(bucket_start, n))

    # Home-cell probe: every point against its own bucket (self and the
    # mirrored half of each pair are filtered triangularly below).
    slot_home = np.searchsorted(uniq_keys, sorted_keys)
    src_pos = [np.arange(n)]
    q_start = [bucket_start[slot_home]]
    q_count = [bucket_count[slot_home]]
    for dx in (-1, 0, 1):
        for dy in (-1, 0, 1):
            for dz in (-1, 0, 1):
                if (dx, dy, dz) <= (0, 0, 0):
                    continue
                d_key = (dx * span[1] + dy) * span[2] + dz
                probe = sorted_keys + d_key
                slot = np.searchsorted(uniq_keys, probe)
                slot_c = np.minimum(slot, uniq_keys.size - 1)
                hit = uniq_keys[slot_c] == probe
                src_pos.append(np.flatnonzero(hit))
                q_start.append(bucket_start[slot_c[hit]])
                q_count.append(bucket_count[slot_c[hit]])

    home_queries = n
    src_pos = np.concatenate(src_pos)
    q_start = np.concatenate(q_start)
    q_count = np.concatenate(q_count)
    total = int(q_count.sum())
    if total == 0:
        return np.zeros((0, 2), dtype=np.int64)
    # Expand each (point, bucket) probe into candidate sorted-positions:
    # candidate m of probe q sits at q_start[q] + m.
    out_end = np.cumsum(q_count)
    flat = np.arange(total) - np.repeat(out_end - q_count, q_count)
    cand_pos = flat + np.repeat(q_start, q_count)
    src_exp = np.repeat(src_pos, q_count)
    # Home-cell probes came first: keep each unordered in-cell pair once.
    home_total = int(out_end[home_queries - 1]) if home_queries else 0
    keep = np.ones(total, dtype=bool)
    keep[:home_total] = src_exp[:home_total] < cand_pos[:home_total]

    a = order[src_exp[keep]]
    b = order[cand_pos[keep]]
    d = points[a] - points[b]
    within = np.einsum("ij,ij->i", d, d) <= radius * radius
    a, b = a[within], b[within]
    if a.size == 0:
        return np.zeros((0, 2), dtype=np.int64)
    both = np.empty((2 * a.size, 2), dtype=np.int64)
    both[: a.size, 0], both[: a.size, 1] = a, b
    both[a.size :, 0], both[a.size :, 1] = b, a
    return _canonical(both)


#: ``radius_graph`` dispatch table.  "naive" and "kdtree" are retained
#: as reference oracles (their outputs are identical by construction and
#: pinned by tests); "spatial_hash" is the production default.
RADIUS_GRAPH_METHODS = ("naive", "kdtree", "spatial_hash")


def radius_graph(
    points: np.ndarray, radius: float, method: str = "spatial_hash"
) -> np.ndarray:
    """All directed pairs within ``radius`` — the single entry point.

    Consolidates the three construction algorithms behind one call;
    every method returns the identical canonical edge list, so
    ``method`` selects complexity only.  The per-algorithm functions
    (``radius_graph_naive`` / ``radius_graph_kdtree`` /
    ``radius_graph_spatial_hash``) remain available as deprecated
    aliases and as the reference oracles the tests compare against.

    Args:
        points: ``(N, 3)`` spatiotemporal point cloud.
        radius: connection radius.
        method: one of :data:`RADIUS_GRAPH_METHODS`.
    """
    if method == "spatial_hash":
        return radius_graph_spatial_hash(points, radius)
    if method == "kdtree":
        return radius_graph_kdtree(points, radius)
    if method == "naive":
        return radius_graph_naive(points, radius)
    raise ValueError(
        f"unknown radius_graph method {method!r} "
        f"(expected one of {RADIUS_GRAPH_METHODS})"
    )


def knn_graph(points: np.ndarray, k: int) -> np.ndarray:
    """Directed edges from each node's k nearest neighbours into the node.

    Self-loops are never emitted, even for duplicate points: with ties at
    distance zero ``cKDTree.query`` does not guarantee the self-hit comes
    first, so the query asks for one extra neighbour and the node's own
    index is dropped explicitly wherever it lands.
    """
    points = _check_points(points)
    if k <= 0:
        raise ValueError("k must be positive")
    n = points.shape[0]
    if n <= 1:
        return np.zeros((0, 2), dtype=np.int64)
    k_eff = min(k, n - 1)
    tree = cKDTree(points)
    _, idx = tree.query(points, k=k_eff + 1)
    idx = np.atleast_2d(idx)
    keep = idx != np.arange(n)[:, None]
    # Rows whose self-hit was displaced by a duplicate have k_eff + 1
    # foreign hits; drop the farthest so every row keeps exactly k_eff.
    keep[keep.all(axis=1), -1] = False
    src = idx[keep]  # row-major, so per-node nearest-first order survives
    dst = np.repeat(np.arange(n), k_eff)
    return _canonical(np.stack([src, dst], axis=1).astype(np.int64))


def make_causal(edges: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Keep only edges flowing forward in time (source earlier or equal).

    Ties in the time coordinate are broken by index so the result is a
    DAG — the "hemispherical" neighbourhood of the HUGNet idea: a node
    aggregates only from its past.
    """
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    points = _check_points(points)
    if edges.size == 0:
        return edges
    t_src = points[edges[:, 0], 2]
    t_dst = points[edges[:, 1], 2]
    keep = (t_src < t_dst) | ((t_src == t_dst) & (edges[:, 0] < edges[:, 1]))
    return _canonical(edges[keep])


def limit_in_degree(
    edges: np.ndarray, points: np.ndarray, max_degree: int
) -> np.ndarray:
    """Cap each node's in-degree, keeping its spatially nearest sources.

    Degree capping bounds the per-event work of asynchronous graph
    convolution — a hardware-motivated constraint (Section IV).
    """
    if max_degree <= 0:
        raise ValueError("max_degree must be positive")
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    points = _check_points(points)
    if edges.size == 0:
        return edges
    d = points[edges[:, 1]] - points[edges[:, 0]]
    dist2 = np.einsum("ij,ij->i", d, d)
    keep_rows: list[int] = []
    order = np.argsort(dist2, kind="stable")
    counts: dict[int, int] = {}
    for row in order:
        dst = int(edges[row, 1])
        if counts.get(dst, 0) < max_degree:
            counts[dst] = counts.get(dst, 0) + 1
            keep_rows.append(row)
    return _canonical(edges[np.array(sorted(keep_rows), dtype=np.int64)])
