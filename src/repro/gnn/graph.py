"""The event-graph data structure.

Section IV: "Considering a generated stream of events as a point-cloud
in two spatial and one temporal dimensions, a graph can be constructed
by, for example, connecting events through directed edges based on their
euclidean distance."

An :class:`EventGraph` holds node positions (x, y, scaled t), node
features (polarity by default) and a directed edge list with
spatiotemporal edge attributes (the offset vectors graph convolutions
consume).  Construction algorithms live in :mod:`repro.gnn.build`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..events.stream import EventStream

__all__ = ["EventGraph"]


@dataclass
class EventGraph:
    """A directed spatiotemporal graph over events.

    Attributes:
        positions: ``(N, 3)`` node coordinates ``(x, y, t/time_scale)``.
        features: ``(N, F)`` node input features.
        edges: ``(E, 2)`` int array of ``(source, destination)`` pairs.
        time_scale_us: microseconds per unit of the temporal axis.
    """

    #: Representation tag consumed by the hw cost models (the compact
    #: counterpart is :class:`repro.gnn.compact.CompactEventGraph`).
    representation = "dense"

    positions: np.ndarray
    features: np.ndarray
    edges: np.ndarray
    time_scale_us: float

    def __post_init__(self) -> None:
        self.positions = np.asarray(self.positions, dtype=np.float64)
        self.features = np.asarray(self.features, dtype=np.float64)
        self.edges = np.asarray(self.edges, dtype=np.int64).reshape(-1, 2)
        if self.positions.ndim != 2 or self.positions.shape[1] != 3:
            raise ValueError(f"positions must be (N, 3), got {self.positions.shape}")
        if self.features.shape[0] != self.positions.shape[0]:
            raise ValueError("features and positions must agree on N")
        if self.edges.size:
            if self.edges.min() < 0 or self.edges.max() >= self.num_nodes:
                raise ValueError("edge endpoints out of range")

    @property
    def num_nodes(self) -> int:
        """Number of nodes (events)."""
        return self.positions.shape[0]

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return self.edges.shape[0]

    @property
    def mean_degree(self) -> float:
        """Mean in-degree (= mean out-degree) of the graph."""
        if self.num_nodes == 0:
            return 0.0
        return self.num_edges / self.num_nodes

    def edge_attributes(self) -> np.ndarray:
        """Spatiotemporal offsets ``pos[dst] - pos[src]`` per edge, ``(E, 3)``.

        These offsets carry the precise inter-event timing into the graph
        convolution — the mechanism by which event-GNNs "exploit the
        precise timing information captured by an event-camera deep into
        a neural network" (Section IV).
        """
        if self.num_edges == 0:
            return np.zeros((0, 3))
        return self.positions[self.edges[:, 1]] - self.positions[self.edges[:, 0]]

    def in_degrees(self) -> np.ndarray:
        """Per-node in-degree, ``(N,)``."""
        if self.num_nodes == 0:
            return np.zeros(0, dtype=np.int64)
        return np.bincount(self.edges[:, 1], minlength=self.num_nodes)

    def nbytes(self) -> int:
        """Resident bytes of the stored representation.

        Float64 positions and features plus the int64 edge list — the
        baseline the compact representation's bytes/event is compared
        against.
        """
        return int(
            self.positions.nbytes + self.features.nbytes + self.edges.nbytes
        )

    def is_causal(self) -> bool:
        """True if every edge points forward (or level) in time."""
        if self.num_edges == 0:
            return True
        dt = self.positions[self.edges[:, 1], 2] - self.positions[self.edges[:, 0], 2]
        return bool(np.all(dt >= 0))

    @classmethod
    def from_stream(
        cls,
        stream: EventStream,
        edges: np.ndarray,
        time_scale_us: float = 1000.0,
        include_position: bool = False,
    ) -> "EventGraph":
        """Wrap a stream and a pre-built edge list into a graph.

        Node features are the one-hot polarity ``[is_on, is_off]``;
        with ``include_position`` the normalised absolute coordinates
        ``[x/W, y/H]`` are appended (needed for tasks such as rotation
        direction, where relative offsets alone are ambiguous).
        """
        soa = stream.soa()
        positions = soa.point_cloud(time_scale_us)
        columns = list(soa.polarity_onehot())
        if include_position:
            columns.append(soa.x / stream.resolution.width)
            columns.append(soa.y / stream.resolution.height)
        features = np.stack(columns, axis=1)
        return cls(positions, features, edges, time_scale_us)

    def subgraph(self, node_indices: np.ndarray) -> "EventGraph":
        """Induced subgraph over ``node_indices`` (relabelled contiguously)."""
        node_indices = np.asarray(node_indices, dtype=np.int64)
        remap = -np.ones(self.num_nodes, dtype=np.int64)
        remap[node_indices] = np.arange(node_indices.size)
        if self.num_edges:
            src, dst = remap[self.edges[:, 0]], remap[self.edges[:, 1]]
            keep = (src >= 0) & (dst >= 0)
            new_edges = np.stack([src[keep], dst[keep]], axis=1)
        else:
            new_edges = np.zeros((0, 2), dtype=np.int64)
        return EventGraph(
            self.positions[node_indices],
            self.features[node_indices],
            new_edges,
            self.time_scale_us,
        )
