"""Hierarchical event-graph classifier with voxel-pooling stages.

The AEGNN-style architecture (Schaefer et al. 2022, ref [70]): graph
convolutions interleaved with spatial coarsening, so deeper layers see
progressively larger receptive fields at a fraction of the node count —
the graph analogue of strided convolutions.  Pooling also restores a
coarse notion of absolute position, which is why hierarchical models
handle location-dependent tasks without explicit position features.
"""

from __future__ import annotations

import numpy as np

from ..nn.layers import Linear, Module
from ..nn.tensor import Tensor
from .graph import EventGraph
from .layers import EdgeConv, scatter_mean
from .pooling import global_max_pool, voxel_pool_graph

__all__ = ["HierarchicalEventGNN"]


class HierarchicalEventGNN(Module):
    """EdgeConv → voxel pool → EdgeConv → global pool → linear head.

    Args:
        num_classes: output classes.
        hidden: feature width of both conv stages.
        in_features: node input feature width.
        pool_cell: voxel extents ``(dx, dy, dt_scaled)`` of the pooling
            stage.
        rng: initialisation generator.
    """

    def __init__(
        self,
        num_classes: int,
        hidden: int = 16,
        in_features: int = 2,
        pool_cell: tuple[float, float, float] = (4.0, 4.0, 8.0),
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if num_classes <= 0 or hidden <= 0 or in_features <= 0:
            raise ValueError("sizes must be positive")
        if any(c <= 0 for c in pool_cell):
            raise ValueError("pool_cell extents must be positive")
        rng = rng or np.random.default_rng(0)
        self.pool_cell = tuple(float(c) for c in pool_cell)
        self.conv1 = EdgeConv(in_features, hidden, hidden=hidden, rng=rng)
        self.conv2 = EdgeConv(hidden, hidden, hidden=hidden, rng=rng)
        self.head = Linear(hidden, num_classes, rng=rng)

    def forward(self, graph: EventGraph) -> Tensor:
        """Logits ``(1, num_classes)`` for one event graph."""
        x = Tensor(graph.features)
        x = self.conv1(x, graph.edges, graph.positions).relu()
        pooled, cluster = voxel_pool_graph(graph, self.pool_cell)
        x = scatter_mean(x, cluster, pooled.num_nodes)
        x = self.conv2(x, pooled.edges, pooled.positions).relu()
        return self.head(global_max_pool(x))

    def pooling_summary(self, graph: EventGraph) -> dict[str, int]:
        """Node/edge counts before and after the pooling stage."""
        pooled, _ = voxel_pool_graph(graph, self.pool_cell)
        return {
            "nodes_in": graph.num_nodes,
            "edges_in": graph.num_edges,
            "nodes_pooled": pooled.num_nodes,
            "edges_pooled": pooled.num_edges,
        }
