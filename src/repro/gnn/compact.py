"""Memory-bounded compact event-graph representation.

Section IV's event-graph "perspective" only reaches hardware if the
graph itself is memory-bounded.  The Jeziorek et al. line (AEGNN →
optimised event-graphs, arXiv 2307.14124 / 2401.04988) gets event-graph
GCNs onto FPGAs by making graphs *fixed-degree*, *directed* and
*integer-quantized*, and EvGNN (arXiv 2404.19489) assumes exactly such a
representation for its per-event accelerator.  This module provides that
representation for the reproduction:

* :class:`CompactEventGraph` — structure-of-arrays storage (the
  :class:`~repro.events.soa.EventSoA` layout carried through to the
  graph): ``uint16`` pixel coordinates, ``uint32`` timestamp offsets
  against a single ``int64`` base, uint-quantized node features, and a
  fixed-width in-neighbour table of ``uint16`` id *deltas* (one row per
  node, ``max_degree`` slots) instead of a dense ``int64`` edge list.
  Edge attributes are not stored at all — they are re-derived from the
  integer coordinates on demand and quantized to a signed integer grid.
* :class:`CompactGraphBuilder` — incremental (per-event or batched)
  construction on top of the :class:`~repro.gnn.asynchronous.
  HashInserter` family, so the representation composes with
  :class:`~repro.gnn.AsyncEventGNN`'s bounded mode: with
  ``max_live_nodes`` set, node storage becomes fixed ring buffers and
  the builder's state stops growing no matter how many events pass
  through.

With ``quantization_bits=0`` the compact graph reconstructs positions
and features *bitwise* equal to the dense :class:`~repro.gnn.graph.
EventGraph` built from the same events (coordinates are integers, the
timestamp decomposition is lossless, and the same float64 conversions
are applied), so classifier outputs are bit-identical — the property
the dense-vs-compact tests pin down.  With quantization enabled, node
features live on the ``[0, 1]`` uint grid (polarity one-hots are still
exact) and edge offsets on a signed grid of ``radius / (2^(b-1) - 1)``
resolution, bounding the round-trip error the accuracy-delta benchmark
measures.
"""

from __future__ import annotations

import numpy as np

from .build import _canonical

__all__ = [
    "NBR_EMPTY",
    "NBR_OVERFLOW",
    "CompactEventGraph",
    "CompactGraphBuilder",
    "quantize_unit",
    "dequantize_unit",
    "quantize_offsets",
]

#: Neighbour-table sentinel: slot holds no edge.
NBR_EMPTY = 0
#: Neighbour-table sentinel: the edge's id delta exceeds ``uint16`` and
#: lives in the explicit overflow side-list instead.
NBR_OVERFLOW = 0xFFFF


def quantize_unit(values: np.ndarray, bits: int) -> np.ndarray:
    """Quantize ``[0, 1]`` values to a ``bits``-wide unsigned grid.

    Values are clipped into the unit interval first; exact 0.0 and 1.0
    (the polarity one-hot features) round-trip losslessly for any
    ``bits >= 1``.

    Args:
        values: float array with entries in (or clipped to) ``[0, 1]``.
        bits: grid width, 1–16; ``bits <= 8`` stores as ``uint8``.
    """
    if not 1 <= bits <= 16:
        raise ValueError("bits must be in [1, 16]")
    scale = (1 << bits) - 1
    dtype = np.uint8 if bits <= 8 else np.uint16
    return np.rint(np.clip(values, 0.0, 1.0) * scale).astype(dtype)


def dequantize_unit(q: np.ndarray, bits: int) -> np.ndarray:
    """Invert :func:`quantize_unit` back to float64 in ``[0, 1]``."""
    if not 1 <= bits <= 16:
        raise ValueError("bits must be in [1, 16]")
    return q.astype(np.float64) / ((1 << bits) - 1)


def quantize_offsets(
    offsets: np.ndarray, radius: float, bits: int
) -> tuple[np.ndarray, float]:
    """Quantize edge offsets to a signed integer grid.

    Offsets of an in-radius edge are bounded by ``radius`` per
    component, so the grid spans ``[-radius, radius]`` with
    ``2^(bits-1) - 1`` positive steps.  The round-trip error is at most
    half a grid step per component.

    Args:
        offsets: ``(E, 3)`` float spatiotemporal offsets.
        radius: connection radius bounding each component.
        bits: signed grid width, 2–16; ``bits <= 8`` stores as ``int8``.

    Returns:
        ``(q, scale)`` — the integer grid values and the step size such
        that ``q * scale`` dequantizes.
    """
    if not 2 <= bits <= 16:
        raise ValueError("bits must be in [2, 16]")
    if radius <= 0:
        raise ValueError("radius must be positive")
    qmax = (1 << (bits - 1)) - 1
    scale = radius / qmax
    dtype = np.int8 if bits <= 8 else np.int16
    q = np.clip(np.rint(offsets / scale), -qmax, qmax).astype(dtype)
    return q, scale


def _pack_neighbours(
    edges: np.ndarray, num_nodes: int, max_degree: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pack a causal edge list into the fixed-width delta table.

    Returns ``(nbr, ov_src, ov_dst)``: the ``(N, max_degree)`` uint16
    delta table plus the int64 overflow pairs for deltas ``>= 0xFFFF``.
    """
    nbr = np.zeros((num_nodes, max_degree), dtype=np.uint16)
    if edges.size == 0:
        return nbr, np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    src = edges[:, 0].astype(np.int64)
    dst = edges[:, 1].astype(np.int64)
    delta = dst - src
    if np.any(delta < 1):
        raise ValueError("compact edges must be causal (src < dst)")
    order = np.lexsort((src, dst))
    src, dst, delta = src[order], dst[order], delta[order]
    head = np.empty(dst.size, dtype=bool)
    head[0] = True
    head[1:] = dst[1:] != dst[:-1]
    starts = np.flatnonzero(head)
    counts = np.diff(np.append(starts, dst.size))
    if int(counts.max()) > max_degree:
        raise ValueError("edge list exceeds the in-degree cap")
    rank = np.arange(dst.size) - np.repeat(starts, counts)
    over = delta >= NBR_OVERFLOW
    nbr[dst, rank] = np.where(over, NBR_OVERFLOW, delta).astype(np.uint16)
    return nbr, src[over], dst[over]


class CompactEventGraph:
    """Fixed-degree, directed, integer-quantized event graph (SoA).

    Storage per node: ``uint16`` x/y, ``uint32`` timestamp offset
    against :attr:`t_base`, a quantized feature row, and ``max_degree``
    ``uint16`` in-neighbour slots holding ``dst - src`` id deltas
    (:data:`NBR_EMPTY` marks an unused slot; deltas too large for 16
    bits go to an explicit overflow side-list).  All edges are causal
    (past → present) by construction.

    The dense-API surface (``positions`` / ``features`` / ``edges`` /
    ``edge_attributes`` …) reconstructs float64 views lazily, so the
    graph is a drop-in input to :class:`~repro.gnn.EventGNNClassifier`.
    With ``quantization_bits == 0`` the reconstruction is bitwise equal
    to the dense build; otherwise :meth:`conv_rel_pos` additionally
    offers the grid-quantized edge offsets the classifier feeds to its
    convolutions.

    Args:
        x, y: ``(N,)`` pixel coordinates (stored ``uint16``).
        t_off: ``(N,)`` microsecond offsets against ``t_base``
            (stored ``uint32``).
        t_base: int64 timestamp base.
        features: ``(N, F)`` node features — pre-quantized uints when
            ``quantization_bits >= 1``, raw float64 when 0.
        nbr: ``(N, max_degree)`` uint16 neighbour delta table.
        ov_src, ov_dst: int64 overflow edge endpoints.
        time_scale_us: microseconds per temporal unit.
        radius: connection radius (sets the edge-offset grid).
        quantization_bits: feature/offset grid width; 0 disables
            quantization (lossless mode).
    """

    #: Representation tag consumed by the hw cost models.
    representation = "compact"

    def __init__(
        self,
        x: np.ndarray,
        y: np.ndarray,
        t_off: np.ndarray,
        t_base: int,
        features: np.ndarray,
        nbr: np.ndarray,
        ov_src: np.ndarray,
        ov_dst: np.ndarray,
        time_scale_us: float,
        radius: float,
        quantization_bits: int,
    ) -> None:
        if time_scale_us <= 0 or radius <= 0:
            raise ValueError("time_scale_us and radius must be positive")
        if not (quantization_bits == 0 or 2 <= quantization_bits <= 16):
            raise ValueError("quantization_bits must be 0 or in [2, 16]")
        self.x = np.ascontiguousarray(x, dtype=np.uint16)
        self.y = np.ascontiguousarray(y, dtype=np.uint16)
        self.t_off = np.ascontiguousarray(t_off, dtype=np.uint32)
        self.t_base = int(t_base)
        n = self.x.size
        if not (self.y.size == self.t_off.size == n):
            raise ValueError("column lengths must agree")
        self.nbr = np.ascontiguousarray(nbr, dtype=np.uint16)
        if self.nbr.ndim != 2 or self.nbr.shape[0] != n:
            raise ValueError(f"nbr must be (N, max_degree), got {self.nbr.shape}")
        self.ov_src = np.asarray(ov_src, dtype=np.int64)
        self.ov_dst = np.asarray(ov_dst, dtype=np.int64)
        if self.ov_src.size != self.ov_dst.size:
            raise ValueError("overflow columns must agree")
        self.time_scale_us = float(time_scale_us)
        self.radius = float(radius)
        self.quantization_bits = int(quantization_bits)
        features = np.asarray(features)
        if features.ndim != 2 or features.shape[0] != n:
            raise ValueError(f"features must be (N, F), got {features.shape}")
        if self.quantization_bits == 0:
            self._features_raw: np.ndarray | None = np.ascontiguousarray(
                features, dtype=np.float64
            )
            self._features_q: np.ndarray | None = None
        else:
            dtype = np.uint8 if self.quantization_bits <= 8 else np.uint16
            self._features_raw = None
            self._features_q = np.ascontiguousarray(features, dtype=dtype)
        self._positions: np.ndarray | None = None
        self._features: np.ndarray | None = None
        self._edges: np.ndarray | None = None

    # -- construction --------------------------------------------------
    @classmethod
    def from_columns(
        cls,
        x: np.ndarray,
        y: np.ndarray,
        t_us: np.ndarray,
        p: np.ndarray,
        edges: np.ndarray,
        *,
        time_scale_us: float,
        radius: float,
        max_degree: int,
        quantization_bits: int = 8,
        include_position: bool = False,
        resolution=None,
    ) -> "CompactEventGraph":
        """Pack raw event columns and a causal edge list.

        Node features follow :meth:`EventGraph.from_stream <repro.gnn.
        graph.EventGraph.from_stream>`: polarity one-hot, plus
        normalised absolute coordinates when ``include_position``.

        Args:
            x, y: pixel coordinates (must fit ``uint16``).
            t_us: int64 microsecond timestamps; their span must fit
                ``uint32`` (~71 minutes).
            p: +1/-1 polarities.
            edges: ``(E, 2)`` causal (src < dst) pairs, in-degree at
                most ``max_degree``.
            time_scale_us, radius, max_degree, quantization_bits: see
                the class docstring.
            include_position: append ``x/W, y/H`` feature columns.
            resolution: sensor resolution, required with
                ``include_position``.
        """
        if max_degree <= 0:
            raise ValueError("max_degree must be positive")
        x = np.asarray(x)
        y = np.asarray(y)
        t_us = np.asarray(t_us, dtype=np.int64)
        p = np.asarray(p)
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        n = x.size
        if n and (x.min() < 0 or x.max() > 0xFFFF or y.min() < 0 or y.max() > 0xFFFF):
            raise ValueError("coordinates must fit uint16")
        t_base = int(t_us[0]) if n else 0
        span = int(t_us.max()) - t_base if n else 0
        if span < 0 or span >= 1 << 32:
            raise ValueError("timestamp span must be non-negative and fit uint32")
        columns = [
            (p == 1).astype(np.float64),
            (p == -1).astype(np.float64),
        ]
        if include_position:
            if resolution is None:
                raise ValueError("resolution is required with include_position")
            columns.append(x.astype(np.float64) / resolution.width)
            columns.append(y.astype(np.float64) / resolution.height)
        features = np.stack(columns, axis=1) if n else np.zeros((0, len(columns)))
        if quantization_bits:
            features = quantize_unit(features, quantization_bits)
        nbr, ov_src, ov_dst = _pack_neighbours(edges, n, max_degree)
        return cls(
            x,
            y,
            (t_us - t_base).astype(np.uint32),
            t_base,
            features,
            nbr,
            ov_src,
            ov_dst,
            time_scale_us,
            radius,
            quantization_bits,
        )

    # -- dense-API surface ---------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes (events)."""
        return self.x.size

    @property
    def max_degree(self) -> int:
        """The in-degree cap (neighbour slots per node)."""
        return self.nbr.shape[1]

    @property
    def num_edges(self) -> int:
        """Number of directed edges (overflow entries occupy one slot each)."""
        return int(np.count_nonzero(self.nbr))

    @property
    def mean_degree(self) -> float:
        """Mean in-degree (= mean out-degree) of the graph."""
        if self.num_nodes == 0:
            return 0.0
        return self.num_edges / self.num_nodes

    def in_degrees(self) -> np.ndarray:
        """Per-node in-degree, ``(N,)`` — occupied neighbour slots."""
        return np.count_nonzero(self.nbr, axis=1)

    @property
    def positions(self) -> np.ndarray:
        """``(N, 3)`` float64 ``(x, y, t/time_scale)`` — exact.

        Coordinates are integers and the timestamp decomposition is
        lossless, so this reconstruction is bitwise equal to the dense
        build's point cloud.
        """
        if self._positions is None:
            pts = np.empty((self.num_nodes, 3), dtype=np.float64)
            pts[:, 0] = self.x
            pts[:, 1] = self.y
            pts[:, 2] = (
                self.t_base + self.t_off.astype(np.int64)
            ) / self.time_scale_us
            self._positions = pts
        return self._positions

    @property
    def features(self) -> np.ndarray:
        """``(N, F)`` float64 node features (dequantized if stored uint)."""
        if self._features is None:
            if self._features_raw is not None:
                self._features = self._features_raw
            else:
                self._features = dequantize_unit(
                    self._features_q, self.quantization_bits
                )
        return self._features

    @property
    def edges(self) -> np.ndarray:
        """``(E, 2)`` int64 edge list in the canonical (src, dst) order.

        Reconstructed lazily from the delta table + overflow list and
        sorted with the same packing as the dense builders, so consumers
        whose aggregation is edge-order-dependent (scatter sum/mean) see
        the identical ordering.
        """
        if self._edges is None:
            valid = (self.nbr != NBR_EMPTY) & (self.nbr != NBR_OVERFLOW)
            dst, _slot = np.nonzero(valid)
            src = dst - self.nbr[valid].astype(np.int64)
            if self.ov_src.size:
                src = np.concatenate([src, self.ov_src])
                dst = np.concatenate([dst, self.ov_dst])
            self._edges = _canonical(
                np.stack([src, dst.astype(np.int64)], axis=1)
            )
        return self._edges

    def edge_attributes(self) -> np.ndarray:
        """Exact spatiotemporal offsets ``pos[dst] - pos[src]``, ``(E, 3)``."""
        if self.num_edges == 0:
            return np.zeros((0, 3))
        pos = self.positions
        e = self.edges
        return pos[e[:, 1]] - pos[e[:, 0]]

    def quantized_edge_attributes(self) -> tuple[np.ndarray, float]:
        """Edge offsets ``pos[src] - pos[dst]`` on the signed int grid.

        Derived on demand from the integer coordinates — the compact
        format stores no per-edge attribute bytes at all.  Requires
        quantization enabled.

        Returns:
            ``(q, scale)`` per :func:`quantize_offsets`.
        """
        if self.quantization_bits == 0:
            raise ValueError("quantization is disabled for this graph")
        pos = self.positions
        e = self.edges
        rel = pos[e[:, 0]] - pos[e[:, 1]] if e.size else np.zeros((0, 3))
        return quantize_offsets(rel, self.radius, self.quantization_bits)

    def conv_rel_pos(self) -> np.ndarray | None:
        """Quantized ``pos[src] - pos[dst]`` offsets for the conv layers.

        ``None`` when quantization is disabled — the classifier then
        computes exact offsets itself, preserving bit-identity with the
        dense path.
        """
        if self.quantization_bits == 0:
            return None
        q, scale = self.quantized_edge_attributes()
        return q.astype(np.float64) * scale

    def is_causal(self) -> bool:
        """True if every edge points forward (or level) in time."""
        if self.num_edges == 0:
            return True
        e = self.edges
        dt = self.positions[e[:, 1], 2] - self.positions[e[:, 0], 2]
        return bool(np.all(dt >= 0))

    # -- memory accounting ---------------------------------------------
    def nbytes(self) -> int:
        """Resident bytes of the stored representation (SoA columns)."""
        feat = (
            self._features_raw if self._features_raw is not None else self._features_q
        )
        return int(
            self.x.nbytes
            + self.y.nbytes
            + self.t_off.nbytes
            + feat.nbytes
            + self.nbr.nbytes
            + self.ov_src.nbytes
            + self.ov_dst.nbytes
        )

    def to_event_graph(self):
        """Materialise a dense :class:`~repro.gnn.graph.EventGraph`.

        With quantization disabled this is bit-identical to the dense
        build from the same events; otherwise features are the
        dequantized grid values.
        """
        from .graph import EventGraph

        return EventGraph(
            self.positions, self.features, self.edges, self.time_scale_us
        )


class CompactGraphBuilder:
    """Incremental construction of a :class:`CompactEventGraph`.

    Wraps the :class:`~repro.gnn.asynchronous.HashInserter` (per-event
    or batched) so the selected neighbour sets are identical to the
    batch pipeline ``radius_graph_spatial_hash → make_causal →
    limit_in_degree`` — the same tested invariant the async serving
    path builds on.  With ``max_live_nodes`` set, node columns become
    fixed ring buffers over a :class:`~repro.gnn.asynchronous.
    BoundedHashInserter` and :meth:`state_bytes` stays flat — the
    composition with :class:`~repro.gnn.AsyncEventGNN`'s bounded mode.

    Args:
        radius: spatiotemporal connection radius.
        time_scale_us: microseconds per temporal unit.
        max_degree: in-degree cap (neighbour slots per node).
        quantization_bits: 0 (lossless) or 2–16.
        include_position: append normalised-position feature columns.
        resolution: sensor resolution (required with
            ``include_position``).
        window_us: liveness window for *edge candidates* (default
            unbounded, matching the dense batch build).
        max_live_nodes: opt into bounded mode — at most this many live
            nodes, oldest evicted first.  Must be < 65535 so every live
            delta fits ``uint16`` (no overflow list, truly flat state).
    """

    def __init__(
        self,
        *,
        radius: float,
        time_scale_us: float,
        max_degree: int,
        quantization_bits: int = 8,
        include_position: bool = False,
        resolution=None,
        window_us: int | None = None,
        max_live_nodes: int | None = None,
    ) -> None:
        from .asynchronous import BoundedHashInserter, HashInserter

        if max_degree <= 0:
            raise ValueError("max_degree must be positive")
        if not (quantization_bits == 0 or 2 <= quantization_bits <= 16):
            raise ValueError("quantization_bits must be 0 or in [2, 16]")
        if include_position and resolution is None:
            raise ValueError("resolution is required with include_position")
        self.radius = float(radius)
        self.time_scale_us = float(time_scale_us)
        self.max_degree = int(max_degree)
        self.quantization_bits = int(quantization_bits)
        self.include_position = bool(include_position)
        self.resolution = resolution
        self.window_us = (1 << 62) if window_us is None else int(window_us)
        self._bounded = max_live_nodes is not None
        if self._bounded:
            if not 1 <= max_live_nodes < NBR_OVERFLOW:
                raise ValueError("max_live_nodes must be in [1, 65534]")
            self._cap = int(max_live_nodes)
            self._inserter = BoundedHashInserter(
                self.radius,
                time_scale_us=self.time_scale_us,
                window_us=self.window_us,
                max_neighbours=self.max_degree,
                capacity=self._cap,
            )
        else:
            self._cap = 64
            self._inserter = HashInserter(
                self.radius,
                time_scale_us=self.time_scale_us,
                window_us=self.window_us,
                max_neighbours=self.max_degree,
            )
        self._x = np.zeros(self._cap, dtype=np.uint16)
        self._y = np.zeros(self._cap, dtype=np.uint16)
        self._t = np.zeros(self._cap, dtype=np.int64)
        self._p = np.zeros(self._cap, dtype=np.int8)
        self._nbr = np.zeros((self._cap, self.max_degree), dtype=np.uint16)
        self._count = 0
        self._live_start = 0
        self._ov_src: list[int] = []
        self._ov_dst: list[int] = []

    # -- state accounting ----------------------------------------------
    @property
    def num_events(self) -> int:
        """Total events absorbed so far."""
        return self._count

    @property
    def num_live_nodes(self) -> int:
        """Nodes currently in the (bounded) live window."""
        return self._count - self._live_start

    @property
    def live_start(self) -> int:
        """Id of the oldest live node (0 when unbounded)."""
        return self._live_start

    def state_bytes(self) -> int:
        """Bytes of builder state (columns, neighbour table, inserter)."""
        total = (
            self._x.nbytes
            + self._y.nbytes
            + self._t.nbytes
            + self._p.nbytes
            + self._nbr.nbytes
            + 16 * len(self._ov_src)
        )
        if self._bounded:
            total += self._inserter.state_bytes()
        return int(total)

    # -- growth / eviction ---------------------------------------------
    def _reserve(self, extra: int) -> None:
        if self._bounded:
            return
        needed = self._count + extra
        if needed <= self._x.size:
            return
        cap = max(needed, 2 * self._x.size)
        grow = cap - self._x.size
        self._x = np.concatenate([self._x, np.zeros(grow, dtype=np.uint16)])
        self._y = np.concatenate([self._y, np.zeros(grow, dtype=np.uint16)])
        self._t = np.concatenate([self._t, np.zeros(grow, dtype=np.int64)])
        self._p = np.concatenate([self._p, np.zeros(grow, dtype=np.int8)])
        self._nbr = np.concatenate(
            [self._nbr, np.zeros((grow, self.max_degree), dtype=np.uint16)]
        )

    def _row(self, node_id: int) -> int:
        return node_id % self._cap if self._bounded else node_id

    def _evict(self, t_us: int) -> None:
        """Advance the live window before inserting one event (bounded)."""
        cutoff = t_us - self.window_us
        start = self._live_start
        while self._count - start >= self._cap or (
            start < self._count and self._t[start % self._cap] < cutoff
        ):
            start += 1
        if start != self._live_start:
            self._live_start = start
            self._inserter.min_live_id = start

    # -- insertion -----------------------------------------------------
    def _check_coords(self, x, y) -> None:
        if np.any(np.asarray(x) < 0) or np.any(np.asarray(x) > 0xFFFF):
            raise ValueError("x coordinates must fit uint16")
        if np.any(np.asarray(y) < 0) or np.any(np.asarray(y) > 0xFFFF):
            raise ValueError("y coordinates must fit uint16")

    def append(self, x: int, y: int, t_us: int, p: int) -> int:
        """Insert one event; returns its node id."""
        self._check_coords(x, y)
        if self._bounded:
            self._evict(int(t_us))
        else:
            self._reserve(1)
        cursor = self._inserter.edge_cursor()
        new_id = self._inserter.insert(float(x), float(y), int(t_us))
        new_edges = self._inserter.edges_since(cursor)
        row = self._row(new_id)
        self._x[row] = x
        self._y[row] = y
        self._t[row] = t_us
        self._p[row] = p
        self._nbr[row] = NBR_EMPTY
        for slot in range(new_edges.shape[0]):
            delta = new_id - int(new_edges[slot, 0])
            if delta >= NBR_OVERFLOW:
                self._nbr[row, slot] = NBR_OVERFLOW
                self._ov_src.append(int(new_edges[slot, 0]))
                self._ov_dst.append(new_id)
            else:
                self._nbr[row, slot] = delta
        self._count = new_id + 1
        return new_id

    def extend(self, xs, ys, ts, ps) -> np.ndarray:
        """Insert a time-ordered batch; returns the node ids.

        Unbounded builders take the vectorised
        :meth:`~repro.gnn.asynchronous.HashInserter.insert_many` fast
        path; bounded builders insert per event (the bounded inserter
        serves only the per-event path).
        """
        xs = np.asarray(xs)
        ys = np.asarray(ys)
        ts = np.asarray(ts, dtype=np.int64)
        ps = np.asarray(ps)
        if self._bounded:
            out = np.empty(xs.size, dtype=np.int64)
            for i in range(xs.size):
                out[i] = self.append(
                    int(xs[i]), int(ys[i]), int(ts[i]), int(ps[i])
                )
            return out
        self._check_coords(xs, ys)
        n = xs.size
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        self._reserve(n)
        cursor = self._inserter.edge_cursor()
        ids = self._inserter.insert_many(xs, ys, ts)
        new_edges = self._inserter.edges_since(cursor)
        lo = self._count
        self._x[lo : lo + n] = xs
        self._y[lo : lo + n] = ys
        self._t[lo : lo + n] = ts
        self._p[lo : lo + n] = ps
        self._count = lo + n
        if new_edges.size:
            src = new_edges[:, 0].astype(np.int64)
            dst = new_edges[:, 1].astype(np.int64)
            # insert_many appends grouped by ascending destination, so
            # per-destination slot ranks fall out of run boundaries.
            head = np.empty(dst.size, dtype=bool)
            head[0] = True
            head[1:] = dst[1:] != dst[:-1]
            starts = np.flatnonzero(head)
            counts = np.diff(np.append(starts, dst.size))
            rank = np.arange(dst.size) - np.repeat(starts, counts)
            delta = dst - src
            over = delta >= NBR_OVERFLOW
            self._nbr[dst, rank] = np.where(
                over, NBR_OVERFLOW, delta
            ).astype(np.uint16)
            if over.any():
                self._ov_src.extend(src[over].tolist())
                self._ov_dst.extend(dst[over].tolist())
        return ids

    # -- export --------------------------------------------------------
    def graph(self) -> CompactEventGraph:
        """The compact graph over the current live window.

        Bounded builders rebase the live ids to ``0..L-1`` and drop
        neighbour slots whose source has been evicted (the bounded-mode
        completeness trade-off); unbounded builders export everything.
        """
        lo, hi = self._live_start, self._count
        length = hi - lo
        if self._bounded:
            rows = (np.arange(lo, hi) % self._cap) if length else np.zeros(0, np.int64)
            x = self._x[rows]
            y = self._y[rows]
            t = self._t[rows]
            p = self._p[rows]
            nbr = self._nbr[rows].copy()
            if length:
                # A delta reaching past the window start points at an
                # evicted node: clear the slot.
                local = np.arange(length, dtype=np.int64)[:, None]
                nbr[nbr.astype(np.int64) > local] = NBR_EMPTY
            ov_src = np.zeros(0, dtype=np.int64)
            ov_dst = np.zeros(0, dtype=np.int64)
        else:
            x = self._x[:hi]
            y = self._y[:hi]
            t = self._t[:hi]
            p = self._p[:hi]
            nbr = self._nbr[:hi]
            ov_src = np.asarray(self._ov_src, dtype=np.int64)
            ov_dst = np.asarray(self._ov_dst, dtype=np.int64)
        t_base = int(t[0]) if length else 0
        span = int(t.max()) - t_base if length else 0
        if span < 0 or span >= 1 << 32:
            raise ValueError("timestamp span must be non-negative and fit uint32")
        columns = [
            (p == 1).astype(np.float64),
            (p == -1).astype(np.float64),
        ]
        if self.include_position:
            columns.append(x.astype(np.float64) / self.resolution.width)
            columns.append(y.astype(np.float64) / self.resolution.height)
        features = (
            np.stack(columns, axis=1) if length else np.zeros((0, len(columns)))
        )
        if self.quantization_bits:
            features = quantize_unit(features, self.quantization_bits)
        return CompactEventGraph(
            x,
            y,
            (t - t_base).astype(np.uint32),
            t_base,
            features,
            nbr,
            ov_src,
            ov_dst,
            self.time_scale_us,
            self.radius,
            self.quantization_bits,
        )
