"""Event-graph object localisation (the detection task of ref [70]).

AEGNN's headline results are object-detection results; this module
provides the graph-native counterpart of the CNN localiser: graph
convolutions produce per-node features, and the object centre is read
out as an attention-weighted average of node *positions* — each node
learns how strongly it belongs to the object, and the soft-argmax over
positions turns that into coordinates.  Because the readout is built
from node positions, the prediction degrades gracefully with noise
events (they learn near-zero attention).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets.detection import DetectionSample
from ..nn import functional as F
from ..nn.layers import Linear, Module
from ..nn.optim import Adam
from ..nn.tensor import Tensor, no_grad
from .graph import EventGraph
from .layers import EdgeConv
from .models import GraphBuildConfig, build_event_graph

__all__ = ["EventGNNLocalizer", "fit_localizer", "localisation_error"]


class EventGNNLocalizer(Module):
    """Attention-pooled event-graph coordinate regressor.

    Args:
        hidden: graph-conv feature width.
        in_features: node input feature width.
        rng: initialisation generator.
    """

    def __init__(
        self,
        hidden: int = 12,
        in_features: int = 2,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.conv1 = EdgeConv(in_features, hidden, hidden=hidden, rng=rng)
        self.conv2 = EdgeConv(hidden, hidden, hidden=hidden, rng=rng)
        self.attention = Linear(hidden, 1, rng=rng)

    def forward(self, graph: EventGraph) -> Tensor:
        """Predicted object centre ``(1, 2)`` in pixel coordinates."""
        x = Tensor(graph.features)
        x = self.conv1(x, graph.edges, graph.positions).relu()
        x = self.conv2(x, graph.edges, graph.positions).relu()
        logits = self.attention(x)  # (N, 1)
        weights = F.softmax(logits.reshape(1, -1), axis=1)  # (1, N)
        xy = Tensor(graph.positions[:, :2])  # (N, 2)
        return weights @ xy

    def attention_weights(self, graph: EventGraph) -> np.ndarray:
        """Per-node attention (sums to 1) — which events the model trusts."""
        with no_grad():
            x = Tensor(graph.features)
            x = self.conv1(x, graph.edges, graph.positions).relu()
            x = self.conv2(x, graph.edges, graph.positions).relu()
            logits = self.attention(x)
            return F.softmax(logits.reshape(1, -1), axis=1).data[0]


@dataclass
class LocalizerTrainResult:
    """Training summary.

    Attributes:
        losses: mean squared pixel error per epoch.
    """

    losses: list[float]


def fit_localizer(
    model: EventGNNLocalizer,
    samples: list[DetectionSample],
    config: GraphBuildConfig,
    epochs: int = 15,
    lr: float = 5e-3,
    rng: np.random.Generator | None = None,
) -> LocalizerTrainResult:
    """Train the localiser with squared pixel-coordinate error.

    Args:
        model: the regressor.
        samples: labelled recordings.
        config: graph-construction configuration.
        epochs, lr: optimisation hyper-parameters.
        rng: shuffling generator.
    """
    if epochs <= 0:
        raise ValueError("epochs must be positive")
    if not samples:
        raise ValueError("need at least one sample")
    rng = rng or np.random.default_rng(0)
    graphs = [build_event_graph(s.stream, config) for s in samples]
    targets = [np.array([[s.cx, s.cy]]) for s in samples]
    opt = Adam(model.parameters(), lr=lr)
    losses: list[float] = []
    for _ in range(epochs):
        order = rng.permutation(len(graphs))
        epoch_loss = 0.0
        for i in order:
            opt.zero_grad()
            pred = model(graphs[i])
            diff = pred - Tensor(targets[i])
            loss = (diff * diff).mean()
            loss.backward()
            opt.step()
            epoch_loss += loss.item()
        losses.append(epoch_loss / len(graphs))
    return LocalizerTrainResult(losses)


def localisation_error(
    model: EventGNNLocalizer,
    samples: list[DetectionSample],
    config: GraphBuildConfig,
) -> float:
    """Mean Euclidean pixel error over a sample list."""
    if not samples:
        raise ValueError("need at least one sample")
    errors = []
    with no_grad():
        for s in samples:
            pred = model(build_event_graph(s.stream, config)).data[0]
            errors.append(float(np.hypot(pred[0] - s.cx, pred[1] - s.cy)))
    return float(np.mean(errors))
