"""Graph convolution layers on the autograd engine.

Three layer families from the event-GNN literature cited in Section IV:

* :class:`GCNConv` — the spectral-motivated convolution of Kipf &
  Welling (ref [67]): symmetric-normalised neighbourhood averaging
  followed by a linear transform;
* :class:`EdgeConv` — a PointNet-style edge convolution: an MLP applied
  to ``(x_dst, x_src - x_dst, relative position)`` per edge, aggregated
  by max or mean (the workhorse of AEGNN-style classifiers, ref [70]);
* :class:`SplineConvLite` — a continuous-kernel convolution in the
  spirit of SplineCNN (ref [68]): the weight applied to each message is
  a learned function of the spatiotemporal edge offset, expressed in a
  fixed Gaussian radial basis.  This is the mechanism that injects
  *precise event timing* into the features.

Aggregation uses differentiable scatter operations defined here.
"""

from __future__ import annotations

import numpy as np

from ..nn.layers import Linear, Module, Sequential, ReLU
from ..nn.tensor import Tensor, custom_gradient

__all__ = [
    "scatter_sum",
    "scatter_mean",
    "scatter_max",
    "GCNConv",
    "EdgeConv",
    "SplineConvLite",
]


def scatter_sum(values: Tensor, index: np.ndarray, num_targets: int) -> Tensor:
    """Sum rows of ``values`` into ``num_targets`` bins given by ``index``."""
    index = np.asarray(index, dtype=np.int64)
    if values.shape[0] != index.shape[0]:
        raise ValueError("one index per value row required")
    out = np.zeros((num_targets,) + values.shape[1:])
    np.add.at(out, index, values.data)

    def backward(g: np.ndarray):
        return [g[index]]

    return custom_gradient(out, [values], backward)


def scatter_mean(values: Tensor, index: np.ndarray, num_targets: int) -> Tensor:
    """Mean-aggregate rows into bins (empty bins stay zero)."""
    index = np.asarray(index, dtype=np.int64)
    counts = np.bincount(index, minlength=num_targets).astype(np.float64)
    counts = np.maximum(counts, 1.0)
    summed = scatter_sum(values, index, num_targets)
    return summed * Tensor(1.0 / counts).reshape(num_targets, *([1] * (values.ndim - 1)))


def scatter_max(values: Tensor, index: np.ndarray, num_targets: int) -> Tensor:
    """Max-aggregate rows into bins (empty bins are zero)."""
    index = np.asarray(index, dtype=np.int64)
    if values.shape[0] != index.shape[0]:
        raise ValueError("one index per value row required")
    out = np.full((num_targets,) + values.shape[1:], -np.inf)
    np.maximum.at(out, index, values.data)
    empty = ~np.isfinite(out)
    out[empty] = 0.0
    # Identify, per output cell, the (first) argmax row feeding it.
    winner = np.zeros_like(values.data, dtype=bool)
    taken = np.zeros_like(out, dtype=bool)
    for row in range(values.data.shape[0]):
        tgt = index[row]
        sel = (values.data[row] == out[tgt]) & ~taken[tgt]
        winner[row] = sel
        taken[tgt] |= sel

    def backward(g: np.ndarray):
        return [g[index] * winner]

    return custom_gradient(out, [values], backward)


class GCNConv(Module):
    """Graph convolution with symmetric degree normalisation (ref [67]).

    ``h_i = W * sum_j (A_ij / sqrt(d_i d_j)) x_j`` over the graph with
    self-loops added.

    Args:
        in_features, out_features: feature widths.
        rng: initialisation generator.
    """

    def __init__(
        self, in_features: int, out_features: int, rng: np.random.Generator | None = None
    ) -> None:
        super().__init__()
        self.linear = Linear(in_features, out_features, rng=rng)

    def forward(self, x: Tensor, edges: np.ndarray) -> Tensor:
        """Apply the layer.

        Args:
            x: ``(N, F)`` node features.
            edges: ``(E, 2)`` directed (src, dst) pairs.
        """
        n = x.shape[0]
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        loops = np.stack([np.arange(n)] * 2, axis=1)
        e = np.concatenate([edges, loops]) if edges.size else loops
        src, dst = e[:, 0], e[:, 1]
        deg = np.bincount(dst, minlength=n).astype(np.float64)
        norm = 1.0 / np.sqrt(np.maximum(deg[src] * deg[dst], 1e-12))
        messages = x[src] * Tensor(norm[:, None])
        agg = scatter_sum(messages, dst, n)
        return self.linear(agg)


class EdgeConv(Module):
    """PointNet-style edge convolution with geometric edge attributes.

    Per edge, an MLP consumes ``[x_dst, x_src - x_dst, pos_src - pos_dst]``
    and the results are aggregated at the destination.

    Args:
        in_features: node feature width.
        out_features: output width.
        hidden: MLP hidden width.
        aggregation: "max" or "mean".
        rng: initialisation generator.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        hidden: int = 32,
        aggregation: str = "max",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if aggregation not in ("max", "mean"):
            raise ValueError("aggregation must be 'max' or 'mean'")
        rng = rng or np.random.default_rng(0)
        self.aggregation = aggregation
        self.mlp = Sequential(
            Linear(2 * in_features + 3, hidden, rng=rng),
            ReLU(),
            Linear(hidden, out_features, rng=rng),
        )
        self.self_mlp = Linear(in_features, out_features, rng=rng)

    def forward(
        self,
        x: Tensor,
        edges: np.ndarray,
        positions: np.ndarray,
        rel_pos: np.ndarray | None = None,
    ) -> Tensor:
        """Apply the layer.

        Args:
            x: ``(N, F)`` node features.
            edges: ``(E, 2)`` directed (src, dst) pairs.
            positions: ``(N, 3)`` node coordinates.
            rel_pos: optional precomputed ``(E, 3)`` edge offsets
                ``pos[src] - pos[dst]`` — how a quantized compact graph
                injects its grid-valued attributes; defaults to the
                exact offsets from ``positions``.
        """
        n = x.shape[0]
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        out = self.self_mlp(x)
        if edges.size == 0:
            return out
        src, dst = edges[:, 0], edges[:, 1]
        if rel_pos is None:
            rel_pos = positions[src] - positions[dst]
        else:
            rel_pos = np.asarray(rel_pos, dtype=np.float64).reshape(-1, 3)
            if rel_pos.shape[0] != edges.shape[0]:
                raise ValueError("rel_pos must provide one offset per edge")
        from ..nn import functional as F

        edge_in = F.concatenate(
            [x[dst], x[src] - x[dst], Tensor(rel_pos)], axis=1
        )
        messages = self.mlp(edge_in)
        if self.aggregation == "max":
            agg = scatter_max(messages, dst, n)
        else:
            agg = scatter_mean(messages, dst, n)
        return out + agg


class SplineConvLite(Module):
    """Continuous-kernel graph convolution over spatiotemporal offsets.

    The kernel weight for an edge with offset ``u`` is
    ``sum_b basis_b(u) * W_b`` where the basis is a fixed grid of
    Gaussian bumps over the offset space and the ``W_b`` are learned —
    a dense-evaluation approximation of SplineCNN's B-spline kernels
    (ref [68]).

    Args:
        in_features, out_features: feature widths.
        num_basis: Gaussian bumps per offset dimension axis (total
            ``num_basis`` bumps placed on a diagonal grid).
        offset_scale: characteristic offset magnitude for basis placement.
        rng: initialisation generator.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        num_basis: int = 8,
        offset_scale: float = 3.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if num_basis <= 0:
            raise ValueError("num_basis must be positive")
        if offset_scale <= 0:
            raise ValueError("offset_scale must be positive")
        rng = rng or np.random.default_rng(0)
        self.num_basis = num_basis
        # Basis centres scattered over the offset ball (fixed, not learned).
        self._centres = rng.uniform(-offset_scale, offset_scale, (num_basis, 3))
        self._width = offset_scale
        scale = 1.0 / np.sqrt(in_features * num_basis)
        self.weights = Tensor(
            rng.normal(0.0, scale, (num_basis, out_features, in_features)),
            requires_grad=True,
        )
        self.root = Linear(in_features, out_features, rng=rng)

    def basis(self, offsets: np.ndarray) -> np.ndarray:
        """Evaluate the Gaussian basis at edge offsets, ``(E, num_basis)``."""
        offsets = np.asarray(offsets, dtype=np.float64).reshape(-1, 3)
        d2 = ((offsets[:, None, :] - self._centres[None, :, :]) ** 2).sum(axis=2)
        return np.exp(-d2 / (2.0 * self._width**2))

    def forward(
        self,
        x: Tensor,
        edges: np.ndarray,
        positions: np.ndarray,
        rel_pos: np.ndarray | None = None,
    ) -> Tensor:
        """Apply the layer (arguments as :meth:`EdgeConv.forward`).

        ``rel_pos`` follows the EdgeConv convention ``pos[src] -
        pos[dst]``; this layer's kernel consumes the opposite sign, and
        negating a symmetric-grid quantized offset is exact.
        """
        n = x.shape[0]
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        out = self.root(x)
        if edges.size == 0:
            return out
        src, dst = edges[:, 0], edges[:, 1]
        if rel_pos is None:
            offsets = positions[dst] - positions[src]
        else:
            rel_pos = np.asarray(rel_pos, dtype=np.float64).reshape(-1, 3)
            if rel_pos.shape[0] != edges.shape[0]:
                raise ValueError("rel_pos must provide one offset per edge")
            offsets = -rel_pos
        b = self.basis(offsets)  # (E, B), constants w.r.t. autograd
        x_src = x[src]  # (E, F_in)
        # message_e = sum_b b_eb * (W_b @ x_src_e)
        # Compute per-basis transforms then mix: (E, B, F_out).
        per_basis = []
        from ..nn import functional as F

        for bi in range(self.num_basis):
            w_b = self.weights[bi]  # (F_out, F_in)
            per_basis.append((x_src @ w_b.T) * Tensor(b[:, bi : bi + 1]))
        messages = per_basis[0]
        for m in per_basis[1:]:
            messages = messages + m
        agg = scatter_mean(messages, dst, n)
        return out + agg
