"""Event-graph classifiers and their training loop.

The end-to-end GNN pipeline of Section IV: stream → point cloud →
radius graph (optionally causal) → graph convolutions → global pooling →
linear head.  The model also reports the operation counts that back the
paper's claim of "orders of magnitude fewer neural network calculations
and parameters" relative to dense-frame CNNs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets.base import EventDataset
from ..events.stream import EventStream
from ..nn import Adam, Tensor, cross_entropy, no_grad, stable_matmul
from ..nn.layers import Linear, Module
from .graph import EventGraph
from .layers import EdgeConv, SplineConvLite
from .pooling import global_max_pool
from .representation import get_representation

__all__ = ["GraphBuildConfig", "build_event_graph", "EventGNNClassifier", "fit_gnn", "evaluate_gnn"]


@dataclass(frozen=True)
class GraphBuildConfig:
    """Graph-construction hyper-parameters.

    Attributes:
        radius: connection radius in scaled spatiotemporal units.
        time_scale_us: microseconds per temporal unit.
        max_events: subsample the stream to at most this many events
            (uniform stride) to bound graph size.
        max_degree: in-degree cap.
        causal: keep only past → future edges (required for asynchronous
            operation).
        include_position: append normalised absolute coordinates to the
            node features (see :meth:`EventGraph.from_stream`).
        representation: graph storage layout — "dense" (the historical
            :class:`EventGraph`) or "compact" (the memory-bounded
            :class:`~repro.gnn.compact.CompactEventGraph`); see
            :mod:`repro.gnn.representation`.
        quantization_bits: feature/edge-offset grid width of the
            compact representation (0 disables quantization, making
            compact bitwise-equivalent to dense; ignored by dense).
    """

    radius: float = 4.0
    time_scale_us: float = 5000.0
    max_events: int = 512
    max_degree: int = 12
    causal: bool = True
    include_position: bool = False
    representation: str = "dense"
    quantization_bits: int = 8

    @property
    def num_node_features(self) -> int:
        """Node feature width produced under this configuration."""
        return 4 if self.include_position else 2

    def __post_init__(self) -> None:
        if self.radius <= 0 or self.time_scale_us <= 0:
            raise ValueError("radius and time_scale_us must be positive")
        if self.max_events <= 0 or self.max_degree <= 0:
            raise ValueError("max_events and max_degree must be positive")
        if self.representation not in ("dense", "compact"):
            raise ValueError(
                f"representation must be 'dense' or 'compact', "
                f"got {self.representation!r}"
            )
        if not (self.quantization_bits == 0 or 2 <= self.quantization_bits <= 16):
            raise ValueError("quantization_bits must be 0 or in [2, 16]")
        if self.representation == "compact" and not self.causal:
            raise ValueError("the compact representation requires causal=True")


def build_event_graph(stream: EventStream, config: GraphBuildConfig):
    """Construct the classification graph for one recording.

    Routes through the representation registry
    (:mod:`repro.gnn.representation`): ``config.representation``
    selects dense or compact storage declaratively; both produce the
    same capped causal edge set.
    """
    return get_representation(config.representation).build(stream, config)


class EventGNNClassifier(Module):
    """Two graph-conv layers + global max pooling + linear head.

    Args:
        num_classes: output classes.
        hidden: feature width of the conv layers.
        conv: "edge" for :class:`EdgeConv`, "spline" for
            :class:`SplineConvLite`.
        in_features: node feature width (2, or 4 with positions).
        rng: initialisation generator.
    """

    def __init__(
        self,
        num_classes: int,
        hidden: int = 16,
        conv: str = "edge",
        in_features: int = 2,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if conv not in ("edge", "spline"):
            raise ValueError("conv must be 'edge' or 'spline'")
        if in_features <= 0:
            raise ValueError("in_features must be positive")
        rng = rng or np.random.default_rng(0)
        if conv == "edge":
            self.conv1: Module = EdgeConv(in_features, hidden, hidden=hidden, rng=rng)
            self.conv2: Module = EdgeConv(hidden, hidden, hidden=hidden, rng=rng)
        else:
            self.conv1 = SplineConvLite(in_features, hidden, rng=rng)
            self.conv2 = SplineConvLite(hidden, hidden, rng=rng)
        self.head = Linear(hidden, num_classes, rng=rng)

    def forward(self, graph) -> Tensor:
        """Logits ``(1, num_classes)`` for one event graph.

        Accepts a dense :class:`EventGraph` or a
        :class:`~repro.gnn.compact.CompactEventGraph`.  A compact graph
        with quantization enabled supplies its grid-quantized edge
        offsets (``conv_rel_pos``) to the convolutions; otherwise exact
        offsets are computed from the positions, and the two paths are
        bit-identical.

        Runs under :class:`~repro.nn.stable_matmul` so that every node's
        features come out bit-identical whether the graph is evaluated
        whole (this method) or one event at a time
        (:class:`~repro.gnn.AsyncEventGNN`) — the exact-equivalence
        invariant the incremental serving path is tested against.
        """
        conv_rel = getattr(graph, "conv_rel_pos", None)
        rel_pos = conv_rel() if conv_rel is not None else None
        with stable_matmul():
            x = Tensor(graph.features)
            x = self.conv1(
                x, graph.edges, graph.positions, rel_pos=rel_pos
            ).relu()
            x = self.conv2(
                x, graph.edges, graph.positions, rel_pos=rel_pos
            ).relu()
            return self.head(global_max_pool(x))

    def operation_count(self, graph: EventGraph) -> int:
        """Approximate multiply-accumulate count of one forward pass.

        Message MLP / kernel work scales with edges; node transforms
        scale with nodes.  This is the number compared against the dense
        CNN's MAC count in the Table I "# operations" row.
        """
        n, e = graph.num_nodes, max(graph.num_edges, 1)
        total = 0
        for conv in (self.conv1, self.conv2):
            if isinstance(conv, EdgeConv):
                per_edge = sum(
                    layer.in_features * layer.out_features
                    for layer in conv.mlp.layers
                    if isinstance(layer, Linear)
                )
                total += e * per_edge
                total += n * conv.self_mlp.in_features * conv.self_mlp.out_features
            else:  # SplineConvLite
                b, f_out, f_in = conv.weights.shape
                total += e * b * f_out * f_in
                total += n * conv.root.in_features * conv.root.out_features
        total += self.head.in_features * self.head.out_features
        return total


@dataclass
class GNNTrainResult:
    """Training summary.

    Attributes:
        losses: mean loss per epoch.
        train_accuracy: final accuracy on the training set.
    """

    losses: list[float]
    train_accuracy: float


def fit_gnn(
    model: EventGNNClassifier,
    dataset: EventDataset,
    config: GraphBuildConfig,
    epochs: int = 10,
    lr: float = 5e-3,
    rng: np.random.Generator | None = None,
    graphs: list[EventGraph] | None = None,
) -> GNNTrainResult:
    """Train a graph classifier, one graph per step.

    Graphs are pre-built once (construction is deterministic) and
    shuffled between epochs; callers holding already-built (e.g.
    cached) graphs pass them via ``graphs``, aligned with ``dataset``
    order.  ``epochs=0`` performs no optimisation and just evaluates
    the (freshly initialised or externally restored) model —
    checkpoint resume relies on this to rebuild the architecture
    without retraining.
    """
    if epochs < 0:
        raise ValueError("epochs must be non-negative")
    rng = rng or np.random.default_rng(0)
    if graphs is None:
        graphs = [build_event_graph(s.stream, config) for s in dataset]
    elif len(graphs) != len(dataset):
        raise ValueError("graphs must align one-to-one with dataset")
    labels = dataset.labels()
    opt = Adam(model.parameters(), lr=lr)
    losses: list[float] = []
    for _ in range(epochs):
        order = rng.permutation(len(graphs))
        epoch_loss = 0.0
        for i in order:
            opt.zero_grad()
            loss = cross_entropy(model(graphs[i]), labels[i : i + 1])
            loss.backward()
            opt.step()
            epoch_loss += loss.item()
        losses.append(epoch_loss / len(graphs))
    return GNNTrainResult(losses, evaluate_gnn(model, dataset, config, graphs=graphs))


def evaluate_gnn(
    model: EventGNNClassifier,
    dataset: EventDataset,
    config: GraphBuildConfig,
    graphs: list[EventGraph] | None = None,
) -> float:
    """Accuracy of the classifier on a dataset."""
    if graphs is None:
        graphs = [build_event_graph(s.stream, config) for s in dataset]
    labels = dataset.labels()
    correct = 0
    with no_grad():
        for g, y in zip(graphs, labels):
            pred = int(model(g).data.argmax())
            correct += pred == y
    return correct / len(graphs)
