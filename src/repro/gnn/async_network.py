"""Fully asynchronous event-graph inference.

Section IV: "Event-graphs are also inherently sparse and amenable to
event-driven operation because graph convolutions could be triggered
upon the generation of each event."

This module realises that mode of operation.  The key structural fact —
the HUGNet insight — is that with *causal* (past → new) edges an
arriving event only ever gains incoming edges: the features of every
existing node are already final.  Incorporating one event therefore
costs

1. one spatiotemporal-hash insertion (find the causal neighbourhood),
2. one pass of the new node's features through the network's layers,
   gathering each layer's *stored* neighbour features,
3. one update of the running global-max readout,

with nothing recomputed.  :class:`AsyncEventGNN` maintains the per-layer
feature memory (structure-of-arrays, one row per node) and the running
readout, counts the work per event, and is *exactly equivalent* to a
batch forward pass of the same
:class:`~repro.gnn.models.EventGNNClassifier` over the final graph — a
tested invariant.

Two storage regimes share the same code path:

* **unbounded** (default, ``max_live_nodes=None``): capacity-doubled
  arrays retain every node, preserving the bit-equality guarantee;
* **bounded** (``max_live_nodes`` set): ring buffers of exactly
  ``max_live_nodes`` rows, with nodes *evicted* oldest-first once they
  fall out of ``window_us`` or the ring is full (EvGNN-style bounded
  graph memory, arXiv 2404.19489).  Because events arrive time-ordered,
  the live set is always the contiguous id range
  ``[live_start, num_events)``, which is what makes ring rows
  (``id % capacity``) unambiguous.  The global-max readout is
  recomputed from the surviving rows whenever an evicted node may have
  attained the current maximum, so scores stay correct under eviction.

The engine also supports :meth:`snapshot` / :meth:`restore` — a
self-describing checkpoint of the whole session state — so serving
layers can roll a faulted stream back to its last good state.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from ..nn.layers import Linear
from ..nn.tensor import Tensor, no_grad, stable_matmul
from .asynchronous import BoundedHashInserter, HashInserter
from .layers import EdgeConv
from .models import EventGNNClassifier

__all__ = ["AsyncEventGNN", "AsyncStepReport", "SNAPSHOT_FORMAT"]

#: Version tag of the :meth:`AsyncEventGNN.snapshot` checkpoint schema.
SNAPSHOT_FORMAT = "async-gnn/v1"


@dataclass(frozen=True)
class AsyncStepReport:
    """Work done to incorporate one event.

    Attributes:
        node_index: index assigned to the event's node.
        num_neighbours: causal in-edges created.
        insertion_candidates: hash candidates examined for the insertion.
        macs: multiply-accumulates of the local feature computation,
            including exactly the one head evaluation that produced
            ``scores``.
        scores: running class scores after this event (read-only view).
        expired_nodes: nodes evicted by this event (bounded mode only).
        live_nodes: live-set size after this event.
    """

    node_index: int
    num_neighbours: int
    insertion_candidates: int
    macs: int
    scores: np.ndarray
    expired_nodes: int = 0
    live_nodes: int = 0


def _edgeconv_single(
    conv: EdgeConv,
    x_self: np.ndarray,
    x_neigh: np.ndarray,
    rel_pos: np.ndarray,
) -> tuple[np.ndarray, int]:
    """Evaluate one EdgeConv output for a single destination node.

    Args:
        conv: the layer (max aggregation assumed, as the classifier uses).
        x_self: ``(F,)`` features of the new node.
        x_neigh: ``(k, F)`` features of its causal neighbours.
        rel_pos: ``(k, 3)`` position offsets ``pos_src - pos_dst``.

    Returns:
        ``(feature_vector, macs)``.
    """
    macs = 0
    # stable_matmul makes the single-row products bit-identical to the
    # corresponding rows of the batch forward pass (which runs under the
    # same context) — see EventGNNClassifier.forward.
    with no_grad(), stable_matmul():
        out = conv.self_mlp(Tensor(x_self[None, :])).data[0]
    macs += conv.self_mlp.in_features * conv.self_mlp.out_features
    k = x_neigh.shape[0]
    if k:
        edge_in = np.concatenate(
            [np.repeat(x_self[None, :], k, axis=0), x_neigh - x_self[None, :], rel_pos],
            axis=1,
        )
        with no_grad(), stable_matmul():
            messages = conv.mlp(Tensor(edge_in)).data
        per_edge = sum(
            layer.in_features * layer.out_features
            for layer in conv.mlp.layers
            if isinstance(layer, Linear)
        )
        macs += k * per_edge
        if conv.aggregation == "max":
            agg = messages.max(axis=0)
        else:
            agg = messages.mean(axis=0)
        out = out + agg
    return out, macs


class AsyncEventGNN:
    """Streaming, per-event execution of an EdgeConv event-graph classifier.

    Args:
        model: a trained :class:`EventGNNClassifier` built with EdgeConv
            layers (the default ``conv='edge'``).
        radius: causal connection radius (scaled units).
        time_scale_us: microseconds per temporal unit.
        window_us: liveness window for the graph.  In bounded mode it
            also expires node *features*: nodes older than
            ``window_us`` are evicted and leave the readout.
        max_degree: in-edge cap per event.
        resolution: sensor resolution (needed when the model was trained
            with position features).
        include_position: append normalised position to node features
            (must match the model's training configuration).
        max_live_nodes: opt into bounded-state mode — a hard budget on
            live nodes.  Storage becomes fixed-size rings; the oldest
            nodes are evicted when the budget or ``window_us`` says so.
            ``None`` (default) keeps the exact unbounded behaviour.
    """

    def __init__(
        self,
        model: EventGNNClassifier,
        radius: float = 4.0,
        time_scale_us: float = 3000.0,
        window_us: int = 100_000,
        max_degree: int = 10,
        resolution=None,
        include_position: bool = False,
        max_live_nodes: int | None = None,
    ) -> None:
        if not isinstance(model.conv1, EdgeConv):
            raise TypeError("AsyncEventGNN requires EdgeConv layers (conv='edge')")
        if include_position and resolution is None:
            raise ValueError("resolution is required when include_position is set")
        if max_live_nodes is not None and max_live_nodes < 1:
            raise ValueError("max_live_nodes must be >= 1")
        self.model = model
        self.radius = radius
        self.time_scale_us = time_scale_us
        self.window_us = window_us
        self.max_degree = max_degree
        self.include_position = include_position
        self.resolution = resolution
        self.max_live_nodes = max_live_nodes
        self._bounded = max_live_nodes is not None
        self._feature_width = 4 if include_position else 2
        self._hidden = model.head.in_features
        if self._bounded:
            self._make_inserter = lambda: BoundedHashInserter(
                radius=radius,
                time_scale_us=time_scale_us,
                window_us=window_us,
                max_neighbours=max_degree,
                capacity=max_live_nodes,
            )
        else:
            self._make_inserter = lambda: HashInserter(
                radius=radius,
                time_scale_us=time_scale_us,
                window_us=window_us,
                max_neighbours=max_degree,
            )
        self._inserter = self._make_inserter()
        self._alloc(max_live_nodes if self._bounded else 64)
        self._running_max = np.full(self._hidden, -np.inf)
        self._count = 0  # events incorporated (== next node id)
        self._live_start = 0  # smallest live node id
        self._expired_total = 0
        self._last_t_us: int | None = None
        self._scores: np.ndarray | None = None  # cached current-state scores

    # -- structure-of-arrays node storage -----------------------------
    def _alloc(self, cap: int) -> None:
        self._cap = cap
        self._x0a = np.empty((cap, self._feature_width))  # input features
        self._x1a = np.empty((cap, self._hidden))  # conv1 outputs (post-ReLU)
        self._x2a = np.empty((cap, self._hidden))  # conv2 outputs (post-ReLU)
        self._posa = np.empty((cap, 3))  # scaled positions
        self._ta = np.empty(cap, dtype=np.int64)  # raw timestamps

    def _grow(self) -> None:
        """Double the array capacity (unbounded mode only)."""
        old = self._cap
        self._cap = 2 * old
        for name in ("_x0a", "_x1a", "_x2a", "_posa", "_ta"):
            arr = getattr(self, name)
            shape = (self._cap,) + arr.shape[1:]
            grown = np.empty(shape, dtype=arr.dtype)
            grown[:old] = arr
            setattr(self, name, grown)

    def _rows(self, ids: np.ndarray) -> np.ndarray:
        """Storage rows of the given node ids."""
        return ids % self._cap if self._bounded else ids

    def _row(self, i: int) -> int:
        return i % self._cap if self._bounded else i

    # -- bookkeeping ---------------------------------------------------
    @property
    def num_events(self) -> int:
        """Events incorporated so far."""
        return self._count

    @property
    def num_live_nodes(self) -> int:
        """Nodes currently live (== ``num_events`` when unbounded)."""
        return self._count - self._live_start

    @property
    def live_start(self) -> int:
        """Smallest live node id (0 when unbounded)."""
        return self._live_start

    @property
    def expired_nodes_total(self) -> int:
        """Nodes evicted over the engine's lifetime (survives reset)."""
        return self._expired_total

    def state_bytes(self) -> int:
        """Bytes held in per-node storage (feature/position/time arrays
        plus the inserter's node rings and edge log).

        In bounded mode every term is fixed at construction, so this
        gauge is flat regardless of how many events the session has
        absorbed.  Hash-bucket dict overhead is excluded; it is bounded
        by the same live-set invariant.
        """
        total = (
            self._x0a.nbytes
            + self._x1a.nbytes
            + self._x2a.nbytes
            + self._posa.nbytes
            + self._ta.nbytes
            + self._running_max.nbytes
        )
        ins = self._inserter
        total += ins._pos.nbytes + ins._t_us.nbytes + ins._edge_arr.nbytes
        return int(total)

    def reset(self) -> None:
        """Forget every event; the model weights are untouched.

        After a reset the engine behaves exactly like a freshly
        constructed one, so a serving session can reuse it across
        windows without reallocating the model.  The lifetime
        :attr:`expired_nodes_total` counter is deliberately preserved.
        """
        self._inserter = self._make_inserter()
        self._running_max = np.full(self._hidden, -np.inf)
        self._count = 0
        self._live_start = 0
        self._last_t_us = None
        self._scores = None

    # -- eviction (bounded mode) --------------------------------------
    def _evict(self, t_us: int, reserve: int) -> int:
        """Evict nodes that are stale (older than ``window_us``) or over
        budget (would leave no room for ``reserve`` insertions).

        Returns the number of nodes evicted.  The running readout is
        recomputed from the surviving rows only when an evicted node may
        have attained the current maximum (an exact equality test — a
        removed row can only change the max where it achieves it).
        """
        if not self._bounded:
            return 0
        cutoff = t_us - self.window_us
        start = self._live_start
        n = self._count
        limit = n - (self.max_live_nodes - reserve)
        while start < n and (
            start < limit or self._ta[start % self._cap] < cutoff
        ):
            start += 1
        evicted = start - self._live_start
        if evicted:
            rows = self._rows(np.arange(self._live_start, start, dtype=np.int64))
            if start >= n:
                self._running_max = np.full(self._hidden, -np.inf)
            elif np.any(self._x2a[rows] == self._running_max):
                live = np.arange(start, n, dtype=np.int64)
                self._running_max = self._x2a[self._rows(live)].max(axis=0)
            self._live_start = start
            self._expired_total += evicted
            self._inserter.min_live_id = start
        return evicted

    def expire(self, now_us: int) -> int:
        """Advance the liveness window to ``now_us`` without inserting.

        Bounded mode only: evicts every node older than
        ``now_us - window_us`` (possibly emptying the live set — scores
        then return to the zero baseline) and returns the count evicted.
        """
        if not self._bounded:
            raise ValueError("expire() requires bounded mode (max_live_nodes)")
        evicted = self._evict(int(now_us), reserve=0)
        if evicted:
            self._scores = None  # readout changed: recompute lazily
        return evicted

    # -- inference -----------------------------------------------------
    def scores(self) -> np.ndarray:
        """Current class scores (zeros before the first event).

        The value is computed at most once per incorporated event: the
        head evaluation happens inside :meth:`process_event` (where its
        MACs are charged) and is cached, so repeated ``scores()`` /
        :meth:`predict` calls between events cost nothing.  The returned
        array is a read-only view of the cached decision.
        """
        if self._scores is None:
            self._scores = self._compute_scores()
        return self._scores

    def _compute_scores(self) -> np.ndarray:
        """One head evaluation over the running pooled features.

        The result is frozen (``writeable = False``) because the same
        array is handed out through :meth:`scores` and every
        :class:`AsyncStepReport` — a caller mutating it would corrupt
        the session's cached decision.
        """
        if not np.isfinite(self._running_max).any():
            scores = np.zeros(self.model.head.out_features)
        else:
            pooled = np.where(
                np.isfinite(self._running_max), self._running_max, 0.0
            )
            with no_grad(), stable_matmul():
                scores = self.model.head(Tensor(pooled[None, :])).data[0]
        scores.flags.writeable = False
        return scores

    def predict(self) -> int:
        """Current class decision."""
        return int(self.scores().argmax())

    def process_event(self, x: int, y: int, t_us: int, polarity: int) -> AsyncStepReport:
        """Incorporate one event and refresh the decision.

        Args:
            x, y: pixel coordinates.
            t_us: timestamp.
            polarity: +1 or -1.

        Returns:
            Per-event work report with the updated scores.

        Raises:
            ValueError: on a timestamp earlier than the last insertion.
                The batch-equivalence guarantee rests on the causal-edge
                invariant — every existing node's features are final —
                which only holds when events arrive in time order
                (mirroring :class:`~repro.events.EventStream`'s
                sortedness contract).
        """
        if polarity not in (1, -1):
            raise ValueError("polarity must be +1 or -1")
        if self._last_t_us is not None and t_us < self._last_t_us:
            raise ValueError(
                f"out-of-order event: t_us={t_us} precedes the last "
                f"insertion at {self._last_t_us}; per-event inference "
                "requires non-decreasing timestamps (causal-edge invariant)"
            )
        expired = self._evict(int(t_us), reserve=1)
        cands_before = self._inserter.stats.candidates_examined
        cursor = self._inserter.edge_cursor()
        node = self._inserter.insert(float(x), float(y), int(t_us))
        candidates = self._inserter.stats.candidates_examined - cands_before
        new_edges = self._inserter.edges_since(cursor)
        neighbours = new_edges[:, 0] if new_edges.size else np.zeros(0, dtype=np.int64)

        feats = [1.0 if polarity == 1 else 0.0, 1.0 if polarity == -1 else 0.0]
        if self.include_position:
            feats.append(x / self.resolution.width)
            feats.append(y / self.resolution.height)
        x0 = np.asarray(feats, dtype=np.float64)
        pos = np.array([x, y, t_us / self._inserter.time_scale_us], dtype=np.float64)

        macs = 0
        if neighbours.size:
            nrows = self._rows(neighbours)
            rel = self._posa[nrows] - pos
            n1 = self._x0a[nrows]
        else:
            rel = np.zeros((0, 3))
            n1 = np.zeros((0, x0.size))
        h1, m1 = _edgeconv_single(self.model.conv1, x0, n1, rel)
        h1 = np.maximum(h1, 0.0)
        n2 = self._x1a[nrows] if neighbours.size else np.zeros((0, h1.size))
        h2, m2 = _edgeconv_single(self.model.conv2, h1, n2, rel)
        h2 = np.maximum(h2, 0.0)
        macs += m1 + m2

        if not self._bounded and node >= self._cap:
            self._grow()
        row = self._row(node)
        self._x0a[row] = x0
        self._x1a[row] = h1
        self._x2a[row] = h2
        self._posa[row] = pos
        self._ta[row] = t_us
        self._count = node + 1
        self._last_t_us = int(t_us)
        np.maximum(self._running_max, h2, out=self._running_max)

        # One head evaluation per event, cached for scores()/predict():
        # the charged head MACs match the work actually done.
        self._scores = self._compute_scores()
        macs += self.model.head.in_features * self.model.head.out_features

        return AsyncStepReport(
            node_index=node,
            num_neighbours=int(neighbours.size),
            insertion_candidates=int(candidates),
            macs=macs,
            scores=self._scores,
            expired_nodes=expired,
            live_nodes=self.num_live_nodes,
        )

    def process_stream(self, stream) -> list[AsyncStepReport]:
        """Incorporate every event of an :class:`~repro.events.EventStream`."""
        return [
            self.process_event(int(x), int(y), int(t), int(p))
            for t, x, y, p in zip(stream.t, stream.x, stream.y, stream.p)
        ]

    # -- checkpoint / restore -----------------------------------------
    def snapshot(self) -> dict:
        """A self-contained checkpoint of the session state.

        The returned dict (schema :data:`SNAPSHOT_FORMAT`) owns copies
        of every array, so it stays valid — and restorable any number of
        times — while the engine keeps running.  Model weights are *not*
        part of the checkpoint; a snapshot can only be restored into an
        engine built around the same model configuration.

        Keys: ``format``, ``bounded``, ``capacity``, ``count``,
        ``live_start``, ``expired_total``, ``last_t_us``,
        ``running_max``, ``x0``/``x1``/``x2`` (per-layer feature rows),
        ``pos``, ``t``, ``inserter`` (deep copy).
        """
        lim = self._cap if self._bounded else self._count
        return {
            "format": SNAPSHOT_FORMAT,
            "bounded": self._bounded,
            "capacity": self.max_live_nodes,
            "count": self._count,
            "live_start": self._live_start,
            "expired_total": self._expired_total,
            "last_t_us": self._last_t_us,
            "running_max": self._running_max.copy(),
            "x0": self._x0a[:lim].copy(),
            "x1": self._x1a[:lim].copy(),
            "x2": self._x2a[:lim].copy(),
            "pos": self._posa[:lim].copy(),
            "t": self._ta[:lim].copy(),
            "inserter": copy.deepcopy(self._inserter),
        }

    def restore(self, state: dict) -> None:
        """Restore a :meth:`snapshot`, replacing the current state.

        The snapshot is copied in, so the caller's dict remains reusable
        (e.g. as a retained last-good checkpoint).  Cached scores are
        *not* trusted from the checkpoint — they are lazily recomputed
        from the restored readout.

        Raises:
            ValueError: when the checkpoint is structurally incompatible
                with this engine (wrong schema, mode, capacity or array
                shapes).  Value-level corruption is *not* detectable
                here; that is the divergence audit's job.
        """
        if not isinstance(state, dict):
            raise ValueError("checkpoint must be a dict")
        if state.get("format") != SNAPSHOT_FORMAT:
            raise ValueError(
                f"unknown checkpoint format {state.get('format')!r}; "
                f"expected {SNAPSHOT_FORMAT!r}"
            )
        if bool(state.get("bounded")) != self._bounded:
            raise ValueError("checkpoint bounded-mode flag does not match engine")
        if self._bounded and state.get("capacity") != self.max_live_nodes:
            raise ValueError(
                f"checkpoint capacity {state.get('capacity')} != engine "
                f"max_live_nodes {self.max_live_nodes}"
            )
        try:
            count = int(state["count"])
            live_start = int(state["live_start"])
            expired_total = int(state["expired_total"])
            last_t_us = state["last_t_us"]
            if last_t_us is not None:
                last_t_us = int(last_t_us)
            running_max = np.asarray(state["running_max"], dtype=np.float64)
            arrays = {
                key: np.asarray(state[key], dtype=np.float64)
                for key in ("x0", "x1", "x2", "pos")
            }
            arrays["t"] = np.asarray(state["t"], dtype=np.int64)
            inserter = state["inserter"]
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                f"malformed {SNAPSHOT_FORMAT!r} checkpoint "
                f"(truncated or corrupt payload): {exc!r}"
            ) from exc
        if not 0 <= live_start <= count:
            raise ValueError(
                f"checkpoint live range invalid: live_start={live_start}, "
                f"count={count}"
            )
        widths = {
            "x0": self._feature_width,
            "x1": self._hidden,
            "x2": self._hidden,
            "pos": 3,
        }
        rows_needed = self._cap if self._bounded else count
        for key, width in widths.items():
            if arrays[key].shape != (rows_needed, width):
                raise ValueError(
                    f"checkpoint array {key!r} has shape "
                    f"{arrays[key].shape}, expected ({rows_needed}, {width})"
                )
        if arrays["t"].shape != (rows_needed,):
            raise ValueError(
                f"checkpoint array 't' has shape {arrays['t'].shape}, "
                f"expected ({rows_needed},)"
            )
        if running_max.shape != (self._hidden,):
            raise ValueError(
                f"checkpoint running_max has shape {running_max.shape}, "
                f"expected ({self._hidden},)"
            )
        expected_cls = BoundedHashInserter if self._bounded else HashInserter
        if not isinstance(inserter, expected_cls):
            raise ValueError(
                f"checkpoint inserter is {type(inserter).__name__}, "
                f"expected {expected_cls.__name__}"
            )
        if inserter.num_nodes != count:
            raise ValueError(
                f"checkpoint inserter holds {inserter.num_nodes} nodes "
                f"but count={count}"
            )

        if self._bounded:
            self._x0a[:] = arrays["x0"]
            self._x1a[:] = arrays["x1"]
            self._x2a[:] = arrays["x2"]
            self._posa[:] = arrays["pos"]
            self._ta[:] = arrays["t"]
        else:
            self._alloc(max(64, count))
            self._x0a[:count] = arrays["x0"]
            self._x1a[:count] = arrays["x1"]
            self._x2a[:count] = arrays["x2"]
            self._posa[:count] = arrays["pos"]
            self._ta[:count] = arrays["t"]
        self._running_max = running_max.copy()
        self._count = count
        self._live_start = live_start
        self._expired_total = expired_total
        self._last_t_us = last_t_us
        self._inserter = copy.deepcopy(inserter)
        self._inserter.min_live_id = live_start
        self._scores = None

    # -- introspection -------------------------------------------------
    def node_features(self) -> np.ndarray:
        """Final conv2 features of every live node, ``(live, hidden)``."""
        live = np.arange(self._live_start, self._count, dtype=np.int64)
        if not live.size:
            return np.zeros((0, self._hidden))
        return self._x2a[self._rows(live)]

    def built_graph(self):
        """The graph accumulated so far, as an :class:`EventGraph`.

        Unbounded mode only: under eviction the retained edge log is
        partial, so there is no complete graph to return.
        """
        if self._bounded:
            raise RuntimeError(
                "built_graph() requires the unbounded engine; bounded "
                "mode recycles node and edge storage"
            )
        from .graph import EventGraph

        n = self._count
        positions = self._posa[:n].copy() if n else np.zeros((0, 3))
        # The empty-graph feature width follows the configured feature
        # layout: polarity one-hot (2) plus normalised position (2) when
        # include_position is set.
        features = (
            self._x0a[:n].copy() if n else np.zeros((0, self._feature_width))
        )
        return EventGraph(
            positions, features, self._inserter.edges(), self._inserter.time_scale_us
        )

    def built_compact_graph(self, quantization_bits: int = 8):
        """The graph accumulated so far, exported compact (SoA, quantized).

        Unbounded mode only (same restriction as :meth:`built_graph`).
        The export packs the engine's raw columns into a
        :class:`~repro.gnn.compact.CompactEventGraph`; with
        ``quantization_bits=0`` the result reconstructs this engine's
        positions and features bitwise.
        """
        if self._bounded:
            raise RuntimeError(
                "built_compact_graph() requires the unbounded engine; "
                "bounded mode recycles node and edge storage"
            )
        from .compact import CompactEventGraph

        n = self._count
        pos = self._posa[:n]
        polarity = np.where(self._x0a[:n, 0] == 1.0, 1, -1).astype(np.int8)
        return CompactEventGraph.from_columns(
            pos[:, 0].astype(np.int64) if n else np.zeros(0, dtype=np.int64),
            pos[:, 1].astype(np.int64) if n else np.zeros(0, dtype=np.int64),
            self._ta[:n],
            polarity,
            self._inserter.edges(),
            time_scale_us=self._inserter.time_scale_us,
            radius=self.radius,
            max_degree=self.max_degree,
            quantization_bits=quantization_bits,
            include_position=self.include_position,
            resolution=self.resolution,
        )
