"""Fully asynchronous event-graph inference.

Section IV: "Event-graphs are also inherently sparse and amenable to
event-driven operation because graph convolutions could be triggered
upon the generation of each event."

This module realises that mode of operation.  The key structural fact —
the HUGNet insight — is that with *causal* (past → new) edges an
arriving event only ever gains incoming edges: the features of every
existing node are already final.  Incorporating one event therefore
costs

1. one spatiotemporal-hash insertion (find the causal neighbourhood),
2. one pass of the new node's features through the network's layers,
   gathering each layer's *stored* neighbour features,
3. one update of the running global-max readout,

with nothing recomputed.  :class:`AsyncEventGNN` maintains the per-layer
feature memory and the running readout, counts the work per event, and
is *exactly equivalent* to a batch forward pass of the same
:class:`~repro.gnn.models.EventGNNClassifier` over the final graph — a
tested invariant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.layers import Linear
from ..nn.tensor import Tensor, no_grad, stable_matmul
from .asynchronous import HashInserter
from .layers import EdgeConv
from .models import EventGNNClassifier

__all__ = ["AsyncEventGNN", "AsyncStepReport"]


@dataclass(frozen=True)
class AsyncStepReport:
    """Work done to incorporate one event.

    Attributes:
        node_index: index assigned to the event's node.
        num_neighbours: causal in-edges created.
        insertion_candidates: hash candidates examined for the insertion.
        macs: multiply-accumulates of the local feature computation,
            including exactly the one head evaluation that produced
            ``scores``.
        scores: running class scores after this event.
    """

    node_index: int
    num_neighbours: int
    insertion_candidates: int
    macs: int
    scores: np.ndarray


def _edgeconv_single(
    conv: EdgeConv,
    x_self: np.ndarray,
    x_neigh: np.ndarray,
    rel_pos: np.ndarray,
) -> tuple[np.ndarray, int]:
    """Evaluate one EdgeConv output for a single destination node.

    Args:
        conv: the layer (max aggregation assumed, as the classifier uses).
        x_self: ``(F,)`` features of the new node.
        x_neigh: ``(k, F)`` features of its causal neighbours.
        rel_pos: ``(k, 3)`` position offsets ``pos_src - pos_dst``.

    Returns:
        ``(feature_vector, macs)``.
    """
    macs = 0
    # stable_matmul makes the single-row products bit-identical to the
    # corresponding rows of the batch forward pass (which runs under the
    # same context) — see EventGNNClassifier.forward.
    with no_grad(), stable_matmul():
        out = conv.self_mlp(Tensor(x_self[None, :])).data[0]
    macs += conv.self_mlp.in_features * conv.self_mlp.out_features
    k = x_neigh.shape[0]
    if k:
        edge_in = np.concatenate(
            [np.repeat(x_self[None, :], k, axis=0), x_neigh - x_self[None, :], rel_pos],
            axis=1,
        )
        with no_grad(), stable_matmul():
            messages = conv.mlp(Tensor(edge_in)).data
        per_edge = sum(
            layer.in_features * layer.out_features
            for layer in conv.mlp.layers
            if isinstance(layer, Linear)
        )
        macs += k * per_edge
        if conv.aggregation == "max":
            agg = messages.max(axis=0)
        else:
            agg = messages.mean(axis=0)
        out = out + agg
    return out, macs


class AsyncEventGNN:
    """Streaming, per-event execution of an EdgeConv event-graph classifier.

    Args:
        model: a trained :class:`EventGNNClassifier` built with EdgeConv
            layers (the default ``conv='edge'``).
        radius: causal connection radius (scaled units).
        time_scale_us: microseconds per temporal unit.
        window_us: liveness window for the graph.
        max_degree: in-edge cap per event.
        resolution: sensor resolution (needed when the model was trained
            with position features).
        include_position: append normalised position to node features
            (must match the model's training configuration).
    """

    def __init__(
        self,
        model: EventGNNClassifier,
        radius: float = 4.0,
        time_scale_us: float = 3000.0,
        window_us: int = 100_000,
        max_degree: int = 10,
        resolution=None,
        include_position: bool = False,
    ) -> None:
        if not isinstance(model.conv1, EdgeConv):
            raise TypeError("AsyncEventGNN requires EdgeConv layers (conv='edge')")
        if include_position and resolution is None:
            raise ValueError("resolution is required when include_position is set")
        self.model = model
        self.include_position = include_position
        self.resolution = resolution
        self._feature_width = 4 if include_position else 2
        self._make_inserter = lambda: HashInserter(
            radius=radius,
            time_scale_us=time_scale_us,
            window_us=window_us,
            max_neighbours=max_degree,
        )
        self._inserter = self._make_inserter()
        hidden = model.head.in_features
        self._x0: list[np.ndarray] = []  # input features per node
        self._x1: list[np.ndarray] = []  # conv1 outputs (post-ReLU)
        self._x2: list[np.ndarray] = []  # conv2 outputs (post-ReLU)
        self._running_max = np.full(hidden, -np.inf)
        self._positions: list[np.ndarray] = []
        self._last_t_us: int | None = None
        self._scores: np.ndarray | None = None  # cached current-state scores

    @property
    def num_events(self) -> int:
        """Events incorporated so far."""
        return len(self._x0)

    def reset(self) -> None:
        """Forget every event; the model weights are untouched.

        After a reset the engine behaves exactly like a freshly
        constructed one, so a serving session can reuse it across
        windows without reallocating the model.
        """
        self._inserter = self._make_inserter()
        self._x0.clear()
        self._x1.clear()
        self._x2.clear()
        self._positions.clear()
        self._running_max = np.full(self.model.head.in_features, -np.inf)
        self._last_t_us = None
        self._scores = None

    def scores(self) -> np.ndarray:
        """Current class scores (zeros before the first event).

        The value is computed at most once per incorporated event: the
        head evaluation happens inside :meth:`process_event` (where its
        MACs are charged) and is cached, so repeated ``scores()`` /
        :meth:`predict` calls between events cost nothing.  Treat the
        returned array as read-only.
        """
        if self._scores is None:
            self._scores = self._compute_scores()
        return self._scores

    def _compute_scores(self) -> np.ndarray:
        """One head evaluation over the running pooled features."""
        if not np.isfinite(self._running_max).any():
            return np.zeros(self.model.head.out_features)
        pooled = np.where(np.isfinite(self._running_max), self._running_max, 0.0)
        with no_grad(), stable_matmul():
            return self.model.head(Tensor(pooled[None, :])).data[0]

    def predict(self) -> int:
        """Current class decision."""
        return int(self.scores().argmax())

    def process_event(self, x: int, y: int, t_us: int, polarity: int) -> AsyncStepReport:
        """Incorporate one event and refresh the decision.

        Args:
            x, y: pixel coordinates.
            t_us: timestamp.
            polarity: +1 or -1.

        Returns:
            Per-event work report with the updated scores.

        Raises:
            ValueError: on a timestamp earlier than the last insertion.
                The batch-equivalence guarantee rests on the causal-edge
                invariant — every existing node's features are final —
                which only holds when events arrive in time order
                (mirroring :class:`~repro.events.EventStream`'s
                sortedness contract).
        """
        if polarity not in (1, -1):
            raise ValueError("polarity must be +1 or -1")
        if self._last_t_us is not None and t_us < self._last_t_us:
            raise ValueError(
                f"out-of-order event: t_us={t_us} precedes the last "
                f"insertion at {self._last_t_us}; per-event inference "
                "requires non-decreasing timestamps (causal-edge invariant)"
            )
        cands_before = self._inserter.stats.candidates_examined
        edges_before = self._inserter.stats.edges_created
        node = self._inserter.insert(float(x), float(y), int(t_us))
        candidates = self._inserter.stats.candidates_examined - cands_before
        new_edges = self._inserter.edges()[edges_before:]
        neighbours = new_edges[:, 0] if new_edges.size else np.zeros(0, dtype=np.int64)

        feats = [1.0 if polarity == 1 else 0.0, 1.0 if polarity == -1 else 0.0]
        if self.include_position:
            feats.append(x / self.resolution.width)
            feats.append(y / self.resolution.height)
        x0 = np.asarray(feats, dtype=np.float64)
        pos = np.array([x, y, t_us / self._inserter.time_scale_us], dtype=np.float64)

        macs = 0
        rel = (
            np.stack([self._positions[j] for j in neighbours]) - pos
            if neighbours.size
            else np.zeros((0, 3))
        )
        n1 = (
            np.stack([self._x0[j] for j in neighbours])
            if neighbours.size
            else np.zeros((0, x0.size))
        )
        h1, m1 = _edgeconv_single(self.model.conv1, x0, n1, rel)
        h1 = np.maximum(h1, 0.0)
        n2 = (
            np.stack([self._x1[j] for j in neighbours])
            if neighbours.size
            else np.zeros((0, h1.size))
        )
        h2, m2 = _edgeconv_single(self.model.conv2, h1, n2, rel)
        h2 = np.maximum(h2, 0.0)
        macs += m1 + m2

        self._x0.append(x0)
        self._x1.append(h1)
        self._x2.append(h2)
        self._positions.append(pos)
        self._last_t_us = int(t_us)
        np.maximum(self._running_max, h2, out=self._running_max)

        # One head evaluation per event, cached for scores()/predict():
        # the charged head MACs match the work actually done.
        self._scores = self._compute_scores()
        macs += self.model.head.in_features * self.model.head.out_features

        return AsyncStepReport(
            node_index=node,
            num_neighbours=int(neighbours.size),
            insertion_candidates=int(candidates),
            macs=macs,
            scores=self._scores,
        )

    def process_stream(self, stream) -> list[AsyncStepReport]:
        """Incorporate every event of an :class:`~repro.events.EventStream`."""
        return [
            self.process_event(int(x), int(y), int(t), int(p))
            for t, x, y, p in zip(stream.t, stream.x, stream.y, stream.p)
        ]

    def node_features(self) -> np.ndarray:
        """Final conv2 features of every node, ``(N, hidden)``."""
        if not self._x2:
            return np.zeros((0, self.model.head.in_features))
        return np.stack(self._x2)

    def built_graph(self):
        """The graph accumulated so far, as an :class:`EventGraph`."""
        from .graph import EventGraph

        positions = (
            np.stack(self._positions) if self._positions else np.zeros((0, 3))
        )
        # The empty-graph feature width follows the configured feature
        # layout: polarity one-hot (2) plus normalised position (2) when
        # include_position is set.
        features = (
            np.stack(self._x0)
            if self._x0
            else np.zeros((0, self._feature_width))
        )
        return EventGraph(
            positions, features, self._inserter.edges(), self._inserter.time_scale_us
        )
