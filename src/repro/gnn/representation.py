"""The unified graph-representation API.

A *representation* decides how one recording's events become a graph
object the classifier can consume: the historical float64/int64
:class:`~repro.gnn.graph.EventGraph` ("dense") or the memory-bounded,
integer-quantized :class:`~repro.gnn.compact.CompactEventGraph`
("compact").  Pipelines select it declaratively through the
``representation`` field on :class:`~repro.gnn.models.GraphBuildConfig`
— :func:`~repro.gnn.models.build_event_graph` routes through the
registry here, so every existing call site keeps working unchanged.

Both representations subsample the stream identically and produce the
same capped causal edge set (the dense batch pipeline and the
incremental :class:`~repro.gnn.asynchronous.HashInserter` select
identical edges — a tested invariant), so "dense vs compact" differs
only in storage layout and, when enabled, quantization.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from ..events.stream import EventStream
from .build import limit_in_degree, make_causal, radius_graph_spatial_hash
from .compact import CompactGraphBuilder
from .graph import EventGraph

__all__ = [
    "GraphRepresentation",
    "DenseGraphRepresentation",
    "CompactGraphRepresentation",
    "REPRESENTATIONS",
    "get_representation",
    "subsample_stream",
]


def subsample_stream(stream: EventStream, max_events: int) -> EventStream:
    """Uniform-stride subsample bounding graph size (shared by all reps)."""
    if len(stream) > max_events:
        idx = np.linspace(0, len(stream) - 1, max_events).astype(np.int64)
        stream = stream[np.unique(idx)]
    return stream


@runtime_checkable
class GraphRepresentation(Protocol):
    """One way of materialising a recording as a classifier-ready graph.

    Implementations are stateless singletons registered in
    :data:`REPRESENTATIONS`; ``build`` must be deterministic in
    ``(stream, config)`` — the representation cache addresses its
    results by exactly that pair.
    """

    #: Registry key and the value of ``GraphBuildConfig.representation``.
    name: str

    def build(self, stream: EventStream, config):
        """Build the graph of one recording.

        Args:
            stream: the recording.
            config: a :class:`~repro.gnn.models.GraphBuildConfig`.

        Returns:
            A graph object exposing the dense API surface
            (``positions`` / ``features`` / ``edges`` / ``num_nodes``
            …).
        """
        ...


class DenseGraphRepresentation:
    """The historical float64/int64 :class:`EventGraph` build.

    Batch pipeline: spatial-hash radius graph → causal filter →
    in-degree cap (``knn_graph``/``radius_graph_spatial_hash`` remain
    its public building blocks).
    """

    name = "dense"

    def build(self, stream: EventStream, config) -> EventGraph:
        stream = subsample_stream(stream, config.max_events)
        # Shared SoA columns: the same extraction feeds the node
        # features in EventGraph.from_stream, so fields gather once.
        points = stream.soa().point_cloud(config.time_scale_us)
        edges = radius_graph_spatial_hash(points, config.radius)
        if config.causal:
            edges = make_causal(edges, points)
        edges = limit_in_degree(edges, points, config.max_degree)
        return EventGraph.from_stream(
            stream,
            edges,
            config.time_scale_us,
            include_position=config.include_position,
        )


class CompactGraphRepresentation:
    """The memory-bounded :class:`CompactEventGraph` build.

    Incremental construction over the same subsampled columns; requires
    ``config.causal`` (the fixed-degree delta table encodes past →
    present edges only).  ``config.quantization_bits == 0`` makes the
    result bitwise-equivalent to the dense build.
    """

    name = "compact"

    def build(self, stream: EventStream, config):
        if not config.causal:
            raise ValueError(
                "the compact representation requires causal=True "
                "(its neighbour table stores past -> present deltas)"
            )
        stream = subsample_stream(stream, config.max_events)
        soa = stream.soa()
        builder = CompactGraphBuilder(
            radius=config.radius,
            time_scale_us=config.time_scale_us,
            max_degree=config.max_degree,
            quantization_bits=config.quantization_bits,
            include_position=config.include_position,
            resolution=stream.resolution,
        )
        builder.extend(soa.x, soa.y, soa.t, soa.p)
        return builder.graph()


#: Registry: ``GraphBuildConfig.representation`` value → implementation.
REPRESENTATIONS: dict[str, GraphRepresentation] = {
    "dense": DenseGraphRepresentation(),
    "compact": CompactGraphRepresentation(),
}


def get_representation(name: str) -> GraphRepresentation:
    """Look up a representation by name.

    Args:
        name: a key of :data:`REPRESENTATIONS`.
    """
    try:
        return REPRESENTATIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown graph representation {name!r} "
            f"(expected one of {tuple(REPRESENTATIONS)})"
        ) from None
