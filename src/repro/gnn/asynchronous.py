"""Incremental (asynchronous) event-graph maintenance.

The ABL-GRAPH experiment: Section IV says incorporating a new event into
a continuously evolving graph with global tree search is the latency
bottleneck, and that algorithmic innovation (HUGNet, ref [72]) bought
"a four order of magnitude speed-up".

Three per-event insertion strategies over a sliding temporal window:

* :class:`NaiveInserter` — compare against *every* live node, O(N) per
  event (the strawman a full graph rebuild approximates);
* :class:`KDTreeInserter` — rebuild a k-d tree periodically and query it
  per event (the tree-search baseline, ref [75]);
* :class:`HashInserter` — constant-time bucket lookup in a spatial hash
  keyed on the (x, y) cell, with stale entries pruned lazily; because a
  *causal* (past-only, hemispherical) neighbourhood is used, arriving
  events never modify existing edges — they only append — which is what
  makes O(1) insertion possible.  :meth:`HashInserter.insert_many` is
  the batched hot path: cell indices and point coordinates for a whole
  time-ordered chunk are computed with NumPy up front, and per-event
  work reduces to bucket list extension plus vectorized candidate
  filtering.

All three produce identical edge sets (a tested invariant) and count the
candidate comparisons performed, which is the ABL-GRAPH cost metric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

__all__ = [
    "InsertionStats",
    "NaiveInserter",
    "KDTreeInserter",
    "HashInserter",
    "BoundedHashInserter",
]


@dataclass
class InsertionStats:
    """Work accounting for a sequence of insertions.

    Attributes:
        events_inserted: number of events inserted.
        candidates_examined: pairwise distance evaluations performed.
        edges_created: directed (past → new) edges added.
        tree_builds: k-d tree (re)constructions (KDTreeInserter only).
    """

    events_inserted: int = 0
    candidates_examined: int = 0
    edges_created: int = 0
    tree_builds: int = 0

    @property
    def candidates_per_event(self) -> float:
        """Mean candidate comparisons per inserted event."""
        if self.events_inserted == 0:
            return 0.0
        return self.candidates_examined / self.events_inserted


class _InserterBase:
    """Shared state and parameters of the insertion strategies.

    Node positions, timestamps and edges live in capacity-doubled NumPy
    arrays so candidate gathering and edge retrieval are array slices,
    not per-element Python work.

    Args:
        radius: spatiotemporal connection radius (after time scaling).
        time_scale_us: microseconds per temporal unit.
        window_us: events older than this are dropped from the live set.
        max_neighbours: cap on edges created per insertion (nearest kept).
    """

    def __init__(
        self,
        radius: float,
        time_scale_us: float = 1000.0,
        window_us: int = 50_000,
        max_neighbours: int = 16,
    ) -> None:
        if radius <= 0:
            raise ValueError("radius must be positive")
        if time_scale_us <= 0:
            raise ValueError("time_scale_us must be positive")
        if window_us <= 0:
            raise ValueError("window_us must be positive")
        if max_neighbours <= 0:
            raise ValueError("max_neighbours must be positive")
        self.radius = radius
        self.time_scale_us = time_scale_us
        self.window_us = window_us
        self.max_neighbours = max_neighbours
        self.stats = InsertionStats()
        #: Smallest node id still considered live by the owner.  The
        #: bounded engine advances it as it evicts nodes; candidates
        #: below it are filtered out by :class:`HashInserter` lookups so
        #: recycled ring rows are never mistaken for live nodes.  Stays
        #: 0 in unbounded use, where it changes nothing.
        self.min_live_id = 0
        self._num_nodes = 0
        self._pos = np.empty((64, 3), dtype=np.float64)
        self._t_us = np.empty(64, dtype=np.int64)
        self._num_edges = 0
        self._edge_arr = np.empty((64, 2), dtype=np.int64)

    @property
    def num_nodes(self) -> int:
        """Total nodes inserted so far."""
        return self._num_nodes

    @property
    def _positions(self) -> np.ndarray:
        """(N, 3) scaled positions of all inserted nodes (view)."""
        return self._pos[: self._num_nodes]

    @property
    def _times_us(self) -> np.ndarray:
        """Raw microsecond timestamps of all inserted nodes (view)."""
        return self._t_us[: self._num_nodes]

    def edges(self) -> np.ndarray:
        """All (past-node → new-node) edges created, in insertion order.

        Returns a view into the internal edge buffer; do not mutate.
        """
        return self._edge_arr[: self._num_edges]

    def edge_cursor(self) -> int:
        """Opaque position in the edge log; pass to :meth:`edges_since`."""
        return self._num_edges

    def edges_since(self, cursor: int) -> np.ndarray:
        """Edges appended after ``cursor`` (a prior :meth:`edge_cursor`).

        Returns a view into the internal edge buffer; do not mutate.
        Bounded inserters recycle the buffer, so callers must use this
        pair instead of slicing :meth:`edges` by ``stats.edges_created``.
        """
        return self._edge_arr[cursor : self._num_edges]

    def _node_pos(self, ids: np.ndarray) -> np.ndarray:
        """(k, 3) scaled positions of the given node ids."""
        return self._pos[ids]

    def _node_t(self, ids: np.ndarray) -> np.ndarray:
        """Raw microsecond timestamps of the given node ids."""
        return self._t_us[ids]

    def _reserve_nodes(self, extra: int) -> None:
        needed = self._num_nodes + extra
        if needed <= self._pos.shape[0]:
            return
        cap = max(needed, 2 * self._pos.shape[0])
        self._pos = np.concatenate(
            [self._pos, np.empty((cap - self._pos.shape[0], 3), dtype=np.float64)]
        )
        self._t_us = np.concatenate(
            [self._t_us, np.empty(cap - self._t_us.shape[0], dtype=np.int64)]
        )

    def _append_node(self, p: np.ndarray, t_us: int) -> int:
        self._reserve_nodes(1)
        i = self._num_nodes
        self._pos[i] = p
        self._t_us[i] = t_us
        self._num_nodes = i + 1
        return i

    def _append_edges(self, src_ids: np.ndarray, dst) -> None:
        """Append ``(src, dst)`` edges; ``dst`` is a scalar or an array."""
        m = src_ids.size
        needed = self._num_edges + m
        if needed > self._edge_arr.shape[0]:
            cap = max(needed, 2 * self._edge_arr.shape[0])
            self._edge_arr = np.concatenate(
                [
                    self._edge_arr,
                    np.empty((cap - self._edge_arr.shape[0], 2), dtype=np.int64),
                ]
            )
        self._edge_arr[self._num_edges : needed, 0] = src_ids
        self._edge_arr[self._num_edges : needed, 1] = dst
        self._num_edges = needed
        self.stats.edges_created += m

    def _point(self, x: float, y: float, t_us: int) -> np.ndarray:
        return np.array([x, y, t_us / self.time_scale_us], dtype=np.float64)

    def _select_edges(
        self, new_index: int, candidate_ids: np.ndarray, candidate_pos: np.ndarray, p: np.ndarray
    ) -> None:
        """Connect the nearest in-radius candidates to the new node."""
        if candidate_ids.size == 0:
            return
        d = candidate_pos - p
        dist2 = np.einsum("ij,ij->i", d, d)
        # radius * radius (not radius**2) so the threshold is bit-equal
        # to the batch builders' in repro.gnn.build for any float radius.
        in_radius = dist2 <= self.radius * self.radius
        ids = candidate_ids[in_radius]
        dist2 = dist2[in_radius]
        if ids.size > self.max_neighbours:
            # Deterministic tie-break by node id so every insertion
            # strategy selects identical edges.
            order = np.lexsort((ids, dist2))
            ids = ids[order][: self.max_neighbours]
        if ids.size:
            self._append_edges(np.sort(ids), new_index)  # sort-ok: unique ids

    def insert(self, x: float, y: float, t_us: int) -> int:
        """Insert one event; returns its node index."""
        raise NotImplementedError

    def insert_stream(self, xs, ys, ts) -> None:
        """Insert a batch of time-ordered events."""
        for x, y, t in zip(xs, ys, ts):
            self.insert(float(x), float(y), int(t))


class NaiveInserter(_InserterBase):
    """O(live-set) insertion: scan every live node per event."""

    def insert(self, x: float, y: float, t_us: int) -> int:
        p = self._point(x, y, t_us)
        cutoff = t_us - self.window_us
        live = np.nonzero(self._times_us >= cutoff)[0]
        self.stats.candidates_examined += live.size
        new_index = self._num_nodes
        if live.size:
            self._select_edges(new_index, live, self._positions[live], p)
        self._append_node(p, t_us)
        self.stats.events_inserted += 1
        return new_index


class KDTreeInserter(_InserterBase):
    """Tree-search insertion: periodic k-d tree rebuild + per-event query.

    Args:
        rebuild_every: insertions between tree rebuilds; events arriving
            since the last rebuild are scanned linearly.
    """

    def __init__(self, *args, rebuild_every: int = 64, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if rebuild_every <= 0:
            raise ValueError("rebuild_every must be positive")
        self.rebuild_every = rebuild_every
        self._tree: cKDTree | None = None
        self._tree_ids: np.ndarray = np.zeros(0, dtype=np.int64)
        self._pending: list[int] = []  # node ids not yet in the tree

    def _rebuild(self, now_us: int) -> None:
        cutoff = now_us - self.window_us
        live = np.nonzero(self._times_us >= cutoff)[0]
        self._tree_ids = live.astype(np.int64)
        if live.size:
            self._tree = cKDTree(self._positions[live])
            # Tree construction touches every live point.
            self.stats.candidates_examined += live.size
        else:
            self._tree = None
        self._pending = []
        self.stats.tree_builds += 1

    def insert(self, x: float, y: float, t_us: int) -> int:
        p = self._point(x, y, t_us)
        new_index = self._num_nodes
        cutoff = t_us - self.window_us

        ids_parts: list[np.ndarray] = []
        if self._tree is not None:
            hits = self._tree.query_ball_point(p, self.radius)
            # A k-d tree range query inspects ~log N + hits nodes.
            self.stats.candidates_examined += max(
                1, int(np.log2(self._tree.n + 1))
            ) + len(hits)
            if hits:
                nodes = self._tree_ids[np.asarray(hits, dtype=np.int64)]
                ids_parts.append(nodes[self._t_us[nodes] >= cutoff])
        if self._pending:
            # Linear scan of the pending (not-yet-indexed) nodes.
            self.stats.candidates_examined += len(self._pending)
            pending = np.asarray(self._pending, dtype=np.int64)
            ids_parts.append(pending[self._t_us[pending] >= cutoff])

        ids = (
            np.concatenate(ids_parts) if ids_parts else np.zeros(0, dtype=np.int64)
        )
        if ids.size:
            self._select_edges(new_index, ids, self._positions[ids], p)
        self._append_node(p, t_us)
        self._pending.append(new_index)
        self.stats.events_inserted += 1
        if len(self._pending) >= self.rebuild_every:
            self._rebuild(t_us)
        return new_index


#: Bias that makes signed (cx, cy) cell indices packable into one
#: unsigned 64-bit key: ``(cx + bias) << 32 | (cy + bias)``.  The
#: packing needs no data-dependent parameters, so keys from different
#: batches are directly comparable.
_XY_BIAS = 1 << 31


def _pack_xy(cx: np.ndarray, cy: np.ndarray) -> np.ndarray:
    """Pack signed (cx, cy) int64 cell indices into sortable uint64 keys."""
    return ((cx + _XY_BIAS).astype(np.uint64) << np.uint64(32)) | (
        cy + _XY_BIAS
    ).astype(np.uint64)


#: ``_batch_insert`` outcomes.
_BATCH_OK = 0  # batch fully processed
_BATCH_OVERFLOW = 1  # packed keys would overflow: use the per-event path
_BATCH_SPLIT = 2  # candidate expansion too large: recurse on halves


class HashInserter(_InserterBase):
    """O(1) insertion via a 3-D spatiotemporal hash.

    Buckets are keyed on the ``(x // r, y // r, t_scaled // r)`` cell
    (r = connection radius).  Any node within 3-D radius of a new event
    lies in one of the 9 spatially neighbouring cells of the current or
    previous time-cell, so a lookup touches at most 18 buckets.  Whole
    time-cells expire as time advances (pruning is lazy: stale
    time-cells are only scanned for when one can actually be dropped),
    so the candidate count is bounded by the *local* event density —
    independent of both the sensor size and the liveness-window length.

    Live nodes are held in two interchangeable forms: per-event
    :meth:`insert` appends to plain dict buckets, while
    :meth:`insert_many` stores each batch as a *block* — a
    cell-key-sorted id array per time-cell — so batched insertion never
    pays per-bucket Python bookkeeping.  Lookups (either path) probe
    both forms; both expire per time-cell.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # time-cell index -> {(cx, cy): [node ids]}   (per-event inserts)
        self._tcells: dict[int, dict[tuple[int, int], list[int]]] = {}
        # time-cell index -> [(sorted packed-xy keys, node ids)]  (batches)
        self._tblocks: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {}
        self._min_tcell: int | None = None

    def _cell_xy(self, x: float, y: float) -> tuple[int, int]:
        return (int(np.floor(x / self.radius)), int(np.floor(y / self.radius)))

    def _cell_t(self, t_us: int) -> int:
        return int(np.floor(t_us / (self.time_scale_us * self.radius)))

    def _expire(self, ct: int) -> None:
        """Drop time-cells too old to hold in-radius candidates.

        Lazy: the key scan only runs when the oldest live time-cell is
        actually expirable, so its cost amortises against deletions.
        """
        if self._min_tcell is None or self._min_tcell >= ct - 1:
            return
        for old in [k for k in self._tcells if k < ct - 1]:
            del self._tcells[old]
        for old in [k for k in self._tblocks if k < ct - 1]:
            del self._tblocks[old]
        live = self._tcells.keys() | self._tblocks.keys()
        self._min_tcell = min(live) if live else None

    def _gather(self, cx: int, cy: int, ct: int, cutoff: int) -> np.ndarray:
        """Candidate node ids from the ≤18 reachable buckets, time-filtered."""
        merged: list[int] = []
        parts: list[np.ndarray] = []
        probes: np.ndarray | None = None
        for tc in (ct - 1, ct):
            grid = self._tcells.get(tc)
            if grid:
                for dx in (-1, 0, 1):
                    for dy in (-1, 0, 1):
                        bucket = grid.get((cx + dx, cy + dy))
                        if bucket:
                            merged.extend(bucket)
            blocks = self._tblocks.get(tc)
            if blocks:
                if probes is None:
                    if not (
                        0 < cx + _XY_BIAS - 1
                        and cx + _XY_BIAS + 1 < 2**32
                        and 0 < cy + _XY_BIAS - 1
                        and cy + _XY_BIAS + 1 < 2**32
                    ):
                        # Cells this far out can never be in a block
                        # (insert_many guards the packing range).
                        continue
                    probes = np.empty(9, dtype=np.uint64)
                    i = 0
                    for dx in (-1, 0, 1):
                        for dy in (-1, 0, 1):
                            probes[i] = ((cx + dx + _XY_BIAS) << 32) | (
                                cy + dy + _XY_BIAS
                            )
                            i += 1
                for keys_b, ids_b in blocks:
                    lo = np.searchsorted(keys_b, probes)
                    hi = np.searchsorted(keys_b, probes, side="right")
                    for a, b in zip(lo, hi):
                        if b > a:
                            parts.append(ids_b[a:b])
            probes = None  # probe validity is per-tc loop iteration only
        if merged:
            parts.append(np.asarray(merged, dtype=np.int64))
        if not parts:
            return np.zeros(0, dtype=np.int64)
        ids = np.concatenate(parts)
        if self.min_live_id:
            # Must run before the time filter: a cap-evicted id's ring
            # row may hold a newer node whose timestamp passes the
            # cutoff, so the time filter alone would admit garbage.
            ids = ids[ids >= self.min_live_id]
        ids = ids[self._node_t(ids) >= cutoff]
        self.stats.candidates_examined += ids.size
        return ids

    def _insert_cells(
        self, p: np.ndarray, t_us: int, cx: int, cy: int, ct: int
    ) -> int:
        self._expire(ct)
        ids = self._gather(cx, cy, ct, t_us - self.window_us)
        new_index = self._num_nodes
        if ids.size:
            self._select_edges(new_index, ids, self._node_pos(ids), p)
        self._append_node(p, t_us)
        self._tcells.setdefault(ct, {}).setdefault((cx, cy), []).append(new_index)
        if self._min_tcell is None or ct < self._min_tcell:
            self._min_tcell = ct
        self.stats.events_inserted += 1
        return new_index

    def insert(self, x: float, y: float, t_us: int) -> int:
        cx, cy = self._cell_xy(x, y)
        return self._insert_cells(
            self._point(x, y, t_us), t_us, cx, cy, self._cell_t(t_us)
        )

    def insert_many(self, xs, ys, ts) -> np.ndarray:
        """Insert a time-ordered batch of events; returns their node indices.

        The batched hot path: the whole chunk is treated as one *causal*
        radius-graph problem.  Live nodes and batch nodes are pooled,
        sorted once by packed ``(t-cell, x-cell, y-cell)`` key, and each
        batch event probes its 18 reachable cells with array-wide binary
        searches; candidate pairs are then filtered (older id, liveness
        window, radius), capped per event by nearest-first/id-tie-break
        selection, and bulk-appended.  Because neighbourhoods are causal
        the result — edges, node indices and stats — is identical to
        calling :meth:`insert` per event, which remains the tested
        oracle for this path.
        """
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        ts = np.asarray(ts, dtype=np.int64)
        if not (xs.shape == ys.shape == ts.shape) or xs.ndim != 1:
            raise ValueError("xs, ys, ts must be equal-length 1-D sequences")
        n = xs.size
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        if np.any(np.diff(ts) < 0):
            raise ValueError("insert_many requires non-decreasing timestamps")
        self._reserve_nodes(n)
        pts = np.empty((n, 3), dtype=np.float64)
        pts[:, 0] = xs
        pts[:, 1] = ys
        pts[:, 2] = ts / self.time_scale_us
        cxs = np.floor(xs / self.radius).astype(np.int64)
        cys = np.floor(ys / self.radius).astype(np.int64)
        cts = np.floor(ts / (self.time_scale_us * self.radius)).astype(np.int64)

        n0 = self._num_nodes
        status = self._batch_insert(pts, ts, cxs, cys, cts)
        if status == _BATCH_OK:
            return n0 + np.arange(n, dtype=np.int64)
        if status == _BATCH_SPLIT:
            half = n // 2
            first = self.insert_many(xs[:half], ys[:half], ts[:half])
            second = self.insert_many(xs[half:], ys[half:], ts[half:])
            return np.concatenate([first, second])
        # Packed cell keys would overflow (astronomical coordinates):
        # take the per-event path, which packs nothing.
        out = np.empty(n, dtype=np.int64)
        for i in range(n):
            out[i] = self._insert_cells(
                pts[i], int(ts[i]), int(cxs[i]), int(cys[i]), int(cts[i])
            )
        return out

    #: Cap on the expanded candidate-pair array of one batch; denser
    #: batches recurse on halves so memory stays bounded.
    _MAX_BATCH_PAIRS = 20_000_000

    def _batch_insert(
        self,
        pts: np.ndarray,
        ts: np.ndarray,
        cxs: np.ndarray,
        cys: np.ndarray,
        cts: np.ndarray,
    ) -> int:
        """Vectorized core of :meth:`insert_many`; returns a ``_BATCH_*`` code.

        State is only mutated when ``_BATCH_OK`` is returned.
        """
        n = ts.size
        n0 = self._num_nodes
        ct_first, ct_last = int(cts[0]), int(cts[-1])

        # --- collect the reachable live pool (dict buckets + blocks) ---
        # Only time-cells in [ct_first - 1, ct_last] and spatial cells in
        # the batch's ±1 bounding box can ever be probed.
        x_lo, x_hi = int(cxs.min()) - 1, int(cxs.max()) + 1
        y_lo, y_hi = int(cys.min()) - 1, int(cys.max()) + 1
        id_parts: list[np.ndarray] = []
        cx_parts: list[np.ndarray] = []
        cy_parts: list[np.ndarray] = []
        ct_parts: list[np.ndarray] = []
        for tc, grid in self._tcells.items():
            if tc < ct_first - 1 or tc > ct_last:
                continue
            for (bx, by), bucket in grid.items():
                if not (x_lo <= bx <= x_hi and y_lo <= by <= y_hi):
                    continue
                m = len(bucket)
                id_parts.append(np.asarray(bucket, dtype=np.int64))
                cx_parts.append(np.full(m, bx, dtype=np.int64))
                cy_parts.append(np.full(m, by, dtype=np.int64))
                ct_parts.append(np.full(m, tc, dtype=np.int64))
        for tc, blocks in self._tblocks.items():
            if tc < ct_first - 1 or tc > ct_last:
                continue
            for keys_b, ids_b in blocks:
                bx = (keys_b >> np.uint64(32)).astype(np.int64) - _XY_BIAS
                by = (keys_b & np.uint64(0xFFFFFFFF)).astype(np.int64) - _XY_BIAS
                inside = (bx >= x_lo) & (bx <= x_hi) & (by >= y_lo) & (by <= y_hi)
                if not inside.any():
                    continue
                id_parts.append(ids_b[inside])
                cx_parts.append(bx[inside])
                cy_parts.append(by[inside])
                ct_parts.append(np.full(int(inside.sum()), tc, dtype=np.int64))

        batch_ids = n0 + np.arange(n, dtype=np.int64)
        pool_id = np.concatenate(id_parts + [batch_ids])
        pool_cx = np.concatenate(cx_parts + [cxs])
        pool_cy = np.concatenate(cy_parts + [cys])
        pool_ct = np.concatenate(ct_parts + [cts])
        M = pool_id.size

        # --- pack (t-cell, x-cell, y-cell) into one sortable int64 ---
        mx, my, mt = (
            int(pool_cx.min()) - 1,
            int(pool_cy.min()) - 1,
            int(pool_ct.min()) - 1,
        )
        span_x = int(pool_cx.max()) - mx + 2
        span_y = int(pool_cy.max()) - my + 2
        span_t = int(pool_ct.max()) - mt + 2
        if (
            float(span_t) * float(span_x) * float(span_y) * float(M) >= 2**62
            or float(n) * float(n0 + n) >= 2**62  # packed (dst, src) edge sort
            or abs(x_lo) >= _XY_BIAS - 1  # block xy-key packing range
            or abs(x_hi) >= _XY_BIAS - 1
            or abs(y_lo) >= _XY_BIAS - 1
            or abs(y_hi) >= _XY_BIAS - 1
        ):
            return _BATCH_OVERFLOW
        key = ((pool_ct - mt) * span_x + (pool_cx - mx)) * span_y + (pool_cy - my)

        # Value sort of (key, pool index) packed into one int64; the
        # batch members' sorted keys are then themselves sorted, so the
        # 18 probe passes below all run with sorted needles.
        packed = np.sort(key * M + np.arange(M))  # sort-ok: packed keys are unique
        skey = packed // M
        order = packed - skey * M
        new_cell = np.empty(M, dtype=bool)
        new_cell[0] = True
        new_cell[1:] = skey[1:] != skey[:-1]
        cell_start = np.flatnonzero(new_cell)
        cell_key = skey[cell_start]
        cell_count = np.diff(np.append(cell_start, M))
        num_cells = cell_key.size

        old_n = M - n
        src_spos = np.flatnonzero(order >= old_n)
        needles = skey[src_spos]

        src_parts: list[np.ndarray] = []
        qs_parts: list[np.ndarray] = []
        qc_parts: list[np.ndarray] = []
        for dt in (-1, 0):
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    dkey = (dt * span_x + dx) * span_y + dy
                    probe = needles + dkey
                    slot = np.searchsorted(cell_key, probe)
                    slot_c = np.minimum(slot, num_cells - 1)
                    hit = (slot < num_cells) & (cell_key[slot_c] == probe)
                    if not hit.any():
                        continue
                    src_parts.append(src_spos[hit])
                    qs_parts.append(cell_start[slot_c[hit]])
                    qc_parts.append(cell_count[slot_c[hit]])

        if src_parts:
            q_count = np.concatenate(qc_parts)
            total = int(q_count.sum())
        else:
            total = 0
        if total > self._MAX_BATCH_PAIRS and n > 1:
            return _BATCH_SPLIT

        # --- commit point: append batch nodes, then build edges ---
        self._pos[n0 : n0 + n] = pts
        self._t_us[n0 : n0 + n] = ts
        self._num_nodes = n0 + n
        self.stats.events_inserted += n

        if total:
            src_exp = np.repeat(np.concatenate(src_parts), q_count)
            q_start = np.concatenate(qs_parts)
            out_end = np.cumsum(q_count)
            flat = np.arange(total) - np.repeat(out_end - q_count, q_count)
            cand_spos = flat + np.repeat(q_start, q_count)
            src_id = pool_id[order[src_exp]]
            cand_id = pool_id[order[cand_spos]]

            # Causality (bucket contents at insertion time are exactly
            # the lower ids) and the liveness window; candidate work is
            # counted after both, matching the per-event oracle.
            causal = cand_id < src_id
            src_id = src_id[causal]
            cand_id = cand_id[causal]
            live = self._t_us[cand_id] >= self._t_us[src_id] - self.window_us
            src_id = src_id[live]
            cand_id = cand_id[live]
            self.stats.candidates_examined += int(src_id.size)

            d = self._pos[src_id] - self._pos[cand_id]
            dist2 = np.einsum("ij,ij->i", d, d)
            in_radius = dist2 <= self.radius * self.radius
            src_id = src_id[in_radius]
            cand_id = cand_id[in_radius]
            dist2 = dist2[in_radius]

            # Per-event cap: nearest max_neighbours, ties broken by id —
            # resolved only for the (rare) oversubscribed events.
            dst_local = src_id - n0
            if src_id.size:
                counts = np.bincount(dst_local, minlength=n)
                if int(counts.max()) > self.max_neighbours:
                    over = counts[dst_local] > self.max_neighbours
                    o_idx = np.flatnonzero(over)
                    by_pref = o_idx[
                        np.lexsort(
                            (cand_id[o_idx], dist2[o_idx], dst_local[o_idx])
                        )
                    ]
                    dl = dst_local[by_pref]
                    grp_head = np.empty(dl.size, dtype=bool)
                    grp_head[0] = True
                    grp_head[1:] = dl[1:] != dl[:-1]
                    starts = np.flatnonzero(grp_head)
                    rank = np.arange(dl.size) - starts[np.cumsum(grp_head) - 1]
                    keep = np.ones(src_id.size, dtype=bool)
                    keep[by_pref] = rank < self.max_neighbours
                    dst_local = dst_local[keep]
                    cand_id = cand_id[keep]
            if cand_id.size:
                # Insertion order: ascending destination, then ascending
                # source — one packed value sort.
                pk = np.sort(dst_local * (n0 + n) + cand_id)  # sort-ok: packed keys are unique
                dsts = pk // (n0 + n)
                self._append_edges(pk - dsts * (n0 + n), n0 + dsts)

        # --- store the batch as per-time-cell blocks; expire the old ---
        self._expire(ct_last)
        tc_head = np.empty(n, dtype=bool)
        tc_head[0] = True
        tc_head[1:] = cts[1:] != cts[:-1]  # cts is non-decreasing
        starts = np.append(np.flatnonzero(tc_head), n)
        added_min: int | None = None
        for i in range(starts.size - 1):
            a, b = int(starts[i]), int(starts[i + 1])
            tc = int(cts[a])
            if tc < ct_last - 1:
                continue  # would expire immediately
            keys2 = _pack_xy(cxs[a:b], cys[a:b])
            o2 = np.argsort(keys2, kind="stable")
            self._tblocks.setdefault(tc, []).append(
                (keys2[o2], batch_ids[a:b][o2])
            )
            if added_min is None:
                added_min = tc
        if added_min is not None and (
            self._min_tcell is None or added_min < self._min_tcell
        ):
            self._min_tcell = added_min
        return _BATCH_OK

    def insert_stream(self, xs, ys, ts) -> None:
        """Insert a batch of time-ordered events (batched fast path)."""
        self.insert_many(xs, ys, ts)


class BoundedHashInserter(HashInserter):
    """A :class:`HashInserter` whose memory is fixed, not growing.

    The serving counterpart of EvGNN-style bounded graph memory: node
    positions and timestamps live in ring buffers of ``capacity`` rows
    (row = ``id % capacity``), the edge log is recycled once consumed,
    and hash buckets are pruned of evicted ids as :attr:`min_live_id`
    advances — so a session holds O(capacity) state no matter how many
    events it has absorbed.

    The owner must keep at most ``capacity`` ids live by advancing
    ``min_live_id`` before each insertion (the bounded
    :class:`~repro.gnn.AsyncEventGNN` does); ring rows are then
    unambiguous because live ids always form a contiguous range.  Edges
    must be consumed through :meth:`edge_cursor` / :meth:`edges_since`
    — :meth:`edges` only exposes the not-yet-recycled tail.  The batch
    paths (:meth:`insert_many`) are unsupported: this class serves the
    strictly per-event path.

    Args:
        capacity: maximum number of live nodes (ring rows).
    """

    #: Recycle the edge log once this many edges have been consumed.
    #: Keeps the buffer under ``_EDGE_RECYCLE + max_neighbours`` rows
    #: while leaving plenty of slack for cursor-based consumption.
    _EDGE_RECYCLE = 4096

    def __init__(self, *args, capacity: int, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._pos = np.empty((self.capacity, 3), dtype=np.float64)
        self._t_us = np.empty(self.capacity, dtype=np.int64)
        self._edge_floor = 0  # edges dropped from the front of the log
        self._prune_floor = 0  # min_live_id at the last bucket prune

    # -- ring node storage --------------------------------------------
    def _reserve_nodes(self, extra: int) -> None:
        pass  # ring rows are recycled, never grown

    def _append_node(self, p: np.ndarray, t_us: int) -> int:
        i = self._num_nodes
        row = i % self.capacity
        self._pos[row] = p
        self._t_us[row] = t_us
        self._num_nodes = i + 1
        return i

    def _node_pos(self, ids: np.ndarray) -> np.ndarray:
        return self._pos[ids % self.capacity]

    def _node_t(self, ids: np.ndarray) -> np.ndarray:
        return self._t_us[ids % self.capacity]

    # -- bounded edge log ---------------------------------------------
    def edge_cursor(self) -> int:
        return self._edge_floor + self._num_edges

    def edges_since(self, cursor: int) -> np.ndarray:
        start = max(0, cursor - self._edge_floor)
        return self._edge_arr[start : self._num_edges]

    def insert(self, x: float, y: float, t_us: int) -> int:
        if self._num_edges >= self._EDGE_RECYCLE:
            self._edge_floor += self._num_edges
            self._num_edges = 0
        if self.min_live_id - self._prune_floor >= self.capacity:
            self._prune_evicted()
        return super().insert(x, y, t_us)

    def _prune_evicted(self) -> None:
        """Drop evicted ids from the hash buckets.

        Runs once per ``capacity`` evictions, so its full-bucket scan
        amortises to O(1) per event while bounding bucket memory to the
        live set (lookups already filter by ``min_live_id``, so pruning
        affects memory only, never results).
        """
        floor = self.min_live_id
        for tc in list(self._tcells):
            grid = self._tcells[tc]
            for key in list(grid):
                kept = [i for i in grid[key] if i >= floor]
                if kept:
                    grid[key] = kept
                else:
                    del grid[key]
            if not grid:
                del self._tcells[tc]
        live = self._tcells.keys() | self._tblocks.keys()
        self._min_tcell = min(live) if live else None
        self._prune_floor = floor

    def state_bytes(self) -> int:
        """Bytes held in the fixed node rings and the edge log."""
        return int(
            self._pos.nbytes + self._t_us.nbytes + self._edge_arr.nbytes
        )

    # -- batch paths are not bounded-safe -----------------------------
    def insert_many(self, xs, ys, ts) -> np.ndarray:
        raise NotImplementedError(
            "BoundedHashInserter serves the per-event path; use insert()"
        )

    def insert_stream(self, xs, ys, ts) -> None:
        for x, y, t in zip(xs, ys, ts):
            self.insert(float(x), float(y), int(t))
