"""Incremental (asynchronous) event-graph maintenance.

The ABL-GRAPH experiment: Section IV says incorporating a new event into
a continuously evolving graph with global tree search is the latency
bottleneck, and that algorithmic innovation (HUGNet, ref [72]) bought
"a four order of magnitude speed-up".

Three per-event insertion strategies over a sliding temporal window:

* :class:`NaiveInserter` — compare against *every* live node, O(N) per
  event (the strawman a full graph rebuild approximates);
* :class:`KDTreeInserter` — rebuild a k-d tree periodically and query it
  per event (the tree-search baseline, ref [75]);
* :class:`HashInserter` — constant-time bucket lookup in a spatial hash
  keyed on the (x, y) cell, with stale entries pruned lazily; because a
  *causal* (past-only, hemispherical) neighbourhood is used, arriving
  events never modify existing edges — they only append — which is what
  makes O(1) insertion possible.

All three produce identical edge sets (a tested invariant) and count the
candidate comparisons performed, which is the ABL-GRAPH cost metric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

__all__ = [
    "InsertionStats",
    "NaiveInserter",
    "KDTreeInserter",
    "HashInserter",
]


@dataclass
class InsertionStats:
    """Work accounting for a sequence of insertions.

    Attributes:
        events_inserted: number of events inserted.
        candidates_examined: pairwise distance evaluations performed.
        edges_created: directed (past → new) edges added.
        tree_builds: k-d tree (re)constructions (KDTreeInserter only).
    """

    events_inserted: int = 0
    candidates_examined: int = 0
    edges_created: int = 0
    tree_builds: int = 0

    @property
    def candidates_per_event(self) -> float:
        """Mean candidate comparisons per inserted event."""
        if self.events_inserted == 0:
            return 0.0
        return self.candidates_examined / self.events_inserted


class _InserterBase:
    """Shared state and parameters of the insertion strategies.

    Args:
        radius: spatiotemporal connection radius (after time scaling).
        time_scale_us: microseconds per temporal unit.
        window_us: events older than this are dropped from the live set.
        max_neighbours: cap on edges created per insertion (nearest kept).
    """

    def __init__(
        self,
        radius: float,
        time_scale_us: float = 1000.0,
        window_us: int = 50_000,
        max_neighbours: int = 16,
    ) -> None:
        if radius <= 0:
            raise ValueError("radius must be positive")
        if time_scale_us <= 0:
            raise ValueError("time_scale_us must be positive")
        if window_us <= 0:
            raise ValueError("window_us must be positive")
        if max_neighbours <= 0:
            raise ValueError("max_neighbours must be positive")
        self.radius = radius
        self.time_scale_us = time_scale_us
        self.window_us = window_us
        self.max_neighbours = max_neighbours
        self.stats = InsertionStats()
        self._positions: list[np.ndarray] = []  # all inserted points, by index
        self._times_us: list[int] = []
        self._edges: list[tuple[int, int]] = []

    @property
    def num_nodes(self) -> int:
        """Total nodes inserted so far."""
        return len(self._positions)

    def edges(self) -> np.ndarray:
        """All (past-node → new-node) edges created, in insertion order."""
        if not self._edges:
            return np.zeros((0, 2), dtype=np.int64)
        return np.asarray(self._edges, dtype=np.int64)

    def _point(self, x: float, y: float, t_us: int) -> np.ndarray:
        return np.array([x, y, t_us / self.time_scale_us], dtype=np.float64)

    def _select_edges(
        self, new_index: int, candidate_ids: np.ndarray, candidate_pos: np.ndarray, p: np.ndarray
    ) -> None:
        """Connect the nearest in-radius candidates to the new node."""
        if candidate_ids.size == 0:
            return
        d = candidate_pos - p
        dist2 = np.einsum("ij,ij->i", d, d)
        in_radius = dist2 <= self.radius**2
        ids = candidate_ids[in_radius]
        dist2 = dist2[in_radius]
        if ids.size > self.max_neighbours:
            # Deterministic tie-break by node id so every insertion
            # strategy selects identical edges.
            order = np.lexsort((ids, dist2))
            ids = ids[order][: self.max_neighbours]
        for j in sorted(int(i) for i in ids):
            self._edges.append((j, new_index))
            self.stats.edges_created += 1

    def insert(self, x: float, y: float, t_us: int) -> int:
        """Insert one event; returns its node index."""
        raise NotImplementedError

    def insert_stream(self, xs, ys, ts) -> None:
        """Insert a batch of time-ordered events."""
        for x, y, t in zip(xs, ys, ts):
            self.insert(float(x), float(y), int(t))


class NaiveInserter(_InserterBase):
    """O(live-set) insertion: scan every live node per event."""

    def insert(self, x: float, y: float, t_us: int) -> int:
        p = self._point(x, y, t_us)
        new_index = self.num_nodes
        cutoff = t_us - self.window_us
        live = [
            i for i, ti in enumerate(self._times_us) if ti >= cutoff
        ]
        self.stats.candidates_examined += len(live)
        if live:
            ids = np.asarray(live, dtype=np.int64)
            pos = np.stack([self._positions[i] for i in live])
            self._select_edges(new_index, ids, pos, p)
        self._positions.append(p)
        self._times_us.append(t_us)
        self.stats.events_inserted += 1
        return new_index


class KDTreeInserter(_InserterBase):
    """Tree-search insertion: periodic k-d tree rebuild + per-event query.

    Args:
        rebuild_every: insertions between tree rebuilds; events arriving
            since the last rebuild are scanned linearly.
    """

    def __init__(self, *args, rebuild_every: int = 64, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if rebuild_every <= 0:
            raise ValueError("rebuild_every must be positive")
        self.rebuild_every = rebuild_every
        self._tree: cKDTree | None = None
        self._tree_ids: np.ndarray = np.zeros(0, dtype=np.int64)
        self._pending: list[int] = []  # node ids not yet in the tree

    def _rebuild(self, now_us: int) -> None:
        cutoff = now_us - self.window_us
        live = [i for i, ti in enumerate(self._times_us) if ti >= cutoff]
        self._tree_ids = np.asarray(live, dtype=np.int64)
        if live:
            pts = np.stack([self._positions[i] for i in live])
            self._tree = cKDTree(pts)
            # Tree construction touches every live point.
            self.stats.candidates_examined += len(live)
        else:
            self._tree = None
        self._pending = []
        self.stats.tree_builds += 1

    def insert(self, x: float, y: float, t_us: int) -> int:
        p = self._point(x, y, t_us)
        new_index = self.num_nodes
        cutoff = t_us - self.window_us

        ids: list[int] = []
        pos: list[np.ndarray] = []
        if self._tree is not None:
            hits = self._tree.query_ball_point(p, self.radius)
            # A k-d tree range query inspects ~log N + hits nodes.
            self.stats.candidates_examined += max(
                1, int(np.log2(self._tree.n + 1))
            ) + len(hits)
            for h in hits:
                node = int(self._tree_ids[h])
                if self._times_us[node] >= cutoff:
                    ids.append(node)
                    pos.append(self._positions[node])
        # Linear scan of the pending (not-yet-indexed) nodes.
        for node in self._pending:
            self.stats.candidates_examined += 1
            if self._times_us[node] >= cutoff:
                ids.append(node)
                pos.append(self._positions[node])

        if ids:
            self._select_edges(
                new_index, np.asarray(ids, dtype=np.int64), np.stack(pos), p
            )
        self._positions.append(p)
        self._times_us.append(t_us)
        self._pending.append(new_index)
        self.stats.events_inserted += 1
        if len(self._pending) >= self.rebuild_every:
            self._rebuild(t_us)
        return new_index


class HashInserter(_InserterBase):
    """O(1) insertion via a 3-D spatiotemporal hash.

    Buckets are keyed on the ``(x // r, y // r, t_scaled // r)`` cell
    (r = connection radius).  Any node within 3-D radius of a new event
    lies in one of the 9 spatially neighbouring cells of the current or
    previous time-cell, so a lookup touches at most 18 buckets.  Whole
    time-cells expire as time advances (stale buckets are deleted in
    O(1) amortised), so the candidate count is bounded by the *local*
    event density — independent of both the sensor size and the
    liveness-window length.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # time-cell index -> {(cx, cy): [node ids]}
        self._tcells: dict[int, dict[tuple[int, int], list[int]]] = {}

    def _cell_xy(self, x: float, y: float) -> tuple[int, int]:
        return (int(np.floor(x / self.radius)), int(np.floor(y / self.radius)))

    def _cell_t(self, t_us: int) -> int:
        return int(np.floor(t_us / (self.time_scale_us * self.radius)))

    def insert(self, x: float, y: float, t_us: int) -> int:
        p = self._point(x, y, t_us)
        new_index = self.num_nodes
        cutoff = t_us - self.window_us
        cx, cy = self._cell_xy(x, y)
        ct = self._cell_t(t_us)

        # Expire time-cells that can no longer hold in-radius candidates.
        for old in [k for k in self._tcells if k < ct - 1]:
            del self._tcells[old]

        ids: list[int] = []
        pos: list[np.ndarray] = []
        for tc in (ct - 1, ct):
            grid = self._tcells.get(tc)
            if not grid:
                continue
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    bucket = grid.get((cx + dx, cy + dy))
                    if not bucket:
                        continue
                    for node in bucket:
                        if self._times_us[node] >= cutoff:
                            ids.append(node)
                            pos.append(self._positions[node])
                            self.stats.candidates_examined += 1

        if ids:
            self._select_edges(
                new_index, np.asarray(ids, dtype=np.int64), np.stack(pos), p
            )
        self._positions.append(p)
        self._times_us.append(t_us)
        self._tcells.setdefault(ct, {}).setdefault((cx, cy), []).append(new_index)
        self.stats.events_inserted += 1
        return new_index
