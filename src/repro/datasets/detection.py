"""Object-localisation dataset (detection substrate).

Section III-A: "event-cameras may be used not only for classification,
but also for event-based segmentation and detection [35]" — and the
event-GNN results the paper highlights (ref [70]) are object-detection
results.  This dataset provides the minimal detection task: a single
bright disk moves through the scene and the label is its ground-truth
centre position at the end of the recording, so localisation error is
directly measurable in pixels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..camera.noise import NoiseParams
from ..camera.sensor import CameraConfig, EventCamera
from ..camera.video import MovingDisk
from ..events.stream import EventStream, Resolution

__all__ = ["DetectionSample", "make_detection_dataset", "centroid_baseline"]


@dataclass(frozen=True)
class DetectionSample:
    """One localisation recording.

    Attributes:
        stream: the recorded events.
        cx, cy: ground-truth object centre at the recording's end.
        radius: object radius in pixels.
    """

    stream: EventStream
    cx: float
    cy: float
    radius: float


def make_detection_dataset(
    num_samples: int = 20,
    resolution: Resolution = Resolution(32, 32),
    duration_us: int = 40_000,
    noise: NoiseParams | None = None,
    sample_period_us: int = 1000,
    seed: int = 0,
) -> list[DetectionSample]:
    """Generate localisation recordings of a moving disk.

    The disk starts at a random interior position, moves with a random
    velocity, and the label is its exact analytic position at
    ``duration_us``.

    Args:
        num_samples: number of recordings.
        resolution: sensor size.
        duration_us: recording length.
        noise: optional sensor noise.
        sample_period_us: camera sampling period.
        seed: master seed.
    """
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    rng = np.random.default_rng(seed)
    w, h = resolution.width, resolution.height
    samples: list[DetectionSample] = []
    for i in range(num_samples):
        radius = float(rng.uniform(2.5, 4.5))
        x0 = float(rng.uniform(0.25 * w, 0.75 * w))
        y0 = float(rng.uniform(0.25 * h, 0.75 * h))
        speed = float(rng.uniform(150.0, 450.0))
        angle = float(rng.uniform(0.0, 2.0 * np.pi))
        vx = speed * np.cos(angle)
        vy = speed * np.sin(angle)
        stim = MovingDisk(
            resolution, radius=radius, x0=x0, y0=y0, vx_px_per_s=vx, vy_px_per_s=vy
        )
        cam = EventCamera(
            resolution,
            CameraConfig(noise=noise, sample_period_us=sample_period_us, seed=seed * 1000 + i),
        )
        stream, _ = cam.record(stim, duration_us)
        t_s = duration_us * 1e-6
        samples.append(
            DetectionSample(
                stream.rezero_time(),
                cx=x0 + vx * t_s,
                cy=y0 + vy * t_s,
                radius=radius,
            )
        )
    return samples


def centroid_baseline(
    sample: DetectionSample, window_us: int = 10_000
) -> tuple[float, float]:
    """Event-centroid localiser: mean position of the trailing window.

    The simplest event-native detector — no learning, O(events) — used
    as the baseline that learned detectors must beat under noise.

    Args:
        sample: the recording.
        window_us: trailing window over which events are averaged.
    """
    if window_us <= 0:
        raise ValueError("window_us must be positive")
    s = sample.stream
    if len(s) == 0:
        res = s.resolution
        return res.width / 2.0, res.height / 2.0
    t_end = int(s.t[-1])
    recent = s.time_window(t_end - window_us, t_end + 1)
    if len(recent) == 0:
        recent = s
    return float(recent.x.mean()), float(recent.y.mean())
