"""Synthetic labelled event datasets generated through the camera simulator."""

from .base import (
    EventDataset,
    EventSample,
    cache_dataset,
    load_cached_dataset,
    train_test_split,
)
from .detection import DetectionSample, centroid_baseline, make_detection_dataset
from .digits import DIGIT_BITMAPS, DIGIT_CLASSES, SaccadeDigit, make_digits_dataset
from .gestures import GESTURE_CLASSES, make_gestures_dataset
from .shapes import SHAPE_CLASSES, make_shapes_dataset

__all__ = [
    "EventSample",
    "EventDataset",
    "train_test_split",
    "cache_dataset",
    "load_cached_dataset",
    "DetectionSample",
    "make_detection_dataset",
    "centroid_baseline",
    "SHAPE_CLASSES",
    "make_shapes_dataset",
    "GESTURE_CLASSES",
    "make_gestures_dataset",
    "DIGIT_CLASSES",
    "DIGIT_BITMAPS",
    "SaccadeDigit",
    "make_digits_dataset",
]
