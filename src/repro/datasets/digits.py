"""Saccade-digits dataset: an N-MNIST-style synthetic benchmark.

N-MNIST (the most common event-camera classification benchmark in the
cited literature) was recorded by moving a sensor in three micro-saccades
in front of static MNIST digits.  We reproduce the generating mechanism:
static 5x7 bitmap digits are swept along a triangular three-leg saccade
path in front of the simulated camera, so events are produced by the
digit's edges exactly as in the original recording procedure.
"""

from __future__ import annotations

import numpy as np

from ..camera.noise import NoiseParams
from ..camera.sensor import CameraConfig, EventCamera
from ..camera.video import BACKGROUND, FOREGROUND, Stimulus
from ..events.stream import Resolution
from .base import EventDataset, EventSample

__all__ = ["DIGIT_CLASSES", "DIGIT_BITMAPS", "SaccadeDigit", "make_digits_dataset"]

#: Class index → name for the digits dataset.
DIGIT_CLASSES = tuple(str(d) for d in range(10))

# 5x7 bitmap font (rows top→bottom), classic seven-row LCD style.
_FONT = {
    0: ["01110", "10001", "10011", "10101", "11001", "10001", "01110"],
    1: ["00100", "01100", "00100", "00100", "00100", "00100", "01110"],
    2: ["01110", "10001", "00001", "00010", "00100", "01000", "11111"],
    3: ["11111", "00010", "00100", "00010", "00001", "10001", "01110"],
    4: ["00010", "00110", "01010", "10010", "11111", "00010", "00010"],
    5: ["11111", "10000", "11110", "00001", "00001", "10001", "01110"],
    6: ["00110", "01000", "10000", "11110", "10001", "10001", "01110"],
    7: ["11111", "00001", "00010", "00100", "01000", "01000", "01000"],
    8: ["01110", "10001", "10001", "01110", "10001", "10001", "01110"],
    9: ["01110", "10001", "10001", "01111", "00001", "00010", "01100"],
}

#: Digit → float bitmap (1.0 = bright stroke), shape (7, 5).
DIGIT_BITMAPS: dict[int, np.ndarray] = {
    d: np.array([[float(c) for c in row] for row in rows]) for d, rows in _FONT.items()
}


class SaccadeDigit(Stimulus):
    """A static digit bitmap swept along a triangular saccade path.

    The path has three straight legs (right-down, left-down, up), each
    taking one third of ``saccade_period_us`` — mirroring the N-MNIST
    recording protocol.

    Args:
        resolution: frame size.
        digit: which digit (0–9).
        scale: integer upscaling of the 5x7 bitmap.
        saccade_period_us: time for one full three-leg cycle.
        amplitude_px: saccade excursion in pixels.
        origin: top-left rest position of the bitmap; defaults to centred.
    """

    def __init__(
        self,
        resolution: Resolution,
        digit: int,
        scale: int = 3,
        saccade_period_us: int = 90_000,
        amplitude_px: float = 3.0,
        origin: tuple[float, float] | None = None,
    ) -> None:
        super().__init__(resolution)
        if digit not in DIGIT_BITMAPS:
            raise ValueError(f"digit must be 0-9, got {digit}")
        if scale < 1:
            raise ValueError("scale must be >= 1")
        if saccade_period_us <= 0:
            raise ValueError("saccade_period_us must be positive")
        self.digit = digit
        self.period = saccade_period_us
        self.amplitude = amplitude_px
        bitmap = DIGIT_BITMAPS[digit]
        self._glyph = np.kron(bitmap, np.ones((scale, scale)))
        gh, gw = self._glyph.shape
        if origin is None:
            origin = ((resolution.width - gw) / 2.0, (resolution.height - gh) / 2.0)
        self.origin = origin

    def _saccade_offset(self, t_us: float) -> tuple[float, float]:
        """Offset of the glyph along the triangular three-leg path."""
        phase = (t_us % self.period) / self.period  # [0, 1)
        a = self.amplitude
        if phase < 1.0 / 3.0:  # leg 1: move right and down
            f = phase * 3.0
            return a * f, a * f
        if phase < 2.0 / 3.0:  # leg 2: move left, keep going down
            f = (phase - 1.0 / 3.0) * 3.0
            return a * (1.0 - 2.0 * f), a * (1.0 + f)
        f = (phase - 2.0 / 3.0) * 3.0  # leg 3: return up to start
        return a * (-1.0 + f), a * 2.0 * (1.0 - f)

    def frame(self, t_us: float) -> np.ndarray:
        dx, dy = self._saccade_offset(t_us)
        x0 = self.origin[0] + dx
        y0 = self.origin[1] + dy
        out = np.full(
            (self.resolution.height, self.resolution.width), BACKGROUND, dtype=np.float64
        )
        self._paint(out, self._glyph, x0, y0)
        return out

    @staticmethod
    def _paint(canvas: np.ndarray, glyph: np.ndarray, x0: float, y0: float) -> None:
        """Bilinearly composite ``glyph`` onto ``canvas`` at float position."""
        ix, iy = int(np.floor(x0)), int(np.floor(y0))
        fx, fy = x0 - ix, y0 - iy
        weights = [
            (iy, ix, (1 - fy) * (1 - fx)),
            (iy, ix + 1, (1 - fy) * fx),
            (iy + 1, ix, fy * (1 - fx)),
            (iy + 1, ix + 1, fy * fx),
        ]
        gh, gw = glyph.shape
        ch, cw = canvas.shape
        coverage = np.zeros_like(canvas)
        for oy, ox, wgt in weights:
            if wgt == 0.0:
                continue
            ys = slice(max(0, oy), min(ch, oy + gh))
            xs = slice(max(0, ox), min(cw, ox + gw))
            gys = slice(ys.start - oy, ys.stop - oy)
            gxs = slice(xs.start - ox, xs.stop - ox)
            coverage[ys, xs] += wgt * glyph[gys, gxs]
        np.clip(coverage, 0.0, 1.0, out=coverage)
        canvas += (FOREGROUND - BACKGROUND) * coverage


def make_digits_dataset(
    num_per_class: int = 10,
    digits: tuple[int, ...] = (0, 1, 2, 3),
    resolution: Resolution = Resolution(32, 32),
    duration_us: int = 90_000,
    noise: NoiseParams | None = None,
    sample_period_us: int = 1000,
    seed: int = 0,
) -> EventDataset:
    """Generate the saccade-digits dataset.

    Args:
        num_per_class: recordings per digit.
        digits: which digits to include (labels are re-indexed 0..n-1).
        resolution: sensor size.
        duration_us: recording length (one saccade cycle by default).
        noise: optional sensor noise.
        sample_period_us: camera sampling period.
        seed: master seed; randomises saccade amplitude/period slightly
            and the glyph rest position per sample.
    """
    if num_per_class <= 0:
        raise ValueError("num_per_class must be positive")
    if not digits:
        raise ValueError("need at least one digit class")
    rng = np.random.default_rng(seed)
    samples: list[EventSample] = []
    for label, digit in enumerate(digits):
        for i in range(num_per_class):
            amp = float(rng.uniform(2.5, 4.0))
            period = int(rng.uniform(0.8, 1.2) * 90_000)
            jx = float(rng.uniform(-2.0, 2.0))
            jy = float(rng.uniform(-2.0, 2.0))
            glyph_w = 5 * 3
            glyph_h = 7 * 3
            origin = (
                (resolution.width - glyph_w) / 2.0 + jx,
                (resolution.height - glyph_h) / 2.0 + jy,
            )
            stim = SaccadeDigit(
                resolution,
                digit,
                saccade_period_us=period,
                amplitude_px=amp,
                origin=origin,
            )
            cam = EventCamera(
                resolution,
                CameraConfig(
                    noise=noise,
                    sample_period_us=sample_period_us,
                    seed=seed * 100_000 + digit * 1000 + i,
                ),
            )
            stream, _ = cam.record(stim, duration_us)
            samples.append(
                EventSample(stream.rezero_time(), label, {"digit": digit, "amp": amp})
            )
    return EventDataset(
        samples, tuple(str(d) for d in digits), name="saccade-digits"
    )
