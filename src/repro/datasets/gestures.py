"""Motion-gesture dataset: classes separable only by temporal structure.

Four classes — clockwise rotation, counter-clockwise rotation, leftward
translation, rightward translation — of an identical bright bar.  Any
single accumulated frame of a rotation looks the same for both rotation
directions, so polarity-free spatial snapshots cannot separate CW from
CCW: a classifier must exploit event timing (or polarity structure).
This is the dataset that stresses the paper's "Data — exploit temporal
information" axis of Table I.
"""

from __future__ import annotations

import math

import numpy as np

from ..camera.noise import NoiseParams
from ..camera.sensor import CameraConfig, EventCamera
from ..camera.video import MovingBar, RotatingBar, Stimulus
from ..events.stream import Resolution
from .base import EventDataset, EventSample

__all__ = ["GESTURE_CLASSES", "make_gestures_dataset"]

#: Class index → name for the gestures dataset.
GESTURE_CLASSES = ("rotate-cw", "rotate-ccw", "translate-left", "translate-right")


def _random_gesture(
    cls: int,
    resolution: Resolution,
    rng: np.random.Generator,
    revs_range: tuple[float, float],
) -> tuple[Stimulus, dict]:
    """Draw a random stimulus of the given gesture class and its metadata."""
    if cls in (0, 1):
        revs = float(rng.uniform(*revs_range))
        omega = 2.0 * math.pi * revs * (1.0 if cls == 0 else -1.0)
        phase = float(rng.uniform(0.0, 2.0 * math.pi))
        stim: Stimulus = RotatingBar(
            resolution,
            angular_speed_rad_per_s=omega,
            phase0_rad=phase,
            bar_half_width=1.5,
        )
        meta = {"revs_per_s": revs, "phase0": phase}
    elif cls in (2, 3):
        speed = float(rng.uniform(400.0, 1000.0))
        direction = -1.0 if cls == 2 else 1.0
        x0 = resolution.width + 4.0 if cls == 2 else -4.0
        stim = MovingBar(
            resolution, speed_px_per_s=direction * speed, bar_width=3.0, x0=x0
        )
        meta = {"speed": speed, "direction": direction}
    else:
        raise ValueError(f"unknown gesture class {cls}")
    return stim, meta


def make_gestures_dataset(
    num_per_class: int = 20,
    resolution: Resolution = Resolution(32, 32),
    duration_us: int = 100_000,
    noise: NoiseParams | None = None,
    sample_period_us: int = 1000,
    revs_range: tuple[float, float] = (0.5, 1.5),
    seed: int = 0,
) -> EventDataset:
    """Generate the motion-gestures dataset.

    Args:
        num_per_class: recordings per gesture class.
        resolution: sensor size.
        duration_us: recording length per sample.  For the CW/CCW classes
            to be genuinely temporal (not readable off the polarity
            asymmetry of a partial sweep), the recording should span at
            least one full rotation: ``duration_us * revs >= 1e6``.
        noise: optional sensor noise.
        sample_period_us: camera sampling period.
        revs_range: rotation speed range in revolutions per second.
        seed: master seed.

    Returns:
        An :class:`EventDataset` with classes :data:`GESTURE_CLASSES`.
    """
    if num_per_class <= 0:
        raise ValueError("num_per_class must be positive")
    if revs_range[0] <= 0 or revs_range[1] < revs_range[0]:
        raise ValueError("revs_range must be positive and ordered")
    rng = np.random.default_rng(seed)
    samples: list[EventSample] = []
    for cls in range(len(GESTURE_CLASSES)):
        for i in range(num_per_class):
            stim, meta = _random_gesture(cls, resolution, rng, revs_range)
            cam = EventCamera(
                resolution,
                CameraConfig(
                    noise=noise,
                    sample_period_us=sample_period_us,
                    seed=seed * 10_000 + cls * 1000 + i,
                ),
            )
            stream, _ = cam.record(stim, duration_us)
            samples.append(EventSample(stream.rezero_time(), cls, meta))
    return EventDataset(samples, GESTURE_CLASSES, name="motion-gestures")
