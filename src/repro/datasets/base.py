"""Dataset containers and split utilities.

Synthetic event datasets substitute for the public event-camera
benchmarks (N-MNIST, N-CARS, DVS-Gesture) the paper's cited evaluations
use.  A dataset is a list of labelled :class:`EventSample` recordings,
all produced deterministically through the camera simulator so every
experiment is exactly reproducible from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..events.stream import EventStream

__all__ = ["EventSample", "EventDataset", "train_test_split", "cache_dataset", "load_cached_dataset"]


@dataclass(frozen=True)
class EventSample:
    """One labelled event recording.

    Attributes:
        stream: the recorded events.
        label: integer class index.
        metadata: free-form generation parameters (speed, position, ...).
    """

    stream: EventStream
    label: int
    metadata: dict | None = None


class EventDataset:
    """An ordered collection of labelled event recordings.

    Args:
        samples: the recordings.
        class_names: index → human-readable class name.
        name: dataset identifier used in reports.
    """

    def __init__(
        self,
        samples: Sequence[EventSample],
        class_names: Sequence[str],
        name: str = "dataset",
    ) -> None:
        samples = list(samples)
        if not samples:
            raise ValueError("dataset must contain at least one sample")
        num_classes = len(class_names)
        for s in samples:
            if not 0 <= s.label < num_classes:
                raise ValueError(f"label {s.label} out of range for {num_classes} classes")
        self.samples = samples
        self.class_names = list(class_names)
        self.name = name

    @property
    def num_classes(self) -> int:
        """Number of distinct classes."""
        return len(self.class_names)

    @property
    def resolution(self):
        """Sensor resolution shared by the samples."""
        return self.samples[0].stream.resolution

    def __len__(self) -> int:
        return len(self.samples)

    def __getitem__(self, idx: int) -> EventSample:
        return self.samples[idx]

    def __iter__(self) -> Iterator[EventSample]:
        return iter(self.samples)

    def labels(self) -> np.ndarray:
        """All labels as an int array."""
        return np.array([s.label for s in self.samples], dtype=np.int64)

    def class_counts(self) -> np.ndarray:
        """Per-class sample counts."""
        return np.bincount(self.labels(), minlength=self.num_classes)

    def subset(self, indices: Sequence[int], name: str | None = None) -> "EventDataset":
        """A new dataset restricted to ``indices`` (order preserved)."""
        return EventDataset(
            [self.samples[i] for i in indices],
            self.class_names,
            name or self.name,
        )

    def shuffled(self, rng: np.random.Generator) -> "EventDataset":
        """A new dataset with samples in random order."""
        order = rng.permutation(len(self.samples))
        return self.subset(order.tolist())

    def mean_events_per_sample(self) -> float:
        """Average event count across recordings."""
        return float(np.mean([len(s.stream) for s in self.samples]))


def cache_dataset(dataset: EventDataset, directory) -> None:
    """Persist a dataset to a directory of ``.npz`` recordings + manifest.

    Synthetic datasets are cheap to regenerate but expensive inside tight
    experiment loops; caching makes reruns I/O-bound instead.

    Args:
        dataset: the dataset to persist.
        directory: destination directory (created if missing).
    """
    import json
    from pathlib import Path

    from ..events.io import save_events

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest = {
        "name": dataset.name,
        "class_names": dataset.class_names,
        "labels": dataset.labels().tolist(),
        "num_samples": len(dataset),
    }
    (directory / "manifest.json").write_text(json.dumps(manifest))
    for i, sample in enumerate(dataset):
        save_events(sample.stream, directory / f"sample_{i:05d}.npz")


def load_cached_dataset(directory) -> EventDataset:
    """Load a dataset previously written by :func:`cache_dataset`.

    Args:
        directory: cache directory.

    Raises:
        FileNotFoundError: when the manifest or a recording is missing.
    """
    import json
    from pathlib import Path

    from ..events.io import load_events

    directory = Path(directory)
    manifest = json.loads((directory / "manifest.json").read_text())
    samples = []
    for i, label in enumerate(manifest["labels"]):
        stream = load_events(directory / f"sample_{i:05d}.npz")
        samples.append(EventSample(stream, int(label)))
    return EventDataset(samples, manifest["class_names"], manifest["name"])


def train_test_split(
    dataset: EventDataset, test_fraction: float = 0.25, rng: np.random.Generator | None = None
) -> tuple[EventDataset, EventDataset]:
    """Stratified train/test split.

    Each class contributes (approximately) ``test_fraction`` of its
    samples to the test set, so small synthetic datasets keep balanced
    evaluation sets.

    Args:
        dataset: dataset to split.
        test_fraction: fraction assigned to the test set, in (0, 1).
        rng: shuffling generator (defaults to seed 0 for determinism).

    Returns:
        ``(train, test)`` datasets.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = rng or np.random.default_rng(0)
    labels = dataset.labels()
    train_idx: list[int] = []
    test_idx: list[int] = []
    for cls in range(dataset.num_classes):
        idx = np.nonzero(labels == cls)[0]
        idx = rng.permutation(idx)
        n_test = max(1, int(round(test_fraction * idx.size))) if idx.size > 1 else 0
        test_idx.extend(idx[:n_test].tolist())
        train_idx.extend(idx[n_test:].tolist())
    if not train_idx or not test_idx:
        raise ValueError("split produced an empty partition; use more samples")
    return (
        dataset.subset(sorted(train_idx), f"{dataset.name}-train"),
        dataset.subset(sorted(test_idx), f"{dataset.name}-test"),
    )
