"""Moving-shapes classification dataset.

Three shape classes (bar, box, disk) cross the field of view with
randomised position, speed and direction.  The class is recognisable
from spatial event structure alone, which makes this the "easy" dataset
on which all three paradigms should perform well — the analogue of the
simple classification benchmarks (N-MNIST-like) in the cited literature.
"""

from __future__ import annotations

import numpy as np

from ..camera.noise import NoiseParams
from ..camera.sensor import CameraConfig, EventCamera
from ..camera.video import MovingBar, MovingBox, MovingDisk, Stimulus
from ..events.stream import Resolution
from .base import EventDataset, EventSample

__all__ = ["SHAPE_CLASSES", "make_shapes_dataset"]

#: Class index → name for the shapes dataset.
SHAPE_CLASSES = ("bar", "box", "disk")


def _random_shape(
    cls: int, resolution: Resolution, rng: np.random.Generator
) -> tuple[Stimulus, dict]:
    """Draw a random stimulus of the given class and its metadata."""
    w, h = resolution.width, resolution.height
    speed = float(rng.uniform(400.0, 1200.0))
    direction = 1.0 if rng.random() < 0.5 else -1.0
    vx = direction * speed
    y0 = float(rng.uniform(0.25 * h, 0.75 * h))
    x0 = -4.0 if direction > 0 else w + 4.0
    meta = {"speed": speed, "direction": direction, "y0": y0}

    if cls == 0:
        size = float(rng.uniform(2.0, 4.0))
        stim: Stimulus = MovingBar(resolution, speed_px_per_s=vx, bar_width=size, x0=x0)
    elif cls == 1:
        size = float(rng.uniform(5.0, 9.0))
        stim = MovingBox(resolution, side=size, x0=x0, y0=y0, vx_px_per_s=vx)
    elif cls == 2:
        size = float(rng.uniform(3.0, 5.0))
        stim = MovingDisk(resolution, radius=size, x0=x0, y0=y0, vx_px_per_s=vx)
    else:
        raise ValueError(f"unknown shape class {cls}")
    meta["size"] = size
    return stim, meta


def make_shapes_dataset(
    num_per_class: int = 20,
    resolution: Resolution = Resolution(32, 32),
    duration_us: int = 60_000,
    noise: NoiseParams | None = None,
    sample_period_us: int = 1000,
    seed: int = 0,
) -> EventDataset:
    """Generate the moving-shapes dataset.

    Args:
        num_per_class: recordings per shape class.
        resolution: sensor size.
        duration_us: recording length per sample.
        noise: optional sensor noise (None = clean).
        sample_period_us: camera sampling period.
        seed: master seed; every sample derives deterministically from it.

    Returns:
        An :class:`EventDataset` with classes :data:`SHAPE_CLASSES`.
    """
    if num_per_class <= 0:
        raise ValueError("num_per_class must be positive")
    rng = np.random.default_rng(seed)
    samples: list[EventSample] = []
    for cls in range(len(SHAPE_CLASSES)):
        for i in range(num_per_class):
            stim, meta = _random_shape(cls, resolution, rng)
            cam = EventCamera(
                resolution,
                CameraConfig(
                    noise=noise,
                    sample_period_us=sample_period_us,
                    seed=seed * 10_000 + cls * 1000 + i,
                ),
            )
            stream, _ = cam.record(stim, duration_us)
            samples.append(EventSample(stream.rezero_time(), cls, meta))
    return EventDataset(samples, SHAPE_CLASSES, name="moving-shapes")
