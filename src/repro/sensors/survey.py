"""Survey database of published event-camera sensors (Fig. 1 substrate).

Fig. 1 of the paper plots pixel pitch and array size of event cameras
over the decade 2008–2022, showing pixel pitch falling towards the
conventional global-shutter range (<= 5 um) while array sizes climb into
the megapixel range, driven by back-side illumination (BSI) and 3-D
wafer stacking.

This module records the sensors the paper's Section II cites (with the
publicly documented figures from the respective ISSCC / JSSC / ISCAS
papers) and provides the trend fits the FIG1 benchmark regenerates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["SensorRecord", "SENSOR_SURVEY", "TrendFit", "fit_pixel_pitch_trend", "fit_array_size_trend", "fill_factor_by_process"]


@dataclass(frozen=True)
class SensorRecord:
    """One published event-camera sensor.

    Attributes:
        name: common sensor designation.
        organisation: developing company or institute.
        year: publication year.
        width, height: pixel array dimensions.
        pixel_pitch_um: pixel pitch in micrometres.
        fill_factor: photodiode area fraction (0–1) where published.
        backside_illuminated: True for BSI / 3-D stacked processes.
        max_throughput_eps: peak readout rate in events/s where published.
        reference: citation key in the paper's bibliography.
    """

    name: str
    organisation: str
    year: int
    width: int
    height: int
    pixel_pitch_um: float
    fill_factor: float | None
    backside_illuminated: bool
    max_throughput_eps: float | None
    reference: str

    @property
    def num_pixels(self) -> int:
        """Total pixel count of the array."""
        return self.width * self.height

    @property
    def megapixels(self) -> float:
        """Array size in megapixels."""
        return self.num_pixels / 1e6


#: Sensors cited in Section II of the paper, in publication order.
#: Figures are the publicly documented ones from the cited papers.
SENSOR_SURVEY: tuple[SensorRecord, ...] = (
    SensorRecord(
        "DVS128", "ETH Zurich / iniLabs", 2008, 128, 128, 40.0, 0.086, False, 1e6, "[6]"
    ),
    SensorRecord(
        "ATIS", "AIT", 2010, 304, 240, 30.0, 0.20, False, 10e6, "[16]"
    ),
    SensorRecord(
        "sDVS128", "IMSE-CNM", 2013, 128, 128, 35.0, 0.10, False, 4e6, "[14]"
    ),
    SensorRecord(
        "DAVIS240", "ETH Zurich / iniLabs", 2014, 240, 180, 18.5, 0.22, False, 12e6, "[13]"
    ),
    SensorRecord(
        "CeleX-V", "CelePixel / Omnivision", 2019, 1280, 800, 9.8, None, False, 160e6, "[12]"
    ),
    SensorRecord(
        "Prophesee Gen4 (IMX636)", "Prophesee / Sony", 2020, 1280, 720, 4.86, 0.77, True, 1.066e9, "[10]"
    ),
    SensorRecord(
        "Samsung DVS-Gen4", "Samsung", 2020, 1280, 960, 4.95, 0.75, True, 1.2e9, "[11]"
    ),
    SensorRecord(
        "Hybrid APS-DVS", "CEA-Leti", 2021, 132, 104, 15.0, None, False, 5e6, "[15]"
    ),
)


@dataclass(frozen=True)
class TrendFit:
    """Exponential (log-linear) trend ``value = a * exp(b * (year - year0))``.

    Attributes:
        year0: reference year (first sensor in the fit).
        log_intercept: natural log of the value at ``year0``.
        log_slope: per-year log change (negative = shrinking).
        r_squared: goodness of fit in log space.
    """

    year0: int
    log_intercept: float
    log_slope: float
    r_squared: float

    def predict(self, year: float | np.ndarray) -> np.ndarray:
        """Trend value at ``year``."""
        years = np.asarray(year, dtype=np.float64)
        return np.exp(self.log_intercept + self.log_slope * (years - self.year0))

    @property
    def doubling_time_years(self) -> float:
        """Years for the value to double (negative = halving time)."""
        if self.log_slope == 0.0:
            return math.inf
        return math.log(2.0) / self.log_slope

    @property
    def factor_per_decade(self) -> float:
        """Multiplicative change over ten years."""
        return math.exp(self.log_slope * 10.0)


def _log_linear_fit(years: np.ndarray, values: np.ndarray) -> TrendFit:
    """Least-squares fit of ``log(value)`` against ``year``."""
    if years.size < 2:
        raise ValueError("need at least two points to fit a trend")
    year0 = int(years.min())
    x = years - year0
    y = np.log(values)
    slope, intercept = np.polyfit(x, y, 1)
    pred = intercept + slope * x
    ss_res = float(np.sum((y - pred) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return TrendFit(year0, float(intercept), float(slope), r2)


def fit_pixel_pitch_trend(
    survey: tuple[SensorRecord, ...] = SENSOR_SURVEY,
) -> TrendFit:
    """Fit the pixel-pitch shrink trend across the survey.

    The paper's Fig. 1 shows pitch falling from ~40 um (2008) towards the
    global-shutter range (<= 5 um) by 2020; the fitted ``factor_per_decade``
    should be well below 1.
    """
    years = np.array([s.year for s in survey], dtype=np.float64)
    pitch = np.array([s.pixel_pitch_um for s in survey], dtype=np.float64)
    return _log_linear_fit(years, pitch)


def fit_array_size_trend(
    survey: tuple[SensorRecord, ...] = SENSOR_SURVEY,
) -> TrendFit:
    """Fit the array-size growth trend (pixels per sensor) across the survey."""
    years = np.array([s.year for s in survey], dtype=np.float64)
    pixels = np.array([s.num_pixels for s in survey], dtype=np.float64)
    return _log_linear_fit(years, pixels)


def fill_factor_by_process(
    survey: tuple[SensorRecord, ...] = SENSOR_SURVEY,
) -> dict[str, float]:
    """Mean fill factor for front-side vs back-side illuminated sensors.

    Reproduces the Section II statement that BSI/3-D stacking lifted fill
    factor "from around one fifth to more than three quarters".
    """
    fsi = [s.fill_factor for s in survey if not s.backside_illuminated and s.fill_factor]
    bsi = [s.fill_factor for s in survey if s.backside_illuminated and s.fill_factor]
    out: dict[str, float] = {}
    if fsi:
        out["FSI"] = float(np.mean(fsi))
    if bsi:
        out["BSI"] = float(np.mean(bsi))
    return out
