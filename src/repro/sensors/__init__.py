"""Published event-camera sensor survey and scaling trends (Fig. 1)."""

from .survey import (
    SENSOR_SURVEY,
    SensorRecord,
    TrendFit,
    fill_factor_by_process,
    fit_array_size_trend,
    fit_pixel_pitch_trend,
)

__all__ = [
    "SensorRecord",
    "SENSOR_SURVEY",
    "TrendFit",
    "fit_pixel_pitch_trend",
    "fit_array_size_trend",
    "fill_factor_by_process",
]
