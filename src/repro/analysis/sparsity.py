"""Sparsity measurement helpers shared by experiments and reports."""

from __future__ import annotations

import numpy as np

from ..nn.layers import Module, ReLU
from ..nn.tensor import Tensor, no_grad

__all__ = ["zero_fraction", "relu_activation_sparsity", "density_sweep"]


def zero_fraction(values: np.ndarray) -> float:
    """Fraction of exactly-zero entries of an array."""
    arr = np.asarray(values)
    if arr.size == 0:
        return 0.0
    return float(np.count_nonzero(arr == 0) / arr.size)


def relu_activation_sparsity(model, x: np.ndarray) -> list[float]:
    """Zero fraction after every ReLU in a ``Sequential``-like model.

    Args:
        model: a model exposing ``layers`` (e.g. :class:`repro.nn.Sequential`).
        x: input batch.

    Returns:
        One zero-fraction per ReLU layer, in execution order.
    """
    if not hasattr(model, "layers"):
        raise TypeError("model must expose a .layers sequence")
    fracs: list[float] = []
    t = Tensor(np.asarray(x, dtype=np.float64))
    with no_grad():
        for layer in model.layers:
            t = layer(t)
            if isinstance(layer, ReLU):
                fracs.append(zero_fraction(t.data))
    return fracs


def density_sweep(values: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
    """Fraction of entries whose magnitude exceeds each threshold.

    Useful for studying how aggressive activation clipping would
    increase exploitable sparsity.
    """
    arr = np.abs(np.asarray(values)).reshape(-1)
    thresholds = np.asarray(thresholds, dtype=np.float64)
    if arr.size == 0:
        return np.zeros_like(thresholds)
    return np.array([float(np.mean(arr > t)) for t in thresholds])
