"""Event-based motion segmentation via graph connectivity.

Section IV cites motion segmentation (Mitrokhin et al. 2020, ref [71])
among the tasks event-graph methods handle.  The graph structure itself
already performs a first segmentation: events belonging to one coherent
moving object are densely connected in (x, y, t) while separate objects
(or noise) form separate components.  This module labels events by the
connected components of their spatiotemporal radius graph and evaluates
cluster quality against ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from ..events.stream import EventStream
from ..gnn.build import radius_graph_spatial_hash

__all__ = ["SegmentationResult", "segment_events", "segmentation_purity"]


@dataclass(frozen=True)
class SegmentationResult:
    """Connected-component labelling of a stream's events.

    Attributes:
        labels: per-event component id (−1 for events in tiny components
            treated as noise).
        num_segments: number of retained components.
        num_noise: events labelled as noise.
    """

    labels: np.ndarray
    num_segments: int
    num_noise: int

    def segment_sizes(self) -> np.ndarray:
        """Sizes of the retained segments, largest first."""
        if self.num_segments == 0:
            return np.zeros(0, dtype=np.int64)
        counts = np.bincount(self.labels[self.labels >= 0], minlength=self.num_segments)
        return np.sort(counts)[::-1]  # sort-ok: value sort, ties identical


def segment_events(
    stream: EventStream,
    radius: float = 3.0,
    time_scale_us: float = 2000.0,
    min_size: int = 10,
    max_events: int = 1500,
) -> SegmentationResult:
    """Label events by spatiotemporal connected components.

    Args:
        stream: input events.
        radius: connection radius in scaled units.
        time_scale_us: microseconds per temporal unit.
        min_size: components smaller than this are labelled noise (−1).
        max_events: uniform subsample cap (labels refer to the
            subsampled stream; use :func:`numpy.linspace` indices to map
            back if needed).

    Returns:
        Component labelling of the (possibly subsampled) stream.
    """
    if radius <= 0 or time_scale_us <= 0:
        raise ValueError("radius and time_scale_us must be positive")
    if min_size < 1:
        raise ValueError("min_size must be >= 1")
    if max_events <= 0:
        raise ValueError("max_events must be positive")
    if len(stream) > max_events:
        idx = np.unique(np.linspace(0, len(stream) - 1, max_events).astype(np.int64))
        stream = stream[idx]
    n = len(stream)
    if n == 0:
        return SegmentationResult(np.zeros(0, dtype=np.int64), 0, 0)

    points = stream.as_point_cloud(time_scale_us)
    edges = radius_graph_spatial_hash(points, radius)
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from(map(tuple, edges))

    labels = np.full(n, -1, dtype=np.int64)
    next_label = 0
    num_noise = 0
    for component in nx.connected_components(graph):
        if len(component) >= min_size:
            labels[list(component)] = next_label
            next_label += 1
        else:
            num_noise += len(component)
    return SegmentationResult(labels, next_label, num_noise)


def segmentation_purity(labels: np.ndarray, truth: np.ndarray) -> float:
    """Cluster purity of a labelling against ground-truth object ids.

    Noise-labelled events (−1) are excluded; purity is the fraction of
    events whose segment's majority ground-truth id matches their own.

    Args:
        labels: predicted segment ids (−1 = noise).
        truth: ground-truth object ids, same length.
    """
    labels = np.asarray(labels, dtype=np.int64)
    truth = np.asarray(truth, dtype=np.int64)
    if labels.shape != truth.shape:
        raise ValueError("labels and truth must have equal shape")
    mask = labels >= 0
    if not mask.any():
        return 0.0
    correct = 0
    for seg in np.unique(labels[mask]):
        seg_truth = truth[labels == seg]
        counts = np.bincount(seg_truth)
        correct += int(counts.max())
    return correct / int(mask.sum())
