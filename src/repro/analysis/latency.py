"""End-to-end latency decomposition (the Table I latency row, expanded).

Section V: "CNNs largely lack this potential for data-driven computation
that puts a lower bound on, for example, how fast they can respond to
changes in their input data."

The decomposition separates the three latency components of an
event-vision system — sensing, data preparation/accumulation, and
compute — for each paradigm, making the structural difference explicit:
the frame-based path carries an *accumulation* term equal to (on
average half) the frame window regardless of compute speed, while the
event-driven paths respond within their per-event processing time.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LatencyBreakdown", "frame_pipeline_latency", "event_pipeline_latency"]


@dataclass(frozen=True)
class LatencyBreakdown:
    """Latency components in microseconds.

    Attributes:
        sensing_us: pixel + readout latency.
        accumulation_us: mean wait for the aggregation boundary
            (0 for event-driven paths).
        compute_us: model execution time.
    """

    sensing_us: float
    accumulation_us: float
    compute_us: float

    @property
    def total_us(self) -> float:
        """End-to-end latency."""
        return self.sensing_us + self.accumulation_us + self.compute_us

    @property
    def accumulation_fraction(self) -> float:
        """Share of the total spent waiting for the frame boundary."""
        total = self.total_us
        return self.accumulation_us / total if total > 0 else 0.0


def frame_pipeline_latency(
    window_us: float, compute_us: float, sensing_us: float = 100.0
) -> LatencyBreakdown:
    """Latency of a dense-frame pipeline.

    An event lands uniformly inside the accumulation window, so it waits
    ``window / 2`` on average before the frame is even closed; compute
    starts only then.

    Args:
        window_us: frame accumulation window.
        compute_us: CNN inference time per frame.
        sensing_us: sensor-side latency.
    """
    if window_us <= 0 or compute_us < 0 or sensing_us < 0:
        raise ValueError("latency components must be non-negative (window positive)")
    return LatencyBreakdown(sensing_us, window_us / 2.0, compute_us)


def event_pipeline_latency(
    per_event_compute_us: float, sensing_us: float = 100.0
) -> LatencyBreakdown:
    """Latency of an event-driven (SNN or asynchronous GNN) pipeline.

    No accumulation term: the decisive event triggers computation
    directly.

    Args:
        per_event_compute_us: time to fold one event into the decision.
        sensing_us: sensor-side latency.
    """
    if per_event_compute_us < 0 or sensing_us < 0:
        raise ValueError("latency components must be non-negative")
    return LatencyBreakdown(sensing_us, 0.0, per_event_compute_us)
