"""Analysis helpers: latency decomposition, sparsity, report rendering."""

from .flow import FlowEstimate, plane_fit_flow
from .latency import LatencyBreakdown, event_pipeline_latency, frame_pipeline_latency
from .segmentation import SegmentationResult, segment_events, segmentation_purity
from .sparsity import density_sweep, relu_activation_sparsity, zero_fraction
from .tables import ascii_series, ascii_table

__all__ = [
    "LatencyBreakdown",
    "FlowEstimate",
    "plane_fit_flow",
    "SegmentationResult",
    "segment_events",
    "segmentation_purity",
    "frame_pipeline_latency",
    "event_pipeline_latency",
    "zero_fraction",
    "relu_activation_sparsity",
    "density_sweep",
    "ascii_table",
    "ascii_series",
]
