"""ASCII table and series rendering for benchmark reports."""

from __future__ import annotations

from typing import Sequence

__all__ = ["ascii_table", "ascii_series"]


def ascii_table(header: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render rows as an aligned ASCII table with a header rule.

    Args:
        header: column titles.
        rows: row cell values (stringified with ``str``).
    """
    str_rows = [[str(c) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(header):
            raise ValueError(f"row {i} has {len(row)} cells, header has {len(header)}")
    all_rows = [list(header)] + str_rows
    widths = [max(len(r[i]) for r in all_rows) for i in range(len(header))]
    lines = [" | ".join(c.ljust(w) for c, w in zip(all_rows[0], widths))]
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_series(
    xs: Sequence[float], ys: Sequence[float], width: int = 50, label: str = ""
) -> str:
    """Render an (x, y) series as a horizontal ASCII bar chart.

    Bars are scaled to the maximum y; useful for printing benchmark
    sweeps (the "figures" of the reproduction) in a terminal.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if width <= 0:
        raise ValueError("width must be positive")
    if len(ys) == 0:
        return f"{label} (empty)"
    peak = max(abs(float(y)) for y in ys) or 1.0
    lines = [label] if label else []
    for x, y in zip(xs, ys):
        bar = "#" * max(0, int(round(abs(float(y)) / peak * width)))
        lines.append(f"{x:>12.4g} | {bar} {float(y):.4g}")
    return "\n".join(lines)
