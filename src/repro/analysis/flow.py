"""Event-based optical flow by local plane fitting.

The application family Section IV cites (EV-FlowNet, ref [57]; HUGNet's
optical-flow results, ref [72]) rests on the fact that a moving edge
writes a *plane* into the (x, y, t) point cloud: the time at which each
pixel fired varies linearly across the edge's path.  Fitting that plane
locally recovers the normal flow — a direct use of the "fine
microsecond-level temporal resolution" dense frames discard.

This is the classic Benosman-style local plane fit: for each query
event, the most recent firing times of its spatial neighbourhood are
regressed as ``t = a*x + b*y + c``; the normal velocity is
``(a, b) / (a^2 + b^2)`` pixels per microsecond.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..events.stream import EventStream

__all__ = ["FlowEstimate", "plane_fit_flow"]


@dataclass(frozen=True)
class FlowEstimate:
    """Per-event normal-flow estimates.

    Attributes:
        indices: indices of the events that received an estimate.
        vx_px_per_s, vy_px_per_s: estimated velocity components.
        residuals: RMS plane-fit residual per estimate (microseconds).
    """

    indices: np.ndarray
    vx_px_per_s: np.ndarray
    vy_px_per_s: np.ndarray
    residuals: np.ndarray

    @property
    def num_estimates(self) -> int:
        """Number of events with a valid estimate."""
        return self.indices.size

    def median_velocity(self) -> tuple[float, float]:
        """Robust aggregate velocity ``(vx, vy)`` in px/s."""
        if self.num_estimates == 0:
            return 0.0, 0.0
        return float(np.median(self.vx_px_per_s)), float(np.median(self.vy_px_per_s))

    def speeds(self) -> np.ndarray:
        """Per-estimate speed magnitudes in px/s."""
        return np.hypot(self.vx_px_per_s, self.vy_px_per_s)


def plane_fit_flow(
    stream: EventStream,
    radius: int = 3,
    dt_max_us: int = 30_000,
    min_points: int = 8,
    max_events: int = 2000,
    polarity: int | None = None,
    refractory_us: int = 0,
) -> FlowEstimate:
    """Estimate normal flow at (a subsample of) the stream's events.

    For accurate estimates on real DVS output the stream should be
    reduced to *first crossings*: a contrast edge triggers a burst of
    several events per pixel, and fitting against mid-burst timestamps
    compresses the temporal gradient (biasing speeds high).  Pass a
    single ``polarity`` and a ``refractory_us`` at least as long as one
    edge's burst to keep only each pixel's first crossing.

    Args:
        stream: input events (time-sorted).
        radius: spatial half-window of the local fit.
        dt_max_us: neighbourhood timestamps older than this (relative to
            the query event) are excluded from the fit.
        min_points: minimum neighbourhood support for a valid fit.
        max_events: uniform subsample cap on query events.
        polarity: restrict to one polarity (+1/-1); None keeps both.
        refractory_us: per-pixel burst-suppression window (0 disables).

    Returns:
        Per-event flow estimates (events without enough support or with
        a degenerate plane are skipped); indices refer to the filtered
        stream when filtering is enabled.
    """
    if radius < 1:
        raise ValueError("radius must be >= 1")
    if dt_max_us <= 0:
        raise ValueError("dt_max_us must be positive")
    if min_points < 3:
        raise ValueError("min_points must be >= 3 (a plane has 3 parameters)")
    if max_events <= 0:
        raise ValueError("max_events must be positive")
    if polarity is not None:
        stream = stream.with_polarity(polarity)
    if refractory_us:
        from ..events.ops import refractory_filter

        stream = refractory_filter(stream, refractory_us)

    n = len(stream)
    if n == 0:
        empty = np.zeros(0)
        return FlowEstimate(np.zeros(0, dtype=np.int64), empty, empty, empty)

    w, h = stream.resolution.width, stream.resolution.height
    last = np.full((h, w), np.iinfo(np.int64).min, dtype=np.int64)

    query = set(
        np.linspace(0, n - 1, min(n, max_events)).astype(np.int64).tolist()
    )
    idx_out: list[int] = []
    vx_out: list[float] = []
    vy_out: list[float] = []
    res_out: list[float] = []

    xs, ys, ts = stream.x, stream.y, stream.t
    for i in range(n):
        x, y, t = int(xs[i]), int(ys[i]), int(ts[i])
        last[y, x] = t
        if i not in query:
            continue
        x0, x1 = max(0, x - radius), min(w, x + radius + 1)
        y0, y1 = max(0, y - radius), min(h, y + radius + 1)
        patch = last[y0:y1, x0:x1]
        yy, xx = np.nonzero(patch >= t - dt_max_us)
        if yy.size < min_points:
            continue
        px = xx + x0
        py = yy + y0
        pt = patch[yy, xx].astype(np.float64)
        a_mat = np.stack([px, py, np.ones_like(px)], axis=1).astype(np.float64)
        coef, _, rank, _ = np.linalg.lstsq(a_mat, pt, rcond=None)
        if rank < 3:
            continue
        a, b, _c = coef
        grad2 = a * a + b * b
        if grad2 < 1e-12:
            continue  # temporally flat: no resolvable motion
        # t = a x + b y + c  =>  normal velocity (px/us) = (a, b) / |grad|^2.
        vx = a / grad2 * 1e6
        vy = b / grad2 * 1e6
        resid = float(np.sqrt(np.mean((a_mat @ coef - pt) ** 2)))
        idx_out.append(i)
        vx_out.append(vx)
        vy_out.append(vy)
        res_out.append(resid)

    return FlowEstimate(
        np.asarray(idx_out, dtype=np.int64),
        np.asarray(vx_out),
        np.asarray(vy_out),
        np.asarray(res_out),
    )
