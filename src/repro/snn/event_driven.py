"""Clock-driven vs event-driven SNN simulation with operation accounting.

Section III-A: "While digital hardware will typically update the weighted
sums … in an event-driven fashion, the update procedure for neuron state
variables … is most often a clocked process … While event-based state
updates have been studied [44], they generally require more memory
accesses, higher complexity calculations that ultimately leads to a less
efficient implementation [42] and poor scalability."

Both simulators below compute *identical* LIF dynamics over the same
binned input spikes (a tested invariant) but count the work a digital
neuromorphic core would do under each update discipline:

* **clock-driven** — every timestep touches every neuron's state
  (read-modify-write) regardless of activity; synaptic accumulation is
  event-driven in both cases.
* **event-driven** — a neuron's state is touched only when it receives
  input; the decay since its last update is then computed with an
  explicit exponentiation (more ALU work and an extra timestamp word
  per neuron).

The crossover between the two as a function of input activity is the
ABL-SNNHW experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .neuron import LIFParams, ResetMode, lif_decay

__all__ = [
    "SimCounters",
    "SimResult",
    "clock_driven_sim",
    "event_driven_sim",
    "network_sim",
]


@dataclass
class SimCounters:
    """Operation and memory-access counts of one simulation.

    Attributes:
        neuron_state_reads / writes: neuron state memory words accessed.
        synapse_reads: weight memory words read.
        alu_simple: additions/comparisons/multiply-accumulate operations.
        alu_exp: exponential-decay evaluations (event-driven only; these
            are the "higher complexity calculations" of Section III-A).
        spikes: output spikes emitted.
    """

    neuron_state_reads: int = 0
    neuron_state_writes: int = 0
    synapse_reads: int = 0
    alu_simple: int = 0
    alu_exp: int = 0
    spikes: int = 0

    @property
    def memory_accesses(self) -> int:
        """Total memory words touched."""
        return self.neuron_state_reads + self.neuron_state_writes + self.synapse_reads

    @property
    def total_ops(self) -> int:
        """Total ALU operations (exp counted once here; weighted in hw model)."""
        return self.alu_simple + self.alu_exp


@dataclass
class SimResult:
    """Output of a counted simulation.

    Attributes:
        spike_counts: per-neuron output spike totals.
        spike_raster: ``(T, N)`` output spike counts per step (bursts
            of k spikes appear as the value k).
        counters: work accounting.
    """

    spike_counts: np.ndarray
    spike_raster: np.ndarray
    counters: SimCounters = field(default_factory=SimCounters)


def _validate(weights: np.ndarray, input_spikes: np.ndarray) -> None:
    if weights.ndim != 2:
        raise ValueError(f"weights must be (N, F_in), got {weights.shape}")
    if input_spikes.ndim != 2 or input_spikes.shape[1] != weights.shape[1]:
        raise ValueError(
            f"input spikes must be (T, {weights.shape[1]}), got {input_spikes.shape}"
        )


def clock_driven_sim(
    weights: np.ndarray,
    input_spikes: np.ndarray,
    params: LIFParams = LIFParams(),
    dt_us: float = 1000.0,
) -> SimResult:
    """Simulate one LIF layer with clocked state updates.

    Synaptic accumulation happens only for active inputs (event-driven
    weighted sums), but *every* neuron's membrane is read, decayed and
    written back at *every* timestep — the standard digital neuromorphic
    core discipline (refs [41], [42]).
    """
    _validate(weights, input_spikes)
    num_neurons = weights.shape[0]
    t_steps = input_spikes.shape[0]
    alpha = lif_decay(params, dt_us)
    c = SimCounters()
    v = np.zeros(num_neurons)
    raster = np.zeros((t_steps, num_neurons))

    for t in range(t_steps):
        active = np.nonzero(input_spikes[t] > 0)[0]
        # Event-driven synaptic accumulation: one weight read and one
        # accumulate per (active input x neuron).
        if active.size:
            i_t = weights[:, active].sum(axis=1)
            c.synapse_reads += active.size * num_neurons
            c.alu_simple += active.size * num_neurons
        else:
            i_t = 0.0
        # Clocked state update: full sweep, every step.
        c.neuron_state_reads += num_neurons
        c.neuron_state_writes += num_neurons
        c.alu_simple += 2 * num_neurons  # decay multiply + integrate add
        v = alpha * v + i_t
        c.alu_simple += num_neurons  # threshold comparison
        n_fired = _fire_and_reset(v, params)
        raster[t] = n_fired
        c.spikes += int(n_fired.sum())

    return SimResult(raster.sum(axis=0), raster, c)


def _fire_and_reset(v: np.ndarray, params: LIFParams) -> np.ndarray:
    """Emit every due spike at this instant and reset ``v`` in place.

    With subtract reset a membrane that crossed k thresholds emits k
    spikes (burst), so no residual super-threshold charge survives into
    silent steps — this is what makes the clocked and event-driven
    simulations produce identical rasters.
    """
    if params.reset is ResetMode.SUBTRACT:
        n = np.floor_divide(v, params.threshold)
        n = np.maximum(n, 0.0)
        v -= n * params.threshold
        return n
    fired = (v >= params.threshold).astype(np.float64)
    v[fired > 0] = 0.0
    return fired


def event_driven_sim(
    weights: np.ndarray,
    input_spikes: np.ndarray,
    params: LIFParams = LIFParams(),
    dt_us: float = 1000.0,
) -> SimResult:
    """Simulate the same LIF layer with purely event-driven state updates.

    Neuron state is touched only at input events: the elapsed decay
    ``alpha ** (t - t_last)`` is computed on demand (an exponentiation —
    the extra ALU complexity), the synaptic weight added, the threshold
    checked, and the state plus its timestamp written back.  Silent
    periods cost nothing.

    The spike raster matches :func:`clock_driven_sim` exactly: with no
    input a LIF membrane only decays, so no threshold crossing can occur
    between events.
    """
    _validate(weights, input_spikes)
    num_neurons = weights.shape[0]
    t_steps = input_spikes.shape[0]
    alpha = lif_decay(params, dt_us)
    c = SimCounters()
    v = np.zeros(num_neurons)
    last_update = np.zeros(num_neurons, dtype=np.int64)
    raster = np.zeros((t_steps, num_neurons))

    for t in range(t_steps):
        active = np.nonzero(input_spikes[t] > 0)[0]
        if active.size == 0:
            continue
        # Every neuron receives input from each active channel (dense
        # weights): read state + timestamp, apply lazy decay, accumulate.
        elapsed = (t + 1) - last_update
        decay = alpha**elapsed
        c.neuron_state_reads += 2 * num_neurons  # membrane + timestamp words
        c.alu_exp += num_neurons  # the exponentiation
        c.alu_simple += num_neurons  # decay multiply
        i_t = weights[:, active].sum(axis=1)
        c.synapse_reads += active.size * num_neurons
        c.alu_simple += active.size * num_neurons
        v = decay * v + i_t
        c.alu_simple += num_neurons  # integrate add
        last_update[:] = t + 1
        c.alu_simple += num_neurons  # threshold comparison
        n_fired = _fire_and_reset(v, params)
        c.neuron_state_writes += 2 * num_neurons
        raster[t] = n_fired
        c.spikes += int(n_fired.sum())

    return SimResult(raster.sum(axis=0), raster, c)


def network_sim(
    weight_stack: list[np.ndarray],
    input_spikes: np.ndarray,
    params: LIFParams = LIFParams(),
    dt_us: float = 1000.0,
    update: str = "clock",
) -> tuple[SimResult, SimCounters]:
    """Simulate a multi-layer LIF network with aggregated work counters.

    Each layer's output raster feeds the next layer as its input spikes
    (burst counts are clipped to {0, 1} between layers, as a physical
    axon carries at most one spike per timestep).  The two update
    disciplines remain raster-equivalent layer by layer, so the whole
    network's output is discipline-independent — only the counters
    differ.

    Args:
        weight_stack: per-layer dense weights ``(N_l, N_{l-1})``.
        input_spikes: ``(T, F_in)`` network input.
        params: shared LIF parameters.
        dt_us: timestep.
        update: "clock" or "event".

    Returns:
        ``(final_layer_result, total_counters)``.
    """
    if not weight_stack:
        raise ValueError("need at least one layer")
    if update not in ("clock", "event"):
        raise ValueError("update must be 'clock' or 'event'")
    sim = clock_driven_sim if update == "clock" else event_driven_sim
    total = SimCounters()
    spikes = np.asarray(input_spikes, dtype=np.float64)
    result: SimResult | None = None
    for weights in weight_stack:
        result = sim(weights, spikes, params, dt_us)
        c = result.counters
        total.neuron_state_reads += c.neuron_state_reads
        total.neuron_state_writes += c.neuron_state_writes
        total.synapse_reads += c.synapse_reads
        total.alu_simple += c.alu_simple
        total.alu_exp += c.alu_exp
        total.spikes += c.spikes
        spikes = np.clip(result.spike_raster, 0.0, 1.0)
    assert result is not None
    return result, total
