"""Surrogate gradient functions for spiking neurons.

The derivative of the spiking activation is a Dirac delta — zero
everywhere except at threshold — so plain backpropagation cannot train
SNNs.  The surrogate gradient method (Neftci, Mostafa & Zenke 2019,
ref [30]) replaces that derivative with a smooth pseudo-derivative on
the backward pass only.  This module provides the standard surrogate
family and the :func:`spike` function that applies a hard threshold
forward and the chosen surrogate backward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..nn.tensor import Tensor, custom_gradient

__all__ = [
    "SurrogateGradient",
    "FastSigmoid",
    "ATan",
    "Triangle",
    "SigmoidDerivative",
    "spike",
]


@dataclass(frozen=True)
class SurrogateGradient:
    """A named surrogate pseudo-derivative ``g(v)`` of the Heaviside step.

    ``v`` is the membrane potential minus threshold; the pseudo-derivative
    peaks at ``v = 0`` and decays with ``|v|`` at a rate set by ``slope``.
    """

    name: str = "base"
    slope: float = 10.0

    def __post_init__(self) -> None:
        if self.slope <= 0:
            raise ValueError("slope must be positive")

    def derivative(self, v: np.ndarray) -> np.ndarray:
        """Pseudo-derivative evaluated at centred potential ``v``."""
        raise NotImplementedError


class FastSigmoid(SurrogateGradient):
    """Zenke & Ganguli's fast-sigmoid surrogate: ``1 / (1 + k|v|)^2``."""

    def __init__(self, slope: float = 10.0) -> None:
        super().__init__(name="fast_sigmoid", slope=slope)

    def derivative(self, v: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + self.slope * np.abs(v)) ** 2


class ATan(SurrogateGradient):
    """Arctangent surrogate: ``k / (2 * (1 + (pi/2 * k * v)^2))``."""

    def __init__(self, slope: float = 2.0) -> None:
        super().__init__(name="atan", slope=slope)

    def derivative(self, v: np.ndarray) -> np.ndarray:
        return self.slope / (2.0 * (1.0 + (np.pi / 2.0 * self.slope * v) ** 2))


class Triangle(SurrogateGradient):
    """Piecewise-linear (triangular) surrogate: ``max(0, 1 - k|v|) * k``."""

    def __init__(self, slope: float = 1.0) -> None:
        super().__init__(name="triangle", slope=slope)

    def derivative(self, v: np.ndarray) -> np.ndarray:
        return np.maximum(0.0, 1.0 - self.slope * np.abs(v)) * self.slope


class SigmoidDerivative(SurrogateGradient):
    """Derivative-of-sigmoid surrogate: ``k * s(kv) * (1 - s(kv))``."""

    def __init__(self, slope: float = 4.0) -> None:
        super().__init__(name="sigmoid", slope=slope)

    def derivative(self, v: np.ndarray) -> np.ndarray:
        s = 1.0 / (1.0 + np.exp(-self.slope * v))
        return self.slope * s * (1.0 - s)


def spike(
    membrane: Tensor, threshold: float, surrogate: SurrogateGradient
) -> Tensor:
    """Threshold the membrane potential into binary spikes.

    Forward: ``spikes = 1 if membrane >= threshold else 0``.
    Backward: gradient is scaled by ``surrogate.derivative(membrane - threshold)``
    instead of the true (zero-almost-everywhere) derivative.

    Args:
        membrane: membrane potentials (any shape).
        threshold: firing threshold.
        surrogate: pseudo-derivative to use on the backward pass.

    Returns:
        A {0, 1} tensor of the same shape, differentiable through the
        surrogate.
    """
    centred = membrane.data - threshold
    spikes = (centred >= 0.0).astype(np.float64)
    pseudo = surrogate.derivative(centred)

    def backward(g: np.ndarray):
        return [g * pseudo]

    return custom_gradient(spikes, [membrane], backward)
