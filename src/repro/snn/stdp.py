"""Unsupervised spike-timing-dependent plasticity (Diehl & Cook 2015).

Section III-A cites bio-inspired Hebbian learning (ref [27]) as one of
the on-chip-friendly training routes: no backpropagation, purely local
weight updates driven by pre/post spike timing.  This module implements
a compact version of the Diehl & Cook digit-recognition network:

* one excitatory LIF layer with all-to-all plastic input synapses,
* winner-take-all lateral inhibition (hard, one winner per step),
* exponential pre-synaptic traces driving pair-based STDP,
* adaptive thresholds (homeostasis) so all neurons stay in the game,
* post-hoc class assignment: each neuron is labelled with the class it
  responds to most, and inference is a vote of the labelled neurons.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["STDPParams", "STDPNetwork"]


@dataclass(frozen=True)
class STDPParams:
    """Hyper-parameters of the STDP layer.

    Attributes:
        lr_pre: weight depression rate on pre-without-post activity.
        lr_post: weight potentiation rate at post-spike on traced inputs.
        trace_decay: per-step decay of the pre-synaptic trace.
        tau_us: membrane time constant.
        threshold: base firing threshold.
        theta_plus: adaptive threshold increment per post spike.
        theta_decay: per-step decay of the adaptive threshold component.
        w_max: maximum synaptic weight.
    """

    lr_pre: float = 1e-4
    lr_post: float = 1e-2
    trace_decay: float = 0.9
    tau_us: float = 20_000.0
    threshold: float = 0.5
    theta_plus: float = 0.05
    theta_decay: float = 0.999
    w_max: float = 1.0

    def __post_init__(self) -> None:
        if self.lr_pre < 0 or self.lr_post < 0:
            raise ValueError("learning rates must be non-negative")
        if not 0.0 <= self.trace_decay < 1.0:
            raise ValueError("trace_decay must be in [0, 1)")
        if self.w_max <= 0:
            raise ValueError("w_max must be positive")


class STDPNetwork:
    """One-layer unsupervised STDP classifier.

    Args:
        num_inputs: input spike-channel count.
        num_neurons: excitatory neuron count.
        params: STDP hyper-parameters.
        dt_us: timestep length.
        rng: weight-initialisation generator.
    """

    def __init__(
        self,
        num_inputs: int,
        num_neurons: int,
        params: STDPParams = STDPParams(),
        dt_us: float = 1000.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if num_inputs <= 0 or num_neurons <= 0:
            raise ValueError("sizes must be positive")
        rng = rng or np.random.default_rng(0)
        self.params = params
        self.num_inputs = num_inputs
        self.num_neurons = num_neurons
        self.alpha = float(np.exp(-dt_us / params.tau_us))
        self.weights = rng.uniform(0.0, 0.3, (num_neurons, num_inputs))
        self.theta = np.zeros(num_neurons)  # adaptive threshold component
        self.assignments = np.zeros(num_neurons, dtype=np.int64)
        self._response_counts: np.ndarray | None = None

    def present(self, spike_train: np.ndarray, learn: bool = True) -> np.ndarray:
        """Present one ``(T, num_inputs)`` spike train; return spike counts.

        Args:
            spike_train: binary input spikes over time.
            learn: apply STDP updates (disable for inference).

        Returns:
            Per-neuron output spike counts over the presentation.
        """
        spike_train = np.asarray(spike_train, dtype=np.float64)
        if spike_train.ndim != 2 or spike_train.shape[1] != self.num_inputs:
            raise ValueError(
                f"expected (T, {self.num_inputs}) spike train, got {spike_train.shape}"
            )
        p = self.params
        v = np.zeros(self.num_neurons)
        trace = np.zeros(self.num_inputs)
        counts = np.zeros(self.num_neurons)
        for t in range(spike_train.shape[0]):
            x = spike_train[t]
            trace = trace * p.trace_decay + x
            v = self.alpha * v + self.weights @ x
            over = v - (p.threshold + self.theta)
            winner = int(np.argmax(over))
            if over[winner] >= 0.0:
                counts[winner] += 1
                v[:] = 0.0  # hard winner-take-all resets the whole layer
                self.theta[winner] += p.theta_plus
                if learn:
                    # Potentiate traced inputs, depress silent ones.
                    dw = p.lr_post * (trace - 0.2) * (p.w_max - self.weights[winner])
                    self.weights[winner] = np.clip(
                        self.weights[winner] + dw, 0.0, p.w_max
                    )
            if learn:
                # Slow pre-synaptic depression keeps weights bounded.
                self.weights -= p.lr_pre * x[None, :] * self.weights
                np.clip(self.weights, 0.0, p.w_max, out=self.weights)
            self.theta *= p.theta_decay
        return counts

    def fit(
        self,
        spike_trains: list[np.ndarray],
        labels: np.ndarray,
        num_classes: int,
        epochs: int = 1,
    ) -> None:
        """Unsupervised training followed by neuron → class assignment.

        Labels are used *only* for the post-hoc assignment step, exactly
        as in Diehl & Cook: learning itself is unsupervised.
        """
        labels = np.asarray(labels, dtype=np.int64)
        if len(spike_trains) != labels.size:
            raise ValueError("one label per spike train required")
        for _ in range(epochs):
            for train in spike_trains:
                self.present(train, learn=True)
        # Assignment pass (no learning).
        responses = np.zeros((self.num_neurons, num_classes))
        for train, label in zip(spike_trains, labels):
            counts = self.present(train, learn=False)
            responses[:, label] += counts
        self._response_counts = responses
        self.assignments = responses.argmax(axis=1)

    def predict(self, spike_train: np.ndarray) -> int:
        """Classify one spike train by the labelled-neuron vote."""
        counts = self.present(spike_train, learn=False)
        votes = np.zeros(int(self.assignments.max()) + 1)
        for neuron, count in enumerate(counts):
            votes[self.assignments[neuron]] += count
        return int(votes.argmax())

    def accuracy(self, spike_trains: list[np.ndarray], labels: np.ndarray) -> float:
        """Classification accuracy over a list of spike trains."""
        labels = np.asarray(labels, dtype=np.int64)
        preds = np.array([self.predict(t) for t in spike_trains])
        return float(np.mean(preds == labels))
