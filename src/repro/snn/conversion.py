"""ANN → SNN conversion with threshold balancing.

Section III-A: "SNNs are obtained through the conversion of a pre-trained
neural network with continuous-valued outputs … the activity of a spiking
neuron is used as an approximation of a continuous value … most commonly
rate-coding.  Although, this can result in excessively active neurons and
unevenness error."

This module implements the classic recipe (Diehl et al. 2015, ref [36]):

1. Train a ReLU MLP conventionally (caller's job).
2. *Threshold balancing*: scale each layer so the maximum activation seen
   on calibration data maps to the firing threshold.
3. Replace every ReLU unit with an integrate-and-fire neuron (no leak,
   subtract reset) and run rate-coded input for T timesteps.

It also measures the conversion artefacts the paper names: spike counts
(excessive activity) and unevenness error (deviation between the ANN
activation and the realised firing rate).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.layers import Linear, Module, ReLU, Sequential
from ..nn.tensor import Tensor
from .encoding import rate_encode

__all__ = ["ConvertedSNN", "ConversionReport", "convert_relu_mlp"]


@dataclass(frozen=True)
class ConversionReport:
    """Fidelity statistics of a converted network on one batch.

    Attributes:
        agreement: fraction of samples where SNN and ANN predictions match.
        mean_unevenness: mean |ANN activation − realised rate| over the
            final hidden layer (rate-approximation error).
        spikes_per_sample: mean total hidden spikes emitted per sample.
    """

    agreement: float
    mean_unevenness: float
    spikes_per_sample: float


class ConvertedSNN:
    """A rate-coded spiking executor for a converted ReLU MLP.

    Hidden units are integrate-and-fire neurons with subtract reset; the
    output layer accumulates input current without spiking and the class
    with the largest accumulated potential wins.

    Args:
        weights: per-layer ``(W, b)`` pairs, already threshold-balanced.
        threshold: shared firing threshold.
    """

    def __init__(
        self, weights: list[tuple[np.ndarray, np.ndarray]], threshold: float = 1.0
    ) -> None:
        if not weights:
            raise ValueError("need at least one layer")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.weights = weights
        self.threshold = threshold

    def run(
        self, x: np.ndarray, num_steps: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, dict]:
        """Simulate the converted network.

        Args:
            x: ``(N, F)`` analog inputs in [0, 1] (rate-encoded internally).
            num_steps: simulation length T.
            rng: generator for the Bernoulli input spikes.

        Returns:
            ``(scores, stats)`` where scores is ``(N, C)`` accumulated
            output potential and stats holds per-layer firing rates and
            total spike counts.
        """
        if num_steps <= 0:
            raise ValueError("num_steps must be positive")
        x = np.asarray(x, dtype=np.float64)
        n = x.shape[0]
        spikes_in = rate_encode(np.clip(x, 0.0, 1.0), num_steps, rng)

        num_hidden = len(self.weights) - 1
        v = [np.zeros((n, w.shape[0])) for w, _ in self.weights]
        spike_totals = [0.0] * num_hidden
        out_acc = np.zeros((n, self.weights[-1][0].shape[0]))

        for t in range(num_steps):
            layer_in = spikes_in[t]
            for li in range(num_hidden):
                w, b = self.weights[li]
                v[li] += layer_in @ w.T + b / num_steps
                fired = v[li] >= self.threshold
                v[li] -= fired * self.threshold
                layer_in = fired.astype(np.float64)
                spike_totals[li] += float(fired.sum())
            w, b = self.weights[-1]
            out_acc += layer_in @ w.T + b / num_steps

        rates = [s / (num_steps * n) for s in spike_totals]
        stats = {
            "hidden_rates": rates,
            "total_hidden_spikes": float(sum(spike_totals)),
            "spikes_per_sample": float(sum(spike_totals)) / n,
        }
        return out_acc, stats


def _relu_mlp_layers(model: Sequential) -> list[Linear]:
    """Extract the Linear layers of a strictly Linear/ReLU-alternating MLP."""
    layers: list[Linear] = []
    for layer in model.layers:
        if isinstance(layer, Linear):
            layers.append(layer)
        elif not isinstance(layer, ReLU):
            raise ValueError(
                f"conversion supports Linear/ReLU Sequential models only, found {type(layer).__name__}"
            )
    if not layers:
        raise ValueError("model has no Linear layers")
    return layers


def convert_relu_mlp(
    model: Sequential, calibration_x: np.ndarray, threshold: float = 1.0
) -> ConvertedSNN:
    """Threshold-balance and convert a trained ReLU MLP.

    Each layer's weights are rescaled by the ratio of the maximum
    activations of consecutive layers observed on calibration data, so
    a firing rate of 1 spike/step corresponds to the layer's maximum
    calibration activation (model-based normalisation, ref [36]).

    Args:
        model: a ``Sequential`` of alternating Linear and ReLU layers
            (final layer Linear, no ReLU after it).
        calibration_x: ``(N, F)`` analog calibration inputs in [0, 1].
        threshold: spiking threshold of the converted units.

    Returns:
        The converted rate-coded SNN.
    """
    linears = _relu_mlp_layers(model)
    x = np.asarray(calibration_x, dtype=np.float64)

    # Forward pass collecting per-layer maximum activations.
    max_act_prev = max(float(np.abs(x).max()), 1e-12)
    scaled: list[tuple[np.ndarray, np.ndarray]] = []
    act = x
    for i, lin in enumerate(linears):
        w = lin.weight.data.copy()
        b = lin.bias.data.copy() if lin.bias is not None else np.zeros(w.shape[0])
        pre = act @ w.T + b
        act = np.maximum(pre, 0.0) if i < len(linears) - 1 else pre
        max_act = max(float(np.abs(act).max()), 1e-12)
        # Scale so the layer's max activation maps to `threshold` per step.
        w_scaled = w * (max_act_prev / max_act) * threshold
        b_scaled = b * (threshold / max_act)
        scaled.append((w_scaled, b_scaled))
        max_act_prev = max_act
    return ConvertedSNN(scaled, threshold)


def conversion_report(
    model: Sequential,
    snn: ConvertedSNN,
    x: np.ndarray,
    num_steps: int,
    rng: np.random.Generator,
) -> ConversionReport:
    """Measure ANN/SNN agreement and conversion artefacts on a batch.

    Args:
        model: the original ANN.
        snn: its converted counterpart.
        x: ``(N, F)`` analog inputs in [0, 1].
        num_steps: simulation length.
        rng: input-encoding generator.
    """
    ann_scores = model(Tensor(np.asarray(x, dtype=np.float64))).data
    snn_scores, stats = snn.run(x, num_steps, rng)
    agreement = float(np.mean(ann_scores.argmax(axis=1) == snn_scores.argmax(axis=1)))

    # Unevenness at the last hidden layer: ANN normalised activation vs
    # realised firing rate.
    linears = _relu_mlp_layers(model)
    act = np.asarray(x, dtype=np.float64)
    for lin in linears[:-1]:
        b = lin.bias.data if lin.bias is not None else 0.0
        act = np.maximum(act @ lin.weight.data.T + b, 0.0)
    max_act = max(float(act.max()), 1e-12)
    ann_rates = act / max_act

    # Re-run recording the last hidden layer's empirical rates.
    n = x.shape[0]
    spikes_in = rate_encode(np.clip(x, 0.0, 1.0), num_steps, rng)
    num_hidden = len(snn.weights) - 1
    v = [np.zeros((n, w.shape[0])) for w, _ in snn.weights[:-1]]
    last_hidden_count = np.zeros((n, snn.weights[num_hidden - 1][0].shape[0]))
    for t in range(num_steps):
        layer_in = spikes_in[t]
        for li in range(num_hidden):
            w, b = snn.weights[li]
            v[li] += layer_in @ w.T + b / num_steps
            fired = v[li] >= snn.threshold
            v[li] -= fired * snn.threshold
            layer_in = fired.astype(np.float64)
        last_hidden_count += layer_in
    emp_rates = last_hidden_count / num_steps
    unevenness = float(np.abs(ann_rates - emp_rates).mean())

    return ConversionReport(
        agreement=agreement,
        mean_unevenness=unevenness,
        spikes_per_sample=stats["spikes_per_sample"],
    )
