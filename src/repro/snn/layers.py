"""Differentiable spiking layers trained with surrogate-gradient BPTT.

Each layer owns a weight matrix and a LIF population; calling it on a
spike sequence tensor of shape ``(T, B, F_in)`` unrolls the membrane
dynamics over all T steps inside the autograd graph, so the loss
gradient backpropagates through time with the surrogate pseudo-
derivative at every spike (Section III-A, ref [30]).
"""

from __future__ import annotations

import numpy as np

from ..nn.layers import Conv2d, Linear, Module
from ..nn.tensor import Tensor
from ..nn import functional as F
from .neuron import LIFParams, ResetMode, lif_decay
from .surrogate import FastSigmoid, SurrogateGradient, spike

__all__ = ["SpikingLinear", "SpikingConv2d", "LIFReadout", "SpikingMLP", "SpikingConvNet"]


class SpikingLinear(Module):
    """Fully-connected layer of LIF neurons over a spike sequence.

    Args:
        in_features: input dimensionality.
        out_features: number of LIF neurons.
        params: LIF parameters.
        dt_us: simulation timestep.
        surrogate: surrogate gradient (default fast sigmoid).
        rng: weight initialisation generator.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        params: LIFParams = LIFParams(),
        dt_us: float = 1000.0,
        surrogate: SurrogateGradient | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.linear = Linear(in_features, out_features, bias=True, rng=rng)
        self.params = params
        self.dt_us = dt_us
        self.alpha = lif_decay(params, dt_us)
        self.surrogate = surrogate or FastSigmoid()

    def forward(self, x_seq: Tensor) -> Tensor:
        """Run the layer over a ``(T, B, F_in)`` sequence.

        Returns:
            Spike sequence ``(T, B, F_out)``.
        """
        if x_seq.ndim != 3:
            raise ValueError(f"expected (T, B, F) input, got {x_seq.shape}")
        t_steps, batch, _ = x_seq.shape
        v = Tensor(np.zeros((batch, self.linear.out_features)))
        outputs: list[Tensor] = []
        for t in range(t_steps):
            i_t = self.linear(x_seq[t])
            v = v * self.alpha + i_t
            s_t = spike(v, self.params.threshold, self.surrogate)
            if self.params.reset is ResetMode.SUBTRACT:
                v = v - s_t * self.params.threshold
            else:
                v = v * (1.0 - s_t)
            outputs.append(s_t)
        return F.stack(outputs, axis=0)


class SpikingConv2d(Module):
    """Convolutional layer of LIF neurons over a spike-frame sequence.

    The spiking counterpart of a CNN layer: each output-map unit is a
    LIF neuron whose input current is the convolution of the incoming
    spike frame.  Used for deeper SNNs on spatial event input (the
    architecture family of Spiking-YOLO-style detectors, ref [35]).

    Args:
        in_channels, out_channels: channel counts.
        kernel_size, stride, padding: convolution geometry.
        params: LIF parameters.
        dt_us: simulation timestep.
        surrogate: surrogate gradient.
        rng: weight initialisation generator.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        params: LIFParams = LIFParams(),
        dt_us: float = 1000.0,
        surrogate: SurrogateGradient | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.conv = Conv2d(
            in_channels, out_channels, kernel_size, stride=stride, padding=padding, rng=rng
        )
        self.params = params
        self.alpha = lif_decay(params, dt_us)
        self.surrogate = surrogate or FastSigmoid()

    def forward(self, x_seq: Tensor) -> Tensor:
        """Run over a ``(T, B, C, H, W)`` spike-frame sequence.

        Returns:
            Spike sequence ``(T, B, C_out, H_out, W_out)``.
        """
        if x_seq.ndim != 5:
            raise ValueError(f"expected (T, B, C, H, W) input, got {x_seq.shape}")
        t_steps = x_seq.shape[0]
        v: Tensor | None = None
        outputs: list[Tensor] = []
        for t in range(t_steps):
            i_t = self.conv(x_seq[t])
            v = i_t if v is None else v * self.alpha + i_t
            s_t = spike(v, self.params.threshold, self.surrogate)
            if self.params.reset is ResetMode.SUBTRACT:
                v = v - s_t * self.params.threshold
            else:
                v = v * (1.0 - s_t)
            outputs.append(s_t)
        return F.stack(outputs, axis=0)


class LIFReadout(Module):
    """Non-spiking leaky-integrator readout layer.

    The network output layer integrates synaptic input without firing;
    the loss is defined on the membrane potential (the "loss functions
    based on the membrane potential" option in Section III-A).  Returns
    the maximum membrane potential over time per class, a standard
    readout for classification.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        params: LIFParams = LIFParams(),
        dt_us: float = 1000.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.linear = Linear(in_features, out_features, bias=True, rng=rng)
        self.alpha = lif_decay(params, dt_us)

    def forward(self, x_seq: Tensor) -> Tensor:
        """Integrate a ``(T, B, F_in)`` sequence into ``(B, F_out)`` scores."""
        if x_seq.ndim != 3:
            raise ValueError(f"expected (T, B, F) input, got {x_seq.shape}")
        t_steps, batch, _ = x_seq.shape
        v = Tensor(np.zeros((batch, self.linear.out_features)))
        potentials: list[Tensor] = []
        for t in range(t_steps):
            v = v * self.alpha + self.linear(x_seq[t])
            potentials.append(v)
        stacked = F.stack(potentials, axis=0)  # (T, B, C)
        return stacked.max(axis=0)


class SpikingMLP(Module):
    """Multi-layer spiking classifier: hidden SpikingLinear layers + readout.

    Args:
        layer_sizes: ``[in, hidden..., out]`` feature sizes.
        params: shared LIF parameters.
        dt_us: simulation timestep.
        surrogate: surrogate gradient for hidden layers.
        rng: initialisation generator.
    """

    def __init__(
        self,
        layer_sizes: list[int],
        params: LIFParams = LIFParams(),
        dt_us: float = 1000.0,
        surrogate: SurrogateGradient | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if len(layer_sizes) < 2:
            raise ValueError("need at least input and output sizes")
        rng = rng or np.random.default_rng(0)
        self.hidden = [
            SpikingLinear(layer_sizes[i], layer_sizes[i + 1], params, dt_us, surrogate, rng)
            for i in range(len(layer_sizes) - 2)
        ]
        self.readout = LIFReadout(layer_sizes[-2], layer_sizes[-1], params, dt_us, rng)

    def forward(self, x_seq: Tensor) -> Tensor:
        """Map a ``(T, B, F_in)`` spike sequence to ``(B, num_classes)`` scores."""
        for layer in self.hidden:
            x_seq = layer(x_seq)
        return self.readout(x_seq)

    def spike_counts(self, x_seq: Tensor) -> list[float]:
        """Mean spikes per neuron per timestep in each hidden layer.

        Measures network activity — the quantity hardware energy scales
        with (Section III-A).
        """
        counts: list[float] = []
        for layer in self.hidden:
            x_seq = layer(x_seq)
            counts.append(float(x_seq.data.mean()))
        return counts


class SpikingConvNet(Module):
    """Convolutional spiking classifier: SpikingConv2d stages + LIF readout.

    The deep-SNN architecture family of Spiking-YOLO-class networks
    (ref [35]), trained end to end with surrogate gradients: each stage
    halves the spatial size (stride 2) while widening the channels; the
    final leaky-integrator readout scores classes from the flattened
    spike maps.

    Args:
        in_channels: input spike-frame channels (2 for ON/OFF).
        num_classes: output classes.
        input_hw: input spatial size ``(H, W)``; each stage needs it
            divisible by 2.
        channel_widths: output channels of each conv stage.
        params: shared LIF parameters.
        dt_us: simulation timestep.
        surrogate: surrogate gradient for the conv stages.
        rng: initialisation generator.
    """

    def __init__(
        self,
        in_channels: int,
        num_classes: int,
        input_hw: tuple[int, int],
        channel_widths: tuple[int, ...] = (8, 16),
        params: LIFParams = LIFParams(),
        dt_us: float = 1000.0,
        surrogate: SurrogateGradient | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if not channel_widths:
            raise ValueError("need at least one conv stage")
        h, w = input_hw
        if h % (2 ** len(channel_widths)) or w % (2 ** len(channel_widths)):
            raise ValueError(
                f"input {h}x{w} must be divisible by 2^{len(channel_widths)}"
            )
        rng = rng or np.random.default_rng(0)
        self.stages = []
        prev = in_channels
        for width in channel_widths:
            self.stages.append(
                SpikingConv2d(
                    prev, width, 3, stride=2, padding=1,
                    params=params, dt_us=dt_us, surrogate=surrogate, rng=rng,
                )
            )
            prev = width
        out_h = h // (2 ** len(channel_widths))
        out_w = w // (2 ** len(channel_widths))
        self.readout = LIFReadout(prev * out_h * out_w, num_classes, params, dt_us, rng)

    def forward(self, x_seq: Tensor) -> Tensor:
        """Map ``(T, B, C, H, W)`` spike frames to ``(B, classes)`` scores."""
        if x_seq.ndim != 5:
            raise ValueError(f"expected (T, B, C, H, W), got {x_seq.shape}")
        for stage in self.stages:
            x_seq = stage(x_seq)
        t, b = x_seq.shape[0], x_seq.shape[1]
        return self.readout(x_seq.reshape(t, b, -1))

    def spike_activity(self, x_seq: Tensor) -> list[float]:
        """Mean spikes per unit per step at each conv stage's output."""
        activities: list[float] = []
        for stage in self.stages:
            x_seq = stage(x_seq)
            activities.append(float(x_seq.data.mean()))
        return activities
