"""Eligibility propagation (e-prop) style local learning.

Section III-A: "surrogate gradient backpropagation is an unrealistic
algorithm for on-chip learning due to the prohibitive amount of memory
…  Approaches such as eligibility propagation [34] and event-based
random feedback alignment [31] are more realistic solutions whereby
gradients can be approximated using neuron state variables without
resorting to backpropagation."

This module implements a single-hidden-layer e-prop learner:

* each synapse carries an *eligibility trace* — a low-pass filter of
  (pre-synaptic activity x post-synaptic pseudo-derivative) — updated
  forward in time with O(#synapses) memory, independent of sequence
  length (this is the memory argument against BPTT);
* the output error is broadcast back through a *fixed random feedback*
  matrix (random feedback alignment) rather than the transposed output
  weights, avoiding weight transport;
* the weight update is (learning signal x eligibility trace), applied
  online at every step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .neuron import LIFParams, lif_decay
from .surrogate import FastSigmoid, SurrogateGradient

__all__ = ["EPropParams", "EPropNetwork", "bptt_memory_words", "eprop_memory_words"]


@dataclass(frozen=True)
class EPropParams:
    """E-prop hyper-parameters.

    Attributes:
        lr: learning rate for both layers.
        trace_decay: eligibility-trace low-pass factor (kappa).
        lif: hidden-neuron parameters.
        dt_us: simulation timestep.
    """

    lr: float = 5e-3
    trace_decay: float = 0.9
    lif: LIFParams = LIFParams()
    dt_us: float = 1000.0

    def __post_init__(self) -> None:
        if self.lr <= 0:
            raise ValueError("lr must be positive")
        if not 0.0 <= self.trace_decay < 1.0:
            raise ValueError("trace_decay must be in [0, 1)")


class EPropNetwork:
    """Input → recurrent-free LIF hidden layer → leaky readout, trained online.

    Args:
        num_inputs: input channels.
        num_hidden: hidden LIF neurons.
        num_outputs: classes.
        params: e-prop hyper-parameters.
        surrogate: hidden pseudo-derivative.
        rng: initialisation generator.
    """

    def __init__(
        self,
        num_inputs: int,
        num_hidden: int,
        num_outputs: int,
        params: EPropParams = EPropParams(),
        surrogate: SurrogateGradient | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if min(num_inputs, num_hidden, num_outputs) <= 0:
            raise ValueError("sizes must be positive")
        rng = rng or np.random.default_rng(0)
        self.params = params
        self.surrogate = surrogate or FastSigmoid()
        scale_in = 1.0 / np.sqrt(num_inputs)
        scale_h = 1.0 / np.sqrt(num_hidden)
        self.w_in = rng.normal(0.0, scale_in, (num_hidden, num_inputs))
        self.w_out = rng.normal(0.0, scale_h, (num_outputs, num_hidden))
        # Fixed random feedback matrix (never trained): random feedback
        # alignment avoids transporting w_out backwards.
        self.feedback = rng.normal(0.0, scale_h, (num_outputs, num_hidden))
        self.alpha = lif_decay(params.lif, params.dt_us)

    def _forward_step(
        self, x: np.ndarray, v: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """One timestep: returns (spikes, new_v, new_y, pseudo_derivative)."""
        p = self.params.lif
        v = self.alpha * v + self.w_in @ x
        pseudo = self.surrogate.derivative(v - p.threshold)
        spikes = (v >= p.threshold).astype(np.float64)
        v = v - spikes * p.threshold
        y = self.params.trace_decay * y + self.w_out @ spikes
        return spikes, v, y, pseudo

    def train_sample(self, spike_train: np.ndarray, label: int) -> float:
        """Online e-prop update on one ``(T, num_inputs)`` spike train.

        Returns:
            The mean per-step cross-entropy loss over the presentation.
        """
        spike_train = np.asarray(spike_train, dtype=np.float64)
        num_hidden, num_inputs = self.w_in.shape
        num_outputs = self.w_out.shape[0]
        if spike_train.ndim != 2 or spike_train.shape[1] != num_inputs:
            raise ValueError(f"expected (T, {num_inputs}) input, got {spike_train.shape}")
        target = np.zeros(num_outputs)
        target[label] = 1.0

        v = np.zeros(num_hidden)
        y = np.zeros(num_outputs)
        elig = np.zeros_like(self.w_in)  # eligibility per input synapse
        in_trace = np.zeros(num_inputs)
        out_trace = np.zeros(num_hidden)
        kappa = self.params.trace_decay
        lr = self.params.lr
        total_loss = 0.0
        steps = spike_train.shape[0]

        for t in range(steps):
            x = spike_train[t]
            spikes, v, y, pseudo = self._forward_step(x, v, y)
            in_trace = self.alpha * in_trace + (1.0 - self.alpha) * x
            # Eligibility: low-pass of pseudo-derivative x pre-trace.
            elig = kappa * elig + pseudo[:, None] * in_trace[None, :]
            out_trace = kappa * out_trace + spikes

            # Softmax readout error.
            exp_y = np.exp(y - y.max())
            probs = exp_y / exp_y.sum()
            err = probs - target
            total_loss += -float(np.log(max(probs[label], 1e-12)))

            # Learning signal through the fixed random feedback.
            learning_signal = self.feedback.T @ err  # (num_hidden,)
            self.w_in -= lr * learning_signal[:, None] * elig
            self.w_out -= lr * np.outer(err, out_trace)
        return total_loss / steps

    def predict(self, spike_train: np.ndarray) -> int:
        """Classify by the accumulated readout over the presentation."""
        spike_train = np.asarray(spike_train, dtype=np.float64)
        v = np.zeros(self.w_in.shape[0])
        y = np.zeros(self.w_out.shape[0])
        acc = np.zeros_like(y)
        for t in range(spike_train.shape[0]):
            _, v, y, _ = self._forward_step(spike_train[t], v, y)
            acc += y
        return int(acc.argmax())

    def accuracy(self, spike_trains: list[np.ndarray], labels: np.ndarray) -> float:
        """Classification accuracy over a list of spike trains."""
        labels = np.asarray(labels, dtype=np.int64)
        preds = np.array([self.predict(t) for t in spike_trains])
        return float(np.mean(preds == labels))


def bptt_memory_words(
    num_inputs: int, num_hidden: int, num_steps: int, batch: int = 1
) -> int:
    """Words of activation memory BPTT must hold for one backward pass.

    BPTT stores every hidden state for every timestep: this is the
    "prohibitive amount of memory" argument of Section III-A.
    """
    if min(num_inputs, num_hidden, num_steps, batch) <= 0:
        raise ValueError("all sizes must be positive")
    # Membrane + spikes per hidden neuron per step, plus the inputs.
    return batch * num_steps * (2 * num_hidden + num_inputs)


def eprop_memory_words(num_inputs: int, num_hidden: int) -> int:
    """Words of state memory e-prop needs, independent of sequence length.

    One eligibility value per input synapse plus per-neuron traces.
    """
    if min(num_inputs, num_hidden) <= 0:
        raise ValueError("all sizes must be positive")
    return num_hidden * num_inputs + 2 * num_hidden + num_inputs
