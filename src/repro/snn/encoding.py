"""Spike encodings: events → spike tensors, and value → spike-train codes.

Two encoding families live here:

* **Event binning** — the natural SNN input path: the raw event stream is
  discretised into ``T`` timesteps with separate ON/OFF channels,
  preserving (at timestep granularity) the temporal structure the sensor
  captured.

* **Value coding** — the codes used when converting continuous-valued
  ANNs to SNNs (Section III-A): rate coding (Diehl et al. 2015,
  ref [36]), time-to-first-spike latency coding (Mostafa 2017, ref [32])
  and sparse temporal-difference coding (Rueckauer & Liu 2018, ref [37]),
  where a neuron only spikes to signal *changes* in its analog value.
"""

from __future__ import annotations

import numpy as np

from ..events.stream import EventStream

__all__ = [
    "events_to_spike_tensor",
    "rate_encode",
    "latency_encode",
    "temporal_difference_encode",
    "bit_encode",
    "decode_rate",
    "decode_latency",
    "decode_bits",
]


def events_to_spike_tensor(
    stream: EventStream,
    num_steps: int,
    duration_us: int | None = None,
    pool: int = 1,
    binary: bool = True,
) -> np.ndarray:
    """Bin an event stream into a dense spike tensor ``(T, 2, H, W)``.

    Channel 0 holds ON events, channel 1 OFF events.  Events are assigned
    to timesteps by uniform binning of ``[t0, t0 + duration)``.

    Args:
        stream: input events.
        num_steps: number of timesteps T.
        duration_us: total window; defaults to the stream duration.
        pool: spatial pooling factor applied to coordinates.
        binary: clip multiple events per (step, pixel) bin to one spike
            (True, the physical interpretation) or keep counts (False).

    Returns:
        float64 array of shape ``(T, 2, H/pool, W/pool)``.
    """
    if num_steps <= 0:
        raise ValueError("num_steps must be positive")
    if pool <= 0:
        raise ValueError("pool must be positive")
    h = max(1, stream.resolution.height // pool)
    w = max(1, stream.resolution.width // pool)
    out = np.zeros((num_steps, 2, h, w), dtype=np.float64)
    if len(stream) == 0:
        return out
    t0 = int(stream.t[0])
    dur = duration_us if duration_us is not None else max(stream.duration, 1)
    if dur <= 0:
        dur = 1
    step_idx = np.minimum(((stream.t - t0) * num_steps) // dur, num_steps - 1)
    step_idx = np.maximum(step_idx, 0)
    chan = (stream.p < 0).astype(np.int64)  # 0 = ON, 1 = OFF
    px = np.minimum(stream.x // pool, w - 1)
    py = np.minimum(stream.y // pool, h - 1)
    np.add.at(out, (step_idx, chan, py, px), 1.0)
    if binary:
        np.clip(out, 0.0, 1.0, out=out)
    return out


def rate_encode(
    values: np.ndarray, num_steps: int, rng: np.random.Generator
) -> np.ndarray:
    """Bernoulli rate coding: spike probability per step equals the value.

    Args:
        values: analog values in [0, 1], any shape.
        num_steps: spike-train length.
        rng: random generator.

    Returns:
        ``(T, *values.shape)`` binary array whose time-average approaches
        ``values`` as T grows.
    """
    if num_steps <= 0:
        raise ValueError("num_steps must be positive")
    values = np.asarray(values, dtype=np.float64)
    if np.any(values < 0) or np.any(values > 1):
        raise ValueError("rate coding requires values in [0, 1]")
    return (rng.random((num_steps, *values.shape)) < values).astype(np.float64)


def latency_encode(values: np.ndarray, num_steps: int) -> np.ndarray:
    """Time-to-first-spike coding: larger values spike earlier, exactly once.

    Value 1.0 spikes at step 0; value → 0 spikes at the last step; exact
    zeros never spike.

    Args:
        values: analog values in [0, 1], any shape.
        num_steps: spike-train length.
    """
    if num_steps <= 0:
        raise ValueError("num_steps must be positive")
    values = np.asarray(values, dtype=np.float64)
    if np.any(values < 0) or np.any(values > 1):
        raise ValueError("latency coding requires values in [0, 1]")
    out = np.zeros((num_steps, *values.shape), dtype=np.float64)
    fire_step = np.round((1.0 - values) * (num_steps - 1)).astype(np.int64)
    nonzero = values > 0
    idx = np.nonzero(nonzero)
    out[(fire_step[idx], *idx)] = 1.0
    return out


def temporal_difference_encode(
    value_sequence: np.ndarray, quantum: float = 0.1
) -> np.ndarray:
    """Delta coding of a value sequence: spikes signal quantised *changes*.

    For a sequence of analog values over time, a positive (negative)
    spike is emitted for every ``quantum`` of cumulative increase
    (decrease) since the last emission — exactly the sigma-delta
    mechanism of the DVS pixel, applied to neuron activations.  Static
    inputs produce no spikes at all, which is where the sparsity gain of
    temporal-difference conversion comes from.

    Args:
        value_sequence: ``(T, ...)`` analog values over time.
        quantum: value change per spike.

    Returns:
        ``(T, ...)`` signed integer array: number of +/- quanta emitted
        per step (0 almost everywhere for slowly varying input).
    """
    if quantum <= 0:
        raise ValueError("quantum must be positive")
    seq = np.asarray(value_sequence, dtype=np.float64)
    if seq.ndim < 1 or seq.shape[0] < 1:
        raise ValueError("value_sequence must have a leading time axis")
    out = np.zeros_like(seq)
    ref = np.zeros_like(seq[0])
    for t in range(seq.shape[0]):
        delta = seq[t] - ref
        n = np.trunc(delta / quantum)
        out[t] = n
        ref = ref + n * quantum
    return out


def bit_encode(values: np.ndarray, num_bits: int) -> np.ndarray:
    """Temporal-pattern (spikes-as-bits) coding (Rueckauer & Liu 2021, ref [38]).

    The analog value is quantised to ``num_bits`` binary digits and each
    timestep transmits one digit, most significant first: a value is
    conveyed in exactly ``num_bits`` steps with ``popcount`` spikes —
    logarithmically fewer than rate coding needs for the same precision.

    Args:
        values: analog values in [0, 1], any shape.
        num_bits: digits (= timesteps) per value.

    Returns:
        ``(num_bits, *values.shape)`` binary array.
    """
    if num_bits <= 0:
        raise ValueError("num_bits must be positive")
    values = np.asarray(values, dtype=np.float64)
    if np.any(values < 0) or np.any(values > 1):
        raise ValueError("bit coding requires values in [0, 1]")
    levels = (1 << num_bits) - 1
    q = np.round(values * levels).astype(np.int64)
    out = np.zeros((num_bits, *values.shape), dtype=np.float64)
    for bit in range(num_bits):
        shift = num_bits - 1 - bit  # MSB first
        out[bit] = (q >> shift) & 1
    return out


def decode_bits(spikes: np.ndarray) -> np.ndarray:
    """Invert :func:`bit_encode`: binary digits back to the analog value."""
    spikes = np.asarray(spikes, dtype=np.float64)
    if spikes.ndim < 1 or spikes.shape[0] < 1:
        raise ValueError("expected a (num_bits, ...) spike train")
    num_bits = spikes.shape[0]
    levels = (1 << num_bits) - 1
    weights = 2.0 ** np.arange(num_bits - 1, -1, -1)
    q = np.tensordot(weights, spikes, axes=(0, 0))
    return q / levels


def decode_rate(spikes: np.ndarray) -> np.ndarray:
    """Invert rate coding: time-average of the spike train."""
    spikes = np.asarray(spikes, dtype=np.float64)
    if spikes.ndim < 1:
        raise ValueError("expected a (T, ...) spike train")
    return spikes.mean(axis=0)


def decode_latency(spikes: np.ndarray) -> np.ndarray:
    """Invert latency coding: earlier first-spikes decode to larger values.

    Neurons that never spike decode to 0.
    """
    spikes = np.asarray(spikes, dtype=np.float64)
    num_steps = spikes.shape[0]
    if num_steps == 0:
        raise ValueError("empty spike train")
    fired = spikes.any(axis=0)
    first = spikes.argmax(axis=0)
    values = 1.0 - first / max(num_steps - 1, 1)
    return np.where(fired, values, 0.0)
