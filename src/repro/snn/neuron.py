"""Spiking neuron models.

The Leaky-Integrate-and-Fire (LIF) neuron — "the model of choice for most
SNNs" (Section III-A) — integrates weighted input into a membrane
potential that leaks towards rest with time constant ``tau``, fires when
the potential crosses threshold, then resets.  The membrane equation is
the one-resistor-one-capacitor circuit of Fig. 2 (left):

``tau * dv/dt = -(v - v_rest) + R * i(t)``

discretised in the standard SNN-training convention as
``v[t+1] = alpha * v[t] + i[t]`` with ``alpha = exp(-dt / tau)`` (input
charge is injected directly, so a constant supra-threshold drive always
reaches threshold).

Two reset conventions are provided: *subtract* (soft reset — subtract
the threshold, preserving super-threshold charge, the convention used
for ANN→SNN conversion because it minimises unevenness error) and
*zero* (hard reset to rest).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

import numpy as np

__all__ = [
    "ResetMode",
    "LIFParams",
    "lif_decay",
    "LIFState",
    "lif_step_np",
    "AdaptiveLIFParams",
    "AdaptiveLIFState",
    "adaptive_lif_step_np",
]


class ResetMode(str, Enum):
    """Post-spike reset convention."""

    SUBTRACT = "subtract"
    ZERO = "zero"


@dataclass(frozen=True)
class LIFParams:
    """LIF neuron parameters.

    Attributes:
        tau_us: membrane time constant in microseconds.
        threshold: firing threshold (dimensionless potential units).
        reset: reset convention after a spike.
        v_rest: resting potential the membrane leaks towards.
        refractory_steps: timesteps the neuron stays silent after firing.
    """

    tau_us: float = 20_000.0
    threshold: float = 1.0
    reset: ResetMode = ResetMode.SUBTRACT
    v_rest: float = 0.0
    refractory_steps: int = 0

    def __post_init__(self) -> None:
        if self.tau_us <= 0:
            raise ValueError("tau_us must be positive")
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        if self.refractory_steps < 0:
            raise ValueError("refractory_steps must be non-negative")


def lif_decay(params: LIFParams, dt_us: float) -> float:
    """Per-step decay factor ``alpha = exp(-dt / tau)``."""
    if dt_us <= 0:
        raise ValueError("dt_us must be positive")
    return math.exp(-dt_us / params.tau_us)


@dataclass
class LIFState:
    """Mutable LIF population state for plain-NumPy (inference) simulation.

    Attributes:
        v: membrane potentials.
        refractory: remaining refractory steps per neuron.
    """

    v: np.ndarray
    refractory: np.ndarray

    @classmethod
    def zeros(cls, shape: tuple[int, ...], params: LIFParams) -> "LIFState":
        """State at rest for a population of the given shape."""
        return cls(
            v=np.full(shape, params.v_rest, dtype=np.float64),
            refractory=np.zeros(shape, dtype=np.int64),
        )


def lif_step_np(
    state: LIFState, current: np.ndarray, params: LIFParams, dt_us: float
) -> np.ndarray:
    """Advance a LIF population one timestep (in place), returning spikes.

    This is the non-differentiable fast path used by inference, the
    event-driven simulator and the hardware cost models; training uses
    the autograd version in :mod:`repro.snn.layers`.

    Args:
        state: population state, updated in place.
        current: input current for this step (same shape as ``state.v``).
        params: neuron parameters.
        dt_us: timestep length.

    Returns:
        Binary float spike array.
    """
    alpha = lif_decay(params, dt_us)
    state.v = params.v_rest + alpha * (state.v - params.v_rest) + current
    active = state.refractory == 0
    spikes = (state.v >= params.threshold) & active
    if params.reset is ResetMode.SUBTRACT:
        state.v = np.where(spikes, state.v - params.threshold, state.v)
    else:
        state.v = np.where(spikes, params.v_rest, state.v)
    if params.refractory_steps:
        state.refractory = np.maximum(state.refractory - 1, 0)
        state.refractory = np.where(spikes, params.refractory_steps, state.refractory)
    # Neurons in refractory hold their potential at rest (blind period).
    state.v = np.where(active | spikes, state.v, params.v_rest)
    return spikes.astype(np.float64)


@dataclass(frozen=True)
class AdaptiveLIFParams:
    """Adaptive LIF (ALIF) parameters: spike-frequency adaptation.

    Each spike raises an adaptation variable that is added to the firing
    threshold and decays with its own (slower) time constant — the
    "spike-frequency adaptation" behaviour Section III-A lists among the
    neuron dynamics analog neuromorphic circuits implement natively, and
    the neuron model e-prop-class learning exploits (ref [34]).

    Attributes:
        lif: the underlying LIF parameters.
        tau_adapt_us: adaptation time constant (>> membrane tau).
        beta: threshold increment per spike, in threshold units.
    """

    lif: LIFParams = LIFParams()
    tau_adapt_us: float = 200_000.0
    beta: float = 0.2

    def __post_init__(self) -> None:
        if self.tau_adapt_us <= 0:
            raise ValueError("tau_adapt_us must be positive")
        if self.beta < 0:
            raise ValueError("beta must be non-negative")


@dataclass
class AdaptiveLIFState:
    """Mutable ALIF population state.

    Attributes:
        v: membrane potentials.
        a: adaptation variables (added to the threshold).
    """

    v: np.ndarray
    a: np.ndarray

    @classmethod
    def zeros(cls, shape: tuple[int, ...], params: AdaptiveLIFParams) -> "AdaptiveLIFState":
        """State at rest for a population of the given shape."""
        return cls(
            v=np.full(shape, params.lif.v_rest, dtype=np.float64),
            a=np.zeros(shape, dtype=np.float64),
        )


def adaptive_lif_step_np(
    state: AdaptiveLIFState,
    current: np.ndarray,
    params: AdaptiveLIFParams,
    dt_us: float,
) -> np.ndarray:
    """Advance an ALIF population one timestep (in place), returning spikes.

    The effective threshold is ``threshold * (1 + a)``; each spike adds
    ``beta`` to ``a``, which decays with ``tau_adapt_us``.  Sustained
    drive therefore produces a decelerating spike train.
    """
    p = params.lif
    alpha = lif_decay(p, dt_us)
    rho = math.exp(-dt_us / params.tau_adapt_us)
    state.v = p.v_rest + alpha * (state.v - p.v_rest) + current
    threshold_eff = p.threshold * (1.0 + state.a)
    spikes = state.v >= threshold_eff
    if p.reset is ResetMode.SUBTRACT:
        state.v = np.where(spikes, state.v - threshold_eff, state.v)
    else:
        state.v = np.where(spikes, p.v_rest, state.v)
    state.a = rho * state.a + params.beta * spikes
    return spikes.astype(np.float64)
