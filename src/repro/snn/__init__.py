"""Spiking neural networks: neurons, surrogate-gradient training,
encodings, ANN conversion, local learning rules and counted simulation.
"""

from .conversion import ConversionReport, ConvertedSNN, conversion_report, convert_relu_mlp
from .encoding import (
    bit_encode,
    decode_bits,
    decode_latency,
    decode_rate,
    events_to_spike_tensor,
    latency_encode,
    rate_encode,
    temporal_difference_encode,
)
from .eprop import EPropNetwork, EPropParams, bptt_memory_words, eprop_memory_words
from .event_driven import (
    SimCounters,
    SimResult,
    clock_driven_sim,
    event_driven_sim,
    network_sim,
)
from .layers import LIFReadout, SpikingConv2d, SpikingConvNet, SpikingLinear, SpikingMLP
from .neuron import (
    AdaptiveLIFParams,
    AdaptiveLIFState,
    LIFParams,
    LIFState,
    ResetMode,
    adaptive_lif_step_np,
    lif_decay,
    lif_step_np,
)
from .stdp import STDPNetwork, STDPParams
from .surrogate import ATan, FastSigmoid, SigmoidDerivative, SurrogateGradient, Triangle, spike

__all__ = [
    "LIFParams",
    "LIFState",
    "ResetMode",
    "lif_decay",
    "lif_step_np",
    "AdaptiveLIFParams",
    "AdaptiveLIFState",
    "adaptive_lif_step_np",
    "SurrogateGradient",
    "FastSigmoid",
    "ATan",
    "Triangle",
    "SigmoidDerivative",
    "spike",
    "SpikingLinear",
    "SpikingConv2d",
    "LIFReadout",
    "SpikingMLP",
    "SpikingConvNet",
    "events_to_spike_tensor",
    "rate_encode",
    "latency_encode",
    "temporal_difference_encode",
    "bit_encode",
    "decode_bits",
    "decode_rate",
    "decode_latency",
    "ConvertedSNN",
    "ConversionReport",
    "convert_relu_mlp",
    "conversion_report",
    "STDPNetwork",
    "STDPParams",
    "EPropNetwork",
    "EPropParams",
    "bptt_memory_words",
    "eprop_memory_words",
    "SimCounters",
    "SimResult",
    "clock_driven_sim",
    "event_driven_sim",
    "network_sim",
]
