"""The three paradigm pipelines, instrumented end to end.

Each pipeline owns the full path of Fig. 2 for its paradigm — event
preprocessing, model, training — plus the hardware cost model that
executes it, and produces the :class:`~repro.core.metrics.PipelineMetrics`
that fill one column of Table I:

* :class:`SNNPipeline` — spike-tensor binning → surrogate-gradient
  spiking MLP → time-multiplexed neuromorphic core model;
* :class:`CNNPipeline` — dense two-channel frames → small CNN →
  zero-skipping sparse accelerator model;
* :class:`GNNPipeline` — causal radius event-graph → graph convolutions
  → two-phase GNN accelerator model with asynchronous per-event updates.

Measured quantities follow one set of definitions (documented on each
metric) so the columns are comparable.
"""

from __future__ import annotations

import abc
import dataclasses
from dataclasses import dataclass

import numpy as np

from ..cnn.frames import REPRESENTATIONS, two_channel_frame
from ..cnn.models import make_small_cnn
from ..datasets.base import EventDataset
from ..events.stream import EventStream
from ..gnn.asynchronous import HashInserter
from ..gnn.models import EventGNNClassifier, GraphBuildConfig, build_event_graph
from ..hw.energy import ENERGY_45NM
from ..hw.gnn_accel import GNNAccelerator
from ..hw.neuromorphic import NeuromorphicCore, analytic_snn_counters
from ..hw.workload import (
    ConvLayerWorkload,
    GNNWorkload,
    GraphMemoryWorkload,
    SNNLayerWorkload,
)
from ..hw.zeroskip import ZeroSkipAccelerator
from ..nn import Adam, Tensor, cross_entropy, no_grad
from ..nn.layers import Conv2d, ReLU, Sequential
from ..observability import Instrumentation
from ..snn.encoding import events_to_spike_tensor
from ..snn.layers import SpikingMLP
from .metrics import PipelineMetrics

__all__ = [
    "NotFittedError",
    "ParadigmPipeline",
    "SNNPipeline",
    "CNNPipeline",
    "GNNPipeline",
]

#: Bytes per weight/state word assumed by the footprint metrics.
WORD_BYTES = 2


class NotFittedError(RuntimeError):
    """Raised when ``predict``/``measure`` is called before ``fit``.

    Subclasses ``RuntimeError`` so pre-existing ``except RuntimeError``
    handlers keep working, while fault-tolerant callers
    (:mod:`repro.reliability.runner`) can distinguish "the pipeline was
    never trained" — a configuration error that should abort a sweep —
    from per-recording failures that should merely be quarantined.
    """


class ParadigmPipeline(abc.ABC):
    """Common interface of the three paradigm pipelines.

    The public ``fit`` / ``predict`` / ``measure`` stages are template
    methods: subclasses implement ``_fit`` / ``_predict`` / ``_measure``
    and the base class runs them through one instrumented path, so an
    attached :class:`~repro.observability.Instrumentation` (see
    :meth:`instrument`) sees every stage call — spans, call/failure
    counters, duration histograms and ``on_stage_start``/``on_stage_end``
    hooks — without each paradigm re-implementing the bookkeeping.
    Without instrumentation the wrapper is a single ``None`` check.
    """

    name: str

    #: Observability sink; ``None`` (the default) disables the wrapper.
    _obs: Instrumentation | None = None

    #: Representation cache; ``None`` (the default) encodes from scratch.
    _cache = None

    @classmethod
    def from_config(cls, config) -> "ParadigmPipeline":
        """Construct a pipeline from its frozen config dataclass.

        The config (see :mod:`repro.core.presets`) is the picklable,
        content-hashable description of a pipeline — the currency of
        the sharded executor and the representation cache.  Keyword
        construction keeps working unchanged; this is the structured
        alternative.
        """
        return cls(**config.kwargs())

    def attach_cache(self, cache) -> "ParadigmPipeline":
        """Attach a representation cache (``None`` detaches); returns self.

        With a :class:`~repro.parallel.cache.RepresentationCache`
        attached, the paradigm's event encoding (frame stack, spike
        tensor or event graph) is memoized by content address — raw
        event bytes plus canonical encoder config — and shared across
        ``fit`` / ``predict`` / ``measure`` / :meth:`predict_batch`
        calls.  Cached values are returned by reference and must not
        be mutated.
        """
        self._cache = cache
        return self

    @property
    def cache(self):
        """The attached representation cache, if any."""
        return self._cache

    def _cached(self, kind: str, stream: EventStream, config, compute):
        """Route one encoding through the attached cache (if any)."""
        if self._cache is None:
            return compute()
        return self._cache.get_or_compute(kind, stream, config, compute)

    def instrument(self, instrumentation: Instrumentation | None) -> "ParadigmPipeline":
        """Attach an observability sink (``None`` detaches); returns self.

        Every subsequent ``fit`` / ``predict`` / ``measure`` call is
        counted (``pipeline_stage_calls_total{paradigm,stage}``), timed
        into ``pipeline_stage_duration_us`` and traced as a span named
        ``{paradigm}.{stage}``; failures increment
        ``pipeline_stage_failures_total`` and re-raise unchanged.
        """
        self._obs = instrumentation
        return self

    @property
    def instrumentation(self) -> Instrumentation | None:
        """The attached observability sink, if any."""
        return self._obs

    def _require_fitted(self) -> None:
        """Raise :class:`NotFittedError` unless ``fit`` has completed."""
        if getattr(self, "model", None) is None:
            raise NotFittedError(
                f"{type(self).__name__} is not fitted; call fit() before "
                "predict()/measure()"
            )

    def _observed(self, stage: str, fn):
        """Run one stage through the metrics/tracing/hook wrapper."""
        obs = self._obs
        if obs is None:
            return fn()
        labels = {"paradigm": self.name, "stage": stage}
        obs.registry.counter(
            "pipeline_stage_calls_total",
            labels=labels,
            help="pipeline stage invocations",
        ).inc()
        obs.stage_start(stage)
        ok = False
        span = None
        try:
            with obs.tracer.span(f"{self.name}.{stage}") as span:
                value = fn()
            ok = True
            return value
        except Exception:
            obs.registry.counter(
                "pipeline_stage_failures_total",
                labels=labels,
                help="pipeline stage calls that raised",
            ).inc()
            raise
        finally:
            if span is not None:
                obs.registry.histogram(
                    "pipeline_stage_duration_us",
                    labels=labels,
                    help="pipeline stage duration (us; wall or virtual per clock)",
                ).observe(span.duration_us)
            obs.stage_end(stage, ok=ok)

    # ------------------------------------------------------------------
    # Public stages (instrumented templates around the _impl methods)
    # ------------------------------------------------------------------
    def fit(self, train: EventDataset) -> None:
        """Train the pipeline on a dataset."""
        return self._observed("fit", lambda: self._fit(train))

    def predict(self, stream: EventStream) -> int:
        """Classify one recording."""
        return self._observed("predict", lambda: self._predict(stream))

    def predict_batch(self, streams) -> list[int]:
        """Classify a batch of recordings in one instrumented stage.

        Serving-style entry point: the whole batch runs as a single
        ``predict_batch`` span/counter, and with a representation
        cache attached (:meth:`attach_cache`) repeated or previously
        seen recordings reuse their encodings instead of re-encoding.

        Args:
            streams: an iterable of event streams.

        Returns:
            One predicted label per stream, in input order.
        """
        streams = list(streams)
        return self._observed(
            "predict_batch", lambda: self._predict_batch(streams)
        )

    def _predict_batch(self, streams: list[EventStream]) -> list[int]:
        """Batch classification; the default defers to ``_predict``."""
        return [self._predict(stream) for stream in streams]

    # ------------------------------------------------------------------
    # Per-event incremental serving (default: unsupported)
    # ------------------------------------------------------------------
    @property
    def supports_incremental(self) -> bool:
        """True when :meth:`open_session` yields a per-event fast path."""
        return False

    @property
    def incremental_capacity(self) -> int | None:
        """Largest window (events) the fast path serves exactly.

        Beyond this, windowed ``predict`` subsamples its input, so a
        session that saw every event would no longer agree with it;
        callers (the streaming executor) fall back to the windowed path.
        ``None`` means unbounded.
        """
        return None

    def open_session(self, **kwargs) -> "IncrementalSession":
        """Open a per-event serving session (see :mod:`repro.core.incremental`).

        Paradigms without an incremental formulation raise
        ``NotImplementedError`` — callers should check
        :attr:`supports_incremental` first.  Keyword arguments (state
        bounds, audit policy) are paradigm-specific; see the overrides.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no per-event serving fast path; "
            "check supports_incremental before calling open_session()"
        )

    def measure(self, test: EventDataset, temporal_labels: tuple[int, ...] = ()) -> PipelineMetrics:
        """Evaluate the Table-I quantities on a test set.

        Args:
            test: held-out recordings.
            temporal_labels: labels whose separation requires temporal
                information (e.g. the two rotation directions); accuracy
                restricted to them is the "exploit temporal information"
                metric.
        """
        return self._observed("measure", lambda: self._measure(test, temporal_labels))

    # ------------------------------------------------------------------
    # Paradigm implementations (not abstract so pre-template subclasses
    # overriding the public methods directly keep working)
    # ------------------------------------------------------------------
    def _fit(self, train: EventDataset) -> None:
        """Paradigm-specific training."""
        raise NotImplementedError

    def _predict(self, stream: EventStream) -> int:
        """Paradigm-specific single-recording classification."""
        raise NotImplementedError

    def _measure(self, test: EventDataset, temporal_labels: tuple[int, ...] = ()) -> PipelineMetrics:
        """Paradigm-specific Table-I measurement."""
        raise NotImplementedError

    def accuracy(self, test: EventDataset) -> float:
        """Plain test accuracy."""
        preds = np.array([self.predict(s.stream) for s in test])
        return float(np.mean(preds == test.labels()))

    def _subset_accuracy(
        self, test: EventDataset, labels: tuple[int, ...]
    ) -> float:
        """Accuracy restricted to the given labels (nan when absent)."""
        if not labels:
            return float("nan")
        subset = [s for s in test if s.label in labels]
        if not subset:
            return float("nan")
        preds = np.array([self.predict(s.stream) for s in subset])
        truth = np.array([s.label for s in subset])
        return float(np.mean(preds == truth))


class SNNPipeline(ParadigmPipeline):
    """Spiking pipeline: event binning → spiking MLP → neuromorphic core.

    Args:
        num_steps: timesteps per recording window.
        pool: spatial pooling of the input events.
        hidden: hidden LIF neurons.
        dt_us: simulation timestep (also the decision latency bound).
        epochs, lr, batch_size: training hyper-parameters.
        update: neuron-state update discipline of the modelled core
            ("clock" or "event") — changes the hardware cost column,
            not the learned model.
        seed: initialisation / shuffling seed.
    """

    name = "SNN"

    def __init__(
        self,
        num_steps: int = 16,
        pool: int = 2,
        hidden: int = 32,
        dt_us: float = 1000.0,
        epochs: int = 12,
        lr: float = 5e-3,
        batch_size: int = 8,
        update: str = "clock",
        seed: int = 0,
    ) -> None:
        if update not in ("clock", "event"):
            raise ValueError("update must be 'clock' or 'event'")
        self.num_steps = num_steps
        self.pool = pool
        self.hidden = hidden
        self.dt_us = dt_us
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.update = update
        self.seed = seed
        self.model: SpikingMLP | None = None
        self._num_inputs = 0
        self._num_classes = 0

    def _encoder_config(self) -> dict:
        """Cache-key description of the spike-tensor encoding."""
        return {"paradigm": "SNN", "num_steps": self.num_steps, "pool": self.pool}

    def _encode(self, stream: EventStream) -> np.ndarray:
        return self._cached(
            "snn_spike_tensor",
            stream,
            self._encoder_config(),
            lambda: self._encode_impl(stream),
        )

    def _encode_impl(self, stream: EventStream) -> np.ndarray:
        tensor = events_to_spike_tensor(stream, self.num_steps, pool=self.pool)
        return tensor.reshape(self.num_steps, -1)

    def _fit(self, train: EventDataset) -> None:
        x = np.stack([self._encode(s.stream) for s in train], axis=1)  # (T, N, F)
        y = train.labels()
        self._num_inputs = x.shape[2]
        self._num_classes = train.num_classes
        rng = np.random.default_rng(self.seed)
        self.model = SpikingMLP(
            [self._num_inputs, self.hidden, self._num_classes],
            dt_us=self.dt_us,
            rng=rng,
        )
        opt = Adam(self.model.parameters(), lr=self.lr)
        n = x.shape[1]
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for lo in range(0, n, self.batch_size):
                idx = order[lo : lo + self.batch_size]
                opt.zero_grad()
                loss = cross_entropy(self.model(Tensor(x[:, idx])), y[idx])
                loss.backward()
                opt.step()

    def _predict(self, stream: EventStream) -> int:
        self._require_fitted()
        x = self._encode(stream)[:, None, :]
        with no_grad():
            scores = self.model(Tensor(x)).data
        return int(scores.argmax())

    def _measure(self, test: EventDataset, temporal_labels: tuple[int, ...] = ()) -> PipelineMetrics:
        self._require_fitted()
        spike_tensors = [self._encode(s.stream) for s in test]
        input_density = float(np.mean([t.mean() for t in spike_tensors]))
        input_spikes_per_sample = float(np.mean([t.sum() for t in spike_tensors]))

        # Hidden activity: mean spikes per neuron per step.
        activities = []
        with no_grad():
            for t in spike_tensors[: min(len(spike_tensors), 10)]:
                counts = self.model.spike_counts(Tensor(t[:, None, :]))
                activities.append(counts[0])
        hidden_activity = float(np.mean(activities))

        # Synaptic operations per classification: every input spike fans
        # out to all hidden neurons, every hidden spike to all outputs.
        hidden_spikes = hidden_activity * self.hidden * self.num_steps
        ops = input_spikes_per_sample * self.hidden + hidden_spikes * self._num_classes
        ops += self.num_steps * (self.hidden + self._num_classes) * 2  # state updates

        # Hardware model: clocked neuromorphic core over the window.
        workload = SNNLayerWorkload(
            num_neurons=self.hidden,
            num_inputs=self._num_inputs,
            num_steps=self.num_steps,
            input_activity=min(1.0, input_density),
        )
        core = NeuromorphicCore(energy=ENERGY_45NM)
        report = core.run_layer(workload, update=self.update)
        # Response latency: the SNN is event-driven, so the output tracks
        # input within one state-update sweep of the core — the compute
        # time of a single timestep, not the (training-time) dt.
        one_step = SNNLayerWorkload(
            num_neurons=self.hidden,
            num_inputs=self._num_inputs,
            num_steps=1,
            input_activity=min(1.0, input_density),
        )
        step_latency_us = core.run_layer(one_step, update=self.update).latency_us

        params = sum(p.size for p in self.model.parameters())
        footprint = params * WORD_BYTES + (self.hidden + self._num_classes) * WORD_BYTES

        metrics = PipelineMetrics(paradigm="SNN")
        metrics.temporal_info = self._subset_accuracy(test, temporal_labels)
        metrics.data_sparsity = 1.0 - input_density
        metrics.data_preparation = 1.0  # one bin increment per event
        metrics.compute_sparsity = 1.0 - hidden_activity
        metrics.num_operations = ops
        metrics.accuracy = self.accuracy(test)
        metrics.memory_footprint = footprint
        metrics.memory_bandwidth = report.memory_accesses
        metrics.energy_efficiency = 1.0 / max(report.energy_pj * 1e-12, 1e-30)
        metrics.latency = step_latency_us
        metrics.extras = {
            "hidden_activity": hidden_activity,
            "input_spikes_per_sample": input_spikes_per_sample,
            "energy_pj_per_classification": report.energy_pj,
            "timestep_us": self.dt_us,
        }
        return metrics


class CNNPipeline(ParadigmPipeline):
    """Dense-frame pipeline: event frames → CNN → zero-skipping accel.

    Args:
        base_width: first conv block width.
        representation: name of the event → frame mapping from
            :data:`repro.cnn.frames.REPRESENTATIONS` (default the
            Fig. 2 two-channel count frame; timing-preserving options
            such as ``"time_surface"`` or ``"voxel"`` change which
            Section III-B aggregation the pipeline studies).
        epochs, lr, batch_size: training hyper-parameters.
        seed: initialisation seed.
    """

    name = "CNN"

    def __init__(
        self,
        base_width: int = 8,
        representation: str = "two_channel",
        epochs: int = 15,
        lr: float = 2e-3,
        batch_size: int = 8,
        seed: int = 0,
    ) -> None:
        if representation not in REPRESENTATIONS:
            raise ValueError(
                f"unknown representation {representation!r}; "
                f"options: {sorted(REPRESENTATIONS)}"
            )
        self.base_width = base_width
        self.representation = REPRESENTATIONS[representation]
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.seed = seed
        self.model: Sequential | None = None
        self._hw: tuple[int, int] = (0, 0)
        self._window_us = 0.0

    def _encoder_config(self) -> dict:
        """Cache-key description of the frame encoding."""
        return {
            "paradigm": "CNN",
            "representation": self.representation.name,
            "normalisation": "max_abs",
        }

    def _encode(self, stream: EventStream) -> np.ndarray:
        return self._cached(
            "cnn_frame",
            stream,
            self._encoder_config(),
            lambda: self._encode_impl(stream),
        )

    def _encode_impl(self, stream: EventStream) -> np.ndarray:
        frame = self.representation(stream)
        # Per-frame max-magnitude normalisation keeps activations stable
        # (voxel grids are signed, so normalise by |.|).
        peak = np.abs(frame).max()
        return frame / peak if peak > 0 else frame

    def _fit(self, train: EventDataset) -> None:
        res = train.resolution
        self._hw = (res.height, res.width)
        self._window_us = float(
            np.mean([max(s.stream.duration, 1) for s in train])
        )
        x = np.stack([self._encode(s.stream) for s in train])
        y = train.labels()
        rng = np.random.default_rng(self.seed)
        self.model = make_small_cnn(
            self.representation.channels,
            train.num_classes,
            self._hw,
            base_width=self.base_width,
            rng=rng,
        )
        opt = Adam(self.model.parameters(), lr=self.lr)
        n = len(x)
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for lo in range(0, n, self.batch_size):
                idx = order[lo : lo + self.batch_size]
                opt.zero_grad()
                loss = cross_entropy(self.model(Tensor(x[idx])), y[idx])
                loss.backward()
                opt.step()
        self.model.eval()

    def _predict(self, stream: EventStream) -> int:
        self._require_fitted()
        with no_grad():
            scores = self.model(Tensor(self._encode(stream)[None])).data
        return int(scores.argmax())

    def _layer_sparsities(self, frames: np.ndarray) -> list[tuple[Conv2d, float]]:
        """Per-conv-layer (layer, input zero-fraction) pairs on a batch."""
        result: list[tuple[Conv2d, float]] = []
        x = Tensor(frames)
        with no_grad():
            for layer in self.model.layers:
                if isinstance(layer, Conv2d):
                    zero_frac = float(np.mean(x.data == 0.0))
                    result.append((layer, zero_frac))
                x = layer(x)
        return result

    def _measure(self, test: EventDataset, temporal_labels: tuple[int, ...] = ()) -> PipelineMetrics:
        self._require_fitted()
        frames = np.stack([self._encode(s.stream) for s in test])
        input_zero_frac = float(np.mean(frames == 0.0))
        events_per_sample = float(np.mean([len(s.stream) for s in test]))

        # Preparation: one increment per event plus the per-frame clear
        # of the dense buffer, amortised over the events it holds.
        h, w = self._hw
        channels = self.representation.channels
        prep = 1.0 + (channels * h * w) / max(events_per_sample, 1.0)

        # Feature-map sparsity after the ReLUs.
        relu_zero_fracs: list[float] = []
        x = Tensor(frames[: min(len(frames), 10)])
        with no_grad():
            for layer in self.model.layers:
                x = layer(x)
                if isinstance(layer, ReLU):
                    relu_zero_fracs.append(float(np.mean(x.data == 0.0)))
        compute_sparsity = float(np.mean(relu_zero_fracs))

        # Hardware model: zero-skipping accelerator per conv layer, with
        # the measured input sparsities; the final Linear is counted as
        # MACs without skipping.
        layer_stats = self._layer_sparsities(frames)
        accel = ZeroSkipAccelerator(num_macs=128)
        total_energy = 0.0
        total_mem = 0
        total_macs = 0
        spatial = (h, w)
        for conv, zero_frac in layer_stats:
            out_h = spatial[0] // 1  # 'same' padding conv keeps size
            workload = ConvLayerWorkload(
                c_in=conv.in_channels,
                c_out=conv.out_channels,
                kernel=conv.kernel_size,
                out_h=out_h,
                out_w=spatial[1],
                activation_sparsity=zero_frac,
            )
            report = accel.run_layer(workload)
            total_energy += report.energy_pj
            total_mem += report.memory_accesses
            total_macs += report.macs
            spatial = (spatial[0] // 2, spatial[1] // 2)  # the pool that follows
        head = self.model.layers[-1]
        head_macs = head.in_features * head.out_features
        total_macs += head_macs
        total_energy += head_macs * ENERGY_45NM.mac_pj + head_macs * ENERGY_45NM.sram_large_pj
        total_mem += head_macs

        params = sum(p.size for p in self.model.parameters())
        metrics = PipelineMetrics(paradigm="CNN")
        metrics.temporal_info = self._subset_accuracy(test, temporal_labels)
        metrics.data_sparsity = input_zero_frac
        metrics.data_preparation = prep
        metrics.compute_sparsity = compute_sparsity
        metrics.num_operations = float(total_macs)
        metrics.accuracy = self.accuracy(test)
        metrics.memory_footprint = params * WORD_BYTES
        metrics.memory_bandwidth = total_mem
        metrics.energy_efficiency = 1.0 / max(total_energy * 1e-12, 1e-30)
        metrics.latency = self._window_us  # frame accumulation bound
        metrics.extras = {
            "relu_zero_fractions": relu_zero_fracs,
            "energy_pj_per_classification": total_energy,
        }
        return metrics


class GNNPipeline(ParadigmPipeline):
    """Event-graph pipeline: causal radius graph → GNN → graph accelerator.

    Args:
        config: graph construction configuration.
        hidden: graph conv feature width.
        epochs, lr: training hyper-parameters.
        seed: initialisation seed.
    """

    name = "GNN"

    def __init__(
        self,
        config: GraphBuildConfig = GraphBuildConfig(
            radius=4.0, time_scale_us=5000.0, max_events=200, max_degree=10
        ),
        hidden: int = 12,
        epochs: int = 12,
        lr: float = 5e-3,
        seed: int = 0,
    ) -> None:
        self.config = config
        self.hidden = hidden
        self.epochs = epochs
        self.lr = lr
        self.seed = seed
        self.model: EventGNNClassifier | None = None
        self._resolution = None

    def _graph(self, stream: EventStream):
        """Build (or fetch from the cache) the event graph of one stream."""
        return self._cached(
            "gnn_graph",
            stream,
            self.config,
            lambda: build_event_graph(stream, self.config),
        )

    def _fit(self, train: EventDataset) -> None:
        from ..gnn.models import fit_gnn

        self._resolution = train.resolution
        self.model = EventGNNClassifier(
            train.num_classes,
            hidden=self.hidden,
            in_features=self.config.num_node_features,
            rng=np.random.default_rng(self.seed),
        )
        graphs = (
            [self._graph(s.stream) for s in train]
            if self._cache is not None
            else None
        )
        fit_gnn(
            self.model,
            train,
            self.config,
            epochs=self.epochs,
            lr=self.lr,
            rng=np.random.default_rng(self.seed),
            graphs=graphs,
        )

    def _predict(self, stream: EventStream) -> int:
        self._require_fitted()
        graph = self._graph(stream)
        with no_grad():
            return int(self.model(graph).data.argmax())

    # ------------------------------------------------------------------
    # Per-event incremental serving fast path
    # ------------------------------------------------------------------
    @property
    def supports_incremental(self) -> bool:
        """The GNN paradigm serves per event (Section IV's perspective)."""
        return True

    @property
    def incremental_capacity(self) -> int | None:
        """``config.max_events`` — above it windowed predict subsamples."""
        return self.config.max_events

    def open_session(
        self,
        *,
        max_live_nodes: int | None = None,
        window_us: int | None = None,
        audit=None,
    ):
        """Open a per-event serving session over the fitted classifier.

        The session holds an :class:`~repro.gnn.AsyncEventGNN` built
        with this pipeline's graph configuration and, by default, an
        *unbounded* liveness window — the batch builder never expires
        nodes, so an unbounded window is what makes session scores at a
        window close bit-equal to windowed :meth:`predict` on the same
        events.  The pipeline's attached instrumentation (if any)
        receives the session's per-event metrics.

        Args:
            max_live_nodes: opt into the engine's bounded-state mode — a
                hard live-node budget with ring-buffer storage and
                oldest-first eviction.  Bounded sessions trade the exact
                bit-equality guarantee for flat memory; pair with an
                ``audit`` tolerance set to the measured drift bound.
            window_us: liveness window for stale-node expiry (defaults
                to effectively unbounded, preserving exactness).
            audit: optional :class:`~repro.core.incremental.AuditPolicy`
                enabling the divergence watchdog; the shadow recompute
                runs this pipeline's own windowed graph build over *all*
                buffered events (``max_events`` lifted — the session
                processes every event, so a subsampled shadow would
                false-alarm on any window beyond
                :attr:`incremental_capacity`).  Within capacity this is
                exactly what windowed :meth:`predict` would score.
        """
        from dataclasses import replace

        from ..gnn.async_network import AsyncEventGNN
        from ..gnn.models import build_event_graph
        from ..nn import no_grad
        from .incremental import GNNIncrementalSession

        self._require_fitted()
        engine = AsyncEventGNN(
            self.model,
            radius=self.config.radius,
            time_scale_us=self.config.time_scale_us,
            window_us=(1 << 62) if window_us is None else int(window_us),
            max_degree=self.config.max_degree,
            resolution=self._resolution,
            include_position=self.config.include_position,
            max_live_nodes=max_live_nodes,
        )

        def shadow(stream):
            cfg = self.config
            if len(stream) > cfg.max_events:
                cfg = replace(cfg, max_events=len(stream))
            graph = build_event_graph(stream, cfg)
            with no_grad():
                return self.model(graph).data[0]

        return GNNIncrementalSession(
            engine,
            paradigm=self.name,
            instrumentation=self._obs,
            audit=audit,
            shadow=shadow,
        )

    def _measure(self, test: EventDataset, temporal_labels: tuple[int, ...] = ()) -> PipelineMetrics:
        self._require_fitted()
        graphs = [self._graph(s.stream) for s in test]
        nodes = float(np.mean([g.num_nodes for g in graphs]))
        edges = float(np.mean([g.num_edges for g in graphs]))
        durations = float(np.mean([max(s.stream.duration, 1) for s in test]))

        # Data sparsity: occupancy of the equivalent dense spatiotemporal
        # volume (same definition as the SNN spike tensor: the graph IS
        # the set of non-zero voxels).
        res = test.resolution
        steps = max(1, int(durations / self.config.time_scale_us))
        dense_slots = res.num_pixels * 2 * steps
        data_sparsity = 1.0 - min(1.0, nodes / dense_slots)

        # Preparation: insertion candidates per event, measured with the
        # spatial-hash incremental builder on the test streams.
        inserter = HashInserter(
            radius=self.config.radius,
            time_scale_us=self.config.time_scale_us,
            window_us=50_000,
            max_neighbours=self.config.max_degree,
        )
        for s in test.samples[:3]:
            stream = s.stream
            if len(stream) > self.config.max_events:
                idx = np.linspace(0, len(stream) - 1, self.config.max_events).astype(int)
                stream = stream[np.unique(idx)]
            inserter.insert_stream(stream.x, stream.y, stream.t)
        prep = inserter.stats.candidates_per_event + 1.0

        # Computation sparsity: fraction of node-pair interactions the
        # graph structure skips relative to all-to-all.
        compute_sparsity = 1.0 - min(1.0, edges / max(nodes * nodes, 1.0))

        ops = float(np.mean([self.model.operation_count(g) for g in graphs]))

        workload = GNNWorkload(
            num_nodes=max(int(nodes), 1),
            num_edges=int(edges),
            feature_dim=self.hidden,
            num_layers=2,
        )
        accel = GNNAccelerator(features_in_dram=False)
        report = accel.run_graph(workload)
        event_report = accel.per_event_update(
            workload,
            degree=int(min(edges / max(nodes, 1), self.config.max_degree)),
            insertion_candidates=int(prep),
        )

        # Graph-storage rows: measure BOTH representations of the test
        # graphs (dense float64 vs compact quantized) through the hw
        # memory model, regardless of which one this pipeline runs on —
        # the Table I dense-vs-compact comparison reads these off the
        # GNN column (see repro.core.comparison.attach_graph_memory).
        graph_memory: dict[str, dict[str, float]] = {}
        candidates = ["dense"]
        if self.config.causal:  # compact storage requires causal edges
            candidates.append("compact")
        for representation in candidates:
            if representation == self.config.representation:
                rep_graphs = graphs
            else:
                cfg = dataclasses.replace(
                    self.config, representation=representation
                )
                rep_graphs = [build_event_graph(s.stream, cfg) for s in test]
            storages = [GraphMemoryWorkload.from_graph(g) for g in rep_graphs]
            reports = [accel.memory_report(workload, st) for st in storages]
            graph_memory[representation] = {
                "bytes_per_event": float(
                    np.mean([st.bytes_per_event for st in storages])
                ),
                "peak_state_bytes": float(
                    max(st.storage_bytes for st in storages)
                ),
                "traffic_bytes_per_event": float(
                    np.mean([r["traffic_bytes_per_event"] for r in reports])
                ),
                "streams_resident": float(
                    min(r["streams_resident"] for r in reports)
                ),
            }

        params = sum(p.size for p in self.model.parameters())
        active = graph_memory.get(self.config.representation)
        graph_state = (
            active["peak_state_bytes"]
            if active is not None
            else nodes * self.hidden * WORD_BYTES
        )
        footprint = (
            params * WORD_BYTES
            + int(nodes) * self.hidden * WORD_BYTES
            + graph_state
        )

        metrics = PipelineMetrics(paradigm="GNN")
        metrics.temporal_info = self._subset_accuracy(test, temporal_labels)
        metrics.data_sparsity = data_sparsity
        metrics.data_preparation = prep
        metrics.compute_sparsity = compute_sparsity
        metrics.num_operations = ops
        metrics.accuracy = self.accuracy(test)
        metrics.memory_footprint = footprint
        metrics.memory_bandwidth = report.memory_accesses
        metrics.energy_efficiency = 1.0 / max(report.energy_pj * 1e-12, 1e-30)
        metrics.latency = event_report.latency_us  # asynchronous per-event bound
        if "dense" in graph_memory:
            metrics.graph_memory_dense = graph_memory["dense"]["bytes_per_event"]
        if "compact" in graph_memory:
            metrics.graph_memory_compact = graph_memory["compact"][
                "bytes_per_event"
            ]
        metrics.extras = {
            "mean_nodes": nodes,
            "mean_edges": edges,
            "energy_pj_per_classification": report.energy_pj,
            "per_event_energy_pj": event_report.energy_pj,
            "representation": self.config.representation,
            "graph_memory": graph_memory,
        }
        return metrics
