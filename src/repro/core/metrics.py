"""The twelve comparison axes of Table I, as quantitative metrics.

Every row of the paper's qualitative comparison table is defined here,
each with its direction and how this framework measures it.  Ten of the
twelve are *measured* by running the paradigm pipelines on a common
dataset with the hardware cost models attached; two — hardware maturity
and configurability/scalability — are properties of the surrounding
ecosystem, not of any runnable artefact, so they are fixed literature
constants (flagged ``measured=False``) taken directly from the paper's
own assessment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ratings import Rating

__all__ = [
    "Axis",
    "AXES",
    "ROBUSTNESS_AXIS",
    "OVERLOAD_AXIS",
    "SESSION_ROBUSTNESS_AXIS",
    "GRAPH_MEMORY_DENSE_AXIS",
    "GRAPH_MEMORY_COMPACT_AXIS",
    "PipelineMetrics",
]


@dataclass(frozen=True)
class Axis:
    """One row of Table I.

    Attributes:
        key: metric attribute name on :class:`PipelineMetrics`.
        label: row label as printed in the paper.
        higher_is_better: direction (the paper marks ↓ rows).
        measured: False for ecosystem axes scored from the literature.
        paper_ratings: the paper's own Table I entry (SNN, CNN, GNN).
        tie_tolerance: ratio treated as a tie when rating this axis.
    """

    key: str
    label: str
    higher_is_better: bool
    measured: bool
    paper_ratings: tuple[str, str, str]
    tie_tolerance: float = 1.5


#: Table I rows, in the paper's order.  ``paper_ratings`` transcribes the
#: published table: (SNN, CNN, GNN).
AXES: tuple[Axis, ...] = (
    Axis("temporal_info", "Data - Exploit temporal information", True, True, ("++", "-", "++"), 1.2),
    Axis("data_sparsity", "Data - Sparsity", True, True, ("++", "-", "++"), 1.5),
    Axis("data_preparation", "Data - Preparation (down)", False, True, ("++", "+", ""), 2.0),
    Axis("compute_sparsity", "Computation - Sparsity", True, True, ("++", "+", "++"), 1.3),
    Axis("num_operations", "Computation - # Operations (down)", False, True, ("+", "-", "++"), 2.0),
    Axis("accuracy", "Application - Accuracy", True, True, ("-", "+", "++"), 1.05),
    Axis("hw_maturity", "Hardware - Maturity", True, False, ("+", "++", ""), 1.2),
    Axis("memory_footprint", "Memory - Footprint (down)", False, True, ("+", "++", "?"), 2.0),
    Axis("memory_bandwidth", "Memory - Bandwidth (down)", False, True, ("+", "-", "?"), 2.0),
    Axis("energy_efficiency", "System - Energy Efficiency", True, True, ("++", "+", "?"), 2.0),
    Axis("configurability", "System - Configurability / Scalability", True, False, ("-", "++", "++ (?)"), 1.2),
    Axis("latency", "System - Latency (down)", False, True, ("++", "-", "++ (?)"), 2.0),
)


#: The measured noise/fault-robustness row.  The published table does
#: not quantify robustness, so its paper cells are ``?``; the row is
#: appended to a comparison only when a
#: :mod:`repro.reliability.sweep` has actually measured it (see
#: :func:`repro.core.comparison.attach_robustness`), keeping the default
#: twelve-row table identical to the paper's.
ROBUSTNESS_AXIS = Axis(
    "robustness",
    "System - Noise/fault robustness",
    higher_is_better=True,
    measured=True,
    paper_ratings=("?", "?", "?"),
    tie_tolerance=1.2,
)


#: The measured overload graceful-degradation row: the delivered-window
#: fraction each paradigm sustains when offered load exceeds capacity
#: (see :func:`repro.streaming.sweep.overload_scores`).  Like the
#: robustness row, the published table has no such quantity, so its
#: paper cells are ``?`` and the row is only appended when a streaming
#: sweep has measured it (:func:`repro.core.comparison.attach_overload`).
OVERLOAD_AXIS = Axis(
    "overload",
    "System - Overload graceful degradation",
    higher_is_better=True,
    measured=True,
    paper_ratings=("?", "?", "?"),
    tie_tolerance=1.2,
)


#: The measured session-fault resilience row: retained accuracy of
#: per-event serving when its *live session state* is corrupted
#: mid-stream (state corruption, NaN injection, clock skew — see
#: :func:`repro.reliability.incremental.run_incremental_robustness`).
#: Only paradigms with an incremental serving path can be measured;
#: the rest stay ``nan`` and render as ``?``.  Appended by
#: :func:`repro.core.comparison.attach_session_robustness`.
SESSION_ROBUSTNESS_AXIS = Axis(
    "session_robustness",
    "Serving - Session-fault resilience",
    higher_is_better=True,
    measured=True,
    paper_ratings=("?", "?", "?"),
    tie_tolerance=1.2,
)


#: The measured graph-storage rows: resident bytes per event of the
#: input representation each GNN pipeline traverses — the dense float64
#: :class:`~repro.gnn.EventGraph` versus the quantized fixed-degree
#: :class:`~repro.gnn.CompactEventGraph`.  Only the GNN pipeline holds
#: an event graph at all, so the SNN/CNN cells stay ``nan`` (rendered
#: ``?``); the rows are appended by
#: :func:`repro.core.comparison.attach_graph_memory` once the pipeline
#: has measured both layouts.
GRAPH_MEMORY_DENSE_AXIS = Axis(
    "graph_memory_dense",
    "Memory - Graph bytes/event (dense)",
    higher_is_better=False,
    measured=True,
    paper_ratings=("?", "?", "?"),
    tie_tolerance=2.0,
)

GRAPH_MEMORY_COMPACT_AXIS = Axis(
    "graph_memory_compact",
    "Memory - Graph bytes/event (compact)",
    higher_is_better=False,
    measured=True,
    paper_ratings=("?", "?", "?"),
    tie_tolerance=2.0,
)


#: Literature constants for the two unmeasurable axes, on an arbitrary
#: 1–3 ordinal scale matching the paper's assessment (Section III/V):
#: CNN hardware is mature and flexible; SNN processors exist but are
#: niche; event-GNN hardware "does not exist today".
LITERATURE_SCORES: dict[str, dict[str, float]] = {
    "hw_maturity": {"SNN": 2.0, "CNN": 3.0, "GNN": 1.0},
    "configurability": {"SNN": 1.0, "CNN": 3.0, "GNN": 3.0},
}


@dataclass
class PipelineMetrics:
    """Measured quantities of one paradigm pipeline on one dataset.

    Attribute names match :attr:`Axis.key`; units are noted per field.
    ``float('nan')`` marks quantities the pipeline cannot provide (they
    render as ``?``).

    Attributes:
        paradigm: "SNN", "CNN" or "GNN".
        temporal_info: accuracy on the temporally-defined class pairs
            (chance-corrected, in [0, 1]).
        data_sparsity: fraction of zeros in the prepared input.
        data_preparation: preprocessing operations per event.
        compute_sparsity: fraction of zero activations inside the model.
        num_operations: arithmetic operations per classification.
        accuracy: test accuracy in [0, 1].
        hw_maturity: literature ordinal (filled automatically).
        memory_footprint: bytes of weights + state.
        memory_bandwidth: memory accesses per classification.
        energy_efficiency: classifications per joule.
        configurability: literature ordinal (filled automatically).
        latency: microseconds from last relevant event to decision.
        robustness: retained-accuracy fraction under injected faults
            (filled by a reliability sweep; nan until measured).
        overload: delivered-window fraction under offered load above
            capacity (filled by a streaming sweep; nan until measured).
        session_robustness: retained-accuracy fraction when live
            serving-session state is faulted mid-stream (filled by the
            incremental-robustness sweep; nan until measured — and nan
            forever for paradigms without a per-event serving path).
        graph_memory_dense: resident bytes per event of the dense
            float64 event-graph representation (GNN pipeline only;
            nan elsewhere).
        graph_memory_compact: resident bytes per event of the compact
            quantized fixed-degree representation (GNN pipeline only;
            nan elsewhere).
        extras: free-form measurement details for the report.
    """

    paradigm: str
    temporal_info: float = float("nan")
    data_sparsity: float = float("nan")
    data_preparation: float = float("nan")
    compute_sparsity: float = float("nan")
    num_operations: float = float("nan")
    accuracy: float = float("nan")
    hw_maturity: float = float("nan")
    memory_footprint: float = float("nan")
    memory_bandwidth: float = float("nan")
    energy_efficiency: float = float("nan")
    configurability: float = float("nan")
    latency: float = float("nan")
    robustness: float = float("nan")
    overload: float = float("nan")
    session_robustness: float = float("nan")
    graph_memory_dense: float = float("nan")
    graph_memory_compact: float = float("nan")
    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.paradigm not in ("SNN", "CNN", "GNN"):
            raise ValueError(f"paradigm must be SNN/CNN/GNN, got {self.paradigm}")
        # Ecosystem axes come from the literature constants.
        for key, scores in LITERATURE_SCORES.items():
            setattr(self, key, scores[self.paradigm])

    def value(self, axis: Axis) -> float:
        """The measured value for one axis."""
        return float(getattr(self, axis.key))
