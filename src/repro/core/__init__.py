"""The paradigm-comparison framework: the paper's Table I, regenerated."""

from .comparison import (
    ComparisonResult,
    agreement_with_paper,
    render_table,
    run_comparison,
    to_markdown,
)
from .metrics import AXES, Axis, PipelineMetrics
from .pipeline import CNNPipeline, GNNPipeline, ParadigmPipeline, SNNPipeline
from .presets import table1_dataset, table1_pipelines
from .ratings import Rating, rate_values

__all__ = [
    "Rating",
    "rate_values",
    "Axis",
    "AXES",
    "PipelineMetrics",
    "ParadigmPipeline",
    "SNNPipeline",
    "CNNPipeline",
    "GNNPipeline",
    "ComparisonResult",
    "run_comparison",
    "render_table",
    "to_markdown",
    "agreement_with_paper",
    "table1_pipelines",
    "table1_dataset",
]
