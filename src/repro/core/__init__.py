"""The paradigm-comparison framework: the paper's Table I, regenerated."""

from .comparison import (
    ComparisonResult,
    agreement_with_paper,
    assemble_comparison,
    attach_overload,
    attach_robustness,
    measure_paradigm,
    render_table,
    run_comparison,
    to_markdown,
)
from .incremental import GNNIncrementalSession, IncrementalSession
from .metrics import AXES, OVERLOAD_AXIS, ROBUSTNESS_AXIS, Axis, PipelineMetrics
from .pipeline import (
    CNNPipeline,
    GNNPipeline,
    NotFittedError,
    ParadigmPipeline,
    SNNPipeline,
)
from .presets import (
    CNNConfig,
    GNNConfig,
    PipelineConfig,
    SNNConfig,
    default_configs,
    make_pipeline,
    table1_configs,
    table1_dataset,
    table1_pipelines,
)
from .ratings import Rating, rate_robustness, rate_values

__all__ = [
    "Rating",
    "rate_values",
    "rate_robustness",
    "Axis",
    "AXES",
    "ROBUSTNESS_AXIS",
    "OVERLOAD_AXIS",
    "PipelineMetrics",
    "NotFittedError",
    "ParadigmPipeline",
    "IncrementalSession",
    "GNNIncrementalSession",
    "SNNPipeline",
    "CNNPipeline",
    "GNNPipeline",
    "SNNConfig",
    "CNNConfig",
    "GNNConfig",
    "PipelineConfig",
    "make_pipeline",
    "default_configs",
    "table1_configs",
    "ComparisonResult",
    "measure_paradigm",
    "assemble_comparison",
    "run_comparison",
    "attach_robustness",
    "attach_overload",
    "render_table",
    "to_markdown",
    "agreement_with_paper",
    "table1_pipelines",
    "table1_dataset",
]
