"""The qualitative rating scale of Table I.

The paper scores each comparison axis with ``++`` ("has better metrics
in"), ``+``, ``-`` and ``?`` (unknown — no hardware exists to measure).
This module defines the scale and the procedure that converts measured
quantities into ratings: on each axis the three paradigms are ranked and
binned — best gets ``++``, worst gets ``-``, the middle gets ``+`` —
with ties (within a tolerance factor) sharing the higher rating, exactly
the semantics of a qualitative comparison table.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

__all__ = ["Rating", "rate_values", "rate_robustness"]


class Rating(str, Enum):
    """Qualitative score of one paradigm on one axis."""

    BEST = "++"
    GOOD = "+"
    POOR = "-"
    UNKNOWN = "?"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Ratings ordered worst → best, for comparisons in tests.
_ORDER = {Rating.POOR: 0, Rating.GOOD: 1, Rating.BEST: 2}


def rating_rank(rating: Rating) -> int:
    """Numeric rank of a rating (higher = better); UNKNOWN raises."""
    if rating is Rating.UNKNOWN:
        raise ValueError("UNKNOWN has no rank")
    return _ORDER[rating]


def rate_values(
    values: dict[str, float],
    higher_is_better: bool,
    tie_tolerance: float = 1.5,
) -> dict[str, Rating]:
    """Convert measured values into the ++ / + / - scale.

    Values are ranked (respecting the axis direction); the best value
    anchors ``++``.  Any paradigm within ``tie_tolerance`` (ratio) of the
    best also gets ``++``; within ``tie_tolerance**2`` gets ``+``; the
    rest get ``-``.  Non-finite values map to ``?``.

    Args:
        values: paradigm name → measured value (all same units).
        higher_is_better: axis direction.
        tie_tolerance: ratio within which two values count as a tie.

    Returns:
        paradigm name → rating.
    """
    if tie_tolerance < 1.0:
        raise ValueError("tie_tolerance must be >= 1")
    if not values:
        raise ValueError("values must not be empty")
    finite = {k: v for k, v in values.items() if np.isfinite(v)}
    out: dict[str, Rating] = {
        k: Rating.UNKNOWN for k in values if k not in finite
    }
    if not finite:
        return out
    eps = 1e-12
    if higher_is_better:
        best = max(finite.values())
        for k, v in finite.items():
            ratio = (best + eps) / (max(v, 0.0) + eps)
            out[k] = _bin(ratio, tie_tolerance)
    else:
        best = min(finite.values())
        for k, v in finite.items():
            ratio = (max(v, 0.0) + eps) / (best + eps)
            out[k] = _bin(ratio, tie_tolerance)
    return out


#: Tie tolerance used for the measured noise/fault-robustness axis: a
#: paradigm retaining within 20% of the best retained accuracy counts as
#: equally robust.
ROBUSTNESS_TIE_TOLERANCE = 1.2


def rate_robustness(scores: dict[str, float]) -> dict[str, Rating]:
    """Rate measured robustness scores on the ``++ / + / -`` scale.

    The scores are retained-accuracy fractions in [0, 1] produced by
    :func:`repro.reliability.sweep.robustness_scores` — higher means the
    paradigm keeps more of its clean accuracy under injected sensor and
    link faults.  This is the measurement that regenerates the paper's
    qualitative noise/fault-robustness assessment from data.

    Args:
        scores: paradigm name → retained-accuracy score.

    Returns:
        paradigm name → rating.
    """
    return rate_values(
        scores, higher_is_better=True, tie_tolerance=ROBUSTNESS_TIE_TOLERANCE
    )


def _bin(ratio_from_best: float, tol: float) -> Rating:
    """Map a distance-from-best ratio (>= 1) to a rating."""
    if ratio_from_best <= tol:
        return Rating.BEST
    if ratio_from_best <= tol * tol * tol:
        return Rating.GOOD
    return Rating.POOR
