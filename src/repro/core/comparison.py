"""Table I regeneration: run the three pipelines and score the 12 axes.

This is the top-level entry point of the reproduction: given a dataset
whose classes include temporally-defined ones, train the SNN / CNN / GNN
pipelines, measure every quantitative axis, convert measurements into
the paper's ``++ / + / -`` scale, and compare cell-by-cell against the
published Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..datasets.base import EventDataset
from .metrics import (
    AXES,
    GRAPH_MEMORY_COMPACT_AXIS,
    GRAPH_MEMORY_DENSE_AXIS,
    OVERLOAD_AXIS,
    ROBUSTNESS_AXIS,
    SESSION_ROBUSTNESS_AXIS,
    Axis,
    PipelineMetrics,
)
from .pipeline import CNNPipeline, GNNPipeline, ParadigmPipeline, SNNPipeline
from .ratings import Rating, rate_robustness, rate_values

__all__ = [
    "ComparisonResult",
    "measure_paradigm",
    "assemble_comparison",
    "run_comparison",
    "attach_robustness",
    "attach_overload",
    "attach_session_robustness",
    "attach_graph_memory",
    "render_table",
    "to_markdown",
    "agreement_with_paper",
]

PARADIGMS = ("SNN", "CNN", "GNN")


@dataclass
class ComparisonResult:
    """Everything produced by one comparison run.

    Attributes:
        metrics: paradigm name → measured metrics.
        ratings: axis key → (paradigm name → rating).
        extra_axes: measured rows beyond the paper's twelve (e.g. the
            noise/fault-robustness row a reliability sweep adds via
            :func:`attach_robustness`); rendered after the core rows.
    """

    metrics: dict[str, PipelineMetrics]
    ratings: dict[str, dict[str, Rating]] = field(default_factory=dict)
    extra_axes: list[Axis] = field(default_factory=list)

    @property
    def axes(self) -> tuple[Axis, ...]:
        """All rows of this comparison, core table first."""
        return tuple(AXES) + tuple(self.extra_axes)

    def rating(self, axis_key: str, paradigm: str) -> Rating:
        """Rating of one cell."""
        return self.ratings[axis_key][paradigm]


def measure_paradigm(
    pipeline: ParadigmPipeline,
    train: EventDataset,
    test: EventDataset,
    temporal_labels: tuple[int, ...] = (),
) -> PipelineMetrics:
    """Fit one pipeline and measure its Table-I column.

    The unit of work of one comparison grid cell — the serial loop of
    :func:`run_comparison` and the sharded executor
    (:mod:`repro.parallel`) both run exactly this.

    Args:
        pipeline: an unfitted paradigm pipeline.
        train, test: a shared dataset split.
        temporal_labels: labels distinguishable only through event timing.
    """
    pipeline.fit(train)
    return pipeline.measure(test, temporal_labels)


def assemble_comparison(metrics: dict[str, PipelineMetrics]) -> ComparisonResult:
    """Rate measured per-paradigm metrics into a comparison result.

    Args:
        metrics: paradigm name → measured metrics (must cover exactly
            SNN/CNN/GNN).
    """
    if set(metrics) != set(PARADIGMS):
        raise ValueError(f"metrics must cover exactly {PARADIGMS}")
    result = ComparisonResult(metrics=metrics)
    for axis in AXES:
        values = {name: metrics[name].value(axis) for name in PARADIGMS}
        result.ratings[axis.key] = rate_values(
            values, axis.higher_is_better, axis.tie_tolerance
        )
    return result


def run_comparison(
    train: EventDataset,
    test: EventDataset,
    temporal_labels: tuple[int, ...] = (),
    pipelines: dict[str, ParadigmPipeline] | None = None,
    parallel=None,
    cache=None,
) -> ComparisonResult:
    """Train and measure all three pipelines, then rate every axis.

    Args:
        train, test: a shared dataset split.
        temporal_labels: labels distinguishable only through event timing.
        pipelines: override the default pipeline instances (keys must be
            'SNN', 'CNN', 'GNN'; values may be pipeline instances or
            the config dataclasses of :mod:`repro.core.presets`).
        parallel: optional
            :class:`~repro.parallel.sharding.ParallelConfig` — routes
            the run through the sharded executor
            (:func:`repro.parallel.run_sweep`), whose results are
            byte-identical to this serial path.
        cache: optional :class:`~repro.parallel.cache.CacheConfig`
            controlling representation memoization on the parallel
            path.

    Returns:
        The filled comparison result.
    """
    if parallel is not None or cache is not None:
        from ..parallel.api import SweepSpec, run_sweep

        spec = SweepSpec(
            kind="comparison",
            train=train,
            test=test,
            temporal_labels=tuple(temporal_labels),
            pipelines=pipelines,
        )
        if parallel is not None:
            spec.parallel = parallel
        if cache is not None:
            spec.cache = cache
        return run_sweep(spec).result

    if pipelines is None:
        pipelines = {
            "SNN": SNNPipeline(),
            "CNN": CNNPipeline(),
            "GNN": GNNPipeline(),
        }
    if set(pipelines) != set(PARADIGMS):
        raise ValueError(f"pipelines must cover exactly {PARADIGMS}")

    metrics: dict[str, PipelineMetrics] = {}
    for name in PARADIGMS:
        pipe = pipelines[name]
        if not hasattr(pipe, "fit"):  # a config dataclass, not an instance
            from .presets import make_pipeline

            pipe = make_pipeline(pipe)
        metrics[name] = measure_paradigm(pipe, train, test, temporal_labels)

    return assemble_comparison(metrics)


def attach_robustness(
    result: ComparisonResult, scores: dict[str, float]
) -> ComparisonResult:
    """Append the measured noise/fault-robustness row to a comparison.

    The paper asserts the robustness of each paradigm qualitatively;
    this regenerates that cell from data: ``scores`` are the
    retained-accuracy fractions measured by
    :func:`repro.reliability.sweep.robustness_scores`, rated on the
    same ``++ / + / -`` scale as every other row.

    Args:
        result: a comparison produced by :func:`run_comparison`.
        scores: paradigm name → retained-accuracy score in [0, 1].

    Returns:
        ``result``, with metrics, ratings and :attr:`~ComparisonResult.extra_axes`
        updated in place (returned for chaining).
    """
    if set(scores) != set(PARADIGMS):
        raise ValueError(f"scores must cover exactly {PARADIGMS}")
    for name in PARADIGMS:
        result.metrics[name].robustness = float(scores[name])
    result.ratings[ROBUSTNESS_AXIS.key] = rate_robustness(scores)
    if all(a.key != ROBUSTNESS_AXIS.key for a in result.extra_axes):
        result.extra_axes.append(ROBUSTNESS_AXIS)
    return result


def attach_overload(
    result: ComparisonResult, scores: dict[str, float]
) -> ComparisonResult:
    """Append the measured overload graceful-degradation row.

    ``scores`` are the delivered-window fractions each paradigm sustains
    above capacity, measured by
    :func:`repro.streaming.sweep.overload_scores`; they live on the same
    [0, 1] scale as the robustness scores and are rated identically.

    Args:
        result: a comparison produced by :func:`run_comparison`.
        scores: paradigm name → delivered-fraction score in [0, 1].

    Returns:
        ``result``, updated in place (returned for chaining).
    """
    if set(scores) != set(PARADIGMS):
        raise ValueError(f"scores must cover exactly {PARADIGMS}")
    for name in PARADIGMS:
        result.metrics[name].overload = float(scores[name])
    result.ratings[OVERLOAD_AXIS.key] = rate_robustness(scores)
    if all(a.key != OVERLOAD_AXIS.key for a in result.extra_axes):
        result.extra_axes.append(OVERLOAD_AXIS)
    return result


def attach_session_robustness(
    result: ComparisonResult, scores: dict[str, float]
) -> ComparisonResult:
    """Append the measured session-fault resilience row.

    ``scores`` are the retained-accuracy fractions of per-event serving
    under mid-session state faults, measured by
    :func:`repro.reliability.incremental.session_robustness_scores`.
    Paradigms without an incremental serving path carry ``nan`` (an
    honest "not measurable", rendered ``?``) rather than a made-up
    score — this row is the one place the scorecard is GNN-only by
    construction, exactly because only the event-graph paradigm has a
    live per-event session to corrupt.

    Args:
        result: a comparison produced by :func:`run_comparison`.
        scores: paradigm name → retained-accuracy score in [0, 1], or
            ``nan`` where the paradigm has no incremental session.

    Returns:
        ``result``, updated in place (returned for chaining).
    """
    if set(scores) != set(PARADIGMS):
        raise ValueError(f"scores must cover exactly {PARADIGMS}")
    for name in PARADIGMS:
        result.metrics[name].session_robustness = float(scores[name])
    result.ratings[SESSION_ROBUSTNESS_AXIS.key] = rate_robustness(scores)
    if all(a.key != SESSION_ROBUSTNESS_AXIS.key for a in result.extra_axes):
        result.extra_axes.append(SESSION_ROBUSTNESS_AXIS)
    return result


def attach_graph_memory(
    result: ComparisonResult,
    dense: dict[str, float] | None = None,
    compact: dict[str, float] | None = None,
) -> ComparisonResult:
    """Append the measured graph-storage rows (bytes/event, dense and compact).

    The GNN pipeline measures both representations of its own input
    graphs (:class:`~repro.core.pipeline.GNNPipeline` stores them on
    :class:`~repro.core.metrics.PipelineMetrics`); the SNN/CNN cells are
    ``nan`` — they hold no event graph — and render ``?``.  With no
    arguments the rows are pulled from the already-measured GNN metrics;
    explicit per-paradigm dicts override (for externally-benchmarked
    numbers, e.g. ``BENCH_memory.json`` points).

    Args:
        result: a comparison produced by :func:`run_comparison`.
        dense: optional paradigm name → dense bytes/event.
        compact: optional paradigm name → compact bytes/event.

    Returns:
        ``result``, updated in place (returned for chaining).
    """
    nan = float("nan")
    if dense is None:
        dense = {
            name: result.metrics[name].graph_memory_dense for name in PARADIGMS
        }
    if compact is None:
        compact = {
            name: result.metrics[name].graph_memory_compact for name in PARADIGMS
        }
    for scores in (dense, compact):
        if set(scores) != set(PARADIGMS):
            raise ValueError(f"scores must cover exactly {PARADIGMS}")
    for name in PARADIGMS:
        result.metrics[name].graph_memory_dense = float(dense.get(name, nan))
        result.metrics[name].graph_memory_compact = float(compact.get(name, nan))
    for axis, scores in (
        (GRAPH_MEMORY_DENSE_AXIS, dense),
        (GRAPH_MEMORY_COMPACT_AXIS, compact),
    ):
        result.ratings[axis.key] = rate_values(
            {name: float(scores[name]) for name in PARADIGMS},
            axis.higher_is_better,
            axis.tie_tolerance,
        )
        if all(a.key != axis.key for a in result.extra_axes):
            result.extra_axes.append(axis)
    return result


def _format_value(value: float) -> str:
    if not np.isfinite(value):
        return "?"
    if value == 0:
        return "0"
    if abs(value) >= 1e4 or abs(value) < 1e-2:
        return f"{value:.2e}"
    return f"{value:.3g}"


def render_table(result: ComparisonResult, show_values: bool = True) -> str:
    """ASCII rendering of the regenerated Table I.

    Args:
        result: a comparison result.
        show_values: append the raw measured value to each rating cell.

    Returns:
        A multi-line table string (paper ratings in the last column).
    """
    rows: list[list[str]] = []
    header = ["Axis"] + [f"{p} (meas.)" for p in PARADIGMS] + ["paper (SNN/CNN/GNN)"]
    rows.append(header)
    for axis in result.axes:
        row = [axis.label]
        for name in PARADIGMS:
            rating = result.ratings[axis.key][name]
            if show_values:
                row.append(f"{rating.value} [{_format_value(result.metrics[name].value(axis))}]")
            else:
                row.append(rating.value)
        row.append("/".join(axis.paper_ratings))
        rows.append(row)

    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    lines = []
    for i, row in enumerate(rows):
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if i == 0:
            lines.append("-+-".join("-" * w for w in widths))
    return "\n".join(lines)


def to_markdown(result: ComparisonResult) -> str:
    """Render the regenerated Table I as GitHub-flavoured markdown.

    Args:
        result: a comparison result.

    Returns:
        A markdown table with measured ratings, raw values and the
        paper's published cells.
    """
    lines = [
        "| Axis | SNN | CNN | GNN | paper (SNN/CNN/GNN) |",
        "|---|---|---|---|---|",
    ]
    for axis in result.axes:
        cells = []
        for name in PARADIGMS:
            rating = result.ratings[axis.key][name]
            value = _format_value(result.metrics[name].value(axis))
            cells.append(f"`{rating.value}` ({value})")
        lines.append(
            f"| {axis.label} | {cells[0]} | {cells[1]} | {cells[2]} | "
            f"{'/'.join(c if c else '·' for c in axis.paper_ratings)} |"
        )
    return "\n".join(lines)


def agreement_with_paper(result: ComparisonResult) -> dict[str, float]:
    """Cell-by-cell agreement between measured ratings and the paper's.

    Cells the paper marks ``?`` (or leaves blank) are excluded.  Two
    agreement levels are reported: exact rating match, and *ordinal*
    match (the measured rating is within one grade of the paper's).

    Returns:
        ``{"exact": fraction, "within_one": fraction, "cells": count}``.
    """
    from .ratings import rating_rank

    exact = 0
    close = 0
    cells = 0
    for axis in result.axes:
        for name, paper_cell in zip(PARADIGMS, axis.paper_ratings):
            paper_cell = paper_cell.strip()
            if paper_cell in ("?", "", "++ (?)"):
                continue
            paper_rating = Rating(paper_cell.replace(" (?)", ""))
            measured = result.ratings[axis.key][name]
            if measured is Rating.UNKNOWN:
                continue
            cells += 1
            if measured is paper_rating:
                exact += 1
            if abs(rating_rank(measured) - rating_rank(paper_rating)) <= 1:
                close += 1
    if cells == 0:
        return {"exact": 0.0, "within_one": 0.0, "cells": 0}
    return {"exact": exact / cells, "within_one": close / cells, "cells": cells}
