"""Per-event incremental serving sessions.

Section IV's perspective — "graph convolutions could be triggered upon
the generation of each event" — is what AEGNN and EvGNN realise in
hardware.  This module is the serving-side face of that idea: a
*session* protocol that feeds a pipeline one event at a time and keeps a
running decision, so a served window costs per-event incremental work
instead of a full graph rebuild plus batch forward pass.

:class:`IncrementalSession` is the paradigm-neutral protocol the
streaming executor drives (see
:meth:`~repro.core.pipeline.ParadigmPipeline.open_session`).
:class:`GNNIncrementalSession` implements it over
:class:`~repro.gnn.AsyncEventGNN`, adding the observability wiring —
per-event latency histogram, MACs/events counters, a
``session_state_bytes`` gauge and ``expired_nodes_total`` counter — and
two resilience mechanisms the engine alone cannot provide:

* a **divergence audit watchdog** (:class:`AuditPolicy`): on a seeded
  cadence the session shadow-recomputes the closing window's prediction
  through the batch path and raises :class:`SessionDivergenceError`
  when the incremental scores have drifted beyond tolerance.  This is
  the only detector for *silently masked* corruption — e.g. NaNs
  injected into the running readout are zero-masked by the head's
  pooling, producing finite-but-wrong scores no output check can see;
* **checkpoint/restore** (:meth:`~GNNIncrementalSession.snapshot` /
  :meth:`~GNNIncrementalSession.restore`), wrapping the engine's
  checkpoint with the session's window/audit bookkeeping so a faulted
  stream resumes from its last good state.

The load-bearing property, tested end to end: at any window boundary the
session's scores are **bit-equal** to the windowed
:meth:`~repro.core.pipeline.ParadigmPipeline.predict` over the same
events (both paths run under :class:`~repro.nn.stable_matmul`).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..observability import Instrumentation, exponential_buckets

__all__ = [
    "AuditPolicy",
    "SessionDivergenceError",
    "IncrementalSession",
    "GNNIncrementalSession",
    "SESSION_SNAPSHOT_FORMAT",
]

#: Per-event latencies span sub-microsecond cache hits to pathological
#: milliseconds; decade buckets from 0.1 us cover the range.
EVENT_LATENCY_BUCKETS = exponential_buckets(0.1, 10.0, 10)

#: Audit drift spans exact-equivalence zeros (well under 1e-12) through
#: float noise up to order-one divergence after state corruption.
AUDIT_DRIFT_BUCKETS = exponential_buckets(1e-12, 10.0, 14)

#: Version tag of the session checkpoint schema (wraps the engine's
#: :data:`~repro.gnn.async_network.SNAPSHOT_FORMAT`).
SESSION_SNAPSHOT_FORMAT = "incremental-session/v1"


@dataclass(frozen=True)
class AuditPolicy:
    """When and how strictly to shadow-audit a serving session.

    One window in ``every`` is audited; which one is drawn once per
    session from ``seed``, so a fleet of sessions staggers its audit
    work deterministically instead of synchronising on window 0.

    Args:
        every: audit cadence in windows (1 = every window).
        tolerance: maximum allowed ``max |incremental - shadow|`` score
            drift.  0 demands bit-level agreement (the unbounded
            engine's guarantee); bounded sessions should set the
            measured drift bound from ``BENCH_async.json``.
        seed: phase seed for the audit cadence.
        max_events: audited windows longer than this skip the shadow
            recompute (recorded as outcome="skipped") instead of paying
            an unbounded batch rebuild.
    """

    every: int = 16
    tolerance: float = 0.0
    seed: int = 0
    max_events: int = 100_000

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ValueError("every must be >= 1")
        # inf is allowed: audit-and-observe (drift recorded, never trips).
        if not self.tolerance >= 0:
            raise ValueError("tolerance must be >= 0")
        if self.max_events < 1:
            raise ValueError("max_events must be >= 1")


class SessionDivergenceError(RuntimeError):
    """The divergence audit watchdog tripped.

    Raised from :meth:`GNNIncrementalSession.reset` when the closing
    window's incremental scores drifted beyond the
    :class:`AuditPolicy` tolerance from the shadow (batch-path)
    recompute.  The session has already rotated to the next window, so
    a recovery path may restore a checkpoint and retry without
    re-tripping on the same buffer.

    Attributes:
        drift: measured ``max |incremental - shadow|`` (NaN when the
            comparison itself was poisoned).
        window_index: index of the audited window.
    """

    def __init__(self, message: str, *, drift: float, window_index: int) -> None:
        super().__init__(message)
        self.drift = drift
        self.window_index = window_index


class IncrementalSession(abc.ABC):
    """One per-event serving session of a fitted pipeline.

    Protocol: feed events in timestamp order with :meth:`process_event`
    (or :meth:`predict_event` for an immediate decision), read the
    running decision with :meth:`predict` / :meth:`scores`, and call
    :meth:`reset` at window boundaries to start the next window from a
    clean slate.  Sessions are single-stream and stateful; open one per
    served stream, not one per window.

    Counter contract: :attr:`num_events` is *per-window* (it returns to
    zero on :meth:`reset`) while :attr:`macs_total` is *per-session*
    (it deliberately survives :meth:`reset`, and — for checkpointing
    sessions — :meth:`restore` too).  The benchmark comparison against
    per-window recompute depends on this split; both halves are
    asserted in ``tests/test_incremental_serving.py``.
    """

    @abc.abstractmethod
    def process_event(self, x: int, y: int, t_us: int, polarity: int):
        """Incorporate one event; returns the paradigm's step report."""

    def predict_event(self, x: int, y: int, t_us: int, polarity: int) -> int:
        """Incorporate one event and return the updated decision."""
        self.process_event(x, y, t_us, polarity)
        return self.predict()

    @abc.abstractmethod
    def scores(self) -> np.ndarray:
        """Current class scores (zeros before the first event)."""

    @abc.abstractmethod
    def predict(self) -> int:
        """Current class decision."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Forget every event; model weights are untouched.

        Zeroes :attr:`num_events` but **not** :attr:`macs_total` — see
        the class docstring's counter contract.
        """

    def snapshot(self) -> dict:
        """Checkpoint the session state (optional capability).

        Returns a self-contained dict that :meth:`restore` accepts.
        Sessions without checkpoint support raise ``NotImplementedError``;
        callers feature-test with ``hasattr`` or ``try``.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support checkpointing"
        )

    def restore(self, state: dict) -> None:
        """Restore a :meth:`snapshot`; raises ``ValueError`` when the
        checkpoint is structurally incompatible with this session.

        Lifetime work accounting (:attr:`macs_total`) is *not* rolled
        back — restoring discards state, not the work already spent
        producing it.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support checkpointing"
        )

    @property
    @abc.abstractmethod
    def num_events(self) -> int:
        """Events incorporated since the last reset (zeroed by reset)."""

    @property
    @abc.abstractmethod
    def macs_total(self) -> int:
        """Multiply-accumulates spent since the session opened.

        Unlike :attr:`num_events` this survives :meth:`reset` (and
        :meth:`restore`) — it is the session-lifetime work figure the
        benchmarks compare against per-window recompute.
        """


class GNNIncrementalSession(IncrementalSession):
    """Per-event GNN serving over an :class:`~repro.gnn.AsyncEventGNN`.

    Args:
        engine: the incremental inference engine, seeded with the
            fitted classifier.
        paradigm: label value for the emitted metrics.
        instrumentation: optional observability sink.  When attached,
            every event observes ``incremental_event_latency_us``
            (timed with the sink's clock, so virtual-time callers get
            deterministic snapshots), increments
            ``incremental_events_total`` / ``incremental_macs_total``
            / ``expired_nodes_total`` and refreshes the
            ``session_state_bytes`` gauge; audits feed the
            ``incremental_audit_drift`` histogram and the
            ``incremental_audits_total{outcome}`` counter.
        audit: optional :class:`AuditPolicy` enabling the divergence
            watchdog: on the seeded cadence, :meth:`reset` recomputes
            the closing window's scores through ``shadow`` and raises
            :class:`SessionDivergenceError` beyond tolerance.
        shadow: windowed reference scorer,
            ``EventStream -> np.ndarray``.  Defaults to rebuilding the
            event graph with the engine's construction parameters and
            running the model's batch forward (the exact-equivalence
            reference).  :meth:`~repro.core.pipeline.GNNPipeline.
            open_session` supplies its own config-faithful closure.
    """

    def __init__(
        self,
        engine,
        paradigm: str = "GNN",
        instrumentation: Instrumentation | None = None,
        audit: AuditPolicy | None = None,
        shadow=None,
    ) -> None:
        self._engine = engine
        self._macs_total = 0
        self._obs = instrumentation
        self._audit = audit
        self._shadow = shadow if shadow is not None else self._default_shadow
        self._window_index = 0
        self._buf: tuple[list, list, list, list] = ([], [], [], [])
        self._buf_overflow = False
        self._last_drift: float | None = None
        if audit is not None:
            rng = np.random.default_rng(np.random.SeedSequence([audit.seed]))
            self._audit_phase = int(rng.integers(audit.every))
        else:
            self._audit_phase = 0
        self._audit_this_window = self._should_audit(0)
        if instrumentation is not None:
            labels = {"paradigm": paradigm}
            reg = instrumentation.registry
            self._clock = instrumentation.tracer.clock
            self._latency = reg.histogram(
                "incremental_event_latency_us",
                buckets=EVENT_LATENCY_BUCKETS,
                labels=labels,
                help="per-event incremental inference latency (us)",
            )
            self._events_ctr = reg.counter(
                "incremental_events_total",
                labels=labels,
                help="events incorporated by incremental sessions",
            )
            self._macs_ctr = reg.counter(
                "incremental_macs_total",
                labels=labels,
                help="multiply-accumulates spent by incremental sessions",
            )
            self._state_gauge = reg.gauge(
                "session_state_bytes",
                labels=labels,
                help="bytes of live per-session state (SoA node storage "
                "+ inserter rings + edge log)",
            )
            self._expired_ctr = reg.counter(
                "expired_nodes_total",
                labels=labels,
                help="nodes evicted from bounded sessions (stale or "
                "over the live-node budget)",
            )
            self._drift_hist = reg.histogram(
                "incremental_audit_drift",
                buckets=AUDIT_DRIFT_BUCKETS,
                labels=labels,
                help="max-abs score drift measured by the divergence "
                "audit (incremental vs shadow recompute)",
            )
            self._audit_ctrs = {
                outcome: reg.counter(
                    "incremental_audits_total",
                    labels={**labels, "outcome": outcome},
                    help="divergence audits by outcome",
                )
                for outcome in ("ok", "tripped", "skipped")
            }
        else:
            self._clock = None
            self._latency = self._events_ctr = self._macs_ctr = None
            self._state_gauge = self._expired_ctr = self._drift_hist = None
            self._audit_ctrs = None

    @property
    def engine(self):
        """The underlying :class:`~repro.gnn.AsyncEventGNN`."""
        return self._engine

    @property
    def window_index(self) -> int:
        """Windows completed (== resets) since the session opened."""
        return self._window_index

    @property
    def last_audit_drift(self) -> float | None:
        """Drift measured by the most recent audit (None before one)."""
        return self._last_drift

    def process_event(self, x: int, y: int, t_us: int, polarity: int):
        if self._clock is None:
            report = self._engine.process_event(x, y, t_us, polarity)
        else:
            t0 = self._clock()
            report = self._engine.process_event(x, y, t_us, polarity)
            self._latency.observe(float(self._clock()) - float(t0))
            self._events_ctr.inc()
            self._macs_ctr.inc(report.macs)
            if report.expired_nodes:
                self._expired_ctr.inc(report.expired_nodes)
            self._state_gauge.set(self._engine.state_bytes())
        self._macs_total += report.macs
        if self._audit_this_window:
            if len(self._buf[0]) < self._audit.max_events:
                self._buf[0].append(int(t_us))
                self._buf[1].append(int(x))
                self._buf[2].append(int(y))
                self._buf[3].append(int(polarity))
            else:
                self._buf_overflow = True
        return report

    def process_stream(self, stream) -> list:
        """Incorporate every event of an :class:`~repro.events.EventStream`."""
        return [
            self.process_event(int(x), int(y), int(t), int(p))
            for t, x, y, p in zip(stream.t, stream.x, stream.y, stream.p)
        ]

    def scores(self) -> np.ndarray:
        return self._engine.scores()

    def predict(self) -> int:
        return self._engine.predict()

    def reset(self) -> None:
        """Close the window (auditing it when due) and start the next.

        Raises:
            SessionDivergenceError: when the closing window was audited
                and drifted beyond tolerance.  The window has already
                rotated when this raises, so restore-and-retry recovery
                does not re-trip on the same buffer; the engine state is
                left as-is for forensics / checkpoint recovery.
        """
        self._close_window()
        self._engine.reset()

    # -- divergence audit watchdog ------------------------------------
    def _should_audit(self, window_index: int) -> bool:
        if self._audit is None:
            return False
        return window_index % self._audit.every == self._audit_phase

    def _close_window(self) -> None:
        audited = self._audit_this_window
        buf = self._buf
        overflow = self._buf_overflow
        # Rotate first so a trip (or a retried reset) never re-audits
        # the same buffer.
        self._window_index += 1
        self._buf = ([], [], [], [])
        self._buf_overflow = False
        self._audit_this_window = self._should_audit(self._window_index)
        if not audited or not buf[0]:
            return
        if overflow:
            self._record_audit("skipped", None)
            return
        inc = np.asarray(self._engine.scores(), dtype=np.float64)
        ref = np.asarray(self._shadow(self._buffer_stream(buf)), dtype=np.float64)
        if inc.shape != ref.shape:
            drift = float("inf")
        else:
            diff = np.abs(inc - ref)
            drift = float("nan") if np.any(np.isnan(diff)) else float(diff.max())
        self._last_drift = drift
        tripped = not (drift <= self._audit.tolerance)
        self._record_audit("tripped" if tripped else "ok", drift)
        if tripped:
            raise SessionDivergenceError(
                f"incremental scores drifted {drift!r} from the shadow "
                f"recompute at window {self._window_index - 1} "
                f"(tolerance {self._audit.tolerance!r})",
                drift=drift,
                window_index=self._window_index - 1,
            )

    def _record_audit(self, outcome: str, drift: float | None) -> None:
        if self._audit_ctrs is None:
            return
        self._audit_ctrs[outcome].inc()
        if drift is not None and np.isfinite(drift):
            self._drift_hist.observe(drift)

    def _buffer_stream(self, buf):
        from ..events import EventStream, Resolution

        t = np.asarray(buf[0], dtype=np.int64)
        x = np.asarray(buf[1], dtype=np.int64)
        y = np.asarray(buf[2], dtype=np.int64)
        p = np.asarray(buf[3], dtype=np.int64)
        resolution = self._engine.resolution
        if resolution is None:
            resolution = Resolution(int(x.max()) + 1, int(y.max()) + 1)
        return EventStream.from_arrays(t, x, y, p, resolution)

    def _default_shadow(self, stream) -> np.ndarray:
        """Batch-path reference: rebuild the window's graph with the
        engine's construction parameters and run the model forward."""
        from ..gnn.models import GraphBuildConfig, build_event_graph
        from ..nn import no_grad

        engine = self._engine
        config = GraphBuildConfig(
            radius=engine.radius,
            time_scale_us=engine.time_scale_us,
            max_events=max(1, len(stream)),
            max_degree=engine.max_degree,
            include_position=engine.include_position,
        )
        graph = build_event_graph(stream, config)
        with no_grad():
            return engine.model(graph).data[0]

    # -- checkpoint / restore -----------------------------------------
    def snapshot(self) -> dict:
        """Checkpoint the session: engine state + window/audit cursor.

        Schema :data:`SESSION_SNAPSHOT_FORMAT`; the engine state nests
        under ``"engine"`` in its own
        :data:`~repro.gnn.async_network.SNAPSHOT_FORMAT` schema.
        """
        return {
            "format": SESSION_SNAPSHOT_FORMAT,
            "engine": self._engine.snapshot(),
            "window_index": self._window_index,
            "audit_this_window": self._audit_this_window,
            "audit_overflow": self._buf_overflow,
            "audit_buffer": tuple(list(part) for part in self._buf),
        }

    def restore(self, state: dict) -> None:
        """Restore a :meth:`snapshot`.

        :attr:`macs_total` is deliberately **not** rolled back: it
        accounts work actually spent, and replayed events after a
        restore spend real work again.

        Raises:
            ValueError: when the checkpoint (or its nested engine
                checkpoint) is structurally incompatible.
        """
        if not isinstance(state, dict):
            raise ValueError("session checkpoint must be a dict")
        if state.get("format") != SESSION_SNAPSHOT_FORMAT:
            raise ValueError(
                f"unknown session checkpoint format {state.get('format')!r}; "
                f"expected {SESSION_SNAPSHOT_FORMAT!r}"
            )
        try:
            engine_state = state["engine"]
            window_index = int(state["window_index"])
            audit_this_window = bool(state["audit_this_window"])
            overflow = bool(state["audit_overflow"])
            buf = state["audit_buffer"]
            parts = tuple(list(part) for part in buf)
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                f"malformed {SESSION_SNAPSHOT_FORMAT!r} checkpoint "
                f"(truncated or corrupt payload): {exc!r}"
            ) from exc
        if len(parts) != 4 or len({len(part) for part in parts}) != 1:
            raise ValueError(
                f"malformed {SESSION_SNAPSHOT_FORMAT!r} checkpoint: "
                "audit buffer must hold four equal-length columns"
            )
        self._engine.restore(engine_state)
        self._window_index = window_index
        self._audit_this_window = audit_this_window
        self._buf_overflow = overflow
        self._buf = parts

    @property
    def num_events(self) -> int:
        return self._engine.num_events

    @property
    def macs_total(self) -> int:
        return self._macs_total
