"""Per-event incremental serving sessions.

Section IV's perspective — "graph convolutions could be triggered upon
the generation of each event" — is what AEGNN and EvGNN realise in
hardware.  This module is the serving-side face of that idea: a
*session* protocol that feeds a pipeline one event at a time and keeps a
running decision, so a served window costs per-event incremental work
instead of a full graph rebuild plus batch forward pass.

:class:`IncrementalSession` is the paradigm-neutral protocol the
streaming executor drives (see
:meth:`~repro.core.pipeline.ParadigmPipeline.open_session`).
:class:`GNNIncrementalSession` implements it over
:class:`~repro.gnn.AsyncEventGNN`, adding the observability wiring —
per-event latency histogram and MACs/events counters — without touching
the engine itself.

The load-bearing property, tested end to end: at any window boundary the
session's scores are **bit-equal** to the windowed
:meth:`~repro.core.pipeline.ParadigmPipeline.predict` over the same
events (both paths run under :class:`~repro.nn.stable_matmul`).
"""

from __future__ import annotations

import abc

import numpy as np

from ..observability import Instrumentation, exponential_buckets

__all__ = ["IncrementalSession", "GNNIncrementalSession"]

#: Per-event latencies span sub-microsecond cache hits to pathological
#: milliseconds; decade buckets from 0.1 us cover the range.
EVENT_LATENCY_BUCKETS = exponential_buckets(0.1, 10.0, 10)


class IncrementalSession(abc.ABC):
    """One per-event serving session of a fitted pipeline.

    Protocol: feed events in timestamp order with :meth:`process_event`
    (or :meth:`predict_event` for an immediate decision), read the
    running decision with :meth:`predict` / :meth:`scores`, and call
    :meth:`reset` at window boundaries to start the next window from a
    clean slate.  Sessions are single-stream and stateful; open one per
    served stream, not one per window.
    """

    @abc.abstractmethod
    def process_event(self, x: int, y: int, t_us: int, polarity: int):
        """Incorporate one event; returns the paradigm's step report."""

    def predict_event(self, x: int, y: int, t_us: int, polarity: int) -> int:
        """Incorporate one event and return the updated decision."""
        self.process_event(x, y, t_us, polarity)
        return self.predict()

    @abc.abstractmethod
    def scores(self) -> np.ndarray:
        """Current class scores (zeros before the first event)."""

    @abc.abstractmethod
    def predict(self) -> int:
        """Current class decision."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Forget every event; model weights are untouched."""

    @property
    @abc.abstractmethod
    def num_events(self) -> int:
        """Events incorporated since the last reset."""

    @property
    @abc.abstractmethod
    def macs_total(self) -> int:
        """Multiply-accumulates spent since the session opened.

        Unlike :attr:`num_events` this survives :meth:`reset` — it is
        the session-lifetime work figure the benchmarks compare against
        per-window recompute.
        """


class GNNIncrementalSession(IncrementalSession):
    """Per-event GNN serving over an :class:`~repro.gnn.AsyncEventGNN`.

    Args:
        engine: the incremental inference engine, seeded with the
            fitted classifier.
        paradigm: label value for the emitted metrics.
        instrumentation: optional observability sink.  When attached,
            every event observes ``incremental_event_latency_us``
            (timed with the sink's clock, so virtual-time callers get
            deterministic snapshots) and increments
            ``incremental_events_total`` / ``incremental_macs_total``.
    """

    def __init__(
        self,
        engine,
        paradigm: str = "GNN",
        instrumentation: Instrumentation | None = None,
    ) -> None:
        self._engine = engine
        self._macs_total = 0
        self._obs = instrumentation
        if instrumentation is not None:
            labels = {"paradigm": paradigm}
            reg = instrumentation.registry
            self._clock = instrumentation.tracer.clock
            self._latency = reg.histogram(
                "incremental_event_latency_us",
                buckets=EVENT_LATENCY_BUCKETS,
                labels=labels,
                help="per-event incremental inference latency (us)",
            )
            self._events_ctr = reg.counter(
                "incremental_events_total",
                labels=labels,
                help="events incorporated by incremental sessions",
            )
            self._macs_ctr = reg.counter(
                "incremental_macs_total",
                labels=labels,
                help="multiply-accumulates spent by incremental sessions",
            )
        else:
            self._clock = None
            self._latency = self._events_ctr = self._macs_ctr = None

    @property
    def engine(self):
        """The underlying :class:`~repro.gnn.AsyncEventGNN`."""
        return self._engine

    def process_event(self, x: int, y: int, t_us: int, polarity: int):
        if self._clock is None:
            report = self._engine.process_event(x, y, t_us, polarity)
        else:
            t0 = self._clock()
            report = self._engine.process_event(x, y, t_us, polarity)
            self._latency.observe(float(self._clock()) - float(t0))
            self._events_ctr.inc()
            self._macs_ctr.inc(report.macs)
        self._macs_total += report.macs
        return report

    def process_stream(self, stream) -> list:
        """Incorporate every event of an :class:`~repro.events.EventStream`."""
        return [
            self.process_event(int(x), int(y), int(t), int(p))
            for t, x, y, p in zip(stream.t, stream.x, stream.y, stream.p)
        ]

    def scores(self) -> np.ndarray:
        return self._engine.scores()

    def predict(self) -> int:
        return self._engine.predict()

    def reset(self) -> None:
        self._engine.reset()

    @property
    def num_events(self) -> int:
        return self._engine.num_events

    @property
    def macs_total(self) -> int:
        return self._macs_total
