"""Tuned pipeline presets for the Table-I experiment.

The exact hyper-parameters used by the reproduction's headline run live
here, in one place, so the benchmark, the example script and the test
suite all measure the same configuration.
"""

from __future__ import annotations

import numpy as np

from ..datasets.base import EventDataset, train_test_split
from ..datasets.gestures import make_gestures_dataset
from ..events.stream import Resolution
from ..gnn.models import GraphBuildConfig
from .pipeline import CNNPipeline, GNNPipeline, ParadigmPipeline, SNNPipeline

__all__ = ["table1_pipelines", "table1_dataset"]


def table1_pipelines(seed: int = 0) -> dict[str, ParadigmPipeline]:
    """The pipeline configuration of the headline Table-I run.

    Args:
        seed: model initialisation / shuffling seed.
    """
    return {
        "SNN": SNNPipeline(num_steps=20, pool=3, hidden=24, epochs=12, seed=seed),
        "CNN": CNNPipeline(base_width=6, epochs=12, seed=seed),
        "GNN": GNNPipeline(
            config=GraphBuildConfig(
                radius=4.0,
                time_scale_us=3000.0,
                max_events=250,
                max_degree=8,
                include_position=True,
            ),
            hidden=12,
            epochs=14,
            seed=seed,
        ),
    }


def table1_dataset(seed: int = 1) -> tuple[EventDataset, EventDataset]:
    """The headline dataset: full-rotation motion gestures, split 75/25.

    Recordings span 1–2 full rotations (4–8 rev/s over 250 ms) so the
    CW/CCW classes genuinely require temporal information (a partial
    sweep would leak direction through the polarity asymmetry).

    Args:
        seed: dataset generation / split seed.

    Returns:
        ``(train, test)`` datasets.
    """
    dataset = make_gestures_dataset(
        num_per_class=8,
        resolution=Resolution(24, 24),
        duration_us=250_000,
        revs_range=(4.0, 8.0),
        seed=seed,
    )
    return train_test_split(dataset, 0.3, np.random.default_rng(seed))
