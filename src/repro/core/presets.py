"""Tuned pipeline presets for the Table-I experiment.

The exact hyper-parameters used by the reproduction's headline run live
here, in one place, so the benchmark, the example script and the test
suite all measure the same configuration.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, ClassVar

import numpy as np

from ..datasets.base import EventDataset, train_test_split
from ..datasets.gestures import make_gestures_dataset
from ..events.stream import Resolution
from ..gnn.models import GraphBuildConfig
from .pipeline import CNNPipeline, GNNPipeline, ParadigmPipeline, SNNPipeline

__all__ = [
    "SNNConfig",
    "CNNConfig",
    "GNNConfig",
    "PipelineConfig",
    "make_pipeline",
    "default_configs",
    "table1_configs",
    "table1_pipelines",
    "table1_dataset",
]


@dataclass(frozen=True)
class SNNConfig:
    """Frozen, picklable configuration of :class:`SNNPipeline`.

    Field meanings match the pipeline's keyword arguments (which keep
    working unchanged); defaults are identical, so
    ``SNNPipeline.from_config(SNNConfig())`` equals ``SNNPipeline()``.
    """

    paradigm: ClassVar[str] = "SNN"

    num_steps: int = 16
    pool: int = 2
    hidden: int = 32
    dt_us: float = 1000.0
    epochs: int = 12
    lr: float = 5e-3
    batch_size: int = 8
    update: str = "clock"
    seed: int = 0

    def kwargs(self) -> dict[str, Any]:
        """Keyword arguments for the pipeline constructor."""
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class CNNConfig:
    """Frozen, picklable configuration of :class:`CNNPipeline`."""

    paradigm: ClassVar[str] = "CNN"

    base_width: int = 8
    representation: str = "two_channel"
    epochs: int = 15
    lr: float = 2e-3
    batch_size: int = 8
    seed: int = 0

    def kwargs(self) -> dict[str, Any]:
        """Keyword arguments for the pipeline constructor."""
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class GNNConfig:
    """Frozen, picklable configuration of :class:`GNNPipeline`.

    Graph-construction fields are flattened in (one frozen dataclass
    per paradigm); :meth:`graph_config` rebuilds the nested
    :class:`~repro.gnn.models.GraphBuildConfig` the pipeline consumes.
    """

    paradigm: ClassVar[str] = "GNN"

    radius: float = 4.0
    time_scale_us: float = 5000.0
    max_events: int = 200
    max_degree: int = 10
    causal: bool = True
    include_position: bool = False
    representation: str = "dense"
    quantization_bits: int = 8
    hidden: int = 12
    epochs: int = 12
    lr: float = 5e-3
    seed: int = 0

    def graph_config(self) -> GraphBuildConfig:
        """The nested graph-construction config."""
        return GraphBuildConfig(
            radius=self.radius,
            time_scale_us=self.time_scale_us,
            max_events=self.max_events,
            max_degree=self.max_degree,
            causal=self.causal,
            include_position=self.include_position,
            representation=self.representation,
            quantization_bits=self.quantization_bits,
        )

    def kwargs(self) -> dict[str, Any]:
        """Keyword arguments for the pipeline constructor."""
        return {
            "config": self.graph_config(),
            "hidden": self.hidden,
            "epochs": self.epochs,
            "lr": self.lr,
            "seed": self.seed,
        }


#: Any per-paradigm pipeline configuration.
PipelineConfig = SNNConfig | CNNConfig | GNNConfig

_PIPELINE_CLASSES: dict[str, type[ParadigmPipeline]] = {
    "SNN": SNNPipeline,
    "CNN": CNNPipeline,
    "GNN": GNNPipeline,
}


def make_pipeline(config: PipelineConfig) -> ParadigmPipeline:
    """Construct the pipeline a config dataclass describes.

    Args:
        config: an :class:`SNNConfig`, :class:`CNNConfig` or
            :class:`GNNConfig` (anything with ``paradigm`` and
            ``kwargs()``).
    """
    cls = _PIPELINE_CLASSES.get(getattr(config, "paradigm", None))
    if cls is None:
        raise ValueError(
            f"not a pipeline config: {type(config).__name__!r} "
            f"(expected paradigm in {tuple(_PIPELINE_CLASSES)})"
        )
    return cls.from_config(config)


def default_configs(seed: int = 0) -> dict[str, PipelineConfig]:
    """Default-hyperparameter configs for all three paradigms."""
    return {
        "SNN": SNNConfig(seed=seed),
        "CNN": CNNConfig(seed=seed),
        "GNN": GNNConfig(seed=seed),
    }


def table1_configs(seed: int = 0) -> dict[str, PipelineConfig]:
    """The pipeline configs of the headline Table-I run.

    Args:
        seed: model initialisation / shuffling seed.
    """
    return {
        "SNN": SNNConfig(num_steps=20, pool=3, hidden=24, epochs=12, seed=seed),
        "CNN": CNNConfig(base_width=6, epochs=12, seed=seed),
        "GNN": GNNConfig(
            radius=4.0,
            time_scale_us=3000.0,
            max_events=250,
            max_degree=8,
            include_position=True,
            hidden=12,
            epochs=14,
            seed=seed,
        ),
    }


def table1_pipelines(seed: int = 0) -> dict[str, ParadigmPipeline]:
    """The pipeline instances of the headline Table-I run.

    Args:
        seed: model initialisation / shuffling seed.
    """
    return {
        name: make_pipeline(config)
        for name, config in table1_configs(seed).items()
    }


def table1_dataset(seed: int = 1) -> tuple[EventDataset, EventDataset]:
    """The headline dataset: full-rotation motion gestures, split 75/25.

    Recordings span 1–2 full rotations (4–8 rev/s over 250 ms) so the
    CW/CCW classes genuinely require temporal information (a partial
    sweep would leak direction through the polarity asymmetry).

    Args:
        seed: dataset generation / split seed.

    Returns:
        ``(train, test)`` datasets.
    """
    dataset = make_gestures_dataset(
        num_per_class=8,
        resolution=Resolution(24, 24),
        duration_us=250_000,
        revs_range=(4.0, 8.0),
        seed=seed,
    )
    return train_test_split(dataset, 0.3, np.random.default_rng(seed))
