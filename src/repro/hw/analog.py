"""Analog / mixed-signal neuromorphic processor model (Section III-A, V).

"Analogue neuromorphic processors seem to be better adapted for seamless
event-based operation … time implicitly represents itself and state
variables evolve naturally using the physics of the analogue circuit."
And from the discussion: "analogue spiking processors generally consume
an order of magnitude less power [46] … However, transistor mismatch and
other physical nonidealities limit the robustness of this approach."

The model has two parts:

* an energy model where synaptic events cost sub-picojoule analog charge
  transfers and neuron dynamics are free (physics integrates the state),
  plus a static bias-current floor — matching the DYNAP-class operating
  points (ref [46]);
* a mismatch model that perturbs network weights and thresholds with the
  device-to-device variability analog arrays suffer, so its accuracy
  impact can be measured on a real task.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..snn.event_driven import SimCounters
from .report import CostReport

__all__ = ["AnalogNeuromorphicProcessor", "apply_mismatch"]


@dataclass(frozen=True)
class AnalogNeuromorphicProcessor:
    """An analog spiking processor energy model.

    Attributes:
        synaptic_event_pj: charge-packet energy per synaptic event
            (sub-pJ in DYNAP-class silicon).
        spike_event_pj: energy per output spike (AER encoding etc.).
        static_power_uw: bias-current static power floor in microwatts.
        mismatch_sigma: relative device mismatch (weights/thresholds).
    """

    synaptic_event_pj: float = 0.1
    spike_event_pj: float = 1.0
    static_power_uw: float = 100.0
    mismatch_sigma: float = 0.1

    def __post_init__(self) -> None:
        if self.synaptic_event_pj <= 0 or self.spike_event_pj <= 0:
            raise ValueError("event energies must be positive")
        if self.static_power_uw < 0:
            raise ValueError("static_power_uw must be non-negative")
        if self.mismatch_sigma < 0:
            raise ValueError("mismatch_sigma must be non-negative")

    def cost_from_counters(
        self, counters: SimCounters, duration_us: float, name: str = "analog-snn"
    ) -> CostReport:
        """Energy of a spiking workload on the analog substrate.

        Neuron state updates are free (the membrane capacitor integrates
        physically); only synaptic events, output spikes and the static
        floor cost energy.

        Args:
            counters: counted workload (synapse_reads = synaptic events).
            duration_us: wall-clock duration for the static-power term.
        """
        if duration_us <= 0:
            raise ValueError("duration_us must be positive")
        e_syn = counters.synapse_reads * self.synaptic_event_pj
        e_spk = counters.spikes * self.spike_event_pj
        e_static = self.static_power_uw * 1e-6 * duration_us * 1e-6 * 1e12  # -> pJ
        return CostReport(
            name=name,
            energy_pj=e_syn + e_spk + e_static,
            latency_us=0.0,  # analog dynamics run in real time
            macs=0,
            memory_accesses=0,
            sram_bytes=0,
            breakdown={"synaptic": e_syn, "spikes": e_spk, "static": e_static},
        )

    def power_mw(self, counters: SimCounters, duration_us: float) -> float:
        """Mean power of the workload in milliwatts."""
        report = self.cost_from_counters(counters, duration_us)
        return report.power_mw(duration_us)


def apply_mismatch(
    weights: np.ndarray, sigma: float, rng: np.random.Generator
) -> np.ndarray:
    """Perturb weights with multiplicative log-normal device mismatch.

    Analog synapse conductances vary device-to-device roughly
    log-normally; ``sigma`` is the relative spread.  Returns a new array.
    """
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    if sigma == 0:
        return np.asarray(weights, dtype=np.float64).copy()
    factors = rng.lognormal(mean=0.0, sigma=sigma, size=np.shape(weights))
    return np.asarray(weights, dtype=np.float64) * factors
