"""3-D-integrated smart imager model (Section I's forward-looking goal).

"A particularly exciting forward-looking goal is a multi-layer
3D-integrated smart imager chip whereby the event-camera is tightly
integrated with an AI co-processor that can operate very effectively
near the data-generating pixels … to achieve in-sensor processing [9]."

The model quantifies what 3-D integration buys: instead of streaming
every event off-chip over the AER link to a remote processor, the
stacked AI layer consumes events locally (through-silicon vias at a
fraction of the pad-driver energy) and only the *decisions* (or regions
of interest) leave the chip.  Off-chip I/O is the expensive part —
driving a chip-to-chip link costs an order of magnitude more energy per
bit than on-chip wires — so the win scales with the event rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from .report import CostReport

__all__ = ["SmartImagerModel", "IOEnergyParams"]


@dataclass(frozen=True)
class IOEnergyParams:
    """Interconnect energy parameters.

    Attributes:
        offchip_pj_per_bit: chip-to-chip link driver energy.
        tsv_pj_per_bit: through-silicon-via (3-D stack) energy.
        onchip_pj_per_bit: on-chip wire energy.
    """

    offchip_pj_per_bit: float = 10.0
    tsv_pj_per_bit: float = 0.5
    onchip_pj_per_bit: float = 0.05

    def __post_init__(self) -> None:
        if min(self.offchip_pj_per_bit, self.tsv_pj_per_bit, self.onchip_pj_per_bit) <= 0:
            raise ValueError("all I/O energies must be positive")
        if not self.offchip_pj_per_bit > self.tsv_pj_per_bit > self.onchip_pj_per_bit:
            raise ValueError("expected offchip > TSV > onchip energy ordering")


@dataclass(frozen=True)
class SmartImagerModel:
    """Compare off-chip streaming against in-sensor (3-D stacked) processing.

    Attributes:
        io: interconnect energy parameters.
        event_bits: AER word width (from :class:`repro.events.AERCodec`).
        decision_bits: bits per output decision/ROI message.
    """

    io: IOEnergyParams = IOEnergyParams()
    event_bits: int = 40
    decision_bits: int = 64

    def __post_init__(self) -> None:
        if self.event_bits <= 0 or self.decision_bits <= 0:
            raise ValueError("bit widths must be positive")

    def stream_out(
        self, num_events: int, duration_us: float, compute_energy_pj: float = 0.0
    ) -> CostReport:
        """Cost of streaming all events off-chip to a remote processor.

        Args:
            num_events: events in the window.
            duration_us: window length.
            compute_energy_pj: the remote processor's compute energy
                (added so totals stay comparable).
        """
        if num_events < 0 or duration_us <= 0:
            raise ValueError("invalid workload")
        bits = num_events * self.event_bits
        e_io = bits * self.io.offchip_pj_per_bit
        return CostReport(
            name="stream-out",
            energy_pj=e_io + compute_energy_pj,
            latency_us=0.0,
            memory_accesses=0,
            breakdown={"io_offchip": e_io, "compute": compute_energy_pj},
        )

    def in_sensor(
        self,
        num_events: int,
        duration_us: float,
        compute_energy_pj: float,
        decisions_per_second: float = 100.0,
    ) -> CostReport:
        """Cost of processing in the stacked AI layer, emitting decisions only.

        Events cross one TSV layer; only compact decisions leave the
        chip.

        Args:
            num_events: events in the window.
            duration_us: window length.
            compute_energy_pj: the stacked co-processor's compute energy.
            decisions_per_second: output message rate.
        """
        if num_events < 0 or duration_us <= 0:
            raise ValueError("invalid workload")
        if decisions_per_second <= 0:
            raise ValueError("decisions_per_second must be positive")
        e_tsv = num_events * self.event_bits * self.io.tsv_pj_per_bit
        num_decisions = max(1.0, decisions_per_second * duration_us * 1e-6)
        e_out = num_decisions * self.decision_bits * self.io.offchip_pj_per_bit
        return CostReport(
            name="in-sensor",
            energy_pj=e_tsv + e_out + compute_energy_pj,
            latency_us=0.0,
            memory_accesses=0,
            breakdown={"io_tsv": e_tsv, "io_offchip": e_out, "compute": compute_energy_pj},
        )

    def io_saving(
        self, num_events: int, duration_us: float, decisions_per_second: float = 100.0
    ) -> float:
        """Ratio of off-chip-stream I/O energy to in-sensor I/O energy."""
        stream = self.stream_out(num_events, duration_us)
        local = self.in_sensor(num_events, duration_us, 0.0, decisions_per_second)
        return stream.energy_pj / max(local.energy_pj, 1e-12)
