"""Hardware cost models: energy tables and accelerator analytical models."""

from .analog import AnalogNeuromorphicProcessor, apply_mismatch
from .energy import ENERGY_45NM, EnergyTable
from .gnn_accel import GNNAccelerator
from .memory import MemoryHierarchy, MemoryLevel, default_hierarchy
from .neuromorphic import NeuromorphicCore, analytic_snn_counters
from .report import CostReport
from .smart_imager import IOEnergyParams, SmartImagerModel
from .systolic import ReuseFactors, SystolicArray, dataflow_reuse
from .workload import (
    ConvLayerWorkload,
    GNNWorkload,
    GraphMemoryWorkload,
    SNNLayerWorkload,
)
from .zeroskip import (
    ZeroSkipAccelerator,
    compression_ratio,
    nullhop_compressed_bits,
    rle_compressed_bits,
)

__all__ = [
    "EnergyTable",
    "ENERGY_45NM",
    "CostReport",
    "SmartImagerModel",
    "IOEnergyParams",
    "ConvLayerWorkload",
    "SNNLayerWorkload",
    "GNNWorkload",
    "GraphMemoryWorkload",
    "SystolicArray",
    "ReuseFactors",
    "dataflow_reuse",
    "ZeroSkipAccelerator",
    "rle_compressed_bits",
    "nullhop_compressed_bits",
    "compression_ratio",
    "NeuromorphicCore",
    "analytic_snn_counters",
    "GNNAccelerator",
    "MemoryLevel",
    "MemoryHierarchy",
    "default_hierarchy",
    "AnalogNeuromorphicProcessor",
    "apply_mismatch",
]
