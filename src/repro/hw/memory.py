"""On-chip memory hierarchy model.

SNN cores "contain a memory hierarchy (i.e., SRAM, standard cell memory
and register files) which store information on the state of neurons and
synapses" (Section III-A).  This module models that hierarchy explicitly:
a footprint is placed into the smallest level that holds it, and its
access energy follows.  The model quantifies the paper's distributed-core
trade-off (ref [43]): splitting a model across many small cores keeps
every access in cheap near memory at the price of more silicon.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .energy import ENERGY_45NM, EnergyTable

__all__ = ["MemoryLevel", "MemoryHierarchy", "default_hierarchy"]


@dataclass(frozen=True)
class MemoryLevel:
    """One level of the hierarchy.

    Attributes:
        name: level label.
        capacity_bytes: storage capacity.
        access_pj: energy per word access.
        area_mm2_per_kb: silicon cost per kilobyte (for the distributed
            -core area accounting).
    """

    name: str
    capacity_bytes: int
    access_pj: float
    area_mm2_per_kb: float

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if self.access_pj <= 0:
            raise ValueError("access_pj must be positive")
        if self.area_mm2_per_kb <= 0:
            raise ValueError("area_mm2_per_kb must be positive")


@dataclass(frozen=True)
class MemoryHierarchy:
    """An ordered (smallest/cheapest first) memory hierarchy.

    Attributes:
        levels: the hierarchy, ordered by increasing capacity.
    """

    levels: tuple[MemoryLevel, ...]

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("hierarchy needs at least one level")
        caps = [lv.capacity_bytes for lv in self.levels]
        if caps != sorted(caps):
            raise ValueError("levels must be ordered by increasing capacity")
        costs = [lv.access_pj for lv in self.levels]
        if costs != sorted(costs):
            raise ValueError("access energy must not decrease with capacity")

    def place(self, footprint_bytes: int) -> MemoryLevel:
        """Smallest level that holds ``footprint_bytes``.

        Falls through to the last (largest) level when nothing fits —
        the model's stand-in for off-chip spill.
        """
        if footprint_bytes < 0:
            raise ValueError("footprint_bytes must be non-negative")
        for level in self.levels:
            if footprint_bytes <= level.capacity_bytes:
                return level
        return self.levels[-1]

    def access_energy_pj(self, footprint_bytes: int, num_accesses: int) -> float:
        """Energy of ``num_accesses`` word accesses to a resident footprint."""
        if num_accesses < 0:
            raise ValueError("num_accesses must be non-negative")
        return self.place(footprint_bytes).access_pj * num_accesses

    def streams_per_level(self, footprint_bytes: int) -> dict[str, int]:
        """How many concurrent graph streams each level could hold.

        For a per-stream resident footprint (e.g. one bounded event
        graph), returns ``{level name: capacity // footprint}`` — the
        multi-tenancy headroom a representation buys at each level of
        the hierarchy.  A compact graph that fits 8x more streams into
        the same SRAM is the hardware payoff the compact representation
        exists for.
        """
        if footprint_bytes <= 0:
            raise ValueError("footprint_bytes must be positive")
        return {
            level.name: level.capacity_bytes // footprint_bytes
            for level in self.levels
        }

    def distributed_core_tradeoff(
        self, total_bytes: int, num_cores: int, accesses_per_byte: float = 1.0
    ) -> dict[str, float]:
        """Energy and area of splitting a model over ``num_cores`` cores.

        Each core holds ``total_bytes / num_cores``; smaller slices land
        in cheaper levels (ref [43]'s one-to-one extreme is
        ``num_cores -> num_synapses``), but every core pays its slice's
        silicon area.

        Returns:
            ``{"energy_pj", "area_mm2", "level"}`` for the configuration.
        """
        if total_bytes <= 0 or num_cores <= 0:
            raise ValueError("total_bytes and num_cores must be positive")
        if accesses_per_byte < 0:
            raise ValueError("accesses_per_byte must be non-negative")
        slice_bytes = max(1, total_bytes // num_cores)
        level = self.place(slice_bytes)
        total_accesses = total_bytes * accesses_per_byte
        energy = level.access_pj * total_accesses
        area = num_cores * (slice_bytes / 1024.0) * level.area_mm2_per_kb
        return {"energy_pj": energy, "area_mm2": area, "level": level.name}


def default_hierarchy(energy: EnergyTable = ENERGY_45NM) -> MemoryHierarchy:
    """The register-file / small-SRAM / large-SRAM / DRAM default stack."""
    return MemoryHierarchy(
        (
            MemoryLevel("register-file", 512, energy.rf_access_pj, 2.0),
            MemoryLevel("sram-8KB", 8 * 1024, energy.sram_small_pj, 0.4),
            MemoryLevel("sram-1MB", 1024 * 1024, energy.sram_large_pj, 0.15),
            MemoryLevel("dram", 1 << 40, energy.dram_pj, 0.001),
        )
    )
