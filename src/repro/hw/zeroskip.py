"""Zero-skipping sparse CNN accelerator model and compressed formats.

Section III-B: zero-skipping accelerators "incorporate two main
innovations … skipping multiplications by zero — ideally saving clock
cycles … The second principal innovation is the compressed format of the
stored data which helps reduce memory accesses.  However, this results
in an inefficient non-deterministic SRAM access pattern."

This module provides:

* actual compressed-size calculators for the two classic feature-map
  formats — run-length encoding and the NullHop-style non-zero value
  list + binary occupancy mask (ref [62]) — so compression ratios come
  from real data rather than assumptions;
* :class:`ZeroSkipAccelerator`, which skips zero activations (and
  optionally zero weights, Cambricon-X/Eyeriss-v2 style, refs [63],
  [64]) and pays a configurable control/irregularity overhead per
  skipped element plus a structured-sparsity discount (ref [65]).
"""

from __future__ import annotations

from dataclasses import dataclass
import math

import numpy as np

from .energy import ENERGY_45NM, EnergyTable
from .report import CostReport
from .workload import ConvLayerWorkload

__all__ = [
    "rle_compressed_bits",
    "nullhop_compressed_bits",
    "compression_ratio",
    "ZeroSkipAccelerator",
]


def rle_compressed_bits(values: np.ndarray, word_bits: int = 16, run_bits: int = 5) -> int:
    """Size of a zero-run-length encoding of ``values`` in bits.

    Non-zero words are stored verbatim, each preceded by the length of
    the zero run before it (``run_bits`` wide, with continuation words
    for runs longer than the field).

    Args:
        values: array to compress (flattened).
        word_bits: bits per stored value.
        run_bits: bits of the run-length field.
    """
    if word_bits <= 0 or run_bits <= 0:
        raise ValueError("word_bits and run_bits must be positive")
    flat = np.asarray(values).reshape(-1)
    if flat.size == 0:
        return 0
    max_run = (1 << run_bits) - 1
    bits = 0
    run = 0
    for v in flat:
        if v == 0:
            run += 1
            continue
        # Emit continuation tokens for overlong runs, then the value.
        bits += (run // max_run) * run_bits
        bits += run_bits + word_bits
        run = 0
    if run:
        bits += (math.ceil(run / max_run)) * run_bits
    return bits


def nullhop_compressed_bits(values: np.ndarray, word_bits: int = 16) -> int:
    """Size of the NullHop feature-map format: bitmask + non-zero list.

    One bit per element marks occupancy; non-zero values are stored
    densely after the mask (ref [62]).
    """
    if word_bits <= 0:
        raise ValueError("word_bits must be positive")
    flat = np.asarray(values).reshape(-1)
    nnz = int(np.count_nonzero(flat))
    return flat.size + nnz * word_bits


def compression_ratio(values: np.ndarray, scheme: str = "nullhop", word_bits: int = 16) -> float:
    """Dense size / compressed size for the given scheme (> 1 = wins)."""
    flat = np.asarray(values).reshape(-1)
    if flat.size == 0:
        return 1.0
    dense = flat.size * word_bits
    if scheme == "nullhop":
        comp = nullhop_compressed_bits(flat, word_bits)
    elif scheme == "rle":
        comp = rle_compressed_bits(flat, word_bits)
    else:
        raise ValueError(f"unknown scheme {scheme!r}")
    return dense / max(comp, 1)


@dataclass(frozen=True)
class ZeroSkipAccelerator:
    """A sparse CNN accelerator with zero skipping and compressed storage.

    Attributes:
        num_macs: parallel MAC units.
        clock_mhz: operating frequency.
        skip_weights: also skip zero weights (adds control overhead).
        control_overhead: extra cycles per *skipped* element, modelling
            the non-deterministic access pattern penalty.
        structured: sparsity has hardware-friendly structure (ref [65]),
            removing the control overhead.
        energy: per-op energy table.
    """

    num_macs: int = 128
    clock_mhz: float = 200.0
    skip_weights: bool = False
    control_overhead: float = 0.15
    structured: bool = False
    energy: EnergyTable = ENERGY_45NM

    def __post_init__(self) -> None:
        if self.num_macs <= 0:
            raise ValueError("num_macs must be positive")
        if self.clock_mhz <= 0:
            raise ValueError("clock_mhz must be positive")
        if self.control_overhead < 0:
            raise ValueError("control_overhead must be non-negative")

    def run_layer(self, layer: ConvLayerWorkload) -> CostReport:
        """Cost of one conv layer with zero skipping.

        Effective MACs scale with the density of activations (and of
        weights when ``skip_weights``); feature-map memory traffic scales
        with the compressed size (NullHop format at the layer's
        sparsity); skipped elements cost ``control_overhead`` cycles each
        unless sparsity is structured.
        """
        act_density = 1.0 - layer.activation_sparsity
        w_density = 1.0 - layer.weight_sparsity if self.skip_weights else 1.0
        effective_macs = int(round(layer.dense_macs * act_density * w_density))
        skipped = layer.dense_macs - effective_macs

        overhead = 0.0 if self.structured else self.control_overhead
        cycles = effective_macs / self.num_macs + skipped * overhead / self.num_macs

        # Feature maps move compressed: mask bit per element + words for
        # the non-zeros (the NullHop format, computed analytically).
        word_bits = layer.bits
        act_words = layer.num_input_activations
        act_traffic_words = act_words * act_density + act_words / word_bits
        out_density = min(1.0, act_density + 0.1)  # conv dilates support a bit
        out_words = layer.num_output_activations
        out_traffic_words = out_words * out_density + out_words / word_bits
        weight_words = layer.num_weights * w_density
        mem_accesses = int(round(act_traffic_words + out_traffic_words + weight_words))

        e_mac = effective_macs * self.energy.mac_pj
        e_mem = mem_accesses * self.energy.sram_large_pj
        e_ctrl = skipped * overhead * self.energy.add_int_pj
        e_rf = effective_macs * 2 * self.energy.rf_access_pj

        word_bytes = max(1, layer.bits // 8)
        sram = int(
            (weight_words + act_traffic_words + out_traffic_words) * word_bytes
        )
        label = "zeroskip+w" if self.skip_weights else "zeroskip"
        if self.structured:
            label += "+structured"
        return CostReport(
            name=label,
            energy_pj=e_mac + e_mem + e_ctrl + e_rf,
            latency_us=cycles / self.clock_mhz,
            macs=effective_macs,
            memory_accesses=mem_accesses,
            sram_bytes=sram,
            breakdown={
                "mac": e_mac,
                "mem_sram": e_mem,
                "mem_rf": e_rf,
                "control": e_ctrl,
            },
        )
