"""Cost-report structures shared by all accelerator models."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CostReport"]


@dataclass
class CostReport:
    """Energy / latency / memory summary of one workload on one accelerator.

    Attributes:
        name: accelerator + workload identifier.
        energy_pj: total energy in picojoules.
        latency_us: end-to-end latency in microseconds.
        macs: multiply-accumulate operations performed.
        memory_accesses: memory words touched.
        sram_bytes: on-chip storage required.
        breakdown: free-form energy breakdown in picojoules by component.
    """

    name: str
    energy_pj: float = 0.0
    latency_us: float = 0.0
    macs: int = 0
    memory_accesses: int = 0
    sram_bytes: int = 0
    breakdown: dict[str, float] = field(default_factory=dict)

    @property
    def energy_uj(self) -> float:
        """Energy in microjoules."""
        return self.energy_pj * 1e-6

    @property
    def memory_energy_fraction(self) -> float:
        """Fraction of energy spent on memory accesses (needs a breakdown
        with keys containing 'mem')."""
        if not self.breakdown or self.energy_pj == 0:
            return 0.0
        mem = sum(v for k, v in self.breakdown.items() if "mem" in k)
        return mem / self.energy_pj

    def power_mw(self, duty_period_us: float) -> float:
        """Mean power in milliwatts when this workload repeats every
        ``duty_period_us`` microseconds."""
        if duty_period_us <= 0:
            raise ValueError("duty_period_us must be positive")
        return self.energy_pj * 1e-12 / (duty_period_us * 1e-6) * 1e3

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.name}: {self.energy_uj:.3f} uJ, {self.latency_us:.1f} us, "
            f"{self.macs} MACs, {self.memory_accesses} mem accesses"
        )
