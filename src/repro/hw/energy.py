"""Per-operation and per-access energy tables.

The numbers follow the widely used 45 nm CMOS estimates popularised by
Horowitz (ISSCC 2014) and used by the papers the article cites for its
energy arguments (Pedram et al. 2016 "dark memory", ref [40];
Dampfhoffer et al. 2022, ref [42]):

=====================  ==========
operation              energy (pJ)
=====================  ==========
32-bit int add          0.1
32-bit int multiply     3.1
32-bit float add        0.9
32-bit float multiply   3.7
32-bit MAC (int)        3.2
register-file access    0.1
8 KB SRAM access        10
1 MB SRAM access        50
DRAM access             640
=====================  ==========

Two facts from the paper that these tables must reproduce: additions are
"around four times less energy" than multiplications (ref [40] — true
here for float: 3.7/0.9 ≈ 4.1), and memory accesses dominate total
energy "as high as 99%" in SNN cores (ref [42] — SRAM ≥ 10 pJ vs 0.1 pJ
adds).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EnergyTable", "ENERGY_45NM"]


@dataclass(frozen=True)
class EnergyTable:
    """Energy per operation in picojoules at a given process node.

    Attributes:
        name: table identifier.
        add_int_pj: 32-bit integer addition.
        mult_int_pj: 32-bit integer multiplication.
        add_float_pj: 32-bit float addition.
        mult_float_pj: 32-bit float multiplication.
        mac_pj: fused multiply-accumulate.
        exp_pj: exponential/LUT evaluation (event-driven decay).
        rf_access_pj: register-file word access.
        sram_small_pj: small (8 KB) SRAM word access.
        sram_large_pj: large (1 MB) SRAM word access.
        dram_pj: external DRAM word access.
    """

    name: str = "45nm"
    add_int_pj: float = 0.1
    mult_int_pj: float = 3.1
    add_float_pj: float = 0.9
    mult_float_pj: float = 3.7
    mac_pj: float = 3.2
    exp_pj: float = 10.0
    rf_access_pj: float = 0.1
    sram_small_pj: float = 10.0
    sram_large_pj: float = 50.0
    dram_pj: float = 640.0

    def __post_init__(self) -> None:
        for field_name in (
            "add_int_pj",
            "mult_int_pj",
            "add_float_pj",
            "mult_float_pj",
            "mac_pj",
            "exp_pj",
            "rf_access_pj",
            "sram_small_pj",
            "sram_large_pj",
            "dram_pj",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")

    @property
    def add_vs_mult_ratio(self) -> float:
        """How many float adds fit in one float multiply (paper: ~4x)."""
        return self.mult_float_pj / self.add_float_pj

    def scaled(self, factor: float, name: str | None = None) -> "EnergyTable":
        """A proportionally scaled table (crude process-node scaling)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return EnergyTable(
            name=name or f"{self.name}-x{factor:g}",
            add_int_pj=self.add_int_pj * factor,
            mult_int_pj=self.mult_int_pj * factor,
            add_float_pj=self.add_float_pj * factor,
            mult_float_pj=self.mult_float_pj * factor,
            mac_pj=self.mac_pj * factor,
            exp_pj=self.exp_pj * factor,
            rf_access_pj=self.rf_access_pj * factor,
            sram_small_pj=self.sram_small_pj * factor,
            sram_large_pj=self.sram_large_pj * factor,
            dram_pj=self.dram_pj * factor,
        )


#: Default 45 nm energy table.
ENERGY_45NM = EnergyTable()
