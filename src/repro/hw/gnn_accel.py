"""GNN accelerator cost model (Section IV, refs [73], [74]).

"While dedicated GNN accelerators have recently been proposed for
datacenters, they are poorly adapted for the sparse streaming nature of
event-data and low-power operation at the edge."

The model follows the hybrid-architecture decomposition of HyGCN /
EnGN: an *aggregation* phase dominated by irregular gather traffic (one
feature-vector read per edge — from DRAM in the datacenter
configuration, from SRAM in a hypothetical edge configuration) and a
*combination* phase of dense MACs.  An asynchronous per-event cost is
also provided: the work of updating the graph locally when one event
arrives, which is what a future event-graph processor would execute.
"""

from __future__ import annotations

from dataclasses import dataclass

from .energy import ENERGY_45NM, EnergyTable
from .report import CostReport
from .workload import GNNWorkload

__all__ = ["GNNAccelerator"]


@dataclass(frozen=True)
class GNNAccelerator:
    """A two-phase (aggregate / combine) GNN accelerator.

    Attributes:
        num_macs: parallel MAC units for the combination phase.
        clock_mhz: operating frequency.
        features_in_dram: aggregation gathers hit DRAM (datacenter
            design) instead of on-chip SRAM (edge design).
        energy: per-op energy table.
    """

    num_macs: int = 64
    clock_mhz: float = 200.0
    features_in_dram: bool = True
    energy: EnergyTable = ENERGY_45NM

    def __post_init__(self) -> None:
        if self.num_macs <= 0:
            raise ValueError("num_macs must be positive")
        if self.clock_mhz <= 0:
            raise ValueError("clock_mhz must be positive")

    def _gather_cost_pj(self) -> float:
        return self.energy.dram_pj if self.features_in_dram else self.energy.sram_large_pj

    def run_graph(self, workload: GNNWorkload) -> CostReport:
        """Cost of one full forward pass over the graph.

        Aggregation: per layer, one ``feature_dim`` gather per edge plus
        an accumulate.  Combination: per layer, a dense
        ``feature_dim x feature_dim`` transform per node.
        """
        f = workload.feature_dim
        layers = workload.num_layers
        gathers = workload.num_edges * f * layers
        agg_adds = workload.num_edges * f * layers
        combine_macs = workload.num_nodes * f * f * layers

        e_gather = gathers * self._gather_cost_pj()
        e_agg = agg_adds * self.energy.add_float_pj
        e_combine = combine_macs * self.energy.mac_pj
        e_weights = f * f * layers * self.energy.sram_large_pj

        cycles = combine_macs / self.num_macs + gathers  # gathers serialise
        word_bytes = max(1, workload.bits // 8)
        sram = workload.num_nodes * f * word_bytes + f * f * layers * word_bytes

        mode = "dram" if self.features_in_dram else "sram"
        return CostReport(
            name=f"gnn-accel/{mode}",
            energy_pj=e_gather + e_agg + e_combine + e_weights,
            latency_us=cycles / self.clock_mhz,
            macs=combine_macs,
            memory_accesses=gathers + f * f * layers,
            sram_bytes=sram,
            breakdown={
                "mem_gather": e_gather,
                "mem_weights": e_weights,
                "alu_aggregate": e_agg,
                "mac_combine": e_combine,
            },
        )

    def per_event_update(
        self, workload: GNNWorkload, degree: int, insertion_candidates: int
    ) -> CostReport:
        """Cost of asynchronously folding ONE new event into the graph.

        Graph search examines ``insertion_candidates`` nodes; the new
        node's neighbourhood (``degree`` edges) is gathered and convolved
        through every layer (local recompute only).

        Args:
            workload: network dimensions (num_nodes/num_edges unused).
            degree: edges touching the new node.
            insertion_candidates: candidate comparisons of the insertion
                algorithm (from :class:`repro.gnn.asynchronous` stats).
        """
        if degree < 0 or insertion_candidates < 0:
            raise ValueError("degree and insertion_candidates must be non-negative")
        f = workload.feature_dim
        layers = workload.num_layers
        search_reads = insertion_candidates * 3  # x, y, t words
        gathers = degree * f * layers
        macs = (degree + 1) * f * f * layers

        e_search = search_reads * self.energy.sram_large_pj
        e_gather = gathers * self._gather_cost_pj()
        e_mac = macs * self.energy.mac_pj
        cycles = insertion_candidates + gathers + macs / self.num_macs
        return CostReport(
            name="gnn-accel/event",
            energy_pj=e_search + e_gather + e_mac,
            latency_us=cycles / self.clock_mhz,
            macs=macs,
            memory_accesses=search_reads + gathers,
            sram_bytes=0,
            breakdown={"mem_search": e_search, "mem_gather": e_gather, "mac": e_mac},
        )
