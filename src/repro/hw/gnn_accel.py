"""GNN accelerator cost model (Section IV, refs [73], [74]).

"While dedicated GNN accelerators have recently been proposed for
datacenters, they are poorly adapted for the sparse streaming nature of
event-data and low-power operation at the edge."

The model follows the hybrid-architecture decomposition of HyGCN /
EnGN: an *aggregation* phase dominated by irregular gather traffic (one
feature-vector read per edge — from DRAM in the datacenter
configuration, from SRAM in a hypothetical edge configuration) and a
*combination* phase of dense MACs.  An asynchronous per-event cost is
also provided: the work of updating the graph locally when one event
arrives, which is what a future event-graph processor would execute.
"""

from __future__ import annotations

from dataclasses import dataclass

from .energy import ENERGY_45NM, EnergyTable
from .memory import MemoryHierarchy, default_hierarchy
from .report import CostReport
from .workload import GNNWorkload, GraphMemoryWorkload

__all__ = ["GNNAccelerator"]


@dataclass(frozen=True)
class GNNAccelerator:
    """A two-phase (aggregate / combine) GNN accelerator.

    Attributes:
        num_macs: parallel MAC units for the combination phase.
        clock_mhz: operating frequency.
        features_in_dram: aggregation gathers hit DRAM (datacenter
            design) instead of on-chip SRAM (edge design).
        energy: per-op energy table.
    """

    num_macs: int = 64
    clock_mhz: float = 200.0
    features_in_dram: bool = True
    energy: EnergyTable = ENERGY_45NM

    def __post_init__(self) -> None:
        if self.num_macs <= 0:
            raise ValueError("num_macs must be positive")
        if self.clock_mhz <= 0:
            raise ValueError("clock_mhz must be positive")

    def _gather_cost_pj(self) -> float:
        return self.energy.dram_pj if self.features_in_dram else self.energy.sram_large_pj

    def run_graph(self, workload: GNNWorkload) -> CostReport:
        """Cost of one full forward pass over the graph.

        Aggregation: per layer, one ``feature_dim`` gather per edge plus
        an accumulate.  Combination: per layer, a dense
        ``feature_dim x feature_dim`` transform per node.
        """
        f = workload.feature_dim
        layers = workload.num_layers
        gathers = workload.num_edges * f * layers
        agg_adds = workload.num_edges * f * layers
        combine_macs = workload.num_nodes * f * f * layers

        e_gather = gathers * self._gather_cost_pj()
        e_agg = agg_adds * self.energy.add_float_pj
        e_combine = combine_macs * self.energy.mac_pj
        e_weights = f * f * layers * self.energy.sram_large_pj

        cycles = combine_macs / self.num_macs + gathers  # gathers serialise
        word_bytes = max(1, workload.bits // 8)
        sram = workload.num_nodes * f * word_bytes + f * f * layers * word_bytes

        mode = "dram" if self.features_in_dram else "sram"
        return CostReport(
            name=f"gnn-accel/{mode}",
            energy_pj=e_gather + e_agg + e_combine + e_weights,
            latency_us=cycles / self.clock_mhz,
            macs=combine_macs,
            memory_accesses=gathers + f * f * layers,
            sram_bytes=sram,
            breakdown={
                "mem_gather": e_gather,
                "mem_weights": e_weights,
                "alu_aggregate": e_agg,
                "mac_combine": e_combine,
            },
        )

    def memory_report(
        self,
        workload: GNNWorkload,
        storage: GraphMemoryWorkload,
        hierarchy: MemoryHierarchy | None = None,
    ) -> dict[str, float | str | int]:
        """Memory footprint and bandwidth of holding + traversing a graph.

        Scores what :meth:`run_graph` leaves implicit: the *resident*
        cost of the graph representation itself.  The measured storage
        footprint is placed into the hierarchy; aggregation traffic is
        the per-layer sweep over the edge structure plus one feature
        -vector gather per edge, at the representation's word width —
        so a quantized compact graph moves fewer bytes per pass than
        the float64 dense layout even at an identical gather *count*.

        Args:
            workload: network dimensions (feature_dim, num_layers).
            storage: the representation's measured storage descriptor.
            hierarchy: memory stack; defaults to
                :func:`~repro.hw.memory.default_hierarchy`.

        Returns:
            dict with ``representation``, ``footprint_bytes``,
            ``bytes_per_event`` (resident, amortised), ``level`` (the
            hierarchy level the graph lands in), ``traffic_bytes_per_pass``
            (aggregation-phase bytes moved per forward pass),
            ``traffic_bytes_per_event``, ``energy_pj`` (access energy of
            that traffic at the placed level), and ``streams_resident``
            (graphs of this footprint the largest on-chip SRAM holds).
        """
        hierarchy = hierarchy or default_hierarchy(self.energy)
        level = hierarchy.place(storage.storage_bytes)
        word_bytes = max(1, storage.word_bits // 8)
        f = workload.feature_dim
        layers = workload.num_layers
        if storage.representation == "compact":
            # Fixed-width neighbour table: max_degree uint16 slots/node.
            structure_bytes = storage.num_nodes * max(storage.max_degree, 1) * 2
        else:
            # Dense int64 (src, dst) edge list.
            structure_bytes = storage.num_edges * 16
        gather_bytes = storage.num_edges * f * word_bytes
        traffic_per_pass = layers * (structure_bytes + gather_bytes)
        traffic_per_event = traffic_per_pass / storage.num_nodes
        # Element accesses (one neighbour entry + f feature words per
        # edge, per layer) are representation-independent; the energy
        # advantage of the compact layout comes from *where* its smaller
        # footprint lands in the hierarchy, not from access count.
        accesses = layers * storage.num_edges * (1 + f)
        energy_pj = hierarchy.access_energy_pj(storage.storage_bytes, accesses)
        on_chip = [lv for lv in hierarchy.levels if lv.name != "dram"]
        largest_sram = on_chip[-1] if on_chip else hierarchy.levels[-1]
        return {
            "representation": storage.representation,
            "footprint_bytes": int(storage.storage_bytes),
            "bytes_per_event": storage.bytes_per_event,
            "level": level.name,
            "traffic_bytes_per_pass": int(traffic_per_pass),
            "traffic_bytes_per_event": traffic_per_event,
            "energy_pj": energy_pj,
            "streams_resident": int(
                largest_sram.capacity_bytes // storage.storage_bytes
            ),
        }

    def per_event_update(
        self, workload: GNNWorkload, degree: int, insertion_candidates: int
    ) -> CostReport:
        """Cost of asynchronously folding ONE new event into the graph.

        Graph search examines ``insertion_candidates`` nodes; the new
        node's neighbourhood (``degree`` edges) is gathered and convolved
        through every layer (local recompute only).

        Args:
            workload: network dimensions (num_nodes/num_edges unused).
            degree: edges touching the new node.
            insertion_candidates: candidate comparisons of the insertion
                algorithm (from :class:`repro.gnn.asynchronous` stats).
        """
        if degree < 0 or insertion_candidates < 0:
            raise ValueError("degree and insertion_candidates must be non-negative")
        f = workload.feature_dim
        layers = workload.num_layers
        search_reads = insertion_candidates * 3  # x, y, t words
        gathers = degree * f * layers
        macs = (degree + 1) * f * f * layers

        e_search = search_reads * self.energy.sram_large_pj
        e_gather = gathers * self._gather_cost_pj()
        e_mac = macs * self.energy.mac_pj
        cycles = insertion_candidates + gathers + macs / self.num_macs
        return CostReport(
            name="gnn-accel/event",
            energy_pj=e_search + e_gather + e_mac,
            latency_us=cycles / self.clock_mhz,
            macs=macs,
            memory_accesses=search_reads + gathers,
            sram_bytes=0,
            breakdown={"mem_search": e_search, "mem_gather": e_gather, "mac": e_mac},
        )
