"""Workload descriptors consumed by the accelerator cost models."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ConvLayerWorkload",
    "SNNLayerWorkload",
    "GNNWorkload",
    "GraphMemoryWorkload",
]


@dataclass(frozen=True)
class ConvLayerWorkload:
    """One convolutional layer's execution parameters.

    Attributes:
        c_in, c_out: channel counts.
        kernel: square kernel side.
        out_h, out_w: output spatial size.
        activation_sparsity: fraction of *input* activations equal to zero.
        weight_sparsity: fraction of weights equal to zero.
        bits: word width of activations and weights.
    """

    c_in: int
    c_out: int
    kernel: int
    out_h: int
    out_w: int
    activation_sparsity: float = 0.0
    weight_sparsity: float = 0.0
    bits: int = 16

    def __post_init__(self) -> None:
        if min(self.c_in, self.c_out, self.kernel, self.out_h, self.out_w) <= 0:
            raise ValueError("layer dimensions must be positive")
        for frac in (self.activation_sparsity, self.weight_sparsity):
            if not 0.0 <= frac <= 1.0:
                raise ValueError("sparsity fractions must be in [0, 1]")
        if self.bits <= 0:
            raise ValueError("bits must be positive")

    @property
    def dense_macs(self) -> int:
        """MACs of a dense evaluation."""
        return self.c_in * self.c_out * self.kernel**2 * self.out_h * self.out_w

    @property
    def num_weights(self) -> int:
        """Weight parameter count."""
        return self.c_in * self.c_out * self.kernel**2

    @property
    def num_input_activations(self) -> int:
        """Input activation count (approximated as output-plane sized)."""
        return self.c_in * self.out_h * self.out_w

    @property
    def num_output_activations(self) -> int:
        """Output activation count."""
        return self.c_out * self.out_h * self.out_w


@dataclass(frozen=True)
class SNNLayerWorkload:
    """One spiking layer's execution parameters over a time window.

    Attributes:
        num_neurons: LIF population size.
        num_inputs: input channels (dense fan-in).
        num_steps: timesteps in the window.
        input_activity: mean fraction of input channels spiking per step.
        bits: state/weight word width.
    """

    num_neurons: int
    num_inputs: int
    num_steps: int
    input_activity: float
    bits: int = 16

    def __post_init__(self) -> None:
        if min(self.num_neurons, self.num_inputs, self.num_steps) <= 0:
            raise ValueError("sizes must be positive")
        if not 0.0 <= self.input_activity <= 1.0:
            raise ValueError("input_activity must be in [0, 1]")
        if self.bits <= 0:
            raise ValueError("bits must be positive")

    @property
    def input_spikes(self) -> int:
        """Expected total input spikes over the window."""
        return int(round(self.num_steps * self.num_inputs * self.input_activity))


@dataclass(frozen=True)
class GNNWorkload:
    """One event-graph forward pass.

    Attributes:
        num_nodes: events in the graph.
        num_edges: directed edges.
        feature_dim: node feature width inside the network.
        num_layers: graph-conv layers.
        bits: word width.
    """

    num_nodes: int
    num_edges: int
    feature_dim: int
    num_layers: int = 2
    bits: int = 16

    def __post_init__(self) -> None:
        if self.num_nodes <= 0 or self.num_edges < 0:
            raise ValueError("num_nodes must be positive, num_edges non-negative")
        if self.feature_dim <= 0 or self.num_layers <= 0:
            raise ValueError("feature_dim and num_layers must be positive")
        if self.bits <= 0:
            raise ValueError("bits must be positive")


@dataclass(frozen=True)
class GraphMemoryWorkload:
    """The resident graph storage of one event-graph representation.

    Describes *what the graph costs to hold*, complementing
    :class:`GNNWorkload` (what it costs to compute).  Built from an
    in-memory graph via :meth:`from_graph`, which reads the
    representation tag and measured byte count off the graph object —
    the mechanism that lets the Table I comparison score dense
    float64 storage against the compact quantized layout with the same
    cost model.

    Attributes:
        representation: storage layout tag ("dense" or "compact").
        num_nodes: events in the graph.
        num_edges: directed edges.
        storage_bytes: measured resident bytes of the stored arrays.
        word_bits: word width of the stored features/attributes
            (64 for the float64 dense layout, the quantization width
            for compact).
        max_degree: in-degree cap (0 = uncapped, dense).
    """

    representation: str
    num_nodes: int
    num_edges: int
    storage_bytes: int
    word_bits: int = 64
    max_degree: int = 0

    def __post_init__(self) -> None:
        if self.representation not in ("dense", "compact"):
            raise ValueError(
                f"representation must be 'dense' or 'compact', "
                f"got {self.representation!r}"
            )
        if self.num_nodes <= 0 or self.num_edges < 0:
            raise ValueError("num_nodes must be positive, num_edges non-negative")
        if self.storage_bytes <= 0:
            raise ValueError("storage_bytes must be positive")
        if self.word_bits <= 0:
            raise ValueError("word_bits must be positive")
        if self.max_degree < 0:
            raise ValueError("max_degree must be non-negative")

    @property
    def bytes_per_event(self) -> float:
        """Resident storage bytes amortised per event (node)."""
        return self.storage_bytes / self.num_nodes

    @classmethod
    def from_graph(cls, graph) -> "GraphMemoryWorkload":
        """Measure a live graph object.

        Accepts anything with ``representation`` / ``num_nodes`` /
        ``num_edges`` / ``nbytes()`` — i.e. :class:`~repro.gnn.
        EventGraph` or :class:`~repro.gnn.CompactEventGraph`.
        """
        representation = getattr(graph, "representation", "dense")
        if representation == "compact":
            bits = graph.quantization_bits or 64
            max_degree = graph.max_degree
        else:
            bits = 64
            max_degree = 0
        return cls(
            representation=representation,
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
            storage_bytes=graph.nbytes(),
            word_bits=bits,
            max_degree=max_degree,
        )
