"""Digital neuromorphic (SNN) core cost model (Section III-A).

"SNN accelerators … often group neurons in time-multiplexed cores …
composed of separate neuron and synapse modules.  Each contain a memory
hierarchy … In such approaches memory accesses dominate energy
consumption as high as 99% of the total.  As a result, the fact that
SNNs rely mainly on addition operations, instead of multiplication, is
largely irrelevant."

The model maps the operation counters of
:mod:`repro.snn.event_driven` (or an analytic workload) onto the energy
table: neuron state lives in small SRAM, synaptic weights in large SRAM,
synaptic accumulation uses additions (not MACs) and event-driven decay
pays the exponential-evaluation cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..snn.event_driven import SimCounters
from .energy import ENERGY_45NM, EnergyTable
from .report import CostReport
from .workload import SNNLayerWorkload

__all__ = ["NeuromorphicCore", "analytic_snn_counters"]


def analytic_snn_counters(
    workload: SNNLayerWorkload, update: str = "clock"
) -> SimCounters:
    """Expected operation counters for a dense LIF layer without simulating.

    Mirrors the counting rules of :func:`repro.snn.event_driven`:
    synaptic work scales with input spikes either way; state work scales
    with steps (clock) or with *active* steps (event).

    Args:
        workload: layer dimensions and mean activity.
        update: "clock" or "event".
    """
    if update not in ("clock", "event"):
        raise ValueError("update must be 'clock' or 'event'")
    n = workload.num_neurons
    steps = workload.num_steps
    spikes = workload.input_spikes
    c = SimCounters()
    c.synapse_reads = spikes * n
    c.alu_simple = spikes * n  # accumulates
    if update == "clock":
        c.neuron_state_reads = steps * n
        c.neuron_state_writes = steps * n
        c.alu_simple += steps * n * 3  # decay, integrate, compare
    else:
        # A step is "active" if at least one input spiked; for independent
        # channels that is 1 - (1 - a)^F, but we approximate with the
        # min(1, activity * F) rate used in the simulator's regime.
        p_active = min(1.0, workload.input_activity * workload.num_inputs)
        active_steps = int(round(steps * p_active))
        c.neuron_state_reads = active_steps * 2 * n
        c.neuron_state_writes = active_steps * 2 * n
        c.alu_exp = active_steps * n
        c.alu_simple += active_steps * n * 3
    return c


@dataclass(frozen=True)
class NeuromorphicCore:
    """A time-multiplexed digital SNN core.

    Attributes:
        clock_mhz: operating frequency.
        ops_per_cycle: parallel lanes (synaptic ops per cycle).
        energy: per-op energy table.
        state_in_small_sram: neuron state held in small (cheap) SRAM;
            large cores spill to the expensive array.
    """

    clock_mhz: float = 100.0
    ops_per_cycle: int = 8
    energy: EnergyTable = ENERGY_45NM
    state_in_small_sram: bool = True

    def __post_init__(self) -> None:
        if self.clock_mhz <= 0:
            raise ValueError("clock_mhz must be positive")
        if self.ops_per_cycle <= 0:
            raise ValueError("ops_per_cycle must be positive")

    def cost_from_counters(
        self, counters: SimCounters, name: str = "snn-core", state_bytes: int = 0
    ) -> CostReport:
        """Translate simulation counters into energy and latency.

        Args:
            counters: operation counts from a counted simulation.
            name: report label.
            state_bytes: on-chip state footprint to report.
        """
        e = self.energy
        state_cost = e.sram_small_pj if self.state_in_small_sram else e.sram_large_pj
        e_state = (counters.neuron_state_reads + counters.neuron_state_writes) * state_cost
        e_weights = counters.synapse_reads * e.sram_large_pj
        e_alu = counters.alu_simple * e.add_int_pj
        e_exp = counters.alu_exp * e.exp_pj
        total_ops = counters.alu_simple + counters.alu_exp
        cycles = total_ops / self.ops_per_cycle
        return CostReport(
            name=name,
            energy_pj=e_state + e_weights + e_alu + e_exp,
            latency_us=cycles / self.clock_mhz,
            macs=0,
            memory_accesses=counters.memory_accesses,
            sram_bytes=state_bytes,
            breakdown={
                "mem_state": e_state,
                "mem_weights": e_weights,
                "alu_add": e_alu,
                "alu_exp": e_exp,
            },
        )

    def run_layer(self, workload: SNNLayerWorkload, update: str = "clock") -> CostReport:
        """Analytic cost of a dense LIF layer under either update discipline."""
        counters = analytic_snn_counters(workload, update)
        word_bytes = max(1, workload.bits // 8)
        state_bytes = workload.num_neurons * 2 * word_bytes
        state_bytes += workload.num_neurons * workload.num_inputs * word_bytes
        return self.cost_from_counters(
            counters, name=f"snn-core/{update}", state_bytes=state_bytes
        )
