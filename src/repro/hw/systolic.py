"""Systolic processing-element array model (Section III-B, refs [60], [61]).

"Systolic processor arrays distribute computation over the array before
spatially summing the resulting partial feature maps.  While achieving
massive parallelization and having a deterministic memory access
pattern, they do not necessarily exploit CNN sparsity."

The model is a weight-stationary R x C array (TPU-style): weights are
loaded once per tile and reused across the output plane, activations
stream in, partial sums accumulate locally.  Every MAC is executed
whether its operands are zero or not — the property the zero-skipping
comparison turns on.
"""

from __future__ import annotations

from dataclasses import dataclass
import math

from .energy import ENERGY_45NM, EnergyTable
from .report import CostReport
from .workload import ConvLayerWorkload

__all__ = ["SystolicArray", "ReuseFactors", "dataflow_reuse"]


@dataclass(frozen=True)
class ReuseFactors:
    """How many times each datum is used per memory fetch (ref [66]).

    "Both approaches exploit … data reuse strategies where data is
    typically used several times for single memory access."  A reuse
    factor of R means one fetch feeds R MACs.

    Attributes:
        weight_reuse: MACs per weight fetch.
        activation_reuse: MACs per input-activation fetch.
        psum_reuse: accumulations per partial-sum writeback.
    """

    weight_reuse: float
    activation_reuse: float
    psum_reuse: float

    @property
    def arithmetic_intensity(self) -> float:
        """MACs per memory word moved (harmonic combination of reuses)."""
        inv = 1.0 / self.weight_reuse + 1.0 / self.activation_reuse + 1.0 / self.psum_reuse
        return 1.0 / inv


@dataclass(frozen=True)
class SystolicArray:
    """A weight-stationary systolic array.

    Attributes:
        rows, cols: PE grid dimensions (rows map input channels x kernel,
            cols map output channels).
        clock_mhz: operating frequency.
        energy: per-op energy table.
    """

    rows: int = 16
    cols: int = 16
    clock_mhz: float = 200.0
    energy: EnergyTable = ENERGY_45NM

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("array dimensions must be positive")
        if self.clock_mhz <= 0:
            raise ValueError("clock_mhz must be positive")

    @property
    def num_pes(self) -> int:
        """Processing elements in the array."""
        return self.rows * self.cols

    def run_layer(self, layer: ConvLayerWorkload) -> CostReport:
        """Cost of one conv layer on the array.

        The layer is tiled into ``ceil(K/rows) * ceil(C_out/cols)`` weight
        tiles (K = c_in * kernel^2); each tile streams the full output
        plane.  Utilisation losses from ragged tiles are modelled; zeros
        are *not* skipped.
        """
        k_dim = layer.c_in * layer.kernel**2
        tiles_r = math.ceil(k_dim / self.rows)
        tiles_c = math.ceil(layer.c_out / self.cols)
        pixels = layer.out_h * layer.out_w

        # Every tile streams all output pixels through the full array.
        cycles = tiles_r * tiles_c * pixels + (self.rows + self.cols)  # + drain
        macs = layer.dense_macs  # zeros are computed anyway

        # Memory traffic: weights loaded once per tile (perfect reuse
        # within a tile), activations re-read once per column tile, and
        # outputs written once with partial-sum re-reads per row tile.
        weight_reads = layer.num_weights
        act_reads = layer.num_input_activations * tiles_c
        psum_traffic = layer.num_output_activations * (2 * tiles_r - 1)
        mem_accesses = weight_reads + act_reads + psum_traffic

        e_mac = macs * self.energy.mac_pj
        e_mem = mem_accesses * self.energy.sram_large_pj
        e_rf = macs * 2 * self.energy.rf_access_pj  # operand staging

        word_bytes = max(1, layer.bits // 8)
        sram = (layer.num_weights + layer.num_input_activations
                + layer.num_output_activations) * word_bytes

        return CostReport(
            name=f"systolic{self.rows}x{self.cols}",
            energy_pj=e_mac + e_mem + e_rf,
            latency_us=cycles / self.clock_mhz,
            macs=macs,
            memory_accesses=mem_accesses,
            sram_bytes=sram,
            breakdown={"mac": e_mac, "mem_sram": e_mem, "mem_rf": e_rf},
        )

    def utilization(self, layer: ConvLayerWorkload) -> float:
        """Fraction of PE-cycles doing useful work (ragged-tile losses)."""
        k_dim = layer.c_in * layer.kernel**2
        tiles_r = math.ceil(k_dim / self.rows)
        tiles_c = math.ceil(layer.c_out / self.cols)
        used = k_dim * layer.c_out
        provisioned = tiles_r * self.rows * tiles_c * self.cols
        return used / provisioned


def dataflow_reuse(layer: "ConvLayerWorkload", dataflow: str = "weight_stationary") -> ReuseFactors:
    """Ideal reuse factors of a conv layer under a dataflow (ref [66]).

    * ``weight_stationary`` (TPU-style): each weight stays in a PE for
      the whole output plane; activations are re-fetched per output
      channel; partial sums accumulate across the K dimension before one
      writeback.
    * ``output_stationary``: each output pixel's accumulator stays put
      for all K contributions; weights are re-fetched per output pixel.

    Args:
        layer: the convolution workload.
        dataflow: "weight_stationary" or "output_stationary".

    Returns:
        Ideal (infinite on-chip buffer) reuse factors.
    """
    if dataflow not in ("weight_stationary", "output_stationary"):
        raise ValueError("dataflow must be 'weight_stationary' or 'output_stationary'")
    pixels = layer.out_h * layer.out_w
    k_dim = layer.c_in * layer.kernel**2
    if dataflow == "weight_stationary":
        return ReuseFactors(
            weight_reuse=float(pixels),
            activation_reuse=float(layer.c_out),
            psum_reuse=float(k_dim),
        )
    return ReuseFactors(
        weight_reuse=1.0,
        activation_reuse=float(layer.c_out),
        psum_reuse=float(k_dim),
    )
