"""Event-camera simulator: the substitute for physical DVS hardware.

Stimulus videos → DVS pixel model → noise → throughput-limited readout,
plus the Section-II mitigation strategies for high-resolution sensors.
"""

from .davis import DualPixelCamera, DualPixelRecording
from .mitigation import Fovea, centre_surround_suppression, downsample, foveate
from .noise import NoiseParams, add_noise, background_activity, hot_pixel_events
from .pixel import PixelArray, PixelParams
from .readout import ReadoutParams, ReadoutResult, rate_limiter, simulate_readout
from .sensor import CameraConfig, EventCamera, RecordingStats
from .video import (
    CompositeStimulus,
    DriftingGrating,
    ExpandingDisk,
    MovingBar,
    MovingBox,
    MovingDisk,
    RotatingBar,
    Stimulus,
    TexturePan,
)

__all__ = [
    "EventCamera",
    "CameraConfig",
    "RecordingStats",
    "DualPixelCamera",
    "DualPixelRecording",
    "PixelArray",
    "PixelParams",
    "NoiseParams",
    "add_noise",
    "background_activity",
    "hot_pixel_events",
    "ReadoutParams",
    "ReadoutResult",
    "simulate_readout",
    "rate_limiter",
    "Fovea",
    "foveate",
    "centre_surround_suppression",
    "downsample",
    "Stimulus",
    "MovingBar",
    "MovingBox",
    "MovingDisk",
    "ExpandingDisk",
    "DriftingGrating",
    "RotatingBar",
    "TexturePan",
    "CompositeStimulus",
]
