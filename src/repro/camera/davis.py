"""Dual active-and-event pixel sensor (DAVIS-class, Section II).

"The dual active and event pixel paradigm [13], [16] (i.e., allowing
events and image data to be recorded simultaneously) has recently
gained momentum again."

:class:`DualPixelCamera` wraps the DVS pixel array and additionally
samples conventional intensity frames (global shutter) at a fixed frame
rate from the same optical stimulus — the DAVIS operating mode.  The
synchronised output enables hybrid processing (e.g. frame-based
initialisation with event-based tracking) and provides ground-truth
imagery for the event stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..events.stream import EventStream, Resolution
from .sensor import CameraConfig, EventCamera, RecordingStats
from .video import Stimulus

__all__ = ["DualPixelRecording", "DualPixelCamera"]


@dataclass(frozen=True)
class DualPixelRecording:
    """Synchronised output of one dual-pixel recording.

    Attributes:
        events: the asynchronous event stream.
        frames: ``(N, H, W)`` intensity frames (linear luminance).
        frame_times_us: timestamp of each frame's exposure.
        stats: event-channel recording statistics.
    """

    events: EventStream
    frames: np.ndarray
    frame_times_us: np.ndarray
    stats: RecordingStats

    @property
    def num_frames(self) -> int:
        """Number of intensity frames captured."""
        return self.frames.shape[0]

    def frame_nearest(self, t_us: int) -> np.ndarray:
        """The intensity frame whose exposure is closest to ``t_us``."""
        if self.num_frames == 0:
            raise ValueError("recording holds no frames")
        idx = int(np.argmin(np.abs(self.frame_times_us - t_us)))
        return self.frames[idx]

    def events_between_frames(self, index: int) -> EventStream:
        """Events between frame ``index`` and frame ``index + 1``."""
        if not 0 <= index < self.num_frames - 1:
            raise ValueError(f"frame interval {index} out of range")
        return self.events.time_window(
            int(self.frame_times_us[index]), int(self.frame_times_us[index + 1])
        )


class DualPixelCamera:
    """A DAVIS-style camera producing events and intensity frames together.

    Args:
        resolution: pixel array size.
        config: event-channel configuration.
        frame_period_us: intensity frame interval (global shutter).
    """

    def __init__(
        self,
        resolution: Resolution,
        config: CameraConfig = CameraConfig(),
        frame_period_us: int = 10_000,
    ) -> None:
        if frame_period_us <= 0:
            raise ValueError("frame_period_us must be positive")
        self.resolution = resolution
        self.frame_period_us = frame_period_us
        self._event_camera = EventCamera(resolution, config)

    def record(self, stimulus: Stimulus, duration_us: int) -> DualPixelRecording:
        """Record both modalities from the same stimulus.

        Args:
            stimulus: the scene (must match the camera resolution).
            duration_us: recording length.
        """
        if stimulus.resolution != self.resolution:
            raise ValueError(
                f"stimulus resolution {stimulus.resolution} != camera {self.resolution}"
            )
        events, stats = self._event_camera.record(stimulus, duration_us)
        frame_times = np.arange(0, duration_us + 1, self.frame_period_us, dtype=np.int64)
        frames = np.stack([stimulus.frame(float(t)) for t in frame_times])
        return DualPixelRecording(events, frames, frame_times, stats)
