"""Sensor noise models.

Real DVS pixels fire even without stimulus change: junction leakage and
comparator noise produce *background activity* (BA) events, and a small
population of defective *hot pixels* fires quasi-periodically at high
rate.  These processes set the noise floor that denoising filters
(:func:`repro.events.ops.neighbourhood_filter`) and all three processing
paradigms must tolerate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..events.stream import EventStream, Resolution

__all__ = ["NoiseParams", "background_activity", "hot_pixel_events", "add_noise"]


@dataclass(frozen=True)
class NoiseParams:
    """Noise process parameters.

    Attributes:
        ba_rate_hz: mean background-activity rate *per pixel* in Hz.
            Typical DVS figures are 0.05–2 Hz depending on bias settings.
        ba_on_fraction: fraction of BA events with ON polarity (leakage
            biases BA towards ON in real sensors).
        hot_pixel_fraction: fraction of pixels that are hot.
        hot_pixel_rate_hz: firing rate of each hot pixel in Hz.
    """

    ba_rate_hz: float = 0.1
    ba_on_fraction: float = 0.8
    hot_pixel_fraction: float = 0.0
    hot_pixel_rate_hz: float = 1000.0

    def __post_init__(self) -> None:
        for name in ("ba_rate_hz", "ba_on_fraction", "hot_pixel_fraction", "hot_pixel_rate_hz"):
            value = getattr(self, name)
            if not np.isfinite(value):
                raise ValueError(f"{name} must be finite, got {value}")
        if self.ba_rate_hz < 0:
            raise ValueError("ba_rate_hz must be non-negative")
        if not 0.0 <= self.ba_on_fraction <= 1.0:
            raise ValueError("ba_on_fraction must be in [0, 1]")
        if not 0.0 <= self.hot_pixel_fraction <= 1.0:
            raise ValueError("hot_pixel_fraction must be in [0, 1]")
        if self.hot_pixel_rate_hz < 0:
            raise ValueError("hot_pixel_rate_hz must be non-negative")

    def scaled(self, factor: float) -> "NoiseParams":
        """A copy with the stochastic intensities scaled by ``factor``.

        This is the severity knob the robustness sweep
        (:mod:`repro.reliability.sweep`) turns: background-activity rate
        and hot-pixel population grow linearly with ``factor`` (the
        hot-pixel fraction saturates at 1), while the polarity bias and
        per-hot-pixel rate — properties of the failure mechanism, not of
        its prevalence — stay fixed.

        Args:
            factor: non-negative multiplier (0 disables the noise).
        """
        if factor < 0 or not np.isfinite(factor):
            raise ValueError(f"factor must be finite and non-negative, got {factor}")
        return NoiseParams(
            ba_rate_hz=self.ba_rate_hz * factor,
            ba_on_fraction=self.ba_on_fraction,
            hot_pixel_fraction=min(1.0, self.hot_pixel_fraction * factor),
            hot_pixel_rate_hz=self.hot_pixel_rate_hz,
        )


def background_activity(
    resolution: Resolution,
    duration_us: int,
    params: NoiseParams,
    rng: np.random.Generator,
    t_start: int = 0,
) -> EventStream:
    """Draw Poisson background-activity events over ``[t_start, t_start+duration)``.

    Each pixel is an independent Poisson process at ``ba_rate_hz``; the
    total count is drawn once and events are placed uniformly in space
    and time, which is equivalent and much faster.
    """
    if duration_us < 0:
        raise ValueError("duration_us must be non-negative")
    expected = params.ba_rate_hz * resolution.num_pixels * duration_us * 1e-6
    n = int(rng.poisson(expected))
    if n == 0:
        return EventStream.empty(resolution)
    # sort-ok: value sort of random timestamps; equal values are interchangeable
    t = np.sort(rng.integers(t_start, t_start + max(1, duration_us), n))
    x = rng.integers(0, resolution.width, n)
    y = rng.integers(0, resolution.height, n)
    p = np.where(rng.random(n) < params.ba_on_fraction, 1, -1)
    return EventStream.from_arrays(t, x, y, p, resolution)


def hot_pixel_events(
    resolution: Resolution,
    duration_us: int,
    params: NoiseParams,
    rng: np.random.Generator,
    t_start: int = 0,
) -> EventStream:
    """Generate quasi-periodic events from a random set of hot pixels.

    Hot pixels fire at ``hot_pixel_rate_hz`` with 10% period jitter and a
    fixed per-pixel polarity, matching the stuck-comparator failure mode.
    """
    if duration_us < 0:
        raise ValueError("duration_us must be non-negative")
    num_hot = int(round(params.hot_pixel_fraction * resolution.num_pixels))
    if num_hot == 0 or params.hot_pixel_rate_hz <= 0 or duration_us == 0:
        return EventStream.empty(resolution)
    flat = rng.choice(resolution.num_pixels, size=num_hot, replace=False)
    hx = (flat % resolution.width).astype(np.int32)
    hy = (flat // resolution.width).astype(np.int32)
    hp = rng.choice(np.array([-1, 1], dtype=np.int8), size=num_hot)
    period_us = 1e6 / params.hot_pixel_rate_hz

    ts, xs, ys, ps = [], [], [], []
    for i in range(num_hot):
        n_fires = int(duration_us / period_us)
        if n_fires == 0:
            continue
        base = t_start + (np.arange(1, n_fires + 1) * period_us)
        jitter = rng.normal(0.0, 0.1 * period_us, n_fires)
        t = np.clip(base + jitter, t_start, t_start + duration_us - 1).astype(np.int64)
        ts.append(np.sort(t))  # sort-ok: value sort, ties identical
        xs.append(np.full(n_fires, hx[i]))
        ys.append(np.full(n_fires, hy[i]))
        ps.append(np.full(n_fires, hp[i]))
    if not ts:
        return EventStream.empty(resolution)
    t_all = np.concatenate(ts)
    order = np.argsort(t_all, kind="stable")
    return EventStream.from_arrays(
        t_all[order],
        np.concatenate(xs)[order],
        np.concatenate(ys)[order],
        np.concatenate(ps)[order],
        resolution,
    )


def add_noise(
    stream: EventStream,
    params: NoiseParams,
    rng: np.random.Generator,
    duration_us: int | None = None,
) -> EventStream:
    """Merge background-activity and hot-pixel noise into a signal stream.

    Args:
        stream: clean signal events.
        params: noise parameters.
        rng: random generator.
        duration_us: noise window length; defaults to the stream duration.

    Returns:
        The time-sorted union of signal and noise events.
    """
    if duration_us is None:
        duration_us = max(stream.duration, 1)
    t0 = int(stream.t[0]) if len(stream) else 0
    ba = background_activity(stream.resolution, duration_us, params, rng, t_start=t0)
    hot = hot_pixel_events(stream.resolution, duration_us, params, rng, t_start=t0)
    arrays = [s.raw for s in (stream, ba, hot) if len(s)]
    if not arrays:
        return EventStream.empty(stream.resolution)
    merged = np.concatenate(arrays)
    merged = merged[np.argsort(merged["t"], kind="stable")]
    return EventStream(merged, stream.resolution, check=False)
