"""The DVS pixel front-end model.

A dynamic-vision-sensor pixel (Lichtsteiner et al. 2008, ref [6] of the
paper) continuously monitors the natural log of its photocurrent.  When
the log luminance rises by more than the ON contrast threshold above the
pixel's stored reference level, the pixel emits an ON event and resets
its reference; a fall of more than the OFF threshold emits an OFF event.
After any event the pixel is blind for a refractory period.

This module implements that mechanism for a whole array at once, with

* per-pixel threshold mismatch (fixed-pattern noise),
* linear sub-interval timestamp interpolation between video samples
  (ESIM-style), giving event timestamps far finer than the stimulus
  sampling period, and
* a per-pixel refractory period.

The model is deliberately agnostic of where the log-luminance samples
come from; :mod:`repro.camera.sensor` feeds it from a
:class:`~repro.camera.video.Stimulus`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..events.stream import EventStream, Resolution

__all__ = ["PixelParams", "PixelArray"]


@dataclass(frozen=True)
class PixelParams:
    """Electrical parameters of the DVS pixel.

    Attributes:
        threshold_on: nominal ON contrast threshold (log-luminance units).
        threshold_off: nominal OFF contrast threshold (positive number;
            the pixel fires OFF when log luminance *falls* by this much).
        threshold_mismatch_sigma: relative standard deviation of the
            per-pixel threshold spread (fixed-pattern noise); 0 disables.
        refractory_us: per-pixel dead time after an event.
        photoreceptor_cutoff_hz: first-order low-pass bandwidth of the
            photoreceptor front-end.  Real DVS photoreceptors are
            bandwidth-limited (bias-dependent, ~100 Hz – 10 kHz); fast
            transients are attenuated before the change detector sees
            them.  0 disables the filter (ideal front-end).
    """

    threshold_on: float = 0.2
    threshold_off: float = 0.2
    threshold_mismatch_sigma: float = 0.0
    refractory_us: int = 0
    photoreceptor_cutoff_hz: float = 0.0

    def __post_init__(self) -> None:
        if self.threshold_on <= 0 or self.threshold_off <= 0:
            raise ValueError("contrast thresholds must be positive")
        if self.threshold_mismatch_sigma < 0:
            raise ValueError("threshold_mismatch_sigma must be non-negative")
        if self.refractory_us < 0:
            raise ValueError("refractory_us must be non-negative")
        if self.photoreceptor_cutoff_hz < 0:
            raise ValueError("photoreceptor_cutoff_hz must be non-negative")


class PixelArray:
    """Stateful array of DVS pixels.

    Feed successive log-luminance samples with :meth:`step`; each call
    returns the events generated between the previous sample and this one.
    State (reference levels, refractory deadlines) persists across calls
    so a long recording can be simulated frame by frame.

    Args:
        resolution: array size.
        params: pixel electrical parameters.
        rng: generator used to draw the per-pixel threshold mismatch.
    """

    def __init__(
        self,
        resolution: Resolution,
        params: PixelParams = PixelParams(),
        rng: np.random.Generator | None = None,
    ) -> None:
        self.resolution = resolution
        self.params = params
        shape = (resolution.height, resolution.width)
        if params.threshold_mismatch_sigma > 0:
            if rng is None:
                rng = np.random.default_rng(0)
            spread_on = rng.normal(1.0, params.threshold_mismatch_sigma, shape)
            spread_off = rng.normal(1.0, params.threshold_mismatch_sigma, shape)
            # Clip so no pixel gets a vanishing or negative threshold.
            self._theta_on = params.threshold_on * np.clip(spread_on, 0.1, None)
            self._theta_off = params.threshold_off * np.clip(spread_off, 0.1, None)
        else:
            self._theta_on = np.full(shape, params.threshold_on)
            self._theta_off = np.full(shape, params.threshold_off)
        self._ref: np.ndarray | None = None  # stored log-luminance reference
        self._lp: np.ndarray | None = None  # photoreceptor low-pass state
        self._refractory_until = np.full(shape, np.iinfo(np.int64).min, dtype=np.int64)
        self._last_t: int | None = None

    @property
    def threshold_on_map(self) -> np.ndarray:
        """Per-pixel effective ON thresholds (read-only view)."""
        return self._theta_on

    @property
    def threshold_off_map(self) -> np.ndarray:
        """Per-pixel effective OFF thresholds (read-only view)."""
        return self._theta_off

    def reset(self) -> None:
        """Forget all pixel state; the next sample re-initialises references."""
        self._ref = None
        self._lp = None
        self._refractory_until.fill(np.iinfo(np.int64).min)
        self._last_t = None

    def _photoreceptor(self, log_frame: np.ndarray, dt_us: float) -> np.ndarray:
        """Apply the first-order photoreceptor low-pass (if enabled)."""
        if self.params.photoreceptor_cutoff_hz <= 0:
            return log_frame.astype(np.float64)
        if self._lp is None:
            self._lp = log_frame.astype(np.float64).copy()
            return self._lp
        tau_us = 1e6 / (2.0 * np.pi * self.params.photoreceptor_cutoff_hz)
        beta = 1.0 - np.exp(-dt_us / tau_us)
        self._lp = self._lp + beta * (log_frame - self._lp)
        return self._lp

    def step(self, log_frame: np.ndarray, t_us: int) -> EventStream:
        """Advance the array to the sample ``log_frame`` taken at ``t_us``.

        The first call initialises the per-pixel references and produces
        no events.  Subsequent calls compare the new sample against each
        pixel's reference, emit one event per full threshold crossing
        (multiple events per pixel per step when the change spans several
        thresholds), linearly interpolating each event's timestamp inside
        the ``(previous_t, t_us]`` interval.

        Args:
            log_frame: ``(H, W)`` array of log luminance at ``t_us``.
            t_us: sample time; must strictly increase call over call.

        Returns:
            Events generated in the interval, time-sorted.
        """
        expected = (self.resolution.height, self.resolution.width)
        if log_frame.shape != expected:
            raise ValueError(f"log_frame shape {log_frame.shape} != {expected}")
        t_us = int(t_us)
        if self._ref is None:
            filtered0 = self._photoreceptor(log_frame, dt_us=1.0)
            self._ref = np.array(filtered0, dtype=np.float64, copy=True)
            self._last_t = t_us
            return EventStream.empty(self.resolution)
        if self._last_t is None or t_us <= self._last_t:
            raise ValueError(f"time must strictly increase ({t_us} <= {self._last_t})")

        t_prev = self._last_t
        dt = t_us - t_prev
        filtered = self._photoreceptor(log_frame, dt_us=float(dt))
        delta = filtered - self._ref

        ts_list: list[np.ndarray] = []
        xs_list: list[np.ndarray] = []
        ys_list: list[np.ndarray] = []
        ps_list: list[np.ndarray] = []

        for polarity, theta in ((1, self._theta_on), (-1, self._theta_off)):
            signed = delta if polarity == 1 else -delta
            n_cross = np.floor(signed / theta).astype(np.int64)
            n_cross = np.maximum(n_cross, 0)
            if not n_cross.any():
                continue
            ys, xs = np.nonzero(n_cross)
            counts = n_cross[ys, xs]
            total = int(counts.sum())
            ev_y = np.repeat(ys, counts)
            ev_x = np.repeat(xs, counts)
            # k-th crossing (1-based) of each firing pixel.
            k = np.concatenate([np.arange(1, c + 1) for c in counts]) if total else np.empty(0)
            # Fraction of the sampling interval at which crossing k occurs,
            # assuming linear log-luminance change across the interval.
            frac = (k * theta[ev_y, ev_x]) / np.abs(delta[ev_y, ev_x])
            frac = np.clip(frac, 0.0, 1.0)
            ev_t = t_prev + np.maximum(1, np.round(frac * dt)).astype(np.int64)
            ts_list.append(ev_t)
            xs_list.append(ev_x.astype(np.int32))
            ys_list.append(ev_y.astype(np.int32))
            ps_list.append(np.full(total, polarity, dtype=np.int8))
            # Update references by the integer number of thresholds crossed.
            self._ref[ys, xs] += polarity * counts * theta[ys, xs]

        self._last_t = t_us
        if not ts_list:
            return EventStream.empty(self.resolution)

        t_all = np.concatenate(ts_list)
        x_all = np.concatenate(xs_list)
        y_all = np.concatenate(ys_list)
        p_all = np.concatenate(ps_list)
        order = np.argsort(t_all, kind="stable")
        t_all, x_all, y_all, p_all = t_all[order], x_all[order], y_all[order], p_all[order]

        if self.params.refractory_us > 0:
            keep = self._apply_refractory(t_all, x_all, y_all)
            t_all, x_all, y_all, p_all = t_all[keep], x_all[keep], y_all[keep], p_all[keep]

        return EventStream.from_arrays(t_all, x_all, y_all, p_all, self.resolution)

    def _apply_refractory(
        self, t: np.ndarray, x: np.ndarray, y: np.ndarray
    ) -> np.ndarray:
        """Sequentially enforce the per-pixel refractory period."""
        keep = np.zeros(t.size, dtype=bool)
        refr = self.params.refractory_us
        until = self._refractory_until
        for i in range(t.size):
            yi, xi = int(y[i]), int(x[i])
            if t[i] >= until[yi, xi]:
                keep[i] = True
                until[yi, xi] = t[i] + refr
        return keep
