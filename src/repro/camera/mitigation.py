"""High-resolution mitigation strategies (Section II of the paper).

High-resolution sensors can emit overwhelming event rates under
egomotion.  The paper lists three in-sensor mitigation families:

* **in-sensor down-sampling** (Bouvier et al. 2021, ref [21]) — pool
  events into super-pixels before readout;
* **electronically foveated pixels** (Serrano-Gotarredona &
  Linares-Barranco 2022, ref [22]) — full resolution inside a fovea,
  aggressive pooling in the periphery;
* **centre-surround suppression** (Delbruck et al. 2022, ref [23]) —
  a pixel's event is suppressed when its whole neighbourhood is firing,
  passing only spatial contrast in activity.

Each mitigation maps an :class:`EventStream` to a cheaper stream; the
ABL-RES benchmark sweeps them against sensor resolution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..events.ops import spatial_downsample
from ..events.stream import EventStream, Resolution

__all__ = ["Fovea", "foveate", "centre_surround_suppression", "downsample"]

# Re-export the shared implementation under the mitigation vocabulary.
downsample = spatial_downsample


@dataclass(frozen=True)
class Fovea:
    """A circular full-resolution region of interest.

    Attributes:
        cx, cy: fovea centre in pixels.
        radius: fovea radius in pixels.
        peripheral_factor: pooling factor applied outside the fovea.
        peripheral_refractory_us: dead time of a pooled peripheral
            super-pixel after it emits (per polarity).  Pooling N^2 pixels
            into one necessarily rate-limits the merged output; this is
            the integration time of that pooled pixel.
    """

    cx: float
    cy: float
    radius: float
    peripheral_factor: int = 4
    peripheral_refractory_us: int = 1000

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise ValueError("radius must be non-negative")
        if self.peripheral_factor < 1:
            raise ValueError("peripheral_factor must be >= 1")
        if self.peripheral_refractory_us < 0:
            raise ValueError("peripheral_refractory_us must be non-negative")


def foveate(stream: EventStream, fovea: Fovea) -> EventStream:
    """Apply electronic foveation: keep the fovea, pool the periphery.

    Peripheral events are pooled onto a grid of
    ``peripheral_factor x peripheral_factor`` super-pixels whose
    coordinates are snapped to the super-pixel centre (resolution is
    unchanged, so foveated streams stay comparable to the input; the
    saving is in event count, since co-located peripheral events merge).

    Args:
        stream: input events.
        fovea: region and pooling configuration.

    Returns:
        A stream at the same resolution with fewer peripheral events.
    """
    if len(stream) == 0 or fovea.peripheral_factor == 1:
        return stream
    f = fovea.peripheral_factor
    dist = np.hypot(stream.x - fovea.cx, stream.y - fovea.cy)
    inside = dist <= fovea.radius

    x = stream.x.astype(np.int64).copy()
    y = stream.y.astype(np.int64).copy()
    # Snap peripheral coordinates to super-pixel centres.
    x[~inside] = (x[~inside] // f) * f + f // 2
    y[~inside] = (y[~inside] // f) * f + f // 2
    x = np.minimum(x, stream.resolution.width - 1)
    y = np.minimum(y, stream.resolution.height - 1)

    # Each pooled super-pixel emits at most one event per polarity per
    # refractory window: peripheral events falling inside a super-pixel's
    # dead time are absorbed into the event that opened it.
    width = stream.resolution.width
    refr = fovea.peripheral_refractory_us
    t = stream.t
    keep = np.ones(len(stream), dtype=bool)
    last_emit: dict[tuple[int, int], int] = {}
    for i in np.nonzero(~inside)[0]:
        key = (int(y[i] * width + x[i]), int(stream.p[i]))
        ti = int(t[i])
        prev = last_emit.get(key)
        if prev is not None and ti - prev <= refr:
            keep[i] = False
        else:
            last_emit[key] = ti
    return EventStream.from_arrays(
        t[keep], x[keep], y[keep], stream.p[keep], stream.resolution
    )


def centre_surround_suppression(
    stream: EventStream,
    surround_radius: int = 2,
    window_us: int = 5000,
    activity_threshold: float = 0.5,
) -> EventStream:
    """Suppress events whose surround is uniformly active.

    For each event, count how many of the pixels in the
    ``(2r+1)^2 - 1`` surround fired during the trailing ``window_us``.
    If more than ``activity_threshold`` of them did, the scene is changing
    everywhere locally (e.g. egomotion over texture) and the event is
    suppressed; isolated moving edges pass through.

    Args:
        stream: input events.
        surround_radius: Chebyshev radius of the surround.
        window_us: activity integration window.
        activity_threshold: surround occupancy fraction above which the
            centre event is suppressed.

    Returns:
        The surviving (contrast-carrying) events.
    """
    if surround_radius < 1:
        raise ValueError("surround_radius must be >= 1")
    if window_us <= 0:
        raise ValueError("window_us must be positive")
    if not 0.0 < activity_threshold <= 1.0:
        raise ValueError("activity_threshold must be in (0, 1]")
    n = len(stream)
    if n == 0:
        return stream
    w, h = stream.resolution.width, stream.resolution.height
    last_seen = np.full((h, w), np.iinfo(np.int64).min, dtype=np.int64)
    keep = np.zeros(n, dtype=bool)
    r = surround_radius
    xs, ys, ts = stream.x, stream.y, stream.t
    for i in range(n):
        x, y, t = int(xs[i]), int(ys[i]), int(ts[i])
        x0, x1 = max(0, x - r), min(w, x + r + 1)
        y0, y1 = max(0, y - r), min(h, y + r + 1)
        patch = last_seen[y0:y1, x0:x1]
        active = int(np.count_nonzero(patch >= t - window_us))
        # Exclude the centre pixel itself from the surround count.
        if last_seen[y, x] >= t - window_us:
            active -= 1
        surround_size = (y1 - y0) * (x1 - x0) - 1
        if surround_size <= 0 or active / surround_size <= activity_threshold:
            keep[i] = True
        last_seen[y, x] = t
    return stream[keep]
